#!/usr/bin/env python
"""Define a brand-new workload against the public Workload API.

Implements a molecular-dynamics-flavoured "cutoff force" kernel from
scratch: each thread owns a particle, scans a neighbour list of varying
length (workload imbalance!), and accumulates a pair force only for
neighbours within a cutoff radius (branch divergence!).  The example shows
the full authoring flow — input generation, KernelBuilder code, NumPy
verification — and then measures how much CAWA helps the imbalance.

Run:  python examples/custom_workload.py
"""

import numpy as np

from repro import GPU, GPUConfig, CmpOp, KernelBuilder, Special, apply_scheme
from repro.workloads.base import LaunchSpec, Workload


class CutoffForceWorkload(Workload):
    """1D cutoff pair-force accumulation over an irregular neighbour list."""

    name = "cutoff_force"
    category = "Sens"
    dataset = "1024 particles, power-law neighbour counts, r_cut=0.1"

    def __init__(self, seed=99, scale=1.0, num_particles=1024, cutoff=0.1):
        super().__init__(seed=seed, scale=scale)
        self.num_particles = self._int(num_particles)
        self.cutoff = cutoff

    def build(self, gpu) -> LaunchSpec:
        n = self.num_particles
        positions = self.rng.rand(n)
        # Power-law neighbour counts: some particles live in dense regions.
        counts = np.clip(self.rng.zipf(1.7, size=n), 1, 64).astype(np.int64)
        row_ptr = np.zeros(n + 1, dtype=np.int64)
        row_ptr[1:] = np.cumsum(counts)
        neighbours = self.rng.randint(0, n, size=int(row_ptr[-1]))

        mem = gpu.memory
        base_pos = mem.alloc_array(positions)
        base_row = mem.alloc_array(row_ptr.astype(float))
        base_nbr = mem.alloc_array(neighbours.astype(float))
        base_force = mem.alloc_array(np.zeros(n))

        b = KernelBuilder("cutoff_force")
        i = b.sreg(Special.GTID)
        in_range = b.pred()
        b.setp(in_range, CmpOp.LT, i, float(n))
        with b.if_then(in_range):
            my_pos = b.ld(b.addr(i, base=base_pos, scale=8))
            start = b.ld(b.addr(i, base=base_row, scale=8))
            end = b.ld(b.addr(i, base=base_row, scale=8), offset=8)
            force = b.const(0.0)
            j = b.reg()
            b.mov(j, start)
            done = b.pred()
            with b.loop() as lp:
                b.setp(done, CmpOp.GE, j, end)
                lp.break_if(done)
                nbr = b.ld(b.addr(j, base=base_nbr, scale=8))
                other = b.ld(b.addr(nbr, base=base_pos, scale=8))
                dist = b.reg()
                b.sub(dist, other, my_pos)
                absd = b.reg()
                b.abs_(absd, dist)
                near = b.pred()
                b.setp(near, CmpOp.LT, absd, self.cutoff)
                with b.if_then(near):
                    # Linear spring force toward the neighbour.
                    b.add(force, force, dist)
                b.add(j, j, 1.0)
            b.st(b.addr(i, base=base_force, scale=8), force)
        kernel = b.build()

        def verifier(gpu_):
            out = gpu_.memory.read_array(base_force, n)
            expected = np.zeros(n)
            for p in range(n):
                for e in range(int(row_ptr[p]), int(row_ptr[p + 1])):
                    d = positions[neighbours[e]] - positions[p]
                    if abs(d) < self.cutoff:
                        expected[p] += d
            return bool(np.allclose(out, expected))

        return LaunchSpec(
            kernel=kernel,
            grid_dim=(n + 255) // 256,
            block_dim=256,
            buffers={"force": base_force},
            verifier=verifier,
        )


def main() -> None:
    print("Custom workload: cutoff pair forces with irregular neighbour lists\n")
    results = {}
    for scheme in ("rr", "cawa"):
        gpu = GPU(apply_scheme(GPUConfig.default_sim(), scheme))
        results[scheme] = CutoffForceWorkload().run(gpu, scheme=scheme)
        r = results[scheme]
        print(f"[{scheme:>4}] cycles={r.cycles:>8.0f}  IPC={r.ipc:6.2f}  "
              f"L1 hit={r.l1_hit_rate:5.1%}  (results verified)")
    speedup = results["cawa"].ipc / results["rr"].ipc
    print(f"\nCAWA speedup on this custom workload: {speedup:.2f}x")


if __name__ == "__main__":
    main()
