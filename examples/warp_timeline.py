#!/usr/bin/env python
"""Visualize warp criticality as an ASCII execution timeline.

Runs the synthetic imbalance microbenchmark (per-warp loop trip counts up
to 96) under the baseline scheduler and under CAWA, then draws each block's
per-warp activity strip.  The slow warp's lonely tail beyond its siblings
IS the warp-criticality problem; comparing schemes shows how scheduling
reshapes each warp's activity.

The profiler rides the observability event bus (``repro.obs``): attach it
with ``bus.attach(profiler)`` and pass the bus to the GPU — the same
stream also feeds ``repro events export --format chrome`` for a Perfetto
view of the identical run (see docs/observability.md).

Run:  python examples/warp_timeline.py
"""

from repro import GPU, GPUConfig, apply_scheme
from repro.obs import bus_from_spec
from repro.stats.timeline import (
    TimelineProfiler,
    critical_tail_cycles,
    render_block_timeline,
)
from repro.workloads import make_workload


def run(scheme: str):
    bus = bus_from_spec("on")
    profiler = TimelineProfiler()
    bus.attach(profiler)
    gpu = GPU(apply_scheme(GPUConfig.default_sim(), scheme), obs=bus)
    make_workload("synthetic_imbalance", max_trips=96).run(gpu, scheme=scheme)
    return profiler


def main() -> None:
    for scheme in ("rr", "cawa"):
        profiler = run(scheme)
        sm_id, block_id = profiler.block_keys()[0]
        print(f"=== scheme: {scheme} ===")
        print(render_block_timeline(profiler, sm_id, block_id))
        tail = critical_tail_cycles(profiler, sm_id, block_id)
        print(f"critical tail (first-to-last warp finish): {tail:.0f} cycles\n")


if __name__ == "__main__":
    main()
