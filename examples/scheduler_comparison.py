#!/usr/bin/env python
"""Compare every warp scheduler on a cache-thrashing workload.

kmeans streams a working set much larger than the L1 under a fair
scheduler, but a concentrated schedule (GTO, gCAWS) plus criticality-aware
cache prioritization (CACP) lets the active warps' tiles live in the cache.
This reproduces the paper's flagship kmeans result (Figure 9) on one
workload in under a minute.

Run:  python examples/scheduler_comparison.py [workload]
"""

import sys

from repro import GPU, GPUConfig, apply_scheme
from repro.stats.report import format_table
from repro.workloads import make_workload, workload_names

SCHEMES = ["rr", "two_level", "gto", "gcaws", "cawa"]


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "kmeans"
    if name not in workload_names(include_synthetic=True):
        raise SystemExit(
            f"unknown workload {name!r}; pick one of {workload_names()}"
        )

    rows = []
    baseline_ipc = None
    for scheme in SCHEMES:
        gpu = GPU(apply_scheme(GPUConfig.default_sim(), scheme))
        result = make_workload(name).run(gpu, scheme=scheme)
        if baseline_ipc is None:
            baseline_ipc = result.ipc
        rows.append([
            scheme,
            f"{result.cycles:.0f}",
            f"{result.ipc:.2f}",
            f"{result.ipc / baseline_ipc:.2f}x",
            f"{result.l1_hit_rate:.1%}",
            f"{result.l1_mpki:.2f}",
            f"{result.critical_hit_rate:.1%}",
        ])

    print(f"Scheduler comparison on {name!r} "
          f"(identical inputs, verified results):\n")
    print(format_table(
        ["scheme", "cycles", "IPC", "speedup", "L1 hit", "MPKI", "crit hit"],
        rows,
    ))
    print("\nrr = round-robin baseline, two_level = [24], gto = [34],")
    print("gcaws = criticality-aware scheduler, cawa = gCAWS + CACP (the paper).")


if __name__ == "__main__":
    main()
