#!/usr/bin/env python
"""Quickstart: write a kernel, launch it, read the results.

Builds a SAXPY kernel with the KernelBuilder DSL, runs it on the simulated
GPU under the baseline round-robin scheduler and under the full CAWA
scheme, verifies the numerical output, and prints the performance counters.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import GPU, GPUConfig, KernelBuilder, Special, apply_scheme

N = 1024
ALPHA = 2.5


def build_saxpy(x_base: int, y_base: int) -> "object":
    """y[i] = ALPHA * x[i] + y[i], one thread per element."""
    b = KernelBuilder("saxpy")
    i = b.sreg(Special.GTID)
    x_addr = b.addr(i, base=x_base, scale=8)
    y_addr = b.addr(i, base=y_base, scale=8)
    x = b.ld(x_addr)
    y = b.ld(y_addr)
    result = b.reg()
    b.mad(result, x, ALPHA, y)
    b.st(y_addr, result)
    return b.build()


def run(scheme: str) -> None:
    config = apply_scheme(GPUConfig.default_sim(), scheme)
    gpu = GPU(config)

    x = np.linspace(0.0, 1.0, N)
    y = np.ones(N)
    x_base = gpu.memory.alloc_array(x)
    y_base = gpu.memory.alloc_array(y)

    kernel = build_saxpy(x_base, y_base)
    result = gpu.launch(kernel, grid_dim=N // 256, block_dim=256, scheme=scheme)

    out = gpu.memory.read_array(y_base, N)
    assert np.allclose(out, ALPHA * x + 1.0), "functional mismatch!"

    print(f"[{scheme:>5}] cycles={result.cycles:>7.0f}  IPC={result.ipc:6.2f}  "
          f"L1 hit={result.l1_hit_rate:6.1%}  MPKI={result.l1_mpki:6.2f}")


def main() -> None:
    print(f"SAXPY over {N} elements (verified against NumPy):")
    for scheme in ("rr", "gto", "cawa"):
        run(scheme)
    print("\nEvery scheme computes identical results; only timing differs.")


if __name__ == "__main__":
    main()
