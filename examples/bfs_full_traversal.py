#!/usr/bin/env python
"""Full breadth-first search: iterated kernel launches until the frontier drains.

The Rodinia bfs application launches its expansion kernel once per BFS
level until no new nodes are discovered.  This example reproduces that
whole loop on the simulator — two kernels per level (expand, then swap the
frontier) — and verifies the resulting level assignment against a pure
Python BFS.  It also shows that one GPU object supports many dependent
launches with caches staying warm in between.

Run:  python examples/bfs_full_traversal.py
"""

import numpy as np

from repro import GPU, GPUConfig, CmpOp, KernelBuilder, Special, apply_scheme

NUM_NODES = 512
AVG_DEGREE = 6
SEED = 42


def make_graph(rng):
    degrees = np.clip(rng.zipf(1.7, size=NUM_NODES), 1, 32)
    row_ptr = np.zeros(NUM_NODES + 1, dtype=np.int64)
    row_ptr[1:] = np.cumsum(degrees)
    col_idx = rng.randint(0, NUM_NODES, size=int(row_ptr[-1]))
    return row_ptr, col_idx


def reference_bfs(row_ptr, col_idx, source):
    cost = np.full(NUM_NODES, -1.0)
    cost[source] = 0
    frontier = [source]
    level = 0
    while frontier:
        level += 1
        nxt = []
        for node in frontier:
            for e in range(row_ptr[node], row_ptr[node + 1]):
                nb = int(col_idx[e])
                if cost[nb] < 0:
                    cost[nb] = level
                    nxt.append(nb)
        frontier = nxt
    return cost


def build_expand_kernel(bases, level):
    """Visit neighbours of frontier nodes; mark them updating at `level`."""
    b = KernelBuilder("bfs_expand")
    tid = b.sreg(Special.GTID)
    in_range = b.pred()
    b.setp(in_range, CmpOp.LT, tid, float(NUM_NODES))
    with b.if_then(in_range):
        fr = b.ld(b.addr(tid, base=bases["frontier"], scale=8))
        active = b.pred()
        b.setp(active, CmpOp.GT, fr, 0.5)
        with b.if_then(active):
            start = b.ld(b.addr(tid, base=bases["row_ptr"], scale=8))
            end = b.ld(b.addr(tid, base=bases["row_ptr"], scale=8), offset=8)
            e = b.reg()
            b.mov(e, start)
            done = b.pred()
            with b.loop() as lp:
                b.setp(done, CmpOp.GE, e, end)
                lp.break_if(done)
                nb = b.ld(b.addr(e, base=bases["col_idx"], scale=8))
                visited = b.ld(b.addr(nb, base=bases["visited"], scale=8))
                fresh = b.pred()
                b.setp(fresh, CmpOp.LT, visited, 0.5)
                with b.if_then(fresh):
                    lvl = b.const(float(level))
                    one = b.const(1.0)
                    b.st(b.addr(nb, base=bases["cost"], scale=8), lvl)
                    b.st(b.addr(nb, base=bases["updating"], scale=8), one)
                b.add(e, e, 1.0)
    return b.build()


def build_swap_kernel(bases):
    """frontier = updating; visited |= updating; updating = 0."""
    b = KernelBuilder("bfs_swap")
    tid = b.sreg(Special.GTID)
    in_range = b.pred()
    b.setp(in_range, CmpOp.LT, tid, float(NUM_NODES))
    with b.if_then(in_range):
        upd = b.ld(b.addr(tid, base=bases["updating"], scale=8))
        b.st(b.addr(tid, base=bases["frontier"], scale=8), upd)
        vis = b.ld(b.addr(tid, base=bases["visited"], scale=8))
        merged = b.reg()
        b.max_(merged, vis, upd)
        b.st(b.addr(tid, base=bases["visited"], scale=8), merged)
        zero = b.const(0.0)
        b.st(b.addr(tid, base=bases["updating"], scale=8), zero)
    return b.build()


def main() -> None:
    rng = np.random.RandomState(SEED)
    row_ptr, col_idx = make_graph(rng)
    source = 0

    gpu = GPU(apply_scheme(GPUConfig.default_sim(), "cawa"))
    mem = gpu.memory
    bases = {
        "row_ptr": mem.alloc_array(row_ptr.astype(float)),
        "col_idx": mem.alloc_array(col_idx.astype(float)),
        "frontier": mem.alloc_array(
            (np.arange(NUM_NODES) == source).astype(float)
        ),
        "visited": mem.alloc_array(
            (np.arange(NUM_NODES) == source).astype(float)
        ),
        "updating": mem.alloc_array(np.zeros(NUM_NODES)),
        "cost": mem.alloc_array(np.zeros(NUM_NODES)),
    }
    swap_kernel = build_swap_kernel(bases)
    grid = (NUM_NODES + 255) // 256

    total_cycles = 0.0
    level = 0
    while True:
        level += 1
        expand = gpu.launch(build_expand_kernel(bases, level), grid, 256)
        swap = gpu.launch(swap_kernel, grid, 256)
        total_cycles += expand.cycles + swap.cycles
        frontier = mem.read_array(bases["frontier"], NUM_NODES)
        discovered = int(frontier.sum())
        print(f"level {level:>2}: discovered {discovered:>4} nodes "
              f"(+{expand.cycles + swap.cycles:.0f} cycles)")
        if discovered == 0:
            break

    cost = mem.read_array(bases["cost"], NUM_NODES)
    expected = reference_bfs(row_ptr, col_idx, source)
    # Unreached nodes keep cost 0 on the GPU side; compare reached ones.
    reached = expected > 0
    assert np.array_equal(cost[reached], expected[reached]), "BFS mismatch!"
    assert np.all(cost[~reached] == 0)
    print(f"\nBFS over {NUM_NODES} nodes completed in {level} levels, "
          f"{total_cycles:.0f} simulated cycles — verified against CPU BFS.")


if __name__ == "__main__":
    main()
