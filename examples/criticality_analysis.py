#!/usr/bin/env python
"""Warp-criticality analysis of an irregular workload (paper Section 2).

Runs the bfs benchmark under the baseline scheduler and reproduces the
paper's motivation analysis on it: per-block warp execution-time
disparity (Figure 1/2), the stall breakdown of each block's critical warp
(Figures 2c and 4), and the criticality-prediction accuracy of CPL
(Figure 11).

Run:  python examples/criticality_analysis.py
"""

from repro import GPU, GPUConfig
from repro.stats.accuracy import CriticalityAccuracyTracker
from repro.stats.disparity import (
    block_disparity,
    critical_warp_of,
    memory_stall_share,
    scheduler_stall_share,
)
from repro.stats.report import format_table
from repro.workloads import make_workload


def main() -> None:
    gpu = GPU(GPUConfig.default_sim())
    tracker = CriticalityAccuracyTracker()
    for sm in gpu.sms:
        sm.issue_observers.append(tracker)

    workload = make_workload("bfs", scale=0.5)
    result = workload.run(gpu, scheme="rr")

    rows = []
    for block in result.blocks:
        if block.num_warps < 2:
            continue
        critical = critical_warp_of(block)
        rows.append([
            block.block_id,
            f"{block_disparity(block):.1%}",
            f"{critical.execution_time:.0f}",
            f"{memory_stall_share(critical):.1%}",
            f"{scheduler_stall_share(critical):.1%}",
        ])
    print("Per-block warp criticality under the baseline RR scheduler (bfs):\n")
    print(format_table(
        ["block", "warp time disparity", "critical warp cycles",
         "mem-stall share", "sched-wait share"],
        rows,
    ))
    print(f"\nCPL would have identified the critical warp as a slow warp in "
          f"{tracker.accuracy(result):.0%} of its periodic verdicts.")
    print("This is the execution-time gap CAWA attacks: see "
          "examples/scheduler_comparison.py for the fix.")


if __name__ == "__main__":
    main()
