"""Kernel container and the :class:`KernelBuilder` authoring DSL.

Workloads write kernels through the builder, which provides structured
control flow (``if_then`` / ``if_else`` / ``loop``) and automatically emits
the reconvergence points that the SIMT stack needs to model branch
divergence.  Conditional branches produced by the builder are always forward
branches whose reconvergence label is the end of the structured block; back
edges are unconditional, so divergence bookkeeping stays simple and exact.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field as dataclass_field, replace
from typing import Dict, List, Optional, Tuple, Union

from ..errors import KernelBuildError
from .instructions import CmpOp, Instruction, MemSpace, Opcode, Special


@dataclass(frozen=True)
class Reg:
    """Handle for a general-purpose register."""

    idx: int


@dataclass(frozen=True)
class Pred:
    """Handle for a predicate register."""

    idx: int


Operand = Union[Reg, int, float]


@dataclass
class Kernel:
    """A finalized, validated kernel.

    Attributes:
        name: kernel name (used in reports).
        instructions: the static instruction stream, with labels resolved.
        labels: label name -> PC.
        num_regs: general registers per thread.
        num_preds: predicate registers per thread.
        shared_mem_bytes: per-block shared memory footprint.
        lint_waivers: lint rule IDs acknowledged for this kernel, mapped to
            the waiver reason (see :mod:`repro.analysis.lints`).
    """

    name: str
    instructions: List[Instruction]
    labels: Dict[str, int]
    num_regs: int
    num_preds: int
    shared_mem_bytes: int = 0
    lint_waivers: Dict[str, str] = dataclass_field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.instructions)

    def __getitem__(self, pc: int) -> Instruction:
        return self.instructions[pc]

    # ------------------------------------------------------------------
    # Listing / source quoting
    # ------------------------------------------------------------------
    def _label_for(self, pc: int) -> str:
        for label, label_pc in self.labels.items():
            if label_pc == pc:
                return label
        return f"pc {pc}"

    def format_instruction(self, inst: Instruction) -> str:
        """Render one instruction unambiguously.

        Unlike ``repr(inst)``, the rendering shows predicate negation
        (``@!p0``), the comparison operator of SETP (``setp.lt``), the
        memory space of LD/ST (``ld.shared``), and the reconvergence point
        of conditional branches (``reconv=<label>``).
        """
        guard = ""
        if inst.pred is not None and inst.op is not Opcode.SELP:
            guard = f"@{'!' if inst.pred_neg else ''}p{inst.pred} "
        op = inst.op
        if op is Opcode.BRA:
            target = (
                self._label_for(inst.target_pc)
                if inst.target_pc >= 0
                else repr(inst.target)
            )
            text = f"bra {target}"
            if inst.pred is not None:
                reconv = (
                    self._label_for(inst.reconv_pc)
                    if inst.reconv_pc >= 0
                    else "?"
                )
                text += f", reconv={reconv}"
        elif op is Opcode.SETP:
            cmp_name = inst.cmp.value if inst.cmp is not None else "?"
            operands = [f"p{inst.dst}"] + [f"r{s}" for s in inst.srcs]
            if inst.imm is not None:
                operands.append(_fmt_imm(inst.imm))
            text = f"setp.{cmp_name} " + ", ".join(operands)
        elif op is Opcode.SELP:
            operands = [f"r{inst.dst}"] + [f"r{s}" for s in inst.srcs]
            if inst.imm is not None:
                operands.append(_fmt_imm(inst.imm))
            operands.append(f"p{inst.pred}")
            text = "selp " + ", ".join(operands)
        elif op is Opcode.SREG:
            special = inst.special.value if inst.special is not None else "?"
            text = f"sreg r{inst.dst}, {special}"
        elif op in (Opcode.LD, Opcode.ST):
            suffix = "" if inst.space is MemSpace.GLOBAL else f".{inst.space.value}"
            offset = int(inst.imm or 0)
            sign = "+" if offset >= 0 else "-"
            addr = f"[r{inst.srcs[0]} {sign} {abs(offset)}]"
            if op is Opcode.LD:
                text = f"ld{suffix} r{inst.dst}, {addr}"
            else:
                text = f"st{suffix} {addr}, r{inst.srcs[1]}"
        else:
            operands = []
            if inst.dst is not None:
                operands.append(f"r{inst.dst}")
            operands.extend(f"r{s}" for s in inst.srcs)
            if inst.imm is not None:
                operands.append(_fmt_imm(inst.imm))
            text = op.value + (" " + ", ".join(operands) if operands else "")
        return guard + text

    def source_line(self, pc: int) -> str:
        """The disassembly line for ``pc`` (used by lint findings)."""
        return f"[{pc}] {self.format_instruction(self.instructions[pc])}"

    def disassemble(self) -> str:
        """Human-readable listing of the whole kernel.

        Every line round-trips the information the SIMT pipeline consumes:
        guard predicates with negation, SETP comparison operators, LD/ST
        memory spaces, and branch targets with their reconvergence labels.
        """
        pc_labels: Dict[int, List[str]] = {}
        for label, pc in self.labels.items():
            pc_labels.setdefault(pc, []).append(label)
        lines = []
        for inst in self.instructions:
            for label in sorted(pc_labels.get(inst.pc, ())):
                lines.append(f"{label}:")
            lines.append(f"  {inst.pc:3d}:  {self.format_instruction(inst)}")
        return "\n".join(lines)


def _fmt_imm(value: float) -> str:
    if value == int(value):
        return f"#{int(value)}"
    return f"#{value!r}"


class _IfFrame:
    """Bookkeeping for one structured if/else region."""

    def __init__(self, else_label: str, end_label: str) -> None:
        self.else_label = else_label
        self.end_label = end_label
        self.has_else = False
        self.closed = False


class LoopFrame:
    """Bookkeeping for one structured loop region.

    Exposes ``break_if`` / ``break_unless`` so loop bodies can emit the
    (potentially divergent) exit branch.
    """

    def __init__(self, builder: "KernelBuilder", start_label: str, end_label: str) -> None:
        self._builder = builder
        self.start_label = start_label
        self.end_label = end_label
        self.closed = False

    def break_if(self, pred: Pred) -> None:
        """Exit the loop in lanes where ``pred`` is true."""
        self._builder._emit(
            Instruction(
                Opcode.BRA,
                pred=pred.idx,
                pred_neg=False,
                target=self.end_label,
                reconv=self.end_label,
            )
        )

    def break_unless(self, pred: Pred) -> None:
        """Exit the loop in lanes where ``pred`` is false."""
        self._builder._emit(
            Instruction(
                Opcode.BRA,
                pred=pred.idx,
                pred_neg=True,
                target=self.end_label,
                reconv=self.end_label,
            )
        )


class KernelBuilder:
    """Incrementally builds a :class:`Kernel`.

    Example::

        b = KernelBuilder("saxpy")
        i = b.sreg(Special.GTID)
        x = b.ld(b.addr(i, base=0, scale=8))
        y = b.ld(b.addr(i, base=4096, scale=8))
        r = b.reg()
        b.mad(r, x, 2.0, y)
        b.st(b.addr(i, base=8192, scale=8), r)
        kernel = b.build()
    """

    def __init__(self, name: str, shared_mem_bytes: int = 0) -> None:
        self.name = name
        self.shared_mem_bytes = shared_mem_bytes
        self._instructions: List[Instruction] = []
        self._labels: Dict[str, int] = {}
        self._next_reg = 0
        self._next_pred = 0
        self._next_label = 0
        self._open_frames: List[object] = []
        self._lint_waivers: Dict[str, str] = {}

    # ------------------------------------------------------------------
    # Resource allocation
    # ------------------------------------------------------------------
    def reg(self) -> Reg:
        """Allocate a fresh general register."""
        self._next_reg += 1
        return Reg(self._next_reg - 1)

    def regs(self, count: int) -> List[Reg]:
        """Allocate ``count`` fresh general registers."""
        return [self.reg() for _ in range(count)]

    def pred(self) -> Pred:
        """Allocate a fresh predicate register."""
        self._next_pred += 1
        return Pred(self._next_pred - 1)

    def fresh_label(self, stem: str) -> str:
        """Return a unique label name derived from ``stem``."""
        self._next_label += 1
        return f"{stem}_{self._next_label}"

    # ------------------------------------------------------------------
    # Emission helpers
    # ------------------------------------------------------------------
    def _emit(self, inst: Instruction) -> None:
        self._instructions.append(inst)

    def label(self, name: str) -> None:
        """Bind ``name`` to the next instruction's PC."""
        if name in self._labels:
            raise KernelBuildError(f"duplicate label {name!r} in kernel {self.name!r}")
        self._labels[name] = len(self._instructions)

    def _operands(
        self, op: Opcode, operands: Tuple[Operand, ...]
    ) -> Tuple[Tuple[int, ...], Optional[float]]:
        """Split operands into register sources and at most one immediate.

        The immediate, when present, must be the final operand; this keeps
        the instruction encoding unambiguous.
        """
        srcs: List[int] = []
        imm: Optional[float] = None
        for i, operand in enumerate(operands):
            if isinstance(operand, Reg):
                if imm is not None:
                    raise KernelBuildError(
                        f"{op.value}: immediate operand must come last "
                        f"(kernel {self.name!r})"
                    )
                srcs.append(operand.idx)
            elif isinstance(operand, (int, float)):
                if imm is not None:
                    raise KernelBuildError(
                        f"{op.value}: at most one immediate operand allowed "
                        f"(kernel {self.name!r})"
                    )
                imm = float(operand)
            else:
                raise KernelBuildError(
                    f"{op.value}: bad operand {operand!r} (kernel {self.name!r})"
                )
        return tuple(srcs), imm

    def _alu(
        self,
        op: Opcode,
        dst: Reg,
        *operands: Operand,
        pred: Optional[Pred] = None,
        pred_neg: bool = False,
    ) -> Reg:
        srcs, imm = self._operands(op, operands)
        self._emit(
            Instruction(
                op,
                dst=dst.idx,
                srcs=srcs,
                imm=imm,
                pred=None if pred is None else pred.idx,
                pred_neg=pred_neg,
            )
        )
        return dst

    # ------------------------------------------------------------------
    # Arithmetic / logic
    # ------------------------------------------------------------------
    def mov(self, dst: Reg, src: Operand, **kw) -> Reg:
        """dst = src."""
        return self._alu(Opcode.MOV, dst, src, **kw)

    def add(self, dst: Reg, a: Operand, b: Operand, **kw) -> Reg:
        """dst = a + b."""
        return self._alu(Opcode.ADD, dst, a, b, **kw)

    def sub(self, dst: Reg, a: Operand, b: Operand, **kw) -> Reg:
        """dst = a - b."""
        return self._alu(Opcode.SUB, dst, a, b, **kw)

    def mul(self, dst: Reg, a: Operand, b: Operand, **kw) -> Reg:
        """dst = a * b."""
        return self._alu(Opcode.MUL, dst, a, b, **kw)

    def div(self, dst: Reg, a: Operand, b: Operand, **kw) -> Reg:
        """dst = a / b (0 when b is 0)."""
        return self._alu(Opcode.DIV, dst, a, b, **kw)

    def mod(self, dst: Reg, a: Operand, b: Operand, **kw) -> Reg:
        """dst = a mod b (0 when b is 0)."""
        return self._alu(Opcode.MOD, dst, a, b, **kw)

    def min_(self, dst: Reg, a: Operand, b: Operand, **kw) -> Reg:
        """dst = min(a, b)."""
        return self._alu(Opcode.MIN, dst, a, b, **kw)

    def max_(self, dst: Reg, a: Operand, b: Operand, **kw) -> Reg:
        """dst = max(a, b)."""
        return self._alu(Opcode.MAX, dst, a, b, **kw)

    def abs_(self, dst: Reg, a: Operand, **kw) -> Reg:
        """dst = |a|."""
        return self._alu(Opcode.ABS, dst, a, **kw)

    def neg(self, dst: Reg, a: Operand, **kw) -> Reg:
        """dst = -a."""
        return self._alu(Opcode.NEG, dst, a, **kw)

    def mad(self, dst: Reg, a: Operand, b: Operand, c: Operand, **kw) -> Reg:
        """dst = a * b + c.  An immediate is only encodable as ``b`` (the
        multiplier); a scalar ``c`` is materialized into a register first."""
        if not isinstance(a, Reg):
            a = self._const(a)
        if not isinstance(c, Reg):
            c = self._const(c)
        if isinstance(b, Reg):
            srcs, imm = (a.idx, b.idx, c.idx), None
        else:
            srcs, imm = (a.idx, c.idx), float(b)
        pred = kw.get("pred")
        self._emit(
            Instruction(
                Opcode.MAD,
                dst=dst.idx,
                srcs=srcs,
                imm=imm,
                pred=None if pred is None else pred.idx,
                pred_neg=kw.get("pred_neg", False),
            )
        )
        return dst

    def and_(self, dst: Reg, a: Operand, b: Operand, **kw) -> Reg:
        """dst = a & b (bitwise, via int64)."""
        return self._alu(Opcode.AND, dst, a, b, **kw)

    def or_(self, dst: Reg, a: Operand, b: Operand, **kw) -> Reg:
        """dst = a | b (bitwise, via int64)."""
        return self._alu(Opcode.OR, dst, a, b, **kw)

    def xor(self, dst: Reg, a: Operand, b: Operand, **kw) -> Reg:
        """dst = a ^ b (bitwise, via int64)."""
        return self._alu(Opcode.XOR, dst, a, b, **kw)

    def not_(self, dst: Reg, a: Operand, **kw) -> Reg:
        """dst = ~a (bitwise, via int64)."""
        return self._alu(Opcode.NOT, dst, a, **kw)

    def shl(self, dst: Reg, a: Operand, b: Operand, **kw) -> Reg:
        """dst = a << b."""
        return self._alu(Opcode.SHL, dst, a, b, **kw)

    def shr(self, dst: Reg, a: Operand, b: Operand, **kw) -> Reg:
        """dst = a >> b."""
        return self._alu(Opcode.SHR, dst, a, b, **kw)

    def floor(self, dst: Reg, a: Operand, **kw) -> Reg:
        """dst = floor(a)."""
        return self._alu(Opcode.FLOOR, dst, a, **kw)

    def sqrt(self, dst: Reg, a: Operand, **kw) -> Reg:
        """dst = sqrt(max(a, 0)) (SFU)."""
        return self._alu(Opcode.SQRT, dst, a, **kw)

    def rsqrt(self, dst: Reg, a: Operand, **kw) -> Reg:
        """dst = 1/sqrt(a), domain-clamped (SFU)."""
        return self._alu(Opcode.RSQRT, dst, a, **kw)

    def rcp(self, dst: Reg, a: Operand, **kw) -> Reg:
        """dst = 1/a, domain-clamped (SFU)."""
        return self._alu(Opcode.RCP, dst, a, **kw)

    def exp(self, dst: Reg, a: Operand, **kw) -> Reg:
        """dst = exp(a), input clamped to +-700 (SFU)."""
        return self._alu(Opcode.EXP, dst, a, **kw)

    def log(self, dst: Reg, a: Operand, **kw) -> Reg:
        """dst = log(max(a, tiny)) (SFU)."""
        return self._alu(Opcode.LOG, dst, a, **kw)

    def sin(self, dst: Reg, a: Operand, **kw) -> Reg:
        """dst = sin(a) (SFU)."""
        return self._alu(Opcode.SIN, dst, a, **kw)

    def cos(self, dst: Reg, a: Operand, **kw) -> Reg:
        """dst = cos(a) (SFU)."""
        return self._alu(Opcode.COS, dst, a, **kw)

    def selp(self, dst: Reg, pred: Pred, a: Operand, b: Operand) -> Reg:
        """dst = a where pred else b."""
        srcs, imm = self._operands(Opcode.SELP, (a, b))
        self._emit(
            Instruction(Opcode.SELP, dst=dst.idx, srcs=srcs, imm=imm, pred=pred.idx)
        )
        return dst

    def setp(self, dst: Pred, cmp: CmpOp, a: Operand, b: Operand) -> Pred:
        """Set predicate ``dst`` = ``cmp(a, b)`` per lane."""
        srcs, imm = self._operands(Opcode.SETP, (a, b))
        self._emit(Instruction(Opcode.SETP, dst=dst.idx, srcs=srcs, imm=imm, cmp=cmp))
        return dst

    def sreg(self, special: Special, dst: Optional[Reg] = None) -> Reg:
        """Read a special register (thread id, block id, ...) into ``dst``."""
        if dst is None:
            dst = self.reg()
        self._emit(Instruction(Opcode.SREG, dst=dst.idx, special=special))
        return dst

    # ------------------------------------------------------------------
    # Memory
    # ------------------------------------------------------------------
    def ld(
        self,
        addr: Reg,
        dst: Optional[Reg] = None,
        offset: int = 0,
        space: MemSpace = MemSpace.GLOBAL,
        pred: Optional[Pred] = None,
        pred_neg: bool = False,
    ) -> Reg:
        """Load ``dst = space[addr + offset]`` (8-byte word)."""
        if dst is None:
            dst = self.reg()
        self._emit(
            Instruction(
                Opcode.LD,
                dst=dst.idx,
                srcs=(addr.idx,),
                imm=float(offset),
                space=space,
                pred=None if pred is None else pred.idx,
                pred_neg=pred_neg,
            )
        )
        return dst

    def st(
        self,
        addr: Reg,
        src: Reg,
        offset: int = 0,
        space: MemSpace = MemSpace.GLOBAL,
        pred: Optional[Pred] = None,
        pred_neg: bool = False,
    ) -> None:
        """Store ``space[addr + offset] = src`` (8-byte word)."""
        self._emit(
            Instruction(
                Opcode.ST,
                srcs=(addr.idx, src.idx),
                imm=float(offset),
                space=space,
                pred=None if pred is None else pred.idx,
                pred_neg=pred_neg,
            )
        )

    # ------------------------------------------------------------------
    # Control flow
    # ------------------------------------------------------------------
    def bra(self, target: str) -> None:
        """Unconditional branch (used for back edges; never diverges)."""
        self._emit(Instruction(Opcode.BRA, target=target))

    def bar(self) -> None:
        """Block-wide synchronization barrier."""
        self._emit(Instruction(Opcode.BAR))

    def exit(self) -> None:
        """Terminate the thread."""
        self._emit(Instruction(Opcode.EXIT))

    def nop(self, count: int = 1) -> None:
        """Emit ``count`` NOPs (useful for padding basic blocks in tests)."""
        for _ in range(count):
            self._emit(Instruction(Opcode.NOP))

    def begin_if(self, pred: Pred, invert: bool = False) -> _IfFrame:
        """Open an if-region executed in lanes where ``pred`` holds.

        With ``invert=True`` the region executes where ``pred`` is false.
        """
        frame = _IfFrame(self.fresh_label("else"), self.fresh_label("endif"))
        # Branch around the then-body when the condition does NOT hold.
        self._emit(
            Instruction(
                Opcode.BRA,
                pred=pred.idx,
                pred_neg=not invert,
                target=frame.else_label,
                reconv=frame.end_label,
            )
        )
        self._open_frames.append(frame)
        return frame

    def begin_else(self, frame: _IfFrame) -> None:
        """Switch from the then-body to the else-body of ``frame``."""
        if frame.has_else or frame.closed:
            raise KernelBuildError("begin_else on an already-closed if frame")
        if not self._open_frames or self._open_frames[-1] is not frame:
            raise KernelBuildError("begin_else must match the innermost open if")
        frame.has_else = True
        self.bra(frame.end_label)
        self.label(frame.else_label)

    def end_if(self, frame: _IfFrame) -> None:
        """Close an if-region, emitting its reconvergence point."""
        if frame.closed:
            raise KernelBuildError("end_if on an already-closed if frame")
        if not self._open_frames or self._open_frames[-1] is not frame:
            raise KernelBuildError("end_if must match the innermost open frame")
        self._open_frames.pop()
        frame.closed = True
        if not frame.has_else:
            self.label(frame.else_label)
        self.label(frame.end_label)
        self._emit(Instruction(Opcode.RECONV))

    @contextlib.contextmanager
    def if_then(self, pred: Pred, invert: bool = False):
        """``with b.if_then(p): ...`` sugar for an else-less if-region."""
        frame = self.begin_if(pred, invert=invert)
        yield frame
        self.end_if(frame)

    def begin_loop(self) -> LoopFrame:
        """Open a loop region; exit it with ``frame.break_if/break_unless``."""
        frame = LoopFrame(self, self.fresh_label("loop"), self.fresh_label("endloop"))
        self.label(frame.start_label)
        self._open_frames.append(frame)
        return frame

    def end_loop(self, frame: LoopFrame) -> None:
        """Close a loop region: back edge plus reconvergence point."""
        if frame.closed:
            raise KernelBuildError("end_loop on an already-closed loop frame")
        if not self._open_frames or self._open_frames[-1] is not frame:
            raise KernelBuildError("end_loop must match the innermost open frame")
        self._open_frames.pop()
        frame.closed = True
        self.bra(frame.start_label)
        self.label(frame.end_label)
        self._emit(Instruction(Opcode.RECONV))

    @contextlib.contextmanager
    def loop(self):
        """``with b.loop() as lp: ... lp.break_unless(p) ...`` sugar."""
        frame = self.begin_loop()
        yield frame
        self.end_loop(frame)

    # ------------------------------------------------------------------
    # Convenience composites
    # ------------------------------------------------------------------
    def addr(self, index: Reg, base: int = 0, scale: int = 8) -> Reg:
        """Compute ``base + index * scale`` into a fresh register."""
        dst = self.reg()
        if scale == 1:
            self.add(dst, index, float(base))
        else:
            self.mad(dst, index, float(scale), self._const(float(base)))
        return dst

    def _const(self, value: float) -> Reg:
        dst = self.reg()
        self.mov(dst, value)
        return dst

    def const(self, value: float) -> Reg:
        """Materialize an immediate into a fresh register."""
        return self._const(float(value))

    # ------------------------------------------------------------------
    # Finalization
    # ------------------------------------------------------------------
    def waive_lint(self, rule_id: str, reason: str = "") -> None:
        """Acknowledge lint rule ``rule_id`` for this kernel.

        Findings of a waived rule are still reported (marked suppressed)
        but never fail a ``build(lint="error")`` or the ``repro lint`` CLI.
        See ``docs/static_analysis.md`` for the rule catalogue.
        """
        self._lint_waivers[rule_id] = reason

    def build(self, lint: str = "none") -> Kernel:
        """Finalize: append EXIT, resolve labels, validate, freeze.

        Args:
            lint: run the static analyzer (:mod:`repro.analysis`) over the
                finalized kernel: ``"none"`` (default) skips it, ``"warn"``
                prints findings to stderr, ``"error"`` additionally raises
                :class:`~repro.errors.LintError` on any unwaived
                ERROR-severity finding.
        """
        from .program import validate_kernel  # local import to avoid a cycle

        if self._open_frames:
            raise KernelBuildError(
                f"kernel {self.name!r} has {len(self._open_frames)} unclosed "
                "structured block(s)"
            )
        if not self._instructions or self._instructions[-1].op is not Opcode.EXIT:
            self.exit()
        # Labels may point one past the end (e.g. a loop end right before
        # the implicit EXIT we just appended would have been fine); clamp is
        # unnecessary because we emit EXIT after closing all frames.
        resolved: List[Instruction] = []
        for pc, inst in enumerate(self._instructions):
            target_pc = -1
            reconv_pc = -1
            if inst.target is not None:
                if inst.target not in self._labels:
                    raise KernelBuildError(
                        f"undefined label {inst.target!r} in kernel {self.name!r}"
                    )
                target_pc = self._labels[inst.target]
            if inst.reconv is not None:
                if inst.reconv not in self._labels:
                    raise KernelBuildError(
                        f"undefined reconvergence label {inst.reconv!r} "
                        f"in kernel {self.name!r}"
                    )
                reconv_pc = self._labels[inst.reconv]
            resolved.append(
                replace(inst, pc=pc, target_pc=target_pc, reconv_pc=reconv_pc)
            )
        kernel = Kernel(
            name=self.name,
            instructions=resolved,
            labels=dict(self._labels),
            num_regs=max(self._next_reg, 1),
            num_preds=max(self._next_pred, 1),
            shared_mem_bytes=self.shared_mem_bytes,
            lint_waivers=dict(self._lint_waivers),
        )
        validate_kernel(kernel)
        if lint not in ("none", "warn", "error"):
            raise KernelBuildError(
                f"build(lint=...) must be 'none', 'warn', or 'error', "
                f"got {lint!r}"
            )
        if lint != "none":
            import sys

            from ..analysis import lint_kernel  # deferred: heavy subsystem
            from ..errors import LintError

            report = lint_kernel(kernel)
            if report.findings:
                print(report.format_text(), file=sys.stderr)
            if lint == "error" and not report.ok:
                raise LintError(
                    f"kernel {kernel.name!r} failed lint with "
                    f"{len(report.errors)} error(s); see stderr for the "
                    "findings or run `repro lint`"
                )
        return kernel

    def finalize(self, lint: str = "none") -> Kernel:
        """Alias for :meth:`build` (mirrors the paper-repo terminology)."""
        return self.build(lint=lint)
