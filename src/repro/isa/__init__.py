"""A small PTX-like SIMT instruction set and kernel-building DSL.

This subpackage is the stand-in for NVIDIA's PTX ISA that GPGPU-sim consumes:
workloads are authored against :class:`~repro.isa.kernel.KernelBuilder`, which
emits :class:`~repro.isa.instructions.Instruction` streams with explicit
reconvergence points so the SIMT core can model branch divergence exactly the
way the paper's criticality analysis requires.
"""

from .asm import format_kernel, parse_kernel
from .instructions import CmpOp, FuncUnit, Instruction, MemSpace, Opcode, Special
from .kernel import Kernel, KernelBuilder
from .program import validate_kernel

__all__ = [
    "CmpOp",
    "FuncUnit",
    "Instruction",
    "Kernel",
    "KernelBuilder",
    "MemSpace",
    "Opcode",
    "Special",
    "format_kernel",
    "parse_kernel",
    "validate_kernel",
]
