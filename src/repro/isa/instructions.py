"""Instruction definitions for the simulator's PTX-like ISA.

The ISA is deliberately small: enough arithmetic, predicate, branch, and
memory operations to express the Rodinia/Parboil-style kernels the paper
evaluates, while keeping the functional executor fast.  Registers are untyped
64-bit floats (bitwise operations cast through int64), predicates are
booleans, and memory is a flat byte-addressed global space plus a per-block
shared space.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from functools import cached_property
from typing import Optional, Tuple


class Opcode(enum.Enum):
    """Every operation the SIMT core can issue."""

    # Arithmetic / logic (ALU pipe)
    MOV = "mov"
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"
    MOD = "mod"
    MIN = "min"
    MAX = "max"
    ABS = "abs"
    NEG = "neg"
    MAD = "mad"  # dst = src0 * src1 + src2
    AND = "and"
    OR = "or"
    XOR = "xor"
    NOT = "not"
    SHL = "shl"
    SHR = "shr"
    SETP = "setp"  # predicate dst = cmp(src0, src1)
    SELP = "selp"  # dst = pred ? src0 : src1
    FLOOR = "floor"

    # Special function unit (SFU pipe)
    SQRT = "sqrt"
    RSQRT = "rsqrt"
    RCP = "rcp"
    EXP = "exp"
    LOG = "log"
    SIN = "sin"
    COS = "cos"

    # Memory (MEM pipe)
    LD = "ld"  # dst = mem[src0 + imm]
    ST = "st"  # mem[src0 + imm] = src1

    # Control (CTRL pipe)
    BRA = "bra"
    RECONV = "reconv"  # reconvergence point marker (no-op at execution)
    BAR = "bar"  # block-wide barrier
    EXIT = "exit"
    NOP = "nop"

    # Special registers
    SREG = "sreg"  # dst = special value


class FuncUnit(enum.Enum):
    """Execution pipe an opcode occupies; determines issue latency."""

    ALU = "alu"
    SFU = "sfu"
    MEM = "mem"
    CTRL = "ctrl"


class CmpOp(enum.Enum):
    """Comparison operators for SETP."""

    LT = "lt"
    LE = "le"
    GT = "gt"
    GE = "ge"
    EQ = "eq"
    NE = "ne"


class MemSpace(enum.Enum):
    """Address spaces for LD/ST."""

    GLOBAL = "global"
    SHARED = "shared"


class Special(enum.Enum):
    """Special (read-only) per-thread values readable via SREG."""

    TID = "tid"  # thread index within the block
    CTAID = "ctaid"  # block index within the grid
    NTID = "ntid"  # block dimension (threads per block)
    NCTAID = "nctaid"  # grid dimension (blocks per grid)
    GTID = "gtid"  # global thread id = ctaid * ntid + tid
    LANEID = "laneid"  # lane within the warp
    WARPID = "warpid"  # warp index within the block


_OPCODE_UNIT = {
    Opcode.SQRT: FuncUnit.SFU,
    Opcode.RSQRT: FuncUnit.SFU,
    Opcode.RCP: FuncUnit.SFU,
    Opcode.EXP: FuncUnit.SFU,
    Opcode.LOG: FuncUnit.SFU,
    Opcode.SIN: FuncUnit.SFU,
    Opcode.COS: FuncUnit.SFU,
    Opcode.LD: FuncUnit.MEM,
    Opcode.ST: FuncUnit.MEM,
    Opcode.BRA: FuncUnit.CTRL,
    Opcode.RECONV: FuncUnit.CTRL,
    Opcode.BAR: FuncUnit.CTRL,
    Opcode.EXIT: FuncUnit.CTRL,
    Opcode.NOP: FuncUnit.CTRL,
}


def func_unit(op: Opcode) -> FuncUnit:
    """Return the execution pipe for ``op`` (default: ALU)."""
    return _OPCODE_UNIT.get(op, FuncUnit.ALU)


@dataclass(frozen=True)
class Instruction:
    """One static instruction.

    Attributes:
        op: the opcode.
        dst: destination register index (or predicate index for SETP), or
            ``None`` when the op produces no value.
        srcs: source register indices.
        imm: immediate operand (constant arithmetic operand, memory offset,
            or special-register selector for SREG).
        pred: guarding predicate register index; the instruction only takes
            effect in lanes where the predicate holds (inverted when
            ``pred_neg``).  For BRA this is the branch condition.
        pred_neg: invert the guarding predicate.
        cmp: comparison operator (SETP only).
        space: address space (LD/ST only).
        target: branch-target label, resolved to a PC by
            :func:`repro.isa.program.validate_kernel`.
        reconv: reconvergence-point label for potentially divergent branches.
        special: the special value selector (SREG only).
        pc: index of the instruction in its kernel, filled at finalize time.
    """

    op: Opcode
    dst: Optional[int] = None
    srcs: Tuple[int, ...] = ()
    imm: Optional[float] = None
    pred: Optional[int] = None
    pred_neg: bool = False
    cmp: Optional[CmpOp] = None
    space: MemSpace = MemSpace.GLOBAL
    target: Optional[str] = None
    reconv: Optional[str] = None
    special: Optional[Special] = None
    pc: int = -1
    target_pc: int = field(default=-1)
    reconv_pc: int = field(default=-1)

    # These classification helpers sit on the per-issue hot path (several
    # lookups per issued instruction); ``cached_property`` turns the repeat
    # calls into instance-dict hits.  (``cached_property`` writes straight
    # into ``__dict__`` and therefore works on frozen dataclasses.)

    @cached_property
    def unit(self) -> FuncUnit:
        """Execution pipe this instruction occupies."""
        return func_unit(self.op)

    @cached_property
    def is_branch(self) -> bool:
        return self.op is Opcode.BRA

    @cached_property
    def is_memory(self) -> bool:
        return self.op in (Opcode.LD, Opcode.ST)

    @cached_property
    def is_load(self) -> bool:
        return self.op is Opcode.LD

    @cached_property
    def writes_register(self) -> bool:
        """True when ``dst`` names a general register this op writes."""
        return self.dst is not None and self.op not in (Opcode.SETP, Opcode.ST)

    @cached_property
    def writes_predicate(self) -> bool:
        return self.op is Opcode.SETP

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        guard = ""
        if self.pred is not None:
            guard = f"@{'!' if self.pred_neg else ''}p{self.pred} "
        parts = [f"[{self.pc}] {guard}{self.op.value}"]
        if self.dst is not None:
            prefix = "p" if self.op is Opcode.SETP else "r"
            parts.append(f"{prefix}{self.dst}")
        parts.extend(f"r{s}" for s in self.srcs)
        if self.imm is not None:
            parts.append(f"#{self.imm}")
        if self.target is not None:
            parts.append(f"-> {self.target}")
        return " ".join(parts)
