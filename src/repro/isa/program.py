"""Static validation of finalized kernels.

The SIMT stack relies on structural invariants that the builder establishes;
this module re-checks them so hand-constructed kernels (tests, fuzzing) fail
fast instead of corrupting simulation state.
"""

from __future__ import annotations

from ..errors import KernelValidationError
from .instructions import Opcode


def validate_kernel(kernel) -> None:
    """Validate structural invariants of ``kernel``.

    Checks:
      * the kernel ends with EXIT;
      * every branch target / reconvergence PC is in range;
      * conditional branches carry a reconvergence point that is a RECONV
        instruction located at or after the branch target (forward branch);
      * unconditional branches carry no reconvergence point;
      * SETP instructions have a comparison operator;
      * divergence regions are properly nested: a branch inside another
        branch's region must reconverge at or before the outer region's
        reconvergence point (the SIMT stack pops innermost-first);
      * nested branches do not share a reconvergence PC (only sibling
        loop breaks, whose target *is* their reconvergence point, may);
      * every if-style branch dominates its reconvergence point, so the
        SIMT stack entry pushed at the branch is always popped (loop
        breaks are exempt: the loop *header* dominates the loop exit).

    Raises:
        KernelValidationError: when any invariant is violated.
    """
    insts = kernel.instructions
    if not insts:
        raise KernelValidationError(f"kernel {kernel.name!r} is empty")
    if insts[-1].op is not Opcode.EXIT:
        raise KernelValidationError(f"kernel {kernel.name!r} must end with EXIT")

    n = len(insts)
    for inst in insts:
        if inst.op is Opcode.BRA:
            if not 0 <= inst.target_pc < n:
                raise KernelValidationError(
                    f"kernel {kernel.name!r}: branch at pc={inst.pc} targets "
                    f"out-of-range pc {inst.target_pc}"
                )
            if inst.pred is not None:
                if not 0 <= inst.reconv_pc < n:
                    raise KernelValidationError(
                        f"kernel {kernel.name!r}: conditional branch at "
                        f"pc={inst.pc} lacks a reconvergence point"
                    )
                if insts[inst.reconv_pc].op is not Opcode.RECONV:
                    raise KernelValidationError(
                        f"kernel {kernel.name!r}: reconvergence pc "
                        f"{inst.reconv_pc} of branch at pc={inst.pc} is not a "
                        "RECONV instruction"
                    )
                if inst.target_pc <= inst.pc:
                    raise KernelValidationError(
                        f"kernel {kernel.name!r}: conditional branch at "
                        f"pc={inst.pc} must branch forward (structured "
                        "control flow), but targets pc "
                        f"{inst.target_pc}"
                    )
                if inst.reconv_pc < inst.target_pc:
                    raise KernelValidationError(
                        f"kernel {kernel.name!r}: reconvergence pc "
                        f"{inst.reconv_pc} precedes branch target "
                        f"{inst.target_pc} at pc={inst.pc}"
                    )
        elif inst.op is Opcode.SETP:
            if inst.cmp is None:
                raise KernelValidationError(
                    f"kernel {kernel.name!r}: SETP at pc={inst.pc} has no "
                    "comparison operator"
                )
            if inst.dst is None or not 0 <= inst.dst < kernel.num_preds:
                raise KernelValidationError(
                    f"kernel {kernel.name!r}: SETP at pc={inst.pc} writes "
                    f"bad predicate {inst.dst}"
                )
        if inst.pred is not None and not 0 <= inst.pred < kernel.num_preds:
            raise KernelValidationError(
                f"kernel {kernel.name!r}: pc={inst.pc} guarded by "
                f"out-of-range predicate {inst.pred}"
            )
        if inst.writes_register and not 0 <= inst.dst < kernel.num_regs:
            raise KernelValidationError(
                f"kernel {kernel.name!r}: pc={inst.pc} writes out-of-range "
                f"register {inst.dst}"
            )
        for src in inst.srcs:
            if not 0 <= src < kernel.num_regs:
                raise KernelValidationError(
                    f"kernel {kernel.name!r}: pc={inst.pc} reads "
                    f"out-of-range register {src}"
                )

    # ---- structural nesting of divergence regions --------------------
    sites = [i for i in insts if i.op is Opcode.BRA and i.pred is not None]
    for outer in sites:
        for inner in sites:
            if not outer.pc < inner.pc < outer.reconv_pc:
                continue
            if inner.reconv_pc > outer.reconv_pc:
                raise KernelValidationError(
                    f"kernel {kernel.name!r}: branch at pc={inner.pc} "
                    f"reconverges at {inner.reconv_pc}, outside the region "
                    f"of the enclosing branch at pc={outer.pc} (which "
                    f"reconverges at {outer.reconv_pc}); divergence "
                    "regions must nest"
                )
            if (
                inner.reconv_pc == outer.reconv_pc
                and inner.target_pc != inner.reconv_pc
            ):
                raise KernelValidationError(
                    f"kernel {kernel.name!r}: nested branches at pc="
                    f"{outer.pc} and pc={inner.pc} share reconvergence pc "
                    f"{inner.reconv_pc}; only sibling loop breaks (branch "
                    "target == reconvergence point) may share one"
                )

    # ---- reconvergence dominance (CFG-based) -------------------------
    if sites:
        # Deferred import: repro.analysis depends on repro.isa, so the CFG
        # machinery must only be pulled in at validation (call) time.
        from ..analysis.cfg import CFG

        cfg = CFG(kernel)
        for site in cfg.branches:
            if site.is_loop_break:
                continue
            if not cfg.pc_dominates(site.pc, site.reconv_pc):
                raise KernelValidationError(
                    f"kernel {kernel.name!r}: reconvergence pc "
                    f"{site.reconv_pc} of the branch at pc={site.pc} is "
                    "reachable without executing the branch; the SIMT "
                    "stack entry pushed there may never be popped"
                )
