"""Textual assembly format for kernels: format and parse.

A simple PTX-flavoured line syntax so kernels can live in ``.s`` files,
be diffed, and be written without the builder DSL::

    .kernel saxpy
    .regs 5
    .preds 1
        sreg r0, gtid
        setp.lt p0, r0, #1024
    @!p0 bra end, reconv=end
        ld r1, [r0 + 0]
        add r2, r1, #1.0
        st [r0 + 8], r2
    end:
        reconv
        exit

:func:`format_kernel` and :func:`parse_kernel` round-trip exactly
(``parse(format(k))`` yields an instruction-for-instruction equal kernel).
"""

from __future__ import annotations

import re
from dataclasses import replace
from typing import Dict, List, Optional, Tuple

from ..errors import KernelBuildError
from .instructions import CmpOp, Instruction, MemSpace, Opcode, Special
from .kernel import Kernel
from .program import validate_kernel

_LABEL_RE = re.compile(r"^([A-Za-z_][\w.]*):$")
_DIRECTIVE_RE = re.compile(r"^\.(kernel|regs|preds|shared)\s+(\S+)$")
_GUARD_RE = re.compile(r"^@(!?)p(\d+)\s+(.*)$")
_MEM_RE = re.compile(r"^\[\s*r(\d+)\s*([+-]\s*\d+)?\s*\]$")


def _fmt_imm(value: float) -> str:
    if value == int(value):
        return f"#{int(value)}"
    return f"#{value!r}"


def _fmt_operands(inst: Instruction) -> str:
    parts = []
    if inst.op is Opcode.SETP:
        parts.append(f"p{inst.dst}")
    elif inst.dst is not None:
        parts.append(f"r{inst.dst}")
    parts.extend(f"r{s}" for s in inst.srcs)
    if inst.imm is not None:
        parts.append(_fmt_imm(inst.imm))
    return ", ".join(parts)


def format_kernel(kernel: Kernel) -> str:
    """Render ``kernel`` in the assembly syntax (parseable)."""
    pc_labels: Dict[int, List[str]] = {}
    for label, pc in kernel.labels.items():
        pc_labels.setdefault(pc, []).append(label)
    # Branches may reference PCs with no label (hand-built kernels): invent.
    synth: Dict[int, str] = {}

    def label_for(pc: int) -> str:
        for name in pc_labels.get(pc, ()):
            return name
        if pc not in synth:
            synth[pc] = f"L{pc}"
            pc_labels.setdefault(pc, []).append(synth[pc])
        return synth[pc]

    body: List[str] = []
    for inst in kernel.instructions:
        guard = ""
        if inst.pred is not None and inst.op is not Opcode.SELP:
            guard = f"@{'!' if inst.pred_neg else ''}p{inst.pred} "
        op = inst.op
        if op is Opcode.BRA:
            text = f"bra {label_for(inst.target_pc)}"
            if inst.pred is not None:
                text += f", reconv={label_for(inst.reconv_pc)}"
        elif op is Opcode.SETP:
            operands = _fmt_operands(inst)
            text = f"setp.{inst.cmp.value} {operands}"
        elif op is Opcode.SELP:
            operands = _fmt_operands(inst)
            text = f"selp {operands}, p{inst.pred}"
        elif op is Opcode.SREG:
            text = f"sreg r{inst.dst}, {inst.special.value}"
        elif op in (Opcode.LD, Opcode.ST):
            suffix = ".shared" if inst.space is MemSpace.SHARED else ""
            offset = int(inst.imm or 0)
            sign = "+" if offset >= 0 else "-"
            addr = f"[r{inst.srcs[0]} {sign} {abs(offset)}]"
            if op is Opcode.LD:
                text = f"ld{suffix} r{inst.dst}, {addr}"
            else:
                text = f"st{suffix} {addr}, r{inst.srcs[1]}"
        elif op in (Opcode.NOP, Opcode.RECONV, Opcode.BAR, Opcode.EXIT):
            text = op.value
        else:
            text = f"{op.value} {_fmt_operands(inst)}"
        body.append((inst.pc, guard + text))

    lines = [
        f".kernel {kernel.name}",
        f".regs {kernel.num_regs}",
        f".preds {kernel.num_preds}",
        f".shared {kernel.shared_mem_bytes}",
    ]
    for pc, text in body:
        for label in sorted(pc_labels.get(pc, ())):
            lines.append(f"{label}:")
        lines.append(f"    {text}")
    # Labels that bind one past the final instruction.
    tail = len(kernel.instructions)
    for label in sorted(pc_labels.get(tail, ())):
        lines.append(f"{label}:")
    return "\n".join(lines) + "\n"


_OPCODES = {op.value: op for op in Opcode}
_SPECIALS = {sp.value: sp for sp in Special}
_CMPS = {cmp.value: cmp for cmp in CmpOp}


def _parse_operand(token: str) -> Tuple[str, float]:
    token = token.strip()
    if token.startswith("r") and token[1:].isdigit():
        return "reg", int(token[1:])
    if token.startswith("p") and token[1:].isdigit():
        return "pred", int(token[1:])
    if token.startswith("#"):
        return "imm", float(token[1:])
    raise KernelBuildError(f"bad operand {token!r}")


def _split_operands(text: str) -> List[str]:
    return [t.strip() for t in text.split(",") if t.strip()]


def parse_kernel(text: str) -> Kernel:
    """Parse assembly ``text`` into a validated :class:`Kernel`."""
    name = "kernel"
    num_regs = num_preds = None
    shared = 0
    raw: List[Tuple[Optional[Tuple[bool, int]], str]] = []  # (guard, text)
    labels: Dict[str, int] = {}

    for lineno, line in enumerate(text.splitlines(), 1):
        line = line.split(";", 1)[0].strip()
        if not line:
            continue
        if m := _DIRECTIVE_RE.match(line):
            key, value = m.groups()
            if key == "kernel":
                name = value
            elif key == "regs":
                num_regs = int(value)
            elif key == "preds":
                num_preds = int(value)
            else:
                shared = int(value)
            continue
        if m := _LABEL_RE.match(line):
            label = m.group(1)
            if label in labels:
                raise KernelBuildError(f"line {lineno}: duplicate label {label!r}")
            labels[label] = len(raw)
            continue
        guard = None
        if m := _GUARD_RE.match(line):
            neg, pred, line = m.groups()
            guard = (neg == "!", int(pred))
        raw.append((guard, line))

    instructions: List[Instruction] = []
    pending: List[Tuple[int, str, str]] = []  # (pc, target_label, reconv_label)

    for pc, (guard, line) in enumerate(raw):
        mnemonic, _, rest = line.partition(" ")
        rest = rest.strip()
        inst = _parse_instruction(mnemonic, rest, guard, pc, pending)
        instructions.append(inst)

    # Resolve branch labels.
    for pc, target_label, reconv_label in pending:
        if target_label not in labels:
            raise KernelBuildError(f"undefined label {target_label!r}")
        target_pc = labels[target_label]
        reconv_pc = -1
        if reconv_label is not None:
            if reconv_label not in labels:
                raise KernelBuildError(f"undefined label {reconv_label!r}")
            reconv_pc = labels[reconv_label]
        instructions[pc] = replace(
            instructions[pc],
            target=target_label,
            reconv=reconv_label,
            target_pc=target_pc,
            reconv_pc=reconv_pc,
        )

    if num_regs is None:
        num_regs = 1 + max(
            [i.dst for i in instructions if i.writes_register] +
            [s for i in instructions for s in i.srcs] + [0]
        )
    if num_preds is None:
        preds = [i.dst for i in instructions if i.writes_predicate]
        preds += [i.pred for i in instructions if i.pred is not None]
        num_preds = 1 + max(preds, default=0)

    kernel = Kernel(
        name=name,
        instructions=instructions,
        labels=labels,
        num_regs=num_regs,
        num_preds=num_preds,
        shared_mem_bytes=shared,
    )
    validate_kernel(kernel)
    return kernel


def _parse_instruction(mnemonic, rest, guard, pc, pending) -> Instruction:
    pred, pred_neg = (guard[1], guard[0]) if guard else (None, False)
    space = MemSpace.GLOBAL
    if mnemonic.endswith(".shared"):
        mnemonic, space = mnemonic[: -len(".shared")], MemSpace.SHARED

    if mnemonic == "bra":
        parts = _split_operands(rest)
        target = parts[0]
        reconv = None
        for extra in parts[1:]:
            key, _, value = extra.partition("=")
            if key.strip() == "reconv":
                reconv = value.strip()
        pending.append((pc, target, reconv))
        return replace(
            Instruction(Opcode.BRA, pred=pred, pred_neg=pred_neg), pc=pc
        )

    if mnemonic.startswith("setp."):
        cmp_name = mnemonic.split(".", 1)[1]
        if cmp_name not in _CMPS:
            raise KernelBuildError(f"unknown comparison {cmp_name!r}")
        operands = [_parse_operand(t) for t in _split_operands(rest)]
        (dkind, dst), *src_ops = operands
        if dkind != "pred":
            raise KernelBuildError("setp destination must be a predicate")
        srcs = tuple(int(v) for k, v in src_ops if k == "reg")
        imms = [v for k, v in src_ops if k == "imm"]
        return replace(
            Instruction(Opcode.SETP, dst=int(dst), srcs=srcs,
                        imm=imms[0] if imms else None, cmp=_CMPS[cmp_name]),
            pc=pc,
        )

    if mnemonic == "selp":
        operands = _split_operands(rest)
        (_, dst) = _parse_operand(operands[0])
        selector = _parse_operand(operands[-1])
        if selector[0] != "pred":
            raise KernelBuildError("selp selector must be a predicate")
        srcs, imm = [], None
        for token in operands[1:-1]:
            kind, value = _parse_operand(token)
            if kind == "reg":
                srcs.append(int(value))
            else:
                imm = value
        return replace(
            Instruction(Opcode.SELP, dst=int(dst), srcs=tuple(srcs), imm=imm,
                        pred=int(selector[1])),
            pc=pc,
        )

    if mnemonic == "sreg":
        dst_token, special_name = _split_operands(rest)
        (_, dst) = _parse_operand(dst_token)
        if special_name not in _SPECIALS:
            raise KernelBuildError(f"unknown special {special_name!r}")
        return replace(
            Instruction(Opcode.SREG, dst=int(dst), special=_SPECIALS[special_name]),
            pc=pc,
        )

    if mnemonic in ("ld", "st"):
        parts = _split_operands(rest)
        if mnemonic == "ld":
            (_, dst) = _parse_operand(parts[0])
            m = _MEM_RE.match(parts[1])
            if not m:
                raise KernelBuildError(f"bad address {parts[1]!r}")
            base, offset = m.groups()
            return replace(
                Instruction(
                    Opcode.LD, dst=int(dst), srcs=(int(base),),
                    imm=float((offset or "0").replace(" ", "")),
                    space=space, pred=pred, pred_neg=pred_neg,
                ),
                pc=pc,
            )
        m = _MEM_RE.match(parts[0])
        if not m:
            raise KernelBuildError(f"bad address {parts[0]!r}")
        base, offset = m.groups()
        (_, src) = _parse_operand(parts[1])
        return replace(
            Instruction(
                Opcode.ST, srcs=(int(base), int(src)),
                imm=float((offset or "0").replace(" ", "")),
                space=space, pred=pred, pred_neg=pred_neg,
            ),
            pc=pc,
        )

    if mnemonic in ("nop", "reconv", "bar", "exit"):
        return replace(
            Instruction(_OPCODES[mnemonic], pred=pred, pred_neg=pred_neg), pc=pc
        )

    if mnemonic in _OPCODES:
        operands = [_parse_operand(t) for t in _split_operands(rest)]
        (dkind, dst), *src_ops = operands
        if dkind != "reg":
            raise KernelBuildError(f"{mnemonic} destination must be a register")
        srcs = tuple(int(v) for k, v in src_ops if k == "reg")
        imms = [v for k, v in src_ops if k == "imm"]
        return replace(
            Instruction(
                _OPCODES[mnemonic], dst=int(dst), srcs=srcs,
                imm=imms[0] if imms else None, pred=pred, pred_neg=pred_neg,
            ),
            pc=pc,
        )

    raise KernelBuildError(f"unknown mnemonic {mnemonic!r}")
