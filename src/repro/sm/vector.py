"""The vectorized SM engine (``GPUConfig.backend='vector'``).

:class:`VectorSM` replaces both scalar issue cores (the event-driven wake
queues and the linear readiness scan of
:class:`~repro.sm.sm.StreamingMultiprocessor`) with one batched pass over a
columnar :class:`~repro.simt.warpstate.WarpStateStore`: the per-cycle
"which warps are ready" question — per-warp ``schedule_info()`` probes in
the scan core, heap pops in the event core — becomes a single
``wake <= now`` mask over preallocated numpy arrays.

Everything *downstream* of warp selection is inherited unchanged — stall
accounting, functional execution, LSU/cache walk, CPL updates, statistics,
and observability emits all run the exact scalar code — which is what makes
the backend bit-identical by construction everywhere except the selection
loop itself, and the selection loop replicates the event core's semantics
precisely:

* candidates are presented to each scheduler slot in ascending dynamic-id
  order (the event core's sorted ready pool == the scan core's dispatch
  order);
* MSHR occupancy is computed lazily at the first slot with candidates and
  recomputed after an issue only when that issue touched the memory
  pipeline, preserving the event core's exact call pattern;
* the ``critical_mshr_reserve`` gate applies to memory-bound candidates
  exactly as in both scalar cores;
* a barrier released *during* an issue re-exposes the released warps to the
  remaining scheduler slots of the same cycle (the event core's same-tick
  heap push), via a recompute of the due mask.

The parity grid in ``tests/test_vector_backend_parity.py`` pins all of this
bit-for-bit against the python backend.  See ``docs/backends.md``.
"""

from __future__ import annotations

import math

import numpy as np

from ..simt.warpstate import WarpStateStore
from .sm import StreamingMultiprocessor


class VectorSM(StreamingMultiprocessor):
    """One SM whose per-cycle scheduling state lives in numpy arrays."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        # The vector engine replaces both scalar issue cores; the base
        # class's add_block/_release_barrier must not maintain the event
        # core's wake heaps in parallel.
        self._event_core = False
        self.store = WarpStateStore()
        #: Set when an issue releases a block barrier, so the remaining
        #: scheduler slots of the same cycle recompute the due mask (the
        #: event core's same-tick re-queue of released warps).
        self._barrier_released = False

    # ------------------------------------------------------------------
    def add_block(self, block, now: float) -> None:
        super().add_block(block, now)
        add = self.store.add
        for warp in block.warps:
            add(warp)

    def _release_barrier(self, block, now: float) -> None:
        released = block.barrier_release()
        if self.obs is not None:
            for warp in released:
                warp.obs_barrier_release = now
        refresh = self.store.refresh
        for warp in released:
            refresh(warp)
        if released:
            self._barrier_released = True

    # ------------------------------------------------------------------
    @staticmethod
    def _bucket(due, num_slots: int):
        """Group due warp indices by scheduler slot (``id % num_slots``).

        A Python pass over the (typically small) due list: cheaper than
        ``num_slots`` numpy mask filters, and it yields plain-int indices
        for the ready-list build.
        """
        if num_slots == 1:
            return [due]
        buckets = [[] for _ in range(num_slots)]
        for i in due:
            buckets[i % num_slots].append(i)
        return buckets

    def tick(self, now: float) -> bool:
        """One issue opportunity per scheduler slot, selected from a
        batched due mask instead of per-warp probes or heap pops."""
        return self.tick_wake(now)[0]

    def tick_wake(self, now: float):
        """Fused :meth:`tick` + :meth:`next_wake_time`: returns
        ``(issued, next_wake)``.

        The tick already holds the wake array, live range, and — crucially
        — *why* each due warp did not issue, so the follow-up "when next"
        question is usually answered without re-scanning: a due warp left
        unserved only because its scheduler slot picked a different warp
        (or a barrier released warps after its slot was processed) can
        issue next cycle, so ``now`` is returned directly — a permitted
        under-estimate, exactly like the scalar cores returning a
        still-past-due wake minimum.  Only the all-due-warps-memory-gated
        case pays the MSHR-bound scan of :meth:`next_wake_time`.
        """
        count = self._next_dynamic_id
        store = self.store
        lo = store.advance_live()  # skip the finished-warp prefix
        if lo >= count:
            return False, math.inf
        wake = store.wake
        due = (wake[lo:count] <= now).nonzero()[0]
        if due.size == 0:
            return False, float(wake[lo:count].min())
        if lo:
            due += lo
        self._barrier_released = False
        issued = False
        leftover = False  # a due, ungated warp was passed over this cycle
        reserve = self._reserve
        crit_fn = self._is_critical
        mshr = self.mshr
        num_slots = self._num_slots
        warps = store.warps
        needs_mem = store.needs_mem
        buckets = self._bucket(due.tolist(), num_slots)
        free_mshrs = -1  # computed lazily: only slots with candidates pay
        for slot, scheduler in enumerate(self.schedulers):
            if self._barrier_released:
                # An earlier slot's issue completed a barrier: the released
                # warps are schedulable by the remaining slots this cycle.
                self._barrier_released = False
                due = (wake[lo:count] <= now).nonzero()[0]
                if lo:
                    due += lo
                buckets = self._bucket(due.tolist(), num_slots)
            cand = buckets[slot] if num_slots > 1 else buckets[0]
            if not cand:
                continue
            if free_mshrs < 0:
                free_mshrs = mshr.free_entries(now)
            if free_mshrs > 0 and not reserve:
                # Fast path: no MSHR back-pressure, every candidate is
                # eligible (the common case).
                ready = [warps[i] for i in cand]
            else:
                ready = []
                for i in cand:
                    if needs_mem[i]:  # next instruction needs an MSHR
                        if free_mshrs <= 0:
                            continue
                        if reserve and free_mshrs <= reserve and crit_fn is not None:
                            if not crit_fn(warps[i]):
                                continue
                    ready.append(warps[i])
                if not ready:
                    continue
            warp = scheduler.select(ready, now)
            if warp is None:
                leftover = True  # ready but declined: issuable next cycle
                continue
            if len(ready) > 1:
                leftover = True  # unpicked ready candidates stay due
            self._mshr_touched = False
            self._issue(warp, scheduler, now)
            # The issue moved the warp's wake time (or finished/parked it);
            # its slot has been served, so no due-mask recompute is needed
            # for the warp itself — barrier releases are flagged above.
            store.refresh(warp)
            if self._mshr_touched and free_mshrs >= 0:
                # MSHR occupancy only moves when a memory instruction
                # issued; skip the recompute otherwise (same value).
                free_mshrs = mshr.free_entries(now)
            issued = True
        if leftover or self._barrier_released:
            # Something schedulable remains (or was released after its
            # slot): re-tick next cycle.  ``now`` is never an over-estimate.
            return issued, now
        w = wake[lo:count]
        earliest = float(w.min())
        if earliest > now:
            return issued, earliest
        # Due warps remain and every one was memory-gated: bound them by
        # the next MSHR free time, as in next_wake_time.
        mshr_free = mshr.next_free_time(now)
        if mshr_free <= now:
            return issued, earliest
        due_mem = (w <= now) & needs_mem[lo:count]
        if not due_mem.any():
            return issued, earliest
        rest = w[~due_mem]
        best = float(rest.min()) if rest.size else math.inf
        return issued, (best if best < mshr_free else float(mshr_free))

    # ------------------------------------------------------------------
    def next_wake_time(self, now: float = 0.0) -> float:
        """Earliest cycle any resident warp could issue (inf if none).

        Vectorized with the event core's semantics: warps whose wake time
        has passed and whose next instruction needs an MSHR are bounded by
        the next MSHR free time; everything else contributes its own wake.
        Like the scalar implementations this may *under*-estimate (reserve
        gating, scheduler refusal) — the device loops re-tick one cycle
        later — but never over-estimates, the invariant the cycle/skip/
        backend parity grids enforce.
        """
        count = self._next_dynamic_id
        store = self.store
        lo = store.advance_live()  # finished warps never wake again
        if lo >= count:
            return math.inf
        wake = store.wake[lo:count]
        earliest = wake.min()
        if earliest > now:  # no due warps: pure wake minimum (heap peek)
            return float(earliest)
        mshr_free = self.mshr.next_free_time(now)
        if mshr_free <= now:  # an MSHR is free: nothing is memory-gated
            return float(earliest)
        due_mem = (wake <= now) & store.needs_mem[lo:count]
        if not due_mem.any():
            return float(earliest)
        # Every due memory-gated warp waits until the MSHR frees; the
        # remaining warps keep their own wake times.
        rest = wake[~due_mem]
        best = float(rest.min()) if rest.size else math.inf
        return best if best < mshr_free else float(mshr_free)
