"""The streaming multiprocessor pipeline.

Each SM owns resident thread blocks, their warps, per-slot warp schedulers,
an L1 data cache with MSHRs, and a load-store unit.  Execution is
functional-at-issue: when a scheduler slot selects a ready warp, the
instruction's lane results are computed immediately and its latency is
recorded in the warp's scoreboard; readiness of later instructions follows
from those recorded completion times.

Two issue-loop implementations are provided (``GPUConfig.issue_core``):

``"event"`` (default)
    The event-driven ready-warp core.  Each scheduler slot keeps a min-heap
    of ``(wake_cycle, warp)`` entries — updated incrementally the moment a
    completion time becomes known (scoreboard writes at issue, barrier
    releases, block dispatch) — plus a sorted *ready pool* of warps whose
    wake time has passed.  ``tick`` only pops newly-awake warps and gates
    the small pool on MSHR availability; ``next_wake_time`` is a heap peek
    plus a pool walk.  See ``docs/timing_model.md`` ("Event-driven issue
    loop") for the invariants.

``"scan"``
    The original O(warps)-per-cycle linear readiness scan, retained verbatim
    as the golden reference.  ``tests/test_event_core_parity.py`` asserts
    the two cores produce bit-identical cycle counts and issue statistics.
"""

from __future__ import annotations

import heapq
import math
from bisect import bisect_left, insort
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..config import GPUConfig
from ..errors import SimulationError
from ..isa.instructions import FuncUnit, Opcode
from ..memory.cache import Cache
from ..memory.hierarchy import MemoryHierarchy
from ..memory.mshr import MSHRFile
from ..obs.events import Ev, Stall
from ..scheduling.base import WarpScheduler
from ..simt.block import ThreadBlock
from ..simt.executor import FunctionalExecutor
from ..simt.mask import popcount
from ..simt.warp import Warp, WarpStatus
from .lsu import LoadStoreUnit

# Pre-bound ints for the per-issue probe sites (IntEnum attribute access
# costs a dict lookup; the issue path runs once per instruction).
_EV_WARP_START = int(Ev.WARP_START)
_EV_WARP_ISSUE = int(Ev.WARP_ISSUE)
_EV_WARP_STALL = int(Ev.WARP_STALL)
_EV_WARP_FINISH = int(Ev.WARP_FINISH)
_ST_SCOREBOARD = int(Stall.SCOREBOARD_DEP)
_ST_NO_SLOT = int(Stall.NO_SLOT)
_ST_MEM_PENDING = int(Stall.MEM_PENDING)
_ST_BARRIER = int(Stall.BARRIER)


@dataclass
class SMStats:
    """Issue/stall counters for one SM."""

    warp_instructions: int = 0
    thread_instructions: int = 0
    loads: int = 0
    stores: int = 0
    branches: int = 0
    divergent_branches: int = 0
    barriers: int = 0
    blocks_committed: int = 0
    issue_events: int = 0


class StreamingMultiprocessor:
    """One SM: warps, schedulers, L1D, LSU."""

    def __init__(
        self,
        sm_id: int,
        config: GPUConfig,
        hierarchy: MemoryHierarchy,
        executor: FunctionalExecutor,
        scheduler_factory: Callable[[], WarpScheduler],
        l1_policy_factory: Callable[[], object],
        cpl=None,
    ) -> None:
        self.sm_id = sm_id
        self.config = config
        self.l1d = Cache(config.l1d, l1_policy_factory())
        self.mshr = MSHRFile(config.l1d.mshr_entries)
        self.lsu = LoadStoreUnit(sm_id, self.l1d, self.mshr, hierarchy)
        self.executor = executor
        self.schedulers = [scheduler_factory() for _ in range(config.num_schedulers_per_sm)]
        self.cpl = cpl
        #: Warp-criticality query used by the MSHR-reserve gate and the LSU
        #: issue path.  Bound to the CPL predictor's own method here — the
        #: historical hand-wired CAWA coupling, which ``feedback='direct'``
        #: keeps as the golden reference; in ``feedback='channel'`` mode
        #: :func:`repro.feedback.wire_gpu_feedback` publishes the *same*
        #: bound method on the SM's FeedbackChannel and re-binds this
        #: attribute from it, so the two modes are bit-identical by
        #: construction (``tests/test_feedback_parity.py``).
        self._is_critical: Optional[Callable[[Warp], bool]] = (
            cpl.is_critical if cpl is not None else None
        )
        #: Per-SM FeedbackChannel (``repro.feedback``) or ``None``; set by
        #: ``wire_gpu_feedback`` when ``feedback='channel'``.
        self.feedback = None
        # Hot-loop locals: the per-cycle tick and per-instruction issue
        # paths read these every iteration, and going through the frozen
        # ``config`` dataclass costs two attribute lookups each time.
        # Bound once here (the config is immutable, so binding at
        # construction is equivalent to binding at kernel launch).
        self._reserve = config.critical_mshr_reserve
        self._alu_latency = config.alu_latency
        self._sfu_latency = config.sfu_latency
        self._num_slots = config.num_schedulers_per_sm
        self.warps: List[Warp] = []
        self.blocks: List[ThreadBlock] = []
        self.completed_blocks: List[ThreadBlock] = []
        self.stats = SMStats()
        self._next_dynamic_id = 0
        self._regs_in_use = 0
        #: Observers notified of issue events (used by Fig 12's priority trace).
        self.issue_observers: List = []
        #: Event bus (``repro.obs``), or ``None`` when events are disabled.
        #: The entire disabled-path cost is one ``is not None`` test per
        #: probe site — see ``docs/observability.md``.
        self.obs = None
        #: Warp constructor; the trace-replay frontend swaps in a factory
        #: building :class:`~repro.trace.replay.TraceWarp` objects that
        #: follow recorded streams (set per launch by the GPU).
        self.warp_factory: Callable[..., Warp] = Warp
        #: Optional trace recorder hook; when set, every issued instruction
        #: is reported (with its pre-issue active mask and functional
        #: result) so :class:`~repro.trace.recorder.TraceRecorder` can
        #: capture the warp's dynamic stream.  Purely observational.
        self.trace_sink = None
        #: Incrementally maintained count of resident, unfinished warps;
        #: replaces the O(warps) ``any(not w.finished ...)`` scans that
        #: ``busy`` / ``can_accept`` used to perform every cycle.
        self._unfinished = 0
        #: Optional callback fired on block commit (the GPU run loop uses it
        #: to re-dispatch pending blocks without summing per-SM counters
        #: every cycle).
        self.on_commit: Optional[Callable[["StreamingMultiprocessor"], None]] = None
        #: Set by ``_issue`` when the issued instruction touched the memory
        #: pipeline (so the event tick only recomputes MSHR occupancy when
        #: it can actually have changed).
        self._mshr_touched = False
        # ---- event-driven ready-warp core state -----------------------
        # sanitize: waive FPR001 -- dispatch between bit-identical issue cores (event/scan parity grid)
        self._event_core = config.issue_core == "event"
        #: Per-slot min-heaps of ``(wake_cycle, dynamic_id, warp)``.  A warp
        #: is queued here exactly when ``warp._queued`` is True; entries are
        #: unique per warp (no stale duplicates by construction).
        self._wake_heaps: List[list] = [[] for _ in self.schedulers]
        #: Per-slot sorted lists of ``(dynamic_id, warp)`` whose wake time
        #: has passed; ordering matches the scan core's ``self.warps``
        #: iteration (dispatch order), preserving issue-order parity.
        self._ready_pools: List[list] = [[] for _ in self.schedulers]

    # ------------------------------------------------------------------
    # Occupancy / dispatch
    # ------------------------------------------------------------------
    def can_accept(self, kernel, block_dim: int) -> bool:
        """Occupancy check: blocks, warps, and register file limits."""
        warps_needed = (block_dim + self.config.warp_size - 1) // self.config.warp_size
        if len(self.blocks) >= self.config.max_blocks_per_sm:
            return False
        if self._unfinished + warps_needed > self.config.max_warps_per_sm:
            return False
        regs_needed = kernel.num_regs * block_dim
        return self._regs_in_use + regs_needed <= self.config.registers_per_sm

    def add_block(self, block: ThreadBlock, now: float) -> None:
        """Make ``block``'s warps resident and schedulable."""
        block.dispatch_cycle = now
        self.blocks.append(block)
        self._regs_in_use += block.kernel.num_regs * block.block_dim
        for w in range(block.num_warps):
            warp = self.warp_factory(
                warp_id_in_block=w,
                block=block,
                warp_size=self.config.warp_size,
                num_regs=block.kernel.num_regs,
                num_preds=block.kernel.num_preds,
                dynamic_id=self._next_dynamic_id,
            )
            self._next_dynamic_id += 1
            warp.start_cycle = now
            warp.last_issue_cycle = now - 1
            block.warps.append(warp)
            self.warps.append(warp)
            self._unfinished += 1
            if self.obs is not None:
                self.obs.emit(
                    (_EV_WARP_START, now, self.sm_id, block.block_id, w)
                )
            self.schedulers[warp.dynamic_id % self._num_slots].notify_warp_added(warp)
            if self._event_core:
                self._enqueue(warp)

    # ------------------------------------------------------------------
    # Event-driven ready-warp core (wake queues)
    # ------------------------------------------------------------------
    def _enqueue(self, warp: Warp) -> None:
        """Queue ``warp`` for its next wake-up, if it is schedulable.

        Idempotent: a warp already sitting in its slot's wake heap is not
        queued twice (``warp._queued`` guards the invariant that each warp
        lives in *at most one* of {wake heap, ready pool}).  Finished or
        barrier-blocked warps are not queued — barrier release and block
        dispatch re-queue them when they become schedulable again.
        """
        if warp._queued or warp.status is not WarpStatus.RUNNING:
            return
        wake, _ = warp.schedule_info()
        warp._queued = True
        slot = warp.dynamic_id % self._num_slots
        heapq.heappush(self._wake_heaps[slot], (wake, warp.dynamic_id, warp))

    def _release_barrier(self, block: ThreadBlock, now: float) -> None:
        """Release ``block``'s barrier and re-queue the released warps."""
        released = block.barrier_release()
        if self.obs is not None:
            # Stamp the release cycle so the issue-time stall decomposition
            # can attribute the parked interval to the BARRIER bucket.
            for warp in released:
                warp.obs_barrier_release = now
        if self._event_core:
            for warp in released:
                self._enqueue(warp)

    @staticmethod
    def _pool_remove(pool: list, dynamic_id: int) -> None:
        idx = bisect_left(pool, (dynamic_id,))
        if idx < len(pool) and pool[idx][0] == dynamic_id:
            del pool[idx]

    # ------------------------------------------------------------------
    # Cycle execution
    # ------------------------------------------------------------------
    def tick(self, now: float) -> bool:
        """Give each scheduler slot one issue opportunity; True if issued."""
        if self._event_core:
            return self._tick_event(now)
        return self._tick_scan(now)

    def _tick_event(self, now: float) -> bool:
        """Event-driven issue: pop newly-awake warps, gate the ready pool.

        Per-tick cost is O(newly awake + pool size) instead of O(resident
        warps).  The ready pool holds warps whose operands are ready but
        which have not issued yet (typically because they are gated on MSHR
        availability or lost arbitration); it is kept sorted by dynamic id
        so the scheduler sees candidates in exactly the order the scan core
        would have produced.
        """
        issued = False
        reserve = self._reserve
        crit_fn = self._is_critical
        mshr = self.mshr
        free_mshrs = -1  # computed lazily: only slots with candidates pay
        for slot, scheduler in enumerate(self.schedulers):
            heap = self._wake_heaps[slot]
            pool = self._ready_pools[slot]
            while heap and heap[0][0] <= now:
                _, dyn, warp = heapq.heappop(heap)
                warp._queued = False
                if warp.status is not WarpStatus.RUNNING:
                    continue  # finished/barrier entry invalidated lazily
                t, needs_mem = warp.schedule_info()
                if t > now:
                    # Stale wake time (defensive; scoreboards only move at
                    # the warp's own issue): re-queue at the fresh time.
                    warp._queued = True
                    heapq.heappush(heap, (t, dyn, warp))
                    continue
                # A warp's readiness tuple is frozen until it issues (and
                # issuing removes it from the pool), so ``t``/``needs_mem``
                # can be cached in the pool entry.
                insort(pool, (dyn, warp, t, needs_mem))
            if not pool:
                continue
            if free_mshrs < 0:
                free_mshrs = mshr.free_entries(now)
            if free_mshrs > 0 and not reserve:
                # Fast path: no MSHR back-pressure, every pooled warp is
                # eligible (the common case).
                ready = [entry[1] for entry in pool]
            else:
                ready = []
                for _, w, _, needs_mem in pool:
                    if needs_mem:  # next instruction needs an MSHR
                        if free_mshrs <= 0:
                            continue
                        if reserve and free_mshrs <= reserve and crit_fn is not None:
                            if not crit_fn(w):
                                continue
                    ready.append(w)
                if not ready:
                    continue
            warp = scheduler.select(ready, now)
            if warp is None:
                continue
            self._pool_remove(pool, warp.dynamic_id)
            self._mshr_touched = False
            self._issue(warp, scheduler, now)
            # Re-queue at the post-issue wake time (no-op when the warp
            # finished, parked at a barrier, or was already re-queued by a
            # barrier release triggered by this very issue).
            self._enqueue(warp)
            if self._mshr_touched and free_mshrs >= 0:
                # MSHR occupancy only moves when a memory instruction
                # issued; skip the recompute otherwise (same value).
                free_mshrs = mshr.free_entries(now)
            issued = True
        return issued

    def _tick_scan(self, now: float) -> bool:
        """Reference implementation: linear readiness scan over all warps."""
        issued = False
        num_slots = self._num_slots
        reserve = self._reserve
        crit_fn = self._is_critical
        free_mshrs = self.mshr.free_entries(now)
        for slot, scheduler in enumerate(self.schedulers):
            ready = []
            for w in self.warps:
                if w.dynamic_id % num_slots != slot or w.status is not WarpStatus.RUNNING:
                    continue
                t, needs_mem = w.schedule_info()
                if t > now:
                    continue
                if needs_mem:
                    # Structural hazard: a new global access needs a free
                    # MSHR entry.  With a critical reserve configured,
                    # non-critical warps must additionally leave `reserve`
                    # entries untouched for critical warps.
                    if free_mshrs <= 0:
                        continue
                    if reserve and free_mshrs <= reserve and crit_fn is not None:
                        if not crit_fn(w):
                            continue
                ready.append(w)
            if not ready:
                continue
            warp = scheduler.select(ready, now)
            if warp is None:
                continue
            self._issue(warp, scheduler, now)
            free_mshrs = self.mshr.free_entries(now)
            issued = True
        return issued

    def _issue(self, warp: Warp, scheduler: WarpScheduler, now: float) -> None:
        inst = warp.next_instruction()
        pc = warp.pc
        active = warp.active_mask
        lanes = popcount(active)

        # ---- stall accounting (Fig 2c / Fig 4 decomposition) ----------
        # Written with conditionals instead of min/max builtins: this runs
        # once per issued instruction and the call overhead shows up.
        base = warp.last_issue_cycle + 1 if warp.issued_instructions else warp.start_cycle
        ready, limited_by_load = warp.operands_ready_detail()
        gap = now - base
        if gap < 0.0:
            gap = 0.0
        data_stall = (now if now < ready else ready) - base
        if data_stall < 0.0:
            data_stall = 0.0
        sched_stall = now - (ready if ready > base else base)
        if sched_stall < 0.0:
            sched_stall = 0.0
        warp.total_stall_cycles += gap
        warp.sched_stall_cycles += sched_stall
        if limited_by_load:
            warp.mem_stall_cycles += data_stall

        obs = self.obs
        if obs is not None:
            # Decompose the gap [base, now) into reason-attributed slices:
            # barrier wait (up to the recorded release), operand wait
            # (mem-pending vs scoreboard), and lost-slot wait.  The slices
            # are disjoint and sum to ``gap``, so StallAccounting's
            # accounting identity (issue + stalls == lifetime) holds.
            emit = obs.emit
            bid = warp.block.block_id
            wid = warp.warp_id_in_block
            cursor = base
            release = warp.obs_barrier_release
            if release >= 0.0:
                warp.obs_barrier_release = -1.0
                bar_end = release if release < now else now
                if bar_end > cursor:
                    emit((_EV_WARP_STALL, now, self.sm_id, bid, wid,
                          _ST_BARRIER, bar_end - cursor, cursor))
                    cursor = bar_end
            data_end = ready if ready < now else now
            if data_end > cursor:
                reason = _ST_MEM_PENDING if limited_by_load else _ST_SCOREBOARD
                emit((_EV_WARP_STALL, now, self.sm_id, bid, wid,
                      reason, data_end - cursor, cursor))
                cursor = data_end
            if now > cursor:
                emit((_EV_WARP_STALL, now, self.sm_id, bid, wid,
                      _ST_NO_SLOT, now - cursor, cursor))
            emit((_EV_WARP_ISSUE, now, self.sm_id, bid, wid, pc,
                  inst.op.value))

        if self.cpl is not None:
            # Only data stalls (memory latency, dependency hazards) feed the
            # criticality counter.  Counting scheduler-induced wait (ready
            # but not selected) creates a fairness feedback loop under a
            # greedy scheduler: starved-but-ready warps would be promoted,
            # dissolving the working-set concentration gCAWS inherits from
            # GTO.  A genuinely slow warp is slow because its *data* is
            # late, and that is exactly what data_stall measures.
            self.cpl.on_issue(warp, data_stall)

        # ---- functional execution -------------------------------------
        # (Trace replay swaps in a TraceExecutor that answers from the
        # warp's recorded stream instead of computing lane values.)
        result = self.executor.execute(inst, warp)
        if self.trace_sink is not None:
            self.trace_sink.record(warp, inst, active, result)

        # ---- timing + control state -----------------------------------
        op = inst.op
        if op is Opcode.BRA:
            self._resolve_branch(warp, inst, result.taken_mask, active, now)
            self.stats.branches += 1
        elif op in (Opcode.LD, Opcode.ST):
            self._mshr_touched = True
            crit_fn = self._is_critical
            is_critical = crit_fn(warp) if crit_fn is not None else False
            completion, _ = self.lsu.issue(
                warp, inst, result.mem_addrs, result.mem_mask, now, is_critical,
                lines=result.mem_lines,
            )
            if inst.is_load:
                warp.rf.set_reg_ready(inst.dst, completion, from_load=True)
                self.stats.loads += 1
            else:
                self.stats.stores += 1
            warp.stack.advance(pc + 1)
        elif op is Opcode.BAR:
            self.stats.barriers += 1
            warp.stack.advance(pc + 1)
            if warp.block.barrier_arrive(warp):
                self._release_barrier(warp.block, now)
        elif op is Opcode.EXIT:
            warp.stack.kill_lanes(active)
            if warp.stack.empty:
                self._finish_warp(warp, scheduler, now)
        else:
            if inst.writes_predicate:
                warp.rf.set_pred_ready(inst.dst, now + self._alu_latency)
            elif inst.writes_register:
                latency = (
                    self._sfu_latency
                    if inst.unit is FuncUnit.SFU
                    else self._alu_latency
                )
                warp.rf.set_reg_ready(inst.dst, now + latency, from_load=False)
            warp.stack.advance(pc + 1)

        # ---- bookkeeping ----------------------------------------------
        warp.issued_instructions += 1
        warp.thread_instructions += lanes
        warp.last_issue_cycle = now
        self.stats.warp_instructions += 1
        self.stats.thread_instructions += lanes
        self.stats.issue_events += 1
        scheduler.notify_issue(warp, now)
        for obs in self.issue_observers:
            obs.on_issue(self, warp, inst, now)

    def _resolve_branch(self, warp: Warp, inst, taken_mask: int, active: int,
                        now: float) -> None:
        pc = inst.pc
        if inst.pred is None:
            warp.stack.advance(inst.target_pc)
            return
        not_taken = active & ~taken_mask
        if taken_mask == 0:
            warp.stack.advance(pc + 1)
            diverged, all_taken = False, False
        elif not_taken == 0:
            warp.stack.advance(inst.target_pc)
            diverged, all_taken = False, True
        elif inst.target_pc == pc + 1:
            warp.stack.advance(pc + 1)
            diverged, all_taken = False, False
        else:
            warp.stack.diverge(inst.target_pc, pc + 1, taken_mask, inst.reconv_pc)
            warp.divergent_branches += 1
            self.stats.divergent_branches += 1
            diverged, all_taken = True, False
        if self.cpl is not None:
            self.cpl.on_branch(warp, inst, diverged=diverged,
                               all_taken=all_taken, now=now)

    def _finish_warp(self, warp: Warp, scheduler: WarpScheduler, now: float) -> None:
        warp.mark_finished(now)
        self._unfinished -= 1
        if self.obs is not None:
            self.obs.emit((_EV_WARP_FINISH, now, self.sm_id,
                           warp.block.block_id, warp.warp_id_in_block))
        scheduler.notify_warp_finished(warp)
        block = warp.block
        if block.barrier_pending_release:
            self._release_barrier(block, now)
        if block.done:
            self._commit_block(block)

    def _commit_block(self, block: ThreadBlock) -> None:
        self.blocks.remove(block)
        self.completed_blocks.append(block)
        self.stats.blocks_committed += 1
        self._regs_in_use -= block.kernel.num_regs * block.block_dim
        self.warps = [w for w in self.warps if w.block is not block]
        if self.cpl is not None:
            self.cpl.forget_block(block.block_id)
        if self.on_commit is not None:
            self.on_commit(self)

    # ------------------------------------------------------------------
    def next_wake_time(self, now: float = 0.0) -> float:
        """Earliest cycle any resident warp could issue (inf if none).

        Event core: a heap peek per slot plus a walk of the (small) ready
        pools — pool warps are operand-ready but MSHR-gated, so their wake
        is bounded by the next MSHR free time, exactly as the scan computes.
        Warps parked at a barrier sit in neither structure and contribute
        nothing, matching the scan's ``inf`` for non-RUNNING warps.
        """
        if not self._event_core:
            return self._next_wake_scan(now)
        wake = math.inf
        mshr_free_at: Optional[float] = None
        for heap, pool in zip(self._wake_heaps, self._ready_pools):
            if heap and heap[0][0] < wake:
                wake = heap[0][0]
            for _, _, t, needs_mem in pool:
                if needs_mem:
                    if mshr_free_at is None:
                        mshr_free_at = self.mshr.next_free_time(now)
                    if mshr_free_at > t:
                        t = mshr_free_at
                if t < wake:
                    wake = t
        return wake

    def next_event_time(self, now: float = 0.0) -> float:
        """Uniform next-event hook (see ``docs/timing_model.md``).

        For an SM the next event is the earliest cycle a resident warp
        could issue: scoreboard completions, MSHR frees for pooled
        memory-gated warps, and (implicitly) barrier releases and block
        commits, which only ever happen during one of this SM's own
        issues.  May *under*-estimate (MSHR-reserve gating, scheduler
        refusal) — the skip clock re-ticks one cycle later — but never
        over-estimates, which is the invariant the cycle/skip parity grid
        enforces.
        """
        return self.next_wake_time(now)

    def _next_wake_scan(self, now: float) -> float:
        """Reference implementation: scan every resident warp."""
        wake = math.inf
        mshr_free_at: Optional[float] = None
        for warp in self.warps:
            if warp.finished:
                continue
            t, needs_mem = warp.schedule_info()
            if needs_mem:
                if mshr_free_at is None:
                    mshr_free_at = self.mshr.next_free_time(now)
                t = max(t, mshr_free_at)
            if t < wake:
                wake = t
        return wake

    @property
    def busy(self) -> bool:
        return self._unfinished > 0

    def detect_deadlock(self, now: float) -> None:
        """Raise when resident warps exist but none can ever wake."""
        if self.busy and math.isinf(self.next_wake_time(now)):
            stuck = [w for w in self.warps if not w.finished]
            raise SimulationError(
                f"SM{self.sm_id}: {len(stuck)} warps permanently blocked "
                f"(statuses: {[w.status.value for w in stuck]})"
            )
