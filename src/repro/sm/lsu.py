"""Load-store unit: memory coalescing and hierarchy timing per warp access.

The coalescer merges the active lanes' byte addresses into distinct cache
lines (Fermi coalesces within 128B segments).  Each distinct line costs one
LSU slot cycle and one L1D access; poorly-coalesced (irregular) access
patterns therefore serialize — one of the paper's sources of warp
criticality.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np

from ..isa.instructions import Instruction, MemSpace
from ..memory.cache import Cache
from ..memory.hierarchy import MemoryHierarchy
from ..memory.mshr import MSHRFile
from ..memory.request import MemRequest, make_signature
from ..obs.events import Ev
from ..simt.mask import bools_from_mask
from ..simt.warp import Warp

_EV_LSU_ISSUE = int(Ev.LSU_ISSUE)


def coalesce_lines(addrs: np.ndarray, mask: int, line_size: int) -> List[int]:
    """Distinct line addresses touched by the active lanes, ascending.

    Module-level so the trace recorder (:mod:`repro.trace.recorder`) bakes
    *exactly* the LSU's coalescing rule into recorded traces.
    """
    active = bools_from_mask(mask, addrs.shape[0])
    lines = np.unique(addrs[active].astype(np.int64) // line_size * line_size)
    return lines.tolist()


class LoadStoreUnit:
    """One SM's memory access port."""

    def __init__(
        self,
        sm_id: int,
        l1d: Cache,
        mshr: MSHRFile,
        hierarchy: MemoryHierarchy,
        shared_latency: int = 8,
    ) -> None:
        self.sm_id = sm_id
        self.l1d = l1d
        self.mshr = mshr
        self.hierarchy = hierarchy
        self.shared_latency = shared_latency
        self._next_free = 0.0
        #: Event bus (``repro.obs``) or ``None``; set by ``wire_sms``.
        self.obs = None
        # Statistics.
        self.global_accesses = 0
        self.line_accesses = 0
        self.l1_misses = 0

    def next_event_time(self, now: float) -> float:
        """When the LSU port drains (``inf`` when already free).

        The port becoming free can unblock a warp whose next instruction is
        a memory op, so this *is* a real wake source — the owning SM folds it
        into its own ``next_event_time`` (see :meth:`repro.sm.sm.SM.next_wake_time`).
        """
        return self._next_free if self._next_free > now else math.inf

    def coalesce(self, addrs: np.ndarray, mask: int) -> List[int]:
        """Distinct line addresses touched by the active lanes, ascending."""
        return coalesce_lines(addrs, mask, self.l1d.config.line_size)

    def issue(
        self,
        warp: Warp,
        inst: Instruction,
        addrs: Optional[np.ndarray],
        mask: int,
        now: float,
        is_critical: bool,
        lines: Optional[List[int]] = None,
    ) -> Tuple[float, int]:
        """Perform the timing walk for one warp memory instruction.

        Returns ``(completion_cycle, num_line_accesses)``.  Shared-memory
        accesses bypass the cache hierarchy with a short fixed latency.
        ``lines`` (trace replay) supplies pre-coalesced line addresses and
        skips the coalescer; execution-driven callers leave it ``None``.
        """
        if mask == 0:
            return now + 1, 0
        if inst.space is MemSpace.SHARED:
            return now + self.shared_latency, 0

        if lines is None:
            lines = self.coalesce(addrs, mask)
        self.global_accesses += 1
        completion = now + 1
        start = max(now, self._next_free)
        l1d = self.l1d
        if (
            l1d.mirror is not None
            and self.obs is None
            and l1d.obs is None
            and not l1d.observers
            and getattr(l1d.policy, "obs", None) is None
        ):
            # Vector-backend all-hit fast path: one side-effect-free batch
            # tag probe; commits the exact sequential bookkeeping only when
            # every line hits (see Cache.batch_hits for the shared-request
            # contract — the guards above keep per-line observer fields out
            # of play).  Timing is the sequential walk's closed form: line i
            # issues at start + i and completes l1_latency later.
            req = MemRequest(
                line_addr=lines[0],
                pc=inst.pc,
                warp_key=(self.sm_id, warp.block.block_id, warp.warp_id_in_block),
                is_load=inst.is_load,
                is_critical=is_critical,
                cycle=start,
                signature=make_signature(inst.pc, lines[0]),
            )
            if l1d.batch_hits(lines, req):
                k = len(lines)
                self.line_accesses += k
                self._next_free = start + k
                hit_done = start + (k - 1) + l1d.config.hit_latency
                return (hit_done if hit_done > completion else completion), k
        for i, line_addr in enumerate(lines):
            issue_time = start + i  # one coalesced access per LSU cycle
            req = MemRequest(
                line_addr=line_addr,
                pc=inst.pc,
                warp_key=(self.sm_id, warp.block.block_id, warp.warp_id_in_block),
                is_load=inst.is_load,
                is_critical=is_critical,
                cycle=issue_time,
                signature=make_signature(inst.pc, line_addr),
            )
            outcome = self.hierarchy.access(self.l1d, self.mshr, req, issue_time)
            self.line_accesses += 1
            if not outcome.l1_hit:
                self.l1_misses += 1
            if outcome.completion > completion:
                completion = outcome.completion
        self._next_free = start + len(lines)
        if self.obs is not None:
            self.obs.emit((
                _EV_LSU_ISSUE, now, self.sm_id, warp.block.block_id,
                warp.warp_id_in_block, inst.pc, len(lines), completion,
            ))
        return completion, len(lines)
