"""Grid-to-SM thread-block dispatcher.

Blocks are dispatched in id order to the least-loaded SM that can accept
them (occupancy limits in :meth:`StreamingMultiprocessor.can_accept`); as a
block commits, the freed resources let the next pending block in.  This is
the GPGPU-sim behaviour the paper's thread-block life-cycle discussion
assumes: a block's resources are held until its slowest warp exits.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List

from ..simt.block import ThreadBlock


class BlockDispatcher:
    """Feeds a kernel launch's blocks onto SMs."""

    def __init__(self, kernel, grid_dim: int, block_dim: int, warp_size: int) -> None:
        self.kernel = kernel
        self.grid_dim = grid_dim
        self.block_dim = block_dim
        self._pending: Deque[ThreadBlock] = deque(
            ThreadBlock(block_id, block_dim, grid_dim, kernel, warp_size)
            for block_id in range(grid_dim)
        )
        self.dispatched = 0

    @property
    def pending(self) -> int:
        return len(self._pending)

    @property
    def exhausted(self) -> bool:
        return not self._pending

    def try_dispatch(self, sms: List, now: float) -> int:
        """Dispatch as many pending blocks as occupancy allows; returns count."""
        count = 0
        progress = True
        while self._pending and progress:
            progress = False
            # Least-loaded-first keeps SMs balanced like GPGPU-sim's
            # round-robin CTA issuance.
            for sm in sorted(sms, key=lambda s: len(s.blocks)):
                if not self._pending:
                    break
                block = self._pending[0]
                if sm.can_accept(self.kernel, self.block_dim):
                    sm.add_block(self._pending.popleft(), now)
                    self.dispatched += 1
                    count += 1
                    progress = True
        return count
