"""Streaming multiprocessor pipeline: scheduling slots, LSU, dispatch."""

from .dispatcher import BlockDispatcher
from .lsu import LoadStoreUnit
from .sm import SMStats, StreamingMultiprocessor
from .vector import VectorSM

__all__ = [
    "BlockDispatcher",
    "LoadStoreUnit",
    "SMStats",
    "StreamingMultiprocessor",
    "VectorSM",
]
