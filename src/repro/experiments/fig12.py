"""Figure 12 — the critical warp's scheduling priority over time (bfs).

Under the criticality-oblivious RR baseline the eventual critical warp sits
at an arbitrary, roughly uniform priority; under gCAWS its CPL rank climbs
so the scheduler serves it more often.  We trace the CPL criticality rank
of each block's eventually-critical warp at a fixed issue-sampling period
for both schemes.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..stats.disparity import critical_warp_of
from .runner import run_scheme


class PriorityTraceObserver:
    """SM issue observer recording per-warp CPL ranks over time."""

    def __init__(self, sample_period: int = 32) -> None:
        self.sample_period = sample_period
        self._issues: Dict[Tuple[int, int], int] = {}
        #: (sm, block) -> list of (cycle, {warp_id: rank})
        self.samples: Dict[Tuple[int, int], List] = {}

    def on_issue(self, sm, warp, inst, now) -> None:
        if sm.cpl is None:
            return
        key = (sm.sm_id, warp.block.block_id)
        count = self._issues.get(key, 0) + 1
        self._issues[key] = count
        if count % self.sample_period:
            return
        snapshot = {
            peer.warp_id_in_block: sm.cpl.rank_in_block(peer)
            for peer in warp.block.warps
            if not peer.finished
        }
        self.samples.setdefault(key, []).append((now, snapshot))


def run(scale: float = 1.0, config=None, workload: str = "bfs") -> Dict[str, List]:
    data = {}
    for scheme in ("rr", "gcaws"):
        observer = PriorityTraceObserver()
        result = run_scheme(
            workload, scheme, scale=scale, config=config, use_cache=False,
            observers=[observer],
        )
        # Pick the first multi-warp block with samples and trace its
        # eventually-critical warp.
        trace: List[Tuple[float, int]] = []
        for block in result.blocks:
            if block.num_warps < 2:
                continue
            critical = critical_warp_of(block).warp_id_in_block
            for key, samples in observer.samples.items():
                if key[1] != block.block_id:
                    continue
                trace = [
                    (cycle, snapshot[critical])
                    for cycle, snapshot in samples
                    if critical in snapshot
                ]
                break
            if trace:
                break
        data[scheme] = trace
    return data


def render(data: Dict[str, List]) -> str:
    lines = ["Figure 12: critical warp's CPL priority rank over time (bfs)"]
    for scheme, trace in data.items():
        if not trace:
            lines.append(f"{scheme}: no samples")
            continue
        ranks = [rank for _, rank in trace]
        mean = sum(ranks) / len(ranks)
        top_share = sum(1 for r in ranks if r >= max(ranks) * 0.75) / len(ranks)
        lines.append(
            f"{scheme:<6} samples={len(ranks):<4} mean rank={mean:5.2f} "
            f"time in top-quartile priority={top_share:.0%}"
        )
        spark = "".join(str(min(9, r)) for _, r in trace[:72])
        lines.append(f"       rank trace: {spark}")
    return "\n".join(lines)


def main() -> None:  # pragma: no cover
    print(render(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
