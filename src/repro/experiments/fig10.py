"""Figure 10 — L1D cache MPKI under the 2-level, GTO, and CAWA schemes.

CAWA reduces miss rates the most overall (kmeans by 26.2% in the paper);
for a few applications (heartwall, strcltr_small) MPKI *increases* under
CAWA while IPC still improves, because CACP deliberately trades
better-locality blocks for latency-critical ones.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..stats.report import format_table
from ..workloads import NON_SENS_WORKLOADS, SENS_WORKLOADS
from .runner import run_scheme

SCHEMES = ["rr", "two_level", "gto", "cawa"]


def run(
    scale: float = 1.0,
    config=None,
    workloads: Optional[List[str]] = None,
) -> Dict[Tuple[str, str], float]:
    names = workloads or (SENS_WORKLOADS + NON_SENS_WORKLOADS)
    data = {}
    for name in names:
        for scheme in SCHEMES:
            result = run_scheme(name, scheme, scale=scale, config=config)
            data[(name, scheme)] = result.l1_mpki
    return data


def render(data: Dict[Tuple[str, str], float]) -> str:
    names = sorted({name for name, _ in data},
                   key=(SENS_WORKLOADS + NON_SENS_WORKLOADS).index)
    rows = [
        [name] + [f"{data[(name, s)]:.2f}" for s in SCHEMES]
        for name in names
    ]
    table = format_table(["benchmark"] + SCHEMES, rows)
    kmeans_delta = ""
    if ("kmeans", "rr") in data and ("kmeans", "cawa") in data:
        change = 1 - data[("kmeans", "cawa")] / data[("kmeans", "rr")]
        kmeans_delta = f"\nkmeans MPKI reduction under CAWA: {change:.1%}"
    return "Figure 10: L1D MPKI per scheduler\n" + table + kmeans_delta


def main() -> None:  # pragma: no cover
    print(render(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
