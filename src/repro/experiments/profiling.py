"""Performance instrumentation for simulator runs.

Backs ``python -m repro profile`` and ``tools/profile_run.py``: wall-clock
timing (best-of-N, cache-bypassed) plus optional cProfile hot-spot listings,
and a side-by-side comparison of the two issue cores (``event`` vs
``scan``).  The headline throughput metric is **simulated cycles per host
second**, which is what the perf-regression smoke benchmark tracks.
"""

from __future__ import annotations

import cProfile
import io
import pstats
import sys
import time
from typing import Dict, Optional, TextIO, Tuple

from ..config import GPUConfig
from ..stats.counters import RunResult
from . import runner


def timed_run(
    workload: str,
    scheme: str,
    scale: float = 1.0,
    config: Optional[GPUConfig] = None,
    core: Optional[str] = None,
) -> Tuple[RunResult, float]:
    """Run one cell with every cache bypassed; return (result, seconds).

    ``core`` selects the issue core ("event"/"scan"); ``None`` keeps the
    config's default.  Uses CPU time (``process_time``) so measurements are
    stable on loaded machines.
    """
    cfg = config or GPUConfig.default_sim()
    if core is not None:
        cfg = cfg.with_issue_core(core)
    start = time.process_time()
    result = runner.run_scheme(
        workload, scheme, scale=scale, config=cfg,
        use_cache=False, persistent=False,
    )
    return result, time.process_time() - start


def throughput(
    workload: str,
    scheme: str,
    scale: float = 1.0,
    config: Optional[GPUConfig] = None,
    core: Optional[str] = None,
    repeats: int = 3,
) -> Dict[str, float]:
    """Best-of-``repeats`` throughput for one cell.

    Returns ``{"cycles", "seconds", "cycles_per_second"}``.
    """
    best = float("inf")
    cycles = 0.0
    for _ in range(repeats):
        result, seconds = timed_run(workload, scheme, scale, config, core)
        cycles = result.cycles
        if seconds < best:
            best = seconds
    return {
        "cycles": cycles,
        "seconds": best,
        "cycles_per_second": cycles / best if best > 0 else 0.0,
    }


def stall_breakdown(
    workload: str,
    scheme: str,
    scale: float = 1.0,
    config: Optional[GPUConfig] = None,
    n: int = 3,
):
    """Top-``n`` stall reasons for one cell as ``(name, cycles, share)``.

    One events-on run through :func:`repro.obs.harness.record_stalls`;
    ``share`` is the fraction of total warp-cycles (issue + all stalls),
    the paper's Fig 2c denominator.  Stall attribution is identical across
    issue cores, device clocks, and shard counts (the event stream is part
    of the bit-identical timing contract), so one recording serves every
    column of a comparison.
    """
    from ..obs.harness import record_stalls

    _result, acct = record_stalls(workload, scheme, scale=scale, config=config)
    return acct.top_reasons(n)


def compare_cores(
    workload: str,
    scheme: str,
    scale: float = 1.0,
    config: Optional[GPUConfig] = None,
    repeats: int = 3,
) -> Dict[str, Dict[str, float]]:
    """Measure both issue cores on one cell; adds an ``event_speedup`` key
    and the cell's top-3 stall reasons (``"stalls"``)."""
    event = throughput(workload, scheme, scale, config, "event", repeats)
    scan = throughput(workload, scheme, scale, config, "scan", repeats)
    speedup = (scan["seconds"] / event["seconds"]) if event["seconds"] > 0 else 0.0
    return {"event": event, "scan": scan,
            "event_speedup": {"wall": speedup},
            "stalls": stall_breakdown(workload, scheme, scale, config)}


def _component_of(filename: str) -> str:
    """Map a profiled filename onto a coarse simulator component.

    ``repro`` sources aggregate by subpackage (``repro.sm``,
    ``repro.memory``, ...); everything else (stdlib, numpy) lands in
    ``other``.
    """
    marker = "repro" + ("/" if "/" in filename else "\\")
    idx = filename.rfind(marker)
    if idx < 0:
        return "other"
    parts = filename[idx:].replace("\\", "/").split("/")
    if len(parts) >= 3:
        return f"repro.{parts[1]}"
    return "repro"


def _component_breakdown(profiler: cProfile.Profile) -> Dict[str, float]:
    """Aggregate a profile's self-time (tottime) by simulator component."""
    stats = pstats.Stats(profiler)
    totals: Dict[str, float] = {}
    for (filename, _lineno, _func), entry in stats.stats.items():
        tottime = entry[2]
        comp = _component_of(filename)
        totals[comp] = totals.get(comp, 0.0) + tottime
    return totals


def compare_clocks(
    workload: str,
    scheme: str,
    scale: float = 1.0,
    config: Optional[GPUConfig] = None,
    repeats: int = 3,
    clocks: Tuple[str, ...] = ("cycle", "skip"),
) -> Dict[str, Dict]:
    """Measure the per-cycle and time-skipping clocks on one cell.

    For each clock: best-of-``repeats`` wall/CPU throughput plus one
    profiled run aggregated into a per-component self-time breakdown
    (``repro.sm``, ``repro.memory``, ...).  The returned dict maps each
    clock name to ``{"throughput": ..., "components": ...}`` and carries a
    ``"speedup"`` entry (first clock's wall time over the last's — i.e.
    how much the skip clock wins with the default pair).  Results are
    bit-identical across clocks by contract, so the comparison is purely
    about wall time.
    """
    base = config or GPUConfig.default_sim()
    report: Dict[str, Dict] = {}
    for clock in clocks:
        cfg = base.with_clock(clock)
        tp = throughput(workload, scheme, scale, cfg, None, repeats)
        profiler = cProfile.Profile()
        profiler.enable()
        result = runner.run_scheme(
            workload, scheme, scale=scale, config=cfg,
            use_cache=False, persistent=False,
        )
        profiler.disable()
        tp["cycles_skipped"] = result.cycles_skipped
        tp["skip_jumps"] = float(result.skip_jumps)
        report[clock] = {
            "throughput": tp,
            "components": _component_breakdown(profiler),
        }
    first, last = clocks[0], clocks[-1]
    first_s = report[first]["throughput"]["seconds"]
    last_s = report[last]["throughput"]["seconds"]
    report["speedup"] = {"wall": first_s / last_s if last_s > 0 else 0.0}
    report["stalls"] = stall_breakdown(workload, scheme, scale, base)
    return report


def compare_backends(
    workload: str,
    scheme: str,
    scale: float = 1.0,
    config: Optional[GPUConfig] = None,
    repeats: int = 3,
    backends: Tuple[str, ...] = ("python", "vector"),
) -> Dict[str, Dict]:
    """Measure the scalar and vectorized engines on one cell.

    For each backend: best-of-``repeats`` CPU throughput plus one profiled
    run aggregated into a per-component self-time breakdown.  The returned
    dict maps each backend name to ``{"throughput", "components"}`` and
    carries a ``"speedup"`` entry (first backend's wall time over the
    last's — how much the vector engine wins with the default pair) and a
    ``"component_delta"`` map of per-component self-time differences
    (``last - first`` seconds, negative = the vector backend spends less
    self-time there).  Results are bit-identical across backends by
    contract (``tests/test_vector_backend_parity.py``), so the comparison
    is purely about where the host time goes.
    """
    base = config or GPUConfig.default_sim()
    report: Dict[str, Dict] = {}
    for backend in backends:
        cfg = base.with_backend(backend)
        tp = throughput(workload, scheme, scale, cfg, None, repeats)
        profiler = cProfile.Profile()
        profiler.enable()
        runner.run_scheme(
            workload, scheme, scale=scale, config=cfg,
            use_cache=False, persistent=False,
        )
        profiler.disable()
        report[backend] = {
            "throughput": tp,
            "components": _component_breakdown(profiler),
        }
    first, last = backends[0], backends[-1]
    first_s = report[first]["throughput"]["seconds"]
    last_s = report[last]["throughput"]["seconds"]
    report["speedup"] = {"wall": first_s / last_s if last_s > 0 else 0.0}
    first_comp = report[first]["components"]
    last_comp = report[last]["components"]
    report["component_delta"] = {
        comp: last_comp.get(comp, 0.0) - first_comp.get(comp, 0.0)
        for comp in sorted(set(first_comp) | set(last_comp))
    }
    report["stalls"] = stall_breakdown(workload, scheme, scale, base)
    return report


def profile_run(
    workload: str,
    scheme: str,
    scale: float = 1.0,
    config: Optional[GPUConfig] = None,
    core: Optional[str] = None,
    sort: str = "cumulative",
    top: int = 25,
    stream: Optional[TextIO] = None,
) -> Tuple[RunResult, float]:
    """cProfile one cell and print the ``top`` hottest entries to ``stream``."""
    out = stream if stream is not None else sys.stdout
    profiler = cProfile.Profile()
    start = time.process_time()
    profiler.enable()
    cfg = config or GPUConfig.default_sim()
    if core is not None:
        cfg = cfg.with_issue_core(core)
    result = runner.run_scheme(
        workload, scheme, scale=scale, config=cfg,
        use_cache=False, persistent=False,
    )
    profiler.disable()
    seconds = time.process_time() - start
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.strip_dirs().sort_stats(sort).print_stats(top)
    print(buffer.getvalue(), file=out)
    cps = result.cycles / seconds if seconds > 0 else 0.0
    print(
        f"{workload} x {scheme} (core={cfg.issue_core}): "
        f"{result.cycles:.0f} cycles in {seconds:.2f}s CPU "
        f"-> {cps:,.0f} cycles/s",
        file=out,
    )
    return result, seconds
