"""Figure 4 — stall cycles the warp scheduler adds to the critical warp.

Criticality-oblivious schedulers make a ready critical warp wait for its
turn; the paper measures the additional wait the baseline RR imposes at up
to 52.4% of the critical warp's time.  We report, per scheduler, the mean
scheduler-induced-wait share of each block's critical warp.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..stats.disparity import critical_warp_of, scheduler_stall_share
from ..stats.report import format_table
from .runner import run_scheme

SCHEDULERS = ["rr", "two_level", "gto", "gcaws"]


def run(scale: float = 1.0, config=None, workload: str = "bfs") -> Dict[str, float]:
    data = {}
    for scheme in SCHEDULERS:
        result = run_scheme(workload, scheme, scale=scale, config=config)
        shares = [
            scheduler_stall_share(critical_warp_of(block))
            for block in result.blocks
            if block.num_warps > 1
        ]
        data[scheme] = sum(shares) / len(shares) if shares else 0.0
    return data


def render(data: Dict[str, float]) -> str:
    rows = [[scheme, f"{share:.1%}"] for scheme, share in data.items()]
    return (
        "Figure 4: scheduler-induced wait share of the critical warp (bfs)\n"
        + format_table(["scheduler", "critical-warp wait share"], rows)
    )


def main() -> None:  # pragma: no cover
    print(render(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
