"""Figure 2 — the bfs warp-criticality case study.

Three panels on one thread block of bfs:
  (a) per-warp execution time with the unbalanced input (workload imbalance);
  (b) per-warp execution time *and* dynamic instruction counts with a
      balanced input (pure diverging-branch effect);
  (c) the share of each warp's execution time caused by memory-subsystem
      delay (slower warps see more memory stall).
"""

from __future__ import annotations

from typing import Dict, List

from ..stats.disparity import memory_stall_share
from ..stats.report import format_table
from .runner import run_scheme


def _block_profile(result, block_index: int = 0):
    blocks = [b for b in result.blocks if b.num_warps > 1]
    block = blocks[min(block_index, len(blocks) - 1)]
    warps = sorted(block.warps, key=lambda w: w.execution_time)
    return block, warps


def run(scale: float = 1.0, config=None, block_index: int = 0) -> Dict[str, List]:
    unbalanced = run_scheme("bfs", "rr", scale=scale, config=config)
    balanced = run_scheme("bfs", "rr", scale=scale, config=config,
                          use_cache=False, balanced=True)

    _, warps_a = _block_profile(unbalanced, block_index)
    _, warps_b = _block_profile(balanced, block_index)

    return {
        "a_exec_time": [w.execution_time for w in warps_a],
        "b_exec_time": [w.execution_time for w in warps_b],
        "b_inst_count": [w.issued_instructions for w in warps_b],
        "c_mem_share": [memory_stall_share(w) for w in warps_a],
    }


def _gap(values: List[float]) -> float:
    return (values[-1] - values[0]) / values[0] if values and values[0] else 0.0


def render(data: Dict[str, List]) -> str:
    rows = []
    count = len(data["a_exec_time"])
    for i in range(count):
        rows.append([
            i,
            f"{data['a_exec_time'][i]:.0f}",
            f"{data['b_exec_time'][i]:.0f}" if i < len(data["b_exec_time"]) else "",
            data["b_inst_count"][i] if i < len(data["b_inst_count"]) else "",
            f"{data['c_mem_share'][i]:.1%}",
        ])
    header = format_table(
        ["warp(sorted)", "(a) time", "(b) time", "(b) insts", "(c) mem share"], rows
    )
    summary = (
        f"\n(a) unbalanced-input time gap: {_gap(data['a_exec_time']):.1%}"
        f"\n(b) balanced-input time gap:   {_gap(data['b_exec_time']):.1%}"
        f"\n(b) instruction count gap:     "
        f"{_gap([float(x) for x in data['b_inst_count']]):.1%}"
    )
    return "Figure 2: bfs warp criticality case study\n" + header + summary


def main() -> None:  # pragma: no cover
    print(render(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
