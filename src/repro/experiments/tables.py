"""Tables 1 and 2 — simulator configuration and benchmark inventory."""

from __future__ import annotations

from ..config import GPUConfig
from ..stats.report import format_table
from ..workloads import NON_SENS_WORKLOADS, SENS_WORKLOADS, make_workload


def table1(config: GPUConfig = None) -> str:
    """Render the simulated configuration in Table 1's layout."""
    cfg = config or GPUConfig.fermi_gtx480()
    rows = [
        ["Architecture", "NVIDIA Fermi GTX480 (simulated)"],
        ["Num. of SMs", cfg.num_sms],
        ["Max. # of Warps per SM", cfg.max_warps_per_sm],
        ["Max. # of Blocks per SM", cfg.max_blocks_per_sm],
        ["# of Schedulers per SM", cfg.num_schedulers_per_sm],
        ["# of Registers per SM", cfg.registers_per_sm],
        ["Shared Memory", f"{cfg.shared_mem_per_sm // 1024}KB"],
        [
            "L1 Data Cache",
            f"{cfg.l1d.size_bytes // 1024}KB per SM "
            f"({cfg.l1d.sets}-sets/{cfg.l1d.ways}-ways)",
        ],
        [
            "L2 Cache",
            f"{cfg.l2.size_bytes // 1024}KB unified "
            f"({cfg.l2.sets}-sets/{cfg.l2.ways}-ways/{cfg.l2_banks}-banks)",
        ],
        ["Min. L2 Access Latency", f"{cfg.l2_latency} cycles"],
        ["Min. DRAM Access Latency", f"{cfg.dram_latency} cycles"],
        ["Warp Size (SIMD Width)", f"{cfg.warp_size} threads"],
    ]
    return "Table 1: simulated GPU configuration\n" + format_table(
        ["parameter", "value"], rows
    )


def table2() -> str:
    """Render the benchmark inventory in Table 2's layout."""
    rows = []
    for name in SENS_WORKLOADS + NON_SENS_WORKLOADS:
        workload = make_workload(name)
        rows.append([name, workload.dataset, workload.category])
    return "Table 2: benchmarks and data sets\n" + format_table(
        ["benchmark", "data set", "category"], rows
    )


def main() -> None:  # pragma: no cover
    print(table1())
    print()
    print(table2())


if __name__ == "__main__":  # pragma: no cover
    main()
