"""Figure 3 — reuse-distance analysis for critical-warp cache lines in bfs.

The paper shows that over 60% of the cache blocks that would be reused by
slower-running (critical) warps are evicted before the re-reference, using
a 16KB 4-way/128B cache for the analysis.  We run the reuse-distance
profiler on bfs's L1 access stream and report, per criticality class, the
fraction of re-references whose stack distance exceeds that cache's line
capacity (so they would miss).

The same profiler data reproduces Figure 8's per-PC reuse breakdown (the
memory instructions of the bfs kernel have very different reuse behaviour).
"""

from __future__ import annotations

from typing import Dict

from ..stats.report import format_table
from .runner import run_scheme

#: The paper's footnote-1 analysis cache: 16KB, 4-way, 128B lines.
ANALYSIS_CAPACITY_LINES = (16 * 1024) // 128


def run(scale: float = 1.0, config=None) -> Dict[str, object]:
    result = run_scheme("bfs", "rr", scale=scale, config=config, with_reuse=True)
    profiler = result.extra["reuse_profiler"]
    per_pc = {
        pc: {
            "references": profile.references,
            "rereferences": profile.rereferences,
            "beyond_capacity": profile.fraction_beyond(ANALYSIS_CAPACITY_LINES),
        }
        for pc, profile in sorted(profiler.by_pc.items())
        if profile.references > 50
    }
    return {
        "critical_evicted_before_reuse": profiler.critical.fraction_beyond(
            ANALYSIS_CAPACITY_LINES
        ),
        "noncritical_evicted_before_reuse": profiler.non_critical.fraction_beyond(
            ANALYSIS_CAPACITY_LINES
        ),
        "critical_histogram": list(profiler.critical.histogram),
        "per_pc": per_pc,
    }


def render(data: Dict[str, object]) -> str:
    lines = [
        "Figure 3: reuse distance of critical-warp lines in bfs",
        f"critical-warp re-references beyond 16KB/4-way capacity: "
        f"{data['critical_evicted_before_reuse']:.1%}",
        f"non-critical re-references beyond capacity:             "
        f"{data['noncritical_evicted_before_reuse']:.1%}",
        "",
        "Figure 8 companion: per-memory-instruction (PC) reuse behaviour",
    ]
    rows = [
        [f"PC-{pc}", stats["references"], stats["rereferences"],
         f"{stats['beyond_capacity']:.1%}"]
        for pc, stats in data["per_pc"].items()
    ]
    lines.append(format_table(["insertion PC", "refs", "reuses", "beyond cap"], rows))
    return "\n".join(lines)


def main() -> None:  # pragma: no cover
    print(render(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
