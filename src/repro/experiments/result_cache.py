"""Persistent on-disk result cache for experiment runs.

Figure scripts and benchmarks replay the same (workload, scheme, scale)
cells across processes; simulating each cell takes seconds while loading a
cached :class:`~repro.stats.counters.RunResult` takes milliseconds.  This
module stores serialized results as JSON files under ``.repro_cache/``.

Key design:

* The cache key hashes workload, scheme, scale, the accuracy-tracker flag,
  the **full config fingerprint** (:meth:`repro.config.GPUConfig.fingerprint`
  — every timing parameter except the issue-core selector, since both cores
  are bit-identical), and the package version.  Any config or version change
  therefore misses cleanly instead of returning stale numbers.
* Entries are written atomically (temp file + ``os.replace`` via
  :mod:`repro.fslock`) so concurrent sweep workers — and the
  :mod:`repro.serve` executor processes — can share one cache directory
  without torn reads.  Garbage collection (:func:`gc`, ``repro cache gc``)
  holds an advisory lock so two collectors never race each other;
  individual entry writes stay lock-free.
* The directory defaults to ``.repro_cache/`` under the current working
  directory; override with the ``REPRO_CACHE_DIR`` environment variable or
  :func:`set_cache_dir`.  Set ``REPRO_DISK_CACHE=0`` to disable entirely.
* The config fingerprint also excludes the ``frontend`` selector: trace
  replay is bit-identical to execution (``docs/trace_driven.md``), so the
  two frontends deliberately share cache entries.  The trace store itself
  lives alongside the results, under ``traces/`` inside :func:`cache_dir`
  (see :mod:`repro.trace.store`), and is cleared separately.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Optional

from .. import __version__
from .. import fslock
from ..stats.counters import RunResult, result_from_dict

#: Environment variable overriding the cache directory.
ENV_DIR = "REPRO_CACHE_DIR"
#: Environment variable disabling the disk cache when set to "0".
ENV_ENABLE = "REPRO_DISK_CACHE"
#: Default directory (relative to the current working directory).
DEFAULT_DIR = ".repro_cache"
#: Bump to invalidate every existing entry on a format change.
FORMAT_VERSION = 1

_dir_override: Optional[Path] = None


def enabled() -> bool:
    """True unless ``REPRO_DISK_CACHE=0`` is set."""
    return os.environ.get(ENV_ENABLE, "1") != "0"


def cache_dir() -> Path:
    """Resolve the cache directory (override > env var > default)."""
    if _dir_override is not None:
        return _dir_override
    return Path(os.environ.get(ENV_DIR, DEFAULT_DIR))


def set_cache_dir(path: Optional[os.PathLike]) -> None:
    """Force the cache directory (``None`` restores env/default resolution)."""
    global _dir_override
    _dir_override = Path(path) if path is not None else None


def cache_key(
    workload: str,
    scheme: str,
    scale: float,
    config_fingerprint: str,
    with_accuracy: bool = False,
) -> str:
    """Deterministic key for one run cell.

    Hashes every input that changes the simulated outcome plus the package
    version, so upgrading the simulator or tweaking any config field
    invalidates old entries.
    """
    payload = json.dumps(
        {
            "workload": workload,
            "scheme": scheme,
            "scale": scale,
            "config": config_fingerprint,
            "with_accuracy": with_accuracy,
            "version": __version__,
            "format": FORMAT_VERSION,
        },
        sort_keys=True,
    )
    digest = hashlib.sha256(payload.encode("utf-8")).hexdigest()[:20]
    return f"{workload}-{scheme}-{digest}"


def _entry_path(key: str) -> Path:
    return cache_dir() / f"{key}.json"


def load(key: str) -> Optional[RunResult]:
    """Return the cached result for ``key``, or ``None`` on miss/corruption."""
    if not enabled():
        return None
    path = _entry_path(key)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        return result_from_dict(data)
    except FileNotFoundError:
        return None
    except (OSError, ValueError, KeyError, TypeError):
        # Corrupt or stale-format entry: treat as a miss and drop it.
        try:
            path.unlink()
        except OSError:
            pass
        return None


def store(key: str, result: RunResult) -> None:
    """Persist ``result`` under ``key`` (atomic; safe across processes)."""
    if not enabled():
        return
    try:
        fslock.atomic_write_json(_entry_path(key), result.to_dict())
    except OSError:
        # A read-only or full filesystem must never break a simulation run.
        pass


def clear() -> int:
    """Delete every cache entry; returns the number of files removed."""
    directory = cache_dir()
    removed = 0
    if directory.is_dir():
        for entry in sorted(directory.glob("*.json")):
            try:
                entry.unlink()
                removed += 1
            except OSError:
                pass
    return removed


def stats() -> dict:
    """Entry count and byte total for the result-cache directory."""
    directory = cache_dir()
    out = fslock.dir_stats(directory, "*.json")
    out["dir"] = str(directory)
    return out


def gc(
    max_age_seconds: Optional[float] = None,
    max_entries: Optional[int] = None,
    blocking: bool = True,
) -> int:
    """Lock-safe garbage collection of stale result entries.

    Removes entries older than ``max_age_seconds`` and/or beyond the
    newest ``max_entries``, oldest first.  Holds the cache directory's
    advisory GC lock for the enumerate-and-delete section; with
    ``blocking=False`` a held lock means another collector is already at
    work and this call returns 0 immediately.  Concurrent writers need no
    lock: replaced entries carry fresh mtimes and unlinked entries simply
    miss on next load.
    """
    directory = cache_dir()
    if not directory.is_dir():
        return 0
    lock = fslock.lock_path(directory)
    if blocking:
        with fslock.locked(lock):
            return fslock.gc_entries(
                directory, "*.json", max_age_seconds, max_entries
            )
    with fslock.try_locked(lock) as acquired:
        if not acquired:
            return 0
        return fslock.gc_entries(
            directory, "*.json", max_age_seconds, max_entries
        )
