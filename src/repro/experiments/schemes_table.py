"""Co-design scheme head-to-head: IPC / L1-MPKI table vs. the CAWA lineup.

The comparison the feedback subsystem exists for: the three
FeedbackChannel consumer schemes (``ccws``, ``wasp``, ``ciao``) against
the criticality lineup (``gto``, ``caws``, ``cawa``) on the same workload
grid.  ``repro schemes --compare`` renders it from the CLI; the sweep
goes through :func:`~repro.experiments.runner.run_sweep`, so cells land
in (and replay from) the persistent result cache like any figure.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from ..config import GPUConfig
from ..stats.counters import RunResult
from ..stats.report import format_table
from .runner import run_sweep

#: The head-to-head lineup: established baselines, the paper's coordinated
#: design, and the three feedback-channel schemes.
HEAD_TO_HEAD_SCHEMES: Tuple[str, ...] = (
    "gto", "caws", "cawa", "ccws", "wasp", "ciao",
)

#: Default workload pair: one cache-sensitive, one non-sensitive (Table 2
#: classification) — small enough for a smoke run, contrasting enough
#: that throttling schemes separate from criticality schemes.
DEFAULT_WORKLOADS: Tuple[str, ...] = ("backprop", "kmeans")


def schemes_head_to_head(
    workloads: Optional[Iterable[str]] = None,
    scale: float = 1.0,
    config: Optional[GPUConfig] = None,
    parallel: bool = False,
) -> Dict[Tuple[str, str], RunResult]:
    """Run the head-to-head grid; returns ``{(workload, scheme): result}``."""
    wl = list(workloads) if workloads is not None else list(DEFAULT_WORKLOADS)
    return run_sweep(
        wl,
        list(HEAD_TO_HEAD_SCHEMES),
        scale=scale,
        config=config,
        parallel=parallel,
    )


def format_head_to_head(
    results: Dict[Tuple[str, str], RunResult],
    workloads: Iterable[str],
) -> str:
    """Render the IPC / L1-MPKI / speedup-over-gto comparison tables."""
    wl = list(workloads)
    schemes = list(HEAD_TO_HEAD_SCHEMES)
    ipc_rows = []
    mpki_rows = []
    speedup_rows = []
    for workload in wl:
        ipc_rows.append(
            [workload]
            + [f"{results[(workload, s)].ipc:.3f}" for s in schemes]
        )
        mpki_rows.append(
            [workload]
            + [f"{results[(workload, s)].l1_mpki:.2f}" for s in schemes]
        )
        base = results[(workload, "gto")].ipc
        speedup_rows.append(
            [workload]
            + [f"{results[(workload, s)].ipc / base:.2f}x" for s in schemes]
        )
    header = ["workload"] + schemes
    return "\n\n".join([
        "IPC:\n" + format_table(header, ipc_rows),
        "L1 MPKI:\n" + format_table(header, mpki_rows),
        "Speedup over gto:\n" + format_table(header, speedup_rows),
    ])
