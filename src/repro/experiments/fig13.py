"""Figure 13 — oracle CAWS vs. gCAWS vs. full CAWA.

Oracle CAWS (offline per-warp execution times) wins on small kernels where
CPL's online training overhead is relatively large (bfs, b+tree, needle);
gCAWS/CAWA win on large kernels (heartwall, srad_1) and on kmeans, where
the greedy scheme's active-warp limiting beats the oracle's pure
criticality order.  CAWA adds about 5% over gCAWS from cache
prioritization, with slight regressions on b+tree and strcltr_small.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..stats.report import format_table
from ..workloads import SENS_WORKLOADS
from .runner import run_scheme

SCHEMES = ["caws", "gcaws", "cawa"]


def run(
    scale: float = 1.0,
    config=None,
    workloads: Optional[List[str]] = None,
) -> Dict[Tuple[str, str], float]:
    names = workloads or SENS_WORKLOADS
    data = {}
    for name in names:
        base = run_scheme(name, "rr", scale=scale, config=config)
        for scheme in SCHEMES:
            result = run_scheme(name, scheme, scale=scale, config=config)
            data[(name, scheme)] = result.speedup_over(base)
    return data


def render(data: Dict[Tuple[str, str], float]) -> str:
    names = sorted({name for name, _ in data}, key=SENS_WORKLOADS.index)
    rows = [
        [name] + [f"{data[(name, s)]:.2f}x" for s in SCHEMES]
        for name in names
    ]
    means = [
        sum(data[(n, s)] for n in names) / len(names) for s in SCHEMES
    ]
    rows.append(["mean"] + [f"{m:.2f}x" for m in means])
    return (
        "Figure 13: oracle CAWS vs gCAWS vs CAWA (speedup over RR)\n"
        + format_table(["benchmark"] + SCHEMES, rows)
    )


def main() -> None:  # pragma: no cover
    print(render(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
