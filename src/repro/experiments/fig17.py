"""Figure 17 — IPC when CACP assists each warp scheduler.

The companion of Figure 16: adding CACP to RR, GTO, and the 2-level
scheduler gains 2%-16.5% IPC in the paper, with the fully coordinated CAWA
(gCAWS + CACP) performing best.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..stats.report import format_table
from ..workloads import SENS_WORKLOADS
from . import fig16
from .runner import run_scheme


def run(
    scale: float = 1.0,
    config=None,
    workloads: Optional[List[str]] = None,
) -> Dict[Tuple[str, str], float]:
    return fig16.run(scale=scale, config=config, workloads=workloads, metric="ipc")


def cacp_gains(data: Dict[Tuple[str, str], float]) -> Dict[str, float]:
    """Mean IPC gain CACP adds to each scheduler."""
    names = sorted({name for name, _ in data})
    gains = {}
    for base_scheme, cacp_scheme in fig16.PAIRINGS:
        ratios = [
            data[(n, cacp_scheme)] / data[(n, base_scheme)]
            for n in names
            if data.get((n, base_scheme))
        ]
        if ratios:
            gains[base_scheme] = sum(ratios) / len(ratios) - 1.0
    return gains


def render(data: Dict[Tuple[str, str], float]) -> str:
    body = fig16.render(data, metric="ipc")
    lines = [body, "", "mean IPC gain from adding CACP:"]
    for scheduler, gain in cacp_gains(data).items():
        lines.append(f"  {scheduler:<10} {gain:+.1%}")
    return "\n".join(lines)


def main() -> None:  # pragma: no cover
    print(render(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
