"""Figure 16 — L1D MPKI when CACP assists each warp scheduler.

CACP is scheduler-independent (it consumes CPL's criticality verdicts), so
the paper applies it under RR, GTO, and the 2-level scheduler and measures
the MPKI reduction in each pairing.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..stats.report import format_table
from ..workloads import SENS_WORKLOADS
from .runner import run_scheme

PAIRINGS = [
    ("rr", "rr+cacp"),
    ("gto", "gto+cacp"),
    ("two_level", "two_level+cacp"),
    ("gcaws", "cawa"),
]


def run(
    scale: float = 1.0,
    config=None,
    workloads: Optional[List[str]] = None,
    metric: str = "mpki",
) -> Dict[Tuple[str, str], float]:
    """Per (workload, scheme) metric for every scheduler with/without CACP.

    ``metric`` is ``"mpki"`` (Figure 16) or ``"ipc"`` (Figure 17).
    """
    names = workloads or SENS_WORKLOADS
    data = {}
    for name in names:
        for base_scheme, cacp_scheme in PAIRINGS:
            for scheme in (base_scheme, cacp_scheme):
                result = run_scheme(name, scheme, scale=scale, config=config)
                value = result.l1_mpki if metric == "mpki" else result.ipc
                data[(name, scheme)] = value
    return data


def render(data: Dict[Tuple[str, str], float], metric: str = "mpki") -> str:
    names = sorted({name for name, _ in data}, key=SENS_WORKLOADS.index)
    schemes: List[str] = []
    for pair in PAIRINGS:
        schemes.extend(pair)
    rows = [
        [name] + [f"{data[(name, s)]:.2f}" for s in schemes]
        for name in names
    ]
    title = "Figure 16: L1D MPKI" if metric == "mpki" else "Figure 17: IPC"
    return f"{title} with CACP under different schedulers\n" + format_table(
        ["benchmark"] + schemes, rows
    )


def main() -> None:  # pragma: no cover
    print(render(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
