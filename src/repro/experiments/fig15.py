"""Figure 15 — critical-warp cache lines evicted with zero reuse.

In the baseline, 44.3% of lines brought in by (or for) critical warps are
evicted before any reuse, due to interference from non-critical blocks;
CAWA's explicit prioritization cuts that fraction down.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..stats.report import format_table
from ..workloads import SENS_WORKLOADS
from .runner import run_scheme

SCHEMES = ["rr", "cawa"]


def run(
    scale: float = 1.0,
    config=None,
    workloads: Optional[List[str]] = None,
) -> Dict[Tuple[str, str], float]:
    names = workloads or SENS_WORKLOADS
    data = {}
    for name in names:
        for scheme in SCHEMES:
            result = run_scheme(name, scheme, scale=scale, config=config)
            data[(name, scheme)] = result.l1_stats.critical_zero_reuse_fraction
    return data


def render(data: Dict[Tuple[str, str], float]) -> str:
    names = sorted({name for name, _ in data}, key=SENS_WORKLOADS.index)
    rows = [
        [name] + [f"{data[(name, s)]:.1%}" for s in SCHEMES]
        for name in names
    ]
    means = [sum(data[(n, s)] for n in names) / len(names) for s in SCHEMES]
    rows.append(["mean"] + [f"{m:.1%}" for m in means])
    return (
        "Figure 15: critical-warp lines evicted with zero reuse\n"
        + format_table(["benchmark", "baseline RR", "CAWA"], rows)
    )


def main() -> None:  # pragma: no cover
    print(render(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
