"""Experiment harness: one module per table/figure of the paper.

Each ``figNN`` module exposes a ``run(...)`` function that regenerates the
corresponding figure's data and a ``render(...)`` helper that prints it in
the paper's row/series layout.  The shared machinery (scheme sweeps, oracle
construction, result caching) lives in :mod:`repro.experiments.runner`.
"""

from .runner import build_oracle, run_scheme, run_sweep, sweep_table

__all__ = ["build_oracle", "run_scheme", "run_sweep", "sweep_table"]
