"""Shared experiment machinery: scheme runs, sweeps, and the CAWS oracle.

Results are memoized per process keyed on (workload, scheme, scale,
observer set), because several figures slice the same underlying sweep
(e.g. Fig 9's IPC and Fig 10's MPKI come from identical runs).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from ..config import GPUConfig
from ..core.cawa import apply_scheme
from ..gpu import GPU
from ..stats.accuracy import CriticalityAccuracyTracker
from ..stats.counters import RunResult
from ..stats.report import format_table
from ..stats.reuse import ReuseDistanceProfiler
from ..workloads import make_workload

_CACHE: Dict[Tuple, RunResult] = {}
_ORACLE_CACHE: Dict[Tuple, Dict] = {}


def build_oracle(workload: str, scale: float = 1.0, config: Optional[GPUConfig] = None) -> Dict:
    """Profile per-warp execution times for the oracle CAWS scheduler.

    Runs the workload once under the baseline RR scheduler and records each
    warp's measured execution time, keyed by (block_id, warp_id_in_block) —
    the offline knowledge the paper says CAWS requires.
    """
    key = (workload, scale)
    if key in _ORACLE_CACHE:
        return _ORACLE_CACHE[key]
    result = run_scheme(workload, "rr", scale=scale, config=config)
    oracle: Dict[Tuple[int, int], float] = {}
    for block in result.blocks:
        for warp in block.warps:
            oracle[(block.block_id, warp.warp_id_in_block)] = warp.execution_time
    _ORACLE_CACHE[key] = oracle
    return oracle


def run_scheme(
    workload: str,
    scheme: str,
    scale: float = 1.0,
    config: Optional[GPUConfig] = None,
    check: bool = True,
    with_accuracy: bool = False,
    with_reuse: bool = False,
    use_cache: bool = True,
    observers: Optional[list] = None,
    **workload_kwargs,
) -> RunResult:
    """Run one (workload, scheme) cell and return its :class:`RunResult`.

    ``with_accuracy`` attaches the Fig 11 CPL accuracy tracker;
    ``with_reuse`` attaches the Fig 3 reuse-distance profiler.  Their
    outputs land in ``result.extra``.  ``observers`` are additional SM
    issue observers (e.g. the Fig 12 priority tracer).
    """
    key = (workload, scheme, scale, with_accuracy, with_reuse,
           tuple(sorted(workload_kwargs.items())))
    if use_cache and not workload_kwargs and observers is None and key in _CACHE:
        return _CACHE[key]

    base = config or GPUConfig.default_sim()
    cfg = apply_scheme(base, scheme)
    oracle = build_oracle(workload, scale, config) if cfg.scheduler_name == "caws" else None
    gpu = GPU(cfg, oracle=oracle)

    accuracy_tracker = None
    if with_accuracy:
        accuracy_tracker = CriticalityAccuracyTracker()
        for sm in gpu.sms:
            sm.issue_observers.append(accuracy_tracker)
    reuse_profiler = None
    if with_reuse:
        reuse_profiler = ReuseDistanceProfiler()
        for sm in gpu.sms:
            sm.l1d.observers.append(reuse_profiler)
    for observer in observers or ():
        for sm in gpu.sms:
            sm.issue_observers.append(observer)

    wl = make_workload(workload, scale=scale, **workload_kwargs)
    result = wl.run(gpu, scheme=scheme, check=check)
    if accuracy_tracker is not None:
        result.extra["cpl_accuracy"] = accuracy_tracker.accuracy(result)
    if reuse_profiler is not None:
        result.extra["reuse_profiler"] = reuse_profiler
    if use_cache and not workload_kwargs and observers is None:
        _CACHE[key] = result
    return result


def run_sweep(
    workloads: Iterable[str],
    schemes: Iterable[str],
    scale: float = 1.0,
    config: Optional[GPUConfig] = None,
    **kwargs,
) -> Dict[Tuple[str, str], RunResult]:
    """Run the full (workload x scheme) grid."""
    results = {}
    for workload in workloads:
        for scheme in schemes:
            results[(workload, scheme)] = run_scheme(
                workload, scheme, scale=scale, config=config, **kwargs
            )
    return results


def sweep_table(
    results: Dict[Tuple[str, str], RunResult],
    workloads: List[str],
    schemes: List[str],
    metric,
    header: str,
) -> str:
    """Render a sweep as a workload-by-scheme text table."""
    rows = []
    for workload in workloads:
        row = [workload]
        for scheme in schemes:
            row.append(metric(results[(workload, scheme)]))
        rows.append(row)
    return format_table([header] + schemes, rows)


def clear_cache() -> None:
    """Drop memoized results (tests use this for isolation)."""
    _CACHE.clear()
    _ORACLE_CACHE.clear()
