"""Shared experiment machinery: scheme runs, sweeps, and the CAWS oracle.

Results are memoized at two levels:

* **per process** keyed on (workload, scheme, scale, observer set), because
  several figures slice the same underlying sweep (e.g. Fig 9's IPC and
  Fig 10's MPKI come from identical runs);
* **on disk** under ``.repro_cache/`` (see
  :mod:`repro.experiments.result_cache`), so repeated benchmark/figure
  invocations across processes skip re-simulation.  Disk entries are keyed
  on the full config fingerprint plus the package version and invalidate
  automatically when either changes.

:func:`run_sweep` can additionally fan the (workload x scheme) grid over a
process pool (``parallel=True``); workers share the disk cache.

With ``config.frontend == "trace"`` (see :mod:`repro.trace` and
``docs/trace_driven.md``) a third layer joins in: on a **result**-cache miss
the runner checks the persistent **trace** store
(``.repro_cache/traces/``, keyed on the functional fingerprint only).  A
trace hit replays the recorded per-warp streams through the timing model —
bit-identical to execution, several times faster; a trace miss runs the
workload once under the execute frontend *with a recorder attached*, so the
cell's result and its trace are produced by the same simulation.  Because
traces ignore timing-only knobs, a scheme sweep records once per workload
and replays every other cell.

With ``config.sampling != "off"`` (see :mod:`repro.sampling` and
``docs/sampling.md``) the trace path replays only the config-selected
subset of blocks or warp intervals and returns a
:class:`~repro.stats.sampling.SampledRunResult` — extrapolated metrics
with per-metric 95% confidence intervals.  ``run_sweep(sampled=True)``
drives this per workload from the calibrated safe-rate table
(``repro sample calibrate``); sampled and exact results live under
distinct result-cache keys because ``sampling`` is part of the config
fingerprint.
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, List, Optional, Tuple

from ..config import GPUConfig
from ..core.cawa import apply_scheme
from ..gpu import GPU
from ..stats.accuracy import CriticalityAccuracyTracker
from ..stats.counters import RunResult, result_from_dict
from ..stats.report import format_table
from ..stats.reuse import ReuseDistanceProfiler
from ..workloads import make_workload
from . import result_cache

_CACHE: Dict[Tuple, RunResult] = {}
_ORACLE_CACHE: Dict[Tuple, Dict] = {}


def build_oracle(workload: str, scale: float = 1.0, config: Optional[GPUConfig] = None) -> Dict:
    """Profile per-warp execution times for the oracle CAWS scheduler.

    Runs the workload once under the baseline RR scheduler and records each
    warp's measured execution time, keyed by (block_id, warp_id_in_block) —
    the offline knowledge the paper says CAWS requires.
    """
    key = (workload, scale)
    if key in _ORACLE_CACHE:
        return _ORACLE_CACHE[key]
    # The oracle must profile every warp of every block: a sampled
    # profiling run would only know the sampled subset and, for blocks
    # mode, under renumbered ids.  Always profile exactly; sampled CAWS
    # replays remap the full oracle onto their subset
    # (:func:`repro.sampling.replay.remap_oracle`).
    if config is not None and config.sampling != "off":
        config = config.with_sampling("off")
    result = run_scheme(workload, "rr", scale=scale, config=config)
    oracle: Dict[Tuple[int, int], float] = {}
    for block in result.blocks:
        for warp in block.warps:
            oracle[(block.block_id, warp.warp_id_in_block)] = warp.execution_time
    _ORACLE_CACHE[key] = oracle
    return oracle


def run_scheme(
    workload: str,
    scheme: str,
    scale: float = 1.0,
    config: Optional[GPUConfig] = None,
    check: bool = True,
    with_accuracy: bool = False,
    with_reuse: bool = False,
    use_cache: bool = True,
    observers: Optional[list] = None,
    persistent: bool = True,
    shards: int = 1,
    **workload_kwargs,
) -> RunResult:
    """Run one (workload, scheme) cell and return its :class:`RunResult`.

    ``with_accuracy`` attaches the Fig 11 CPL accuracy tracker;
    ``with_reuse`` attaches the Fig 3 reuse-distance profiler.  Their
    outputs land in ``result.extra``.  ``observers`` are additional SM
    issue observers (e.g. the Fig 12 priority tracer).

    ``shards > 1`` replays the cell across that many worker processes
    (trace frontend only — see :mod:`repro.gpu.sharded`); like ``clock``
    it is timing-transparent, so cached results are shared across shard
    counts (both knobs are excluded from the config fingerprint).

    ``persistent`` enables the on-disk result cache for plain runs (no
    workload kwargs, no observers, no reuse profiler — those carry live
    objects that do not serialize).  Disk hits return results whose
    ``blocks`` are :class:`~repro.stats.counters.BlockSummary` snapshots,
    which duck-type the live blocks for every analysis in this package.
    """
    base = config or GPUConfig.default_sim()
    # The config fingerprint is part of the memo key: without it, two runs
    # differing only in fingerprinted knobs (cache geometry, sampling, ...)
    # would alias to the same in-process entry.
    key = (workload, scheme, scale, with_accuracy, with_reuse,
           tuple(sorted(workload_kwargs.items())), base.fingerprint())
    # Event recording (config.events != "off") is excluded from the config
    # fingerprint — a cached result could not carry the recorded stream —
    # so recording runs bypass both cache layers entirely.
    cacheable = (use_cache and not workload_kwargs and observers is None
                 and base.events == "off")
    if cacheable and key in _CACHE:
        return _CACHE[key]

    if shards > 1:
        # Frontend first: config validation rejects shards > 1 off-trace.
        if base.frontend != "trace":
            base = base.with_frontend("trace")
        base = base.with_shards(shards)
    cfg = apply_scheme(base, scheme)

    disk_key = None
    if cacheable and persistent and not with_reuse:
        disk_key = result_cache.cache_key(
            workload, scheme, scale, cfg.fingerprint(), with_accuracy
        )
        cached = result_cache.load(disk_key)
        if cached is not None:
            _CACHE[key] = cached
            return cached

    oracle = build_oracle(workload, scale, config) if cfg.scheduler_name == "caws" else None

    accuracy_tracker = CriticalityAccuracyTracker() if with_accuracy else None
    reuse_profiler = ReuseDistanceProfiler() if with_reuse else None
    issue_observers = list(observers or ())
    if accuracy_tracker is not None:
        issue_observers.append(accuracy_tracker)
    l1_observers = [reuse_profiler] if reuse_profiler is not None else []

    if cfg.frontend == "trace":
        result = _trace_frontend_run(
            workload, scheme, scale, cfg, oracle, check,
            issue_observers, l1_observers, workload_kwargs,
        )
    else:
        gpu = GPU(cfg, oracle=oracle)
        for observer in issue_observers:
            for sm in gpu.sms:
                sm.issue_observers.append(observer)
        for observer in l1_observers:
            for sm in gpu.sms:
                sm.l1d.observers.append(observer)
        wl = make_workload(workload, scale=scale, **workload_kwargs)
        result = wl.run(gpu, scheme=scheme, check=check)

    if accuracy_tracker is not None:
        result.extra["cpl_accuracy"] = accuracy_tracker.accuracy(result)
    if reuse_profiler is not None:
        result.extra["reuse_profiler"] = reuse_profiler
    if cacheable:
        _CACHE[key] = result
    if disk_key is not None:
        result_cache.store(disk_key, result)
    return result


def _trace_frontend_run(
    workload: str,
    scheme: str,
    scale: float,
    cfg: GPUConfig,
    oracle,
    check: bool,
    issue_observers: list,
    l1_observers: list,
    workload_kwargs: dict,
):
    """One cell under the trace frontend: replay on a trace hit, else
    execute-and-record (auto-record on miss).

    Functional verification (``check``) only applies to the recording run —
    replay computes no lane values, so there is nothing to verify; the
    parity suite (``tests/test_trace_parity.py``) is the replay-side
    correctness guarantee.

    ``cfg.sampling != "off"`` replays only the config-selected subset of
    the trace and extrapolates (:func:`repro.sampling.replay.replay_sampled`);
    a trace miss still records the *full* trace (exactly, under the execute
    frontend) before sampling it, so the subset is always drawn from the
    complete stream.
    """
    # Local import: repro.trace pulls in result_cache and the GPU; keeping
    # it out of module scope avoids an import cycle with repro.gpu.
    from .. import trace as trace_mod

    kwargs = dict(workload_kwargs) if workload_kwargs else None
    program = trace_mod.load_program(workload, scale, cfg, kwargs)
    if program is not None:
        if cfg.sampling != "off":
            return _sampled_replay(
                workload, program, cfg, scheme, oracle,
                issue_observers, l1_observers,
            )
        results = trace_mod.replay_program(
            program, cfg, scheme=scheme, oracle=oracle,
            observers=issue_observers, l1_observers=l1_observers,
        )
        return results[-1]

    # Trace miss (or stale/corrupt trace): execute once with the recorder
    # attached.  Any scheme records the same functional streams (they are
    # schedule-invariant), so recording under the requested scheme yields
    # this cell's execute-frontend result for free.
    # Shards only apply to replay; the recording run is a plain serial
    # execute-frontend run (shards=1 first: validation rejects sharded
    # non-trace configs; sampling=off likewise — the execute frontend
    # cannot sample, and the recording must cover every block).
    exec_cfg = cfg.with_shards(1).with_sampling("off").with_frontend("execute")
    recorder = trace_mod.TraceRecorder(exec_cfg)
    gpu = GPU(exec_cfg, oracle=oracle)
    gpu.attach_recorder(recorder)
    # When the cell is sampled, observers attach to the sampled replay
    # below (whose result is the one returned), not to the discarded
    # recording run — attaching to both would double-count events.
    sampled = cfg.sampling != "off"
    for observer in issue_observers if not sampled else ():
        for sm in gpu.sms:
            sm.issue_observers.append(observer)
    for observer in l1_observers if not sampled else ():
        for sm in gpu.sms:
            sm.l1d.observers.append(observer)
    wl = make_workload(workload, scale=scale, **workload_kwargs)
    result = wl.run(gpu, scheme=scheme, check=check)
    program = recorder.finish(workload=workload, scale=scale, scheme=scheme)
    trace_mod.store_program(program, workload, scale, cfg, kwargs)
    result.trace_id = program.trace_id
    if sampled:
        # The caller asked for a sampled result; the exact recording run
        # above was the price of the missing trace.  Replay the sampled
        # subset so the returned (and cached) result matches the config.
        return _sampled_replay(
            workload, program, cfg, scheme, oracle,
            issue_observers, l1_observers,
        )
    return result


def _sampled_replay(
    workload: str,
    program,
    cfg: GPUConfig,
    scheme: str,
    oracle,
    issue_observers: list,
    l1_observers: list,
):
    """Sampled replay of one cell, with the calibrated envelope applied.

    The confidence envelope is looked up by workload name from the
    persisted calibration table; an uncalibrated (or differently-rated)
    cell falls back to the conservative default envelope.
    """
    from ..sampling import calibrate as sampling_calibrate
    from ..sampling.replay import replay_sampled

    envelope, source = sampling_calibrate.envelope_for(workload, cfg.sampling)
    return replay_sampled(
        program, cfg, scheme=scheme, oracle=oracle,
        observers=issue_observers, l1_observers=l1_observers,
        envelope_rel=envelope, envelope_source=source,
    )


#: ``run_scheme`` keyword parameters; anything else in ``run_sweep``'s
#: ``**kwargs`` is a workload kwarg and disables disk-cache fan-out.
_RUN_SCHEME_KWARGS = frozenset(
    ("check", "with_accuracy", "with_reuse", "use_cache", "observers",
     "persistent", "shards")
)


def _validate_sweep_kwargs(kwargs: Dict, workloads: List[str]) -> None:
    """Reject ``run_sweep`` kwargs that neither :func:`run_scheme` nor any
    swept workload constructor would accept.

    Without this check a typo (``with_acuracy=True``) silently rides the
    ``**workload_kwargs`` channel into every workload constructor and only
    fails — confusingly, or not at all — deep inside ``make_workload``.
    Validation is best-effort permissive: if any swept workload's factory
    cannot be introspected or takes ``**kwargs`` itself, unknown names are
    allowed through (the factory is the authority then).
    """
    unknown = [k for k in kwargs if k not in _RUN_SCHEME_KWARGS]
    if not unknown:
        return
    import inspect

    from ..workloads.registry import WORKLOADS

    allowed: set = set()
    for workload in workloads:
        factory = WORKLOADS.get(workload)
        if factory is None:
            # Unknown workload name: make_workload will raise its own
            # (clearer) error; don't second-guess kwargs here.
            return
        try:
            signature = inspect.signature(factory)
        except (TypeError, ValueError):
            return
        for param in signature.parameters.values():
            if param.kind is inspect.Parameter.VAR_KEYWORD:
                return
            allowed.add(param.name)
    bad = sorted(k for k in unknown if k not in allowed)
    if bad:
        names = ", ".join(repr(k) for k in bad)
        raise TypeError(
            f"run_sweep() got unexpected keyword argument(s) {names}: "
            f"not a run_scheme option ({sorted(_RUN_SCHEME_KWARGS)}) and not "
            f"a constructor parameter of any swept workload "
            f"({sorted(set(workloads))})"
        )


def _dedupe_parallel_cells(
    cells: List[Tuple[str, str]],
    base_for,
) -> List[List[Tuple[str, str]]]:
    """Group grid cells that resolve to the same simulation execution.

    Two cells share an execution when their workload matches and their
    scheme names resolve — via :func:`~repro.core.cawa.apply_scheme` — to
    configs with identical result-cache fingerprints (duplicate grid
    entries, or scheme aliases).  Dispatching both would simulate the same
    cell twice; the parallel sweep submits one representative per group
    (the first cell, preserving grid order) and fans the shared result
    back out.  This is the library-level half of the request coalescing
    that :mod:`repro.serve` performs across tenants.

    ``base_for`` maps a workload name to its base config — sampled sweeps
    give each workload its own calibrated sampling rate, so the base is no
    longer grid-wide.
    """
    groups: Dict[Tuple[str, str], List[Tuple[str, str]]] = {}
    order: List[Tuple[str, str]] = []
    fingerprints: Dict[Tuple[str, str], str] = {}
    for workload, scheme in cells:
        cell = (workload, scheme)
        if cell not in fingerprints:
            fingerprints[cell] = apply_scheme(
                base_for(workload), scheme
            ).fingerprint()
        key = (workload, fingerprints[cell])
        group = groups.get(key)
        if group is None:
            groups[key] = [cell]
            order.append(key)
        elif cell not in group:
            group.append(cell)
    return [groups[key] for key in order]


def _sweep_worker(args: Tuple) -> Tuple[Tuple[str, str], Dict]:
    """Process-pool worker: run one cell, return it in plain-dict form.

    Module-level (picklable by name); returns ``result.to_dict()`` rather
    than the live :class:`RunResult` so heavy simulator objects never cross
    the process boundary.  The worker also populates the shared disk cache.
    """
    workload, scheme, scale, config, kwargs = args
    result = run_scheme(workload, scheme, scale=scale, config=config, **kwargs)
    return (workload, scheme), result.to_dict()


def run_sweep(
    workloads: Iterable[str],
    schemes: Iterable[str],
    scale: float = 1.0,
    config: Optional[GPUConfig] = None,
    parallel: bool = False,
    max_workers: Optional[int] = None,
    sampled=False,
    **kwargs,
) -> Dict[Tuple[str, str], RunResult]:
    """Run the full (workload x scheme) grid.

    Extra keyword arguments split two ways: names in
    ``("check", "with_accuracy", "with_reuse", "use_cache", "observers",
    "persistent", "shards")`` forward to :func:`run_scheme` as options;
    anything else forwards as a workload constructor kwarg (e.g.
    ``balanced=True`` for bfs).  A name that is neither raises
    :class:`TypeError` naming the offending key up front, instead of
    surfacing later as an opaque constructor failure inside a worker.

    ``sampled`` selects statistical trace replay (:mod:`repro.sampling`):
    ``True`` looks up each workload's calibrated safe rate from the
    ``repro sample calibrate`` table (uncalibrated workloads use the
    conservative :data:`~repro.sampling.calibrate.DEFAULT_SPEC`; workloads
    whose calibration *failed* its error target run exactly — the escape
    hatch ``sampled=False`` / CLI ``--exact`` forces exact runs
    everywhere).  A spec string (``"blocks:0.25"``) applies one rate to
    every workload.  Sampled cells return
    :class:`~repro.stats.sampling.SampledRunResult` and compose with the
    result cache, ``parallel=True`` dedupe, the vector backend, and the
    skip clock.

    With ``parallel=True`` the grid fans out over a
    :class:`~concurrent.futures.ProcessPoolExecutor` (``max_workers``
    defaults to ``min(len(grid), os.cpu_count())``).  Parallel results come
    back deserialized — their ``blocks`` are
    :class:`~repro.stats.counters.BlockSummary` snapshots — and are entered
    into this process's memoization cache so follow-up ``run_scheme`` calls
    hit.  Cells that need live observers cannot cross process boundaries;
    passing ``observers`` forces the serial path.
    """
    workloads = list(workloads)
    schemes = list(schemes)
    _validate_sweep_kwargs(kwargs, workloads)
    grid = [(w, s) for w in workloads for s in schemes]
    results: Dict[Tuple[str, str], RunResult] = {}

    if sampled:
        from ..sampling import calibrate as sampling_calibrate

        base = config or GPUConfig.default_sim()
        configs: Dict[str, GPUConfig] = {}
        for workload in workloads:
            if isinstance(sampled, str):
                spec: Optional[str] = sampled
            else:
                spec, _, _ = sampling_calibrate.lookup(workload)
            if spec is None:
                # Calibration failed its target for this workload: exact.
                configs[workload] = base.with_sampling("off").with_frontend("trace")
            else:
                configs[workload] = base.with_sampling(spec)
        _config_for = configs.__getitem__
    else:
        base = config or GPUConfig.default_sim()

        def _config_for(workload: str) -> GPUConfig:
            return base

    serializable = (kwargs.get("observers") is None
                    and not kwargs.get("with_reuse", False))
    if parallel and len(grid) > 1 and serializable:
        import concurrent.futures

        use_cache = kwargs.get("use_cache", True)
        with_accuracy = kwargs.get("with_accuracy", False)

        def _cell_key(workload: str, scheme: str) -> Tuple:
            return (workload, scheme, scale, with_accuracy,
                    kwargs.get("with_reuse", False), (),
                    _config_for(workload).fingerprint())

        pending: List[Tuple[str, str]] = []
        for workload, scheme in grid:
            if use_cache and _cell_key(workload, scheme) in _CACHE:
                results[(workload, scheme)] = _CACHE[_cell_key(workload, scheme)]
            elif (workload, scheme) not in pending:
                pending.append((workload, scheme))
        if pending:
            # Cells sharing an execution fingerprint (duplicates, scheme
            # aliases) run once; every member of the group gets the result.
            groups = _dedupe_parallel_cells(pending, _config_for)
            submit = [(g[0][0], g[0][1], scale, _config_for(g[0][0]), kwargs)
                      for g in groups]
            # Alias cells also get their own disk-cache entries so later
            # serial run_scheme calls hit, under the same conditions
            # run_scheme itself uses for persistence.
            fan_disk = (use_cache
                        and kwargs.get("persistent", True)
                        and not kwargs.get("with_reuse", False)
                        and base.events == "off"
                        and all(k in _RUN_SCHEME_KWARGS for k in kwargs))
            workers = max_workers or min(len(submit), os.cpu_count() or 1)
            with concurrent.futures.ProcessPoolExecutor(max_workers=workers) as pool:
                for group, (cell, data) in zip(
                    groups, pool.map(_sweep_worker, submit)
                ):
                    result = result_from_dict(data)
                    for workload, scheme in group:
                        results[(workload, scheme)] = result
                        if use_cache:
                            _CACHE[_cell_key(workload, scheme)] = result
                        if fan_disk and (workload, scheme) != cell:
                            result_cache.store(
                                result_cache.cache_key(
                                    workload, scheme, scale,
                                    apply_scheme(
                                        _config_for(workload), scheme
                                    ).fingerprint(),
                                    with_accuracy,
                                ),
                                result,
                            )
        return results

    for workload, scheme in grid:
        results[(workload, scheme)] = run_scheme(
            workload, scheme, scale=scale, config=_config_for(workload),
            **kwargs
        )
    return results


def sweep_table(
    results: Dict[Tuple[str, str], RunResult],
    workloads: List[str],
    schemes: List[str],
    metric,
    header: str,
) -> str:
    """Render a sweep as a workload-by-scheme text table."""
    rows = []
    for workload in workloads:
        row = [workload]
        for scheme in schemes:
            row.append(metric(results[(workload, scheme)]))
        rows.append(row)
    return format_table([header] + schemes, rows)


def clear_cache(disk: bool = False) -> None:
    """Drop memoized results (tests use this for isolation).

    ``disk=True`` also wipes the persistent on-disk result cache *and* the
    trace store; by default only the in-process memoization is dropped so a
    deliberate cache warmup (e.g. from a sweep) survives.
    """
    _CACHE.clear()
    _ORACLE_CACHE.clear()
    if disk:
        result_cache.clear()
        from ..trace import store as trace_store

        trace_store.clear()
