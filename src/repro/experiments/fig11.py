"""Figure 11 — CPL warp-criticality prediction accuracy.

Accuracy is the frequency at which the block's true critical warp (slowest
by measured execution time) was flagged as a slow warp by CPL's periodic
verdicts.  The paper reports an average of 73%, with needle at 100%
because its blocks hold only one or two warps.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..stats.report import format_table
from ..workloads import SENS_WORKLOADS
from .runner import run_scheme


def run(
    scale: float = 1.0,
    config=None,
    workloads: Optional[List[str]] = None,
) -> Dict[str, float]:
    names = workloads or SENS_WORKLOADS
    data = {}
    for name in names:
        result = run_scheme(name, "cawa", scale=scale, config=config,
                            with_accuracy=True)
        data[name] = result.extra["cpl_accuracy"]
    return data


def render(data: Dict[str, float]) -> str:
    rows = [[name, f"{acc:.1%}"] for name, acc in data.items()]
    average = sum(data.values()) / len(data) if data else 0.0
    rows.append(["average", f"{average:.1%}"])
    return "Figure 11: CPL criticality prediction accuracy\n" + format_table(
        ["benchmark", "accuracy"], rows
    )


def main() -> None:  # pragma: no cover
    print(render(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
