"""Figure 1 — warp execution time disparity across GPGPU applications.

The paper reports, per application, the *highest* per-thread-block gap
between the slowest and fastest warp (as a fraction of the slowest warp's
time), averaging 45% across applications and peaking at ~70% for srad_1.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..stats.disparity import max_block_disparity
from ..stats.report import format_table
from ..workloads import NON_SENS_WORKLOADS, SENS_WORKLOADS
from .runner import run_scheme


def run(scale: float = 1.0, config=None, workloads: Optional[List[str]] = None) -> Dict[str, float]:
    """Max per-block warp execution-time disparity under the baseline RR."""
    names = workloads or (SENS_WORKLOADS + NON_SENS_WORKLOADS)
    data = {}
    for name in names:
        result = run_scheme(name, "rr", scale=scale, config=config)
        data[name] = max_block_disparity(result)
    return data


def render(data: Dict[str, float]) -> str:
    rows = [[name, f"{value:.1%}"] for name, value in data.items()]
    average = sum(data.values()) / len(data) if data else 0.0
    rows.append(["average", f"{average:.1%}"])
    return "Figure 1: max warp execution time disparity (baseline RR)\n" + format_table(
        ["benchmark", "disparity"], rows
    )


def main() -> None:  # pragma: no cover - CLI entry
    print(render(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
