"""Figure 9 — overall performance of CAWA vs. baseline schedulers.

The paper's headline result: normalized IPC over the baseline RR scheduler
for the 2-level scheduler, GTO, and CAWA across all benchmarks.  CAWA
improves Sens applications by 23% on average (GTO 16%, 2-level -2%), with
kmeans speeding up 3.13x.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..stats.report import format_table
from ..workloads import NON_SENS_WORKLOADS, SENS_WORKLOADS
from .runner import run_scheme

SCHEMES = ["two_level", "gto", "cawa"]


def run(
    scale: float = 1.0,
    config=None,
    workloads: Optional[List[str]] = None,
    schemes: Optional[List[str]] = None,
) -> Dict[Tuple[str, str], float]:
    """Speedup over RR for every (workload, scheme) pair."""
    names = workloads or (SENS_WORKLOADS + NON_SENS_WORKLOADS)
    data = {}
    for name in names:
        base = run_scheme(name, "rr", scale=scale, config=config)
        for scheme in schemes or SCHEMES:
            result = run_scheme(name, scheme, scale=scale, config=config)
            data[(name, scheme)] = result.speedup_over(base)
    return data


def summarize(data: Dict[Tuple[str, str], float]) -> Dict[Tuple[str, str], float]:
    """Mean speedups per scheme over Sens / Non-sens / all groups."""
    summary = {}
    groups = {
        "Sens": SENS_WORKLOADS,
        "Non-sens": NON_SENS_WORKLOADS,
        "all": SENS_WORKLOADS + NON_SENS_WORKLOADS,
    }
    schemes = sorted({scheme for _, scheme in data})
    for label, names in groups.items():
        for scheme in schemes:
            values = [data[(n, scheme)] for n in names if (n, scheme) in data]
            if values:
                summary[(label, scheme)] = sum(values) / len(values)
    return summary


def render(data: Dict[Tuple[str, str], float]) -> str:
    schemes = sorted({scheme for _, scheme in data})
    names = [n for n in SENS_WORKLOADS + NON_SENS_WORKLOADS
             if any((n, s) in data for s in schemes)]
    rows = [
        [name] + [f"{data[(name, s)]:.2f}x" for s in schemes if (name, s) in data]
        for name in names
    ]
    table = format_table(["benchmark"] + schemes, rows)
    summary = summarize(data)
    lines = ["Figure 9: IPC normalized to baseline RR", table, ""]
    for (label, scheme), value in summary.items():
        lines.append(f"{label:<9} {scheme:<10} mean speedup: {value:.2f}x "
                     f"({value - 1:+.1%})")
    return "\n".join(lines)


def main() -> None:  # pragma: no cover
    print(render(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
