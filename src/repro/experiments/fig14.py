"""Figure 14 — L1D hit rate of critical-warp requests, normalized to RR.

CACP's explicit prioritization lifts the critical warps' hit rate by 2.46x
on average (7.22x for kmeans) in the paper, while criticality-oblivious
schedulers improve it less consistently.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..stats.report import format_table
from ..workloads import SENS_WORKLOADS
from .runner import run_scheme

SCHEMES = ["two_level", "gto", "cawa"]


def run(
    scale: float = 1.0,
    config=None,
    workloads: Optional[List[str]] = None,
) -> Dict[Tuple[str, str], float]:
    names = workloads or SENS_WORKLOADS
    data = {}
    for name in names:
        base = run_scheme(name, "rr", scale=scale, config=config)
        base_rate = base.critical_hit_rate or 1e-9
        for scheme in SCHEMES:
            result = run_scheme(name, scheme, scale=scale, config=config)
            data[(name, scheme)] = result.critical_hit_rate / base_rate
    return data


def render(data: Dict[Tuple[str, str], float]) -> str:
    names = sorted({name for name, _ in data}, key=SENS_WORKLOADS.index)
    rows = [
        [name] + [f"{data[(name, s)]:.2f}x" for s in SCHEMES]
        for name in names
    ]
    means = [sum(data[(n, s)] for n in names) / len(names) for s in SCHEMES]
    rows.append(["mean"] + [f"{m:.2f}x" for m in means])
    return (
        "Figure 14: critical-warp L1D hit rate normalized to baseline RR\n"
        + format_table(["benchmark"] + SCHEMES, rows)
    )


def main() -> None:  # pragma: no cover
    print(render(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
