"""Exception hierarchy for the CAWA reproduction simulator."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class KernelBuildError(ReproError):
    """Raised when a kernel is malformed (bad labels, unbalanced blocks...)."""


class KernelValidationError(ReproError):
    """Raised when a finalized kernel fails static validation."""


class SimulationError(ReproError):
    """Raised when the simulator reaches an inconsistent state."""


class LintError(ReproError):
    """Raised when a kernel is finalized with ``lint="error"`` and the
    static analyzer (:mod:`repro.analysis`) reports an unwaived
    ERROR-severity finding."""


class CPLBoundsError(SimulationError):
    """Raised in ``GPUConfig.check_cpl_bounds`` debug mode when the dynamic
    CPL ``nInst`` accounting escapes the static path-length envelope
    computed by :mod:`repro.analysis.pathlen`."""


class ConfigError(ReproError):
    """Raised for invalid simulator configurations."""


class DeadlockError(SimulationError):
    """Raised when no warp can ever make progress again."""


class LaunchError(ReproError):
    """Raised for invalid kernel launch parameters."""


class TraceError(ReproError):
    """Base class for trace-driven frontend errors (:mod:`repro.trace`)."""


class TraceFormatError(TraceError):
    """Raised when a trace file is corrupt, truncated, or uses an
    incompatible trace-format version."""


class TraceMismatchError(TraceError):
    """Raised when a structurally valid trace does not match the current
    run: wrong functional config fingerprint, kernel, launch geometry, or
    an exhausted / missing launch sequence."""
