"""Exception hierarchy for the CAWA reproduction simulator."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class KernelBuildError(ReproError):
    """Raised when a kernel is malformed (bad labels, unbalanced blocks...)."""


class KernelValidationError(ReproError):
    """Raised when a finalized kernel fails static validation."""


class SimulationError(ReproError):
    """Raised when the simulator reaches an inconsistent state."""


class ConfigError(ReproError):
    """Raised for invalid simulator configurations."""


class DeadlockError(SimulationError):
    """Raised when no warp can ever make progress again."""


class LaunchError(ReproError):
    """Raised for invalid kernel launch parameters."""
