"""Job model and priority queue for the simulation service.

Everything here is synchronous, single-threaded data-structure code — the
asyncio server (:mod:`repro.serve.server`) calls it only from the event
loop, and the unit tests (``tests/test_serve_queue.py``) exercise it with
no sockets at all.  Three policies live in :class:`JobQueue`:

* **Admission control / back-pressure** — at most ``max_queue`` jobs may
  wait; beyond that submission raises :class:`QueueFull` (HTTP 503), which
  tells clients to retry later instead of buffering unbounded work.
* **Per-tenant quotas** — each tenant may have at most ``tenant_quota``
  in-flight (queued + running) jobs; beyond that :class:`QuotaExceeded`
  (HTTP 429).  Coalesced joins are exempt: they add zero work.
* **Request coalescing** — every spec has a content-addressed
  :meth:`JobSpec.fingerprint` built on the same
  :meth:`~repro.config.GPUConfig.fingerprint` machinery as the result
  cache.  Submitting a spec whose fingerprint matches a queued or running
  job *joins* that job instead of creating a new one; all subscribers see
  the same progress stream and receive the identical result payload.  A
  coalesced interactive join escalates a batch primary's priority (the
  work is now interactive for someone).

Priority is two-class — ``interactive`` before ``batch`` — with FIFO
order inside each class.  The executor-slot reservation that stops batch
jobs from starving interactive ones lives in the server's dispatch loop
(see :attr:`repro.serve.config.ServerConfig.batch_slots`); the queue just
answers "best eligible job, please" via :meth:`JobQueue.pop`.
"""

from __future__ import annotations

import hashlib
import heapq
import json
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..config import GPUConfig
from ..errors import ReproError

#: Job kinds the service executes.
KINDS = ("run", "sweep", "figure")
#: Priority classes, in dispatch order.
PRIORITIES = ("interactive", "batch")
#: Numeric priority values (lower dispatches first).
_PRIORITY_VALUE = {"interactive": 0, "batch": 10}
#: Device knobs a job payload may override on the base GPUConfig.
#: ``backend``/``clock``/``shards``/``frontend`` are
#: bit-identical-by-contract selectors (excluded from the result
#: fingerprint), so they change how fast a job runs, never its answer.
#: ``sampling`` is the exception: it trades accuracy for speed, *does*
#: change the reported numbers, and is therefore part of the config
#: fingerprint — jobs differing only in ``sampling`` never coalesce
#: (the coalescing fingerprint is built from config fingerprints).
DEVICE_KNOBS = ("backend", "clock", "shards", "frontend", "sampling")

#: Job lifecycle states.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"
TERMINAL = (DONE, FAILED, CANCELLED)


class JobSpecError(ReproError):
    """A job payload failed validation (HTTP 400)."""


class QuotaExceeded(ReproError):
    """Tenant has too many in-flight jobs (HTTP 429)."""


class QueueFull(ReproError):
    """Queue is at its admission bound (HTTP 503 + Retry-After)."""


@dataclass(frozen=True)
class JobSpec:
    """Validated, immutable description of one requested execution."""

    kind: str
    workloads: Tuple[str, ...]
    schemes: Tuple[str, ...]
    scale: float = 1.0
    figure: int = 0
    fermi: bool = False
    check: bool = True
    events: bool = False
    priority: str = "interactive"
    device: Tuple[Tuple[str, object], ...] = ()

    @classmethod
    def from_payload(cls, payload: dict) -> "JobSpec":
        """Build and validate a spec from a request body.

        Raises :class:`JobSpecError` with a client-addressable message on
        any problem; never lets a malformed payload reach the simulator.
        """
        from ..core.cawa import SCHEMES
        from ..workloads import workload_names

        if not isinstance(payload, dict):
            raise JobSpecError("job payload must be a JSON object")
        known = {"kind", "workload", "workloads", "scheme", "schemes",
                 "scale", "figure", "fermi", "check", "events", "priority",
                 "device", "tenant"}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise JobSpecError(f"unknown job field(s): {', '.join(unknown)}")

        kind = payload.get("kind", "run")
        if kind not in KINDS:
            raise JobSpecError(
                f"kind must be one of {'/'.join(KINDS)}, got {kind!r}"
            )

        def _names(single_key: str, plural_key: str, default=None):
            if single_key in payload and plural_key in payload:
                raise JobSpecError(
                    f"give either {single_key!r} or {plural_key!r}, not both"
                )
            if single_key in payload:
                return (str(payload[single_key]),)
            if plural_key in payload:
                raw = payload[plural_key]
                if isinstance(raw, str):
                    raw = [s for s in raw.split(",") if s]
                if not isinstance(raw, (list, tuple)) or not raw:
                    raise JobSpecError(
                        f"{plural_key!r} must be a non-empty list"
                    )
                return tuple(str(x) for x in raw)
            return default

        valid_workloads = set(workload_names(include_synthetic=True))
        valid_schemes = set(SCHEMES)

        figure = 0
        if kind == "figure":
            figure = payload.get("figure")
            if not isinstance(figure, int):
                raise JobSpecError("figure jobs need an integer 'figure'")
            from ..cli import FIGURES

            if figure not in FIGURES:
                raise JobSpecError(
                    f"no module for figure {figure}; available: {FIGURES}"
                )
            workloads: Tuple[str, ...] = ()
            schemes: Tuple[str, ...] = ()
        elif kind == "run":
            workloads = _names("workload", "workloads")
            schemes = _names("scheme", "schemes", ("rr",))
            if workloads is None:
                raise JobSpecError("run jobs need a 'workload'")
            if len(workloads) != 1 or len(schemes) != 1:
                raise JobSpecError(
                    "run jobs take exactly one workload and one scheme; "
                    "use kind='sweep' for grids"
                )
        else:  # sweep
            workloads = _names("workload", "workloads") or tuple(
                workload_names()
            )
            schemes = _names("scheme", "schemes", ("rr", "gto", "cawa"))

        for name in workloads:
            if name not in valid_workloads:
                raise JobSpecError(f"unknown workload {name!r}")
        for name in schemes:
            if name not in valid_schemes:
                raise JobSpecError(f"unknown scheme {name!r}")

        scale = payload.get("scale", 1.0)
        if not isinstance(scale, (int, float)) or scale <= 0:
            raise JobSpecError(f"scale must be a positive number, got {scale!r}")

        priority = payload.get("priority", "auto")
        if priority == "auto":
            # Small single-cell runs are interactive; grids and figures
            # are batch.  Callers can always override explicitly.
            priority = "interactive" if kind == "run" else "batch"
        if priority not in PRIORITIES:
            raise JobSpecError(
                f"priority must be one of {'/'.join(PRIORITIES)} or 'auto', "
                f"got {priority!r}"
            )

        device_raw = payload.get("device", {})
        if not isinstance(device_raw, dict):
            raise JobSpecError("'device' must be an object of config knobs")
        bad = sorted(set(device_raw) - set(DEVICE_KNOBS))
        if bad:
            raise JobSpecError(
                f"unsupported device knob(s): {', '.join(bad)}; "
                f"supported: {', '.join(DEVICE_KNOBS)}"
            )
        device = tuple(sorted(device_raw.items()))

        spec = cls(
            kind=kind,
            workloads=workloads,
            schemes=schemes,
            scale=float(scale),
            figure=figure,
            fermi=bool(payload.get("fermi", False)),
            check=bool(payload.get("check", True)),
            events=bool(payload.get("events", False)),
            priority=priority,
            device=device,
        )
        spec.build_config()  # validate device knobs eagerly (ConfigError -> 400)
        return spec

    def build_config(self) -> GPUConfig:
        """Materialize the base :class:`GPUConfig` for this job."""
        from ..errors import ConfigError

        cfg = GPUConfig.fermi_gtx480() if self.fermi else GPUConfig.default_sim()
        try:
            for knob, value in self.device:
                if knob == "backend":
                    cfg = cfg.with_backend(str(value))
                elif knob == "clock":
                    cfg = cfg.with_clock(str(value))
                elif knob == "frontend":
                    cfg = cfg.with_frontend(str(value))
                elif knob == "shards":
                    cfg = cfg.with_shards(int(value)).with_frontend("trace")
                elif knob == "sampling":
                    cfg = cfg.with_sampling(str(value))
        except (ConfigError, ValueError, TypeError) as exc:
            raise JobSpecError(f"invalid device knob: {exc}") from exc
        return cfg

    @property
    def priority_value(self) -> int:
        return _PRIORITY_VALUE[self.priority]

    def fingerprint(self) -> str:
        """Content-addressed identity for request coalescing.

        Built on the same config fingerprints that key the result cache,
        so "identical request" here means exactly "identical simulated
        outcome".  Tenant and priority are deliberately excluded — two
        tenants asking the same question share one execution (that is the
        multi-tenant shared cache) — as are the speed-only device knobs,
        which are bit-identical by contract (``sampling`` is captured
        automatically: it lives in the config fingerprint this identity
        is built from).  The ``events`` flag *is* included:
        subscribers of an obs-streaming job are promised obs records in
        their SSE feed, which a non-streaming execution would not emit.
        """
        from ..core.cawa import apply_scheme

        base = self.build_config()
        cells = sorted(
            {(w, apply_scheme(base, s).fingerprint())
             for w in self.workloads for s in self.schemes}
        )
        payload = json.dumps(
            {
                "kind": self.kind,
                "cells": cells,
                "scale": self.scale,
                "figure": self.figure,
                "check": self.check,
                "events": self.events,
                "base": base.fingerprint(),
            },
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:20]

    def to_payload(self) -> dict:
        """Round-trippable wire form (what the executor process receives)."""
        out = {
            "kind": self.kind,
            "scale": self.scale,
            "fermi": self.fermi,
            "check": self.check,
            "events": self.events,
            "priority": self.priority,
            "device": dict(self.device),
        }
        if self.kind == "figure":
            out["figure"] = self.figure
        else:
            out["workloads"] = list(self.workloads)
            out["schemes"] = list(self.schemes)
        return out

    def describe(self) -> str:
        """One-line human label for logs and listings."""
        if self.kind == "figure":
            return f"figure {self.figure} @ scale {self.scale:g}"
        cells = f"{'x'.join(self.workloads)} / {'x'.join(self.schemes)}"
        return f"{self.kind} {cells} @ scale {self.scale:g}"


@dataclass
class Job:
    """One admitted execution and its service-side bookkeeping."""

    id: str
    spec: JobSpec
    tenant: str
    fingerprint: str
    state: str = QUEUED
    priority: str = "interactive"
    created: float = field(default_factory=time.time)
    started: Optional[float] = None
    finished: Optional[float] = None
    #: Coalesced subscribers beyond the original submitter.
    waiters: int = 0
    #: Progress records relayed from the executor (see serve.progress).
    progress: List[dict] = field(default_factory=list)
    result: Optional[dict] = None
    error: Optional[str] = None

    @property
    def priority_value(self) -> int:
        return _PRIORITY_VALUE[self.priority]

    def to_dict(self, with_progress: bool = False) -> dict:
        out = {
            "id": self.id,
            "kind": self.spec.kind,
            "describe": self.spec.describe(),
            "state": self.state,
            "priority": self.priority,
            "tenant": self.tenant,
            "fingerprint": self.fingerprint,
            "created": self.created,
            "started": self.started,
            "finished": self.finished,
            "waiters": self.waiters,
            "events": self.spec.events,
            "error": self.error,
            "has_result": self.result is not None,
        }
        if with_progress:
            out["progress"] = list(self.progress)
        return out


class JobQueue:
    """Priority queue with admission control, quotas, and coalescing."""

    def __init__(self, max_queue: int = 64, tenant_quota: int = 8) -> None:
        self.max_queue = max_queue
        self.tenant_quota = tenant_quota
        self.jobs: Dict[str, Job] = {}
        #: Heap of (priority_value, seq, job_id); stale entries (priority
        #: escalated or job no longer queued) are skipped lazily on pop.
        self._heap: List[Tuple[int, int, str]] = []
        self._seq = 0
        #: fingerprint -> job id, for jobs still queued or running.
        self._active_by_fp: Dict[str, str] = {}
        self.counters: Dict[str, int] = {
            "submitted": 0,
            "coalesced": 0,
            "executions": 0,
            "done": 0,
            "failed": 0,
            "cancelled": 0,
            "rejected_quota": 0,
            "rejected_queue_full": 0,
        }

    # -- admission -------------------------------------------------------
    def submit(self, spec: JobSpec, tenant: str = "anon") -> Tuple[Job, bool]:
        """Admit ``spec``; returns ``(job, coalesced)``.

        Coalescing is checked *before* quotas and back-pressure: joining
        an active identical job adds no work, so it must never be
        rejected for capacity reasons.
        """
        fingerprint = spec.fingerprint()
        active_id = self._active_by_fp.get(fingerprint)
        if active_id is not None:
            job = self.jobs[active_id]
            job.waiters += 1
            self.counters["coalesced"] += 1
            if (job.state == QUEUED
                    and spec.priority_value < job.priority_value):
                # An interactive subscriber joined a batch job: the work
                # is interactive for someone now, so escalate.
                job.priority = spec.priority
                self._push(job)
            return job, True

        if self.tenant_inflight(tenant) >= self.tenant_quota:
            self.counters["rejected_quota"] += 1
            raise QuotaExceeded(
                f"tenant {tenant!r} already has {self.tenant_quota} "
                f"in-flight job(s); wait for one to finish"
            )
        if self.queued_count() >= self.max_queue:
            self.counters["rejected_queue_full"] += 1
            raise QueueFull(
                f"job queue is full ({self.max_queue} queued); retry later"
            )

        self._seq += 1
        job = Job(
            id=f"j{self._seq:06d}-{fingerprint[:8]}",
            spec=spec,
            tenant=tenant,
            fingerprint=fingerprint,
            priority=spec.priority,
        )
        self.jobs[job.id] = job
        self._active_by_fp[fingerprint] = job.id
        self._push(job)
        self.counters["submitted"] += 1
        return job, False

    def _push(self, job: Job) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (job.priority_value, self._seq, job.id))

    # -- dispatch --------------------------------------------------------
    def pop(self, allow_batch: bool = True) -> Optional[Job]:
        """Best eligible queued job, or ``None``.

        ``allow_batch=False`` restricts the answer to interactive jobs
        (the server uses this to keep one executor slot reserved).  Stale
        heap entries — cancelled jobs, superseded priorities — are
        discarded as they surface.
        """
        skipped: List[Tuple[int, int, str]] = []
        found: Optional[Job] = None
        while self._heap:
            pvalue, seq, job_id = heapq.heappop(self._heap)
            job = self.jobs.get(job_id)
            if job is None or job.state != QUEUED or job.priority_value != pvalue:
                continue  # stale entry
            if not allow_batch and job.priority == "batch":
                skipped.append((pvalue, seq, job_id))
                continue
            found = job
            break
        for entry in skipped:
            heapq.heappush(self._heap, entry)
        if found is not None:
            found.state = RUNNING
            found.started = time.time()
            self.counters["executions"] += 1
        return found

    # -- state transitions ----------------------------------------------
    def finish(self, job: Job, result: Optional[dict] = None,
               error: Optional[str] = None) -> None:
        """Move a running job to ``done`` or ``failed``."""
        job.finished = time.time()
        if error is None:
            job.state = DONE
            job.result = result
            self.counters["done"] += 1
        else:
            job.state = FAILED
            job.error = error
            self.counters["failed"] += 1
        self._retire(job)

    def cancel(self, job_id: str) -> Job:
        """Cancel a *queued* job (running jobs are never killed)."""
        job = self.jobs.get(job_id)
        if job is None:
            raise KeyError(job_id)
        if job.state != QUEUED:
            raise JobSpecError(
                f"job {job_id} is {job.state}; only queued jobs can be "
                f"cancelled"
            )
        job.state = CANCELLED
        job.finished = time.time()
        self.counters["cancelled"] += 1
        self._retire(job)
        return job

    def _retire(self, job: Job) -> None:
        if self._active_by_fp.get(job.fingerprint) == job.id:
            del self._active_by_fp[job.fingerprint]

    def evict_finished(self, keep: int) -> int:
        """Drop all but the newest ``keep`` terminal jobs; returns count."""
        terminal = [j for j in self.jobs.values() if j.state in TERMINAL]
        terminal.sort(key=lambda j: j.finished or 0.0)
        evicted = 0
        for job in terminal[: max(0, len(terminal) - keep)]:
            del self.jobs[job.id]
            evicted += 1
        return evicted

    # -- introspection ---------------------------------------------------
    def queued_count(self) -> int:
        return sum(1 for j in self.jobs.values() if j.state == QUEUED)

    def running_count(self) -> int:
        return sum(1 for j in self.jobs.values() if j.state == RUNNING)

    def running_batch_count(self) -> int:
        return sum(1 for j in self.jobs.values()
                   if j.state == RUNNING and j.priority == "batch")

    def has_queued_interactive(self) -> bool:
        return any(j.state == QUEUED and j.priority == "interactive"
                   for j in self.jobs.values())

    def tenant_inflight(self, tenant: str) -> int:
        return sum(1 for j in self.jobs.values()
                   if j.tenant == tenant and j.state in (QUEUED, RUNNING))

    def stats(self) -> dict:
        tenants: Dict[str, int] = {}
        for job in self.jobs.values():
            if job.state in (QUEUED, RUNNING):
                tenants[job.tenant] = tenants.get(job.tenant, 0) + 1
        return {
            "queued": self.queued_count(),
            "running": self.running_count(),
            "tenants": tenants,
            "counters": dict(self.counters),
        }
