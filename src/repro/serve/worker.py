"""Executor-process entry point: run one job, report progress, return data.

:func:`execute_job` is the only function the server ever submits to its
:class:`~concurrent.futures.ProcessPoolExecutor`.  It is deliberately
top-level and takes only plain-data arguments (the job payload dict, the
progress-file path, an optional cache-dir override), so it pickles under
any multiprocessing start method.  All heavy lifting is delegated to the
existing library machinery — :func:`repro.experiments.runner.run_scheme`
and friends — which means executor processes share the persistent result
and trace caches with every other client of ``.repro_cache/`` (hardened
for exactly this concurrency in :mod:`repro.fslock`).

Return values and exceptions cross the process boundary, so results are
plain dicts and failures are re-raised as :class:`RuntimeError` with the
original type folded into the message (arbitrary exception classes may
not unpickle in the server process).
"""

from __future__ import annotations

import os
from typing import Optional

from .jobs import JobSpec
from .progress import ObsProgressCollector, ProgressWriter


def execute_job(
    payload: dict,
    progress_path: str,
    cache_dir: Optional[str] = None,
) -> dict:
    """Run the job described by ``payload``; return its result payload."""
    from ..experiments import result_cache

    if cache_dir is not None:
        result_cache.set_cache_dir(cache_dir)

    writer = ProgressWriter(progress_path)
    writer.emit("started", pid=os.getpid())
    try:
        spec = JobSpec.from_payload(payload)
        if spec.kind == "run":
            result_payload = _run_job(spec, writer)
        elif spec.kind == "sweep":
            result_payload = _sweep_job(
                spec, writer, parallel=bool(payload.get("_sweep_parallel"))
            )
        else:
            result_payload = _figure_job(spec)
        writer.emit("finished")
        return result_payload
    except Exception as exc:
        message = f"{type(exc).__name__}: {exc}"
        writer.emit("failed", error=message)
        raise RuntimeError(message) from None
    finally:
        writer.close()


def _run_job(spec: JobSpec, writer: ProgressWriter) -> dict:
    workload, scheme = spec.workloads[0], spec.schemes[0]
    base = spec.build_config()
    if spec.events:
        # Stream live obs progress: run through the event-recording
        # harness with a snapshotting collector on the bus.  Recording
        # runs bypass the result cache by design (the cached entry could
        # not carry the stream), so this path always simulates.
        from ..obs import harness

        collector = ObsProgressCollector(writer)
        result, bus = harness.record_events(
            workload, scheme, scale=spec.scale, config=base,
            collectors=(collector,), check=spec.check,
        )
        collector.finalize(bus.events())
    else:
        from ..experiments.runner import run_scheme

        result = run_scheme(
            workload, scheme, scale=spec.scale, config=base,
            check=spec.check,
        )
    return {
        "kind": "run",
        "workload": workload,
        "scheme": scheme,
        "summary": result.summary(),
        "result": result.to_dict(),
    }


def _sweep_job(spec: JobSpec, writer: ProgressWriter,
               parallel: bool = False) -> dict:
    base = spec.build_config()
    cells = []
    if parallel:
        from ..experiments.runner import run_sweep

        results = run_sweep(
            list(spec.workloads), list(spec.schemes), scale=spec.scale,
            config=base, parallel=True, check=spec.check,
        )
        for (workload, scheme), result in results.items():
            writer.emit("cell", workload=workload, scheme=scheme,
                        cycles=result.cycles)
            cells.append({"workload": workload, "scheme": scheme,
                          "result": result.to_dict()})
    else:
        # Serial grid with a progress record per finished cell; the
        # in-process memo plus the shared disk cache give the same
        # dedup/reuse behaviour as run_sweep.
        from ..experiments.runner import run_scheme

        for workload in spec.workloads:
            for scheme in spec.schemes:
                result = run_scheme(
                    workload, scheme, scale=spec.scale, config=base,
                    check=spec.check,
                )
                writer.emit("cell", workload=workload, scheme=scheme,
                            cycles=result.cycles)
                cells.append({"workload": workload, "scheme": scheme,
                              "result": result.to_dict()})
    return {"kind": "sweep", "cells": cells}


def _figure_job(spec: JobSpec) -> dict:
    import importlib

    module = importlib.import_module(
        f"repro.experiments.fig{spec.figure:02d}"
    )
    data = module.run(scale=spec.scale, config=spec.build_config())
    return {
        "kind": "figure",
        "figure": spec.figure,
        "text": module.render(data),
    }
