"""Progress channel between executor processes and the asyncio server.

A running job's only link back to the server is an append-only JSONL
*progress file* in the server's spool directory: the worker appends one
JSON object per line with a single ``os.write`` on an ``O_APPEND`` file
descriptor (atomic for these record sizes on POSIX), and the server tails
the file and fans new records out to SSE subscribers.  No pipes or
queues cross the executor boundary, so the channel survives any
start-method (fork/spawn) and needs no cleanup protocol — the server
unlinks the file when the job is evicted.

Record kinds (the ``kind`` field):

``started``
    the executor picked the job up (carries the worker ``pid``).
``cell``
    a sweep finished one grid cell (``workload``, ``scheme``, ``cycles``).
``obs``
    periodic snapshot from the live :mod:`repro.obs` event bus of an
    events-enabled run: events emitted so far, current simulated cycle,
    and the issue/stall counts seen since the last snapshot.
``obs_summary``
    end-of-run totals per event kind (from the same bus).
``finished`` / ``failed``
    terminal worker-side records; the server appends its own ``result``
    availability marker when the executor future resolves.
"""

from __future__ import annotations

import json
import os
from typing import Optional


class ProgressWriter:
    """Append-only JSONL writer used inside executor processes."""

    def __init__(self, path: os.PathLike) -> None:
        self._path = os.fspath(path)
        os.makedirs(os.path.dirname(self._path) or ".", exist_ok=True)
        self._fd = os.open(
            self._path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )

    def emit(self, kind: str, **fields) -> None:
        record = {"kind": kind}
        record.update(fields)
        data = (json.dumps(record, sort_keys=True) + "\n").encode("utf-8")
        try:
            os.write(self._fd, data)
        except OSError:
            # Progress is best-effort; never fail the simulation over it.
            pass

    def close(self) -> None:
        try:
            os.close(self._fd)
        except OSError:
            pass


class ObsProgressCollector:
    """Event-bus collector that periodically snapshots run progress.

    Attached to the job's :class:`repro.obs.bus.EventBus` alongside the
    primary ring (collectors never perturb timing — the obs parity suite
    pins that), it counts events as they are emitted and every
    ``interval`` events writes an ``obs`` progress record: total events,
    the cycle stamp of the triggering event, and how many issue/stall
    events arrived since the previous snapshot.  This is what makes the
    server's SSE feed carry live *simulation* progress rather than just
    queue transitions.
    """

    def __init__(self, writer: ProgressWriter, interval: int = 20000) -> None:
        from ..obs.events import Ev

        self._writer = writer
        self._interval = max(1, interval)
        self._issue_kind = int(Ev.WARP_ISSUE)
        self._stall_kind = int(Ev.WARP_STALL)
        self.seen = 0
        self._issues = 0
        self._stalls = 0
        self.snapshots = 0

    def append(self, ev: tuple) -> None:
        kind = ev[0]
        if kind == self._issue_kind:
            self._issues += 1
        elif kind == self._stall_kind:
            self._stalls += 1
        self.seen += 1
        if self.seen % self._interval == 0:
            self._snapshot(cycle=ev[1])

    def _snapshot(self, cycle) -> None:
        self.snapshots += 1
        self._writer.emit(
            "obs",
            events=self.seen,
            cycle=cycle,
            issues=self._issues,
            stalls=self._stalls,
        )
        self._issues = 0
        self._stalls = 0

    def finalize(self, events: Optional[list] = None) -> None:
        """Flush a final snapshot plus per-kind totals."""
        if self.seen and (self.seen % self._interval) != 0:
            self._snapshot(cycle=None)
        summary = {"events": self.seen}
        if events is not None:
            from ..obs.export import kind_counts

            summary["kinds"] = kind_counts(events)
        self._writer.emit("obs_summary", **summary)


def read_new_records(path: os.PathLike, offset: int):
    """Read complete JSONL records appended after byte ``offset``.

    Returns ``(records, new_offset)``.  A trailing partial line (the
    writer mid-append) is left for the next poll.  A missing file reads
    as empty — the worker may not have started yet.
    """
    try:
        with open(path, "rb") as handle:
            handle.seek(offset)
            chunk = handle.read()
    except OSError:
        return [], offset
    if not chunk:
        return [], offset
    end = chunk.rfind(b"\n")
    if end < 0:
        return [], offset
    complete = chunk[: end + 1]
    records = []
    for line in complete.splitlines():
        if not line.strip():
            continue
        try:
            records.append(json.loads(line))
        except ValueError:
            continue
    return records, offset + len(complete)
