"""The asyncio simulation service (``repro serve``).

One process, one event loop, three moving parts:

* an ``asyncio.start_server`` HTTP/1.1 front end (hand-rolled request
  parsing — the service speaks a deliberately small JSON API and takes no
  dependency beyond the standard library);
* a dispatch loop draining the :class:`~repro.serve.jobs.JobQueue` into a
  :class:`~concurrent.futures.ProcessPoolExecutor` whose workers call
  :func:`repro.serve.worker.execute_job`;
* per-job monitor tasks tailing the worker's progress file and fanning
  records out to Server-Sent-Events subscribers.

API (all JSON unless noted)::

    POST   /jobs              submit (or coalesce into) a job
    GET    /jobs              list known jobs
    GET    /jobs/{id}         job status
    GET    /jobs/{id}/result  result payload (409 until done)
    GET    /jobs/{id}/events  SSE progress stream (text/event-stream)
    DELETE /jobs/{id}         cancel a queued job
    GET    /stats             queue, coalescing, and cache metrics
    GET    /healthz           liveness probe
    POST   /queue/pause       hold dispatch (admission continues)
    POST   /queue/resume      resume dispatch
    POST   /shutdown          graceful shutdown: drain jobs, then exit

Back-pressure surfaces as HTTP 503 + ``Retry-After`` (queue full or
draining) and per-tenant limits as HTTP 429; both are admission-time
rejections, not buffering.  See ``docs/serving.md`` for the full
semantics, ``repro client`` for the CLI that speaks this API, and
:class:`ServerThread` for the embeddable form the tests and smoke script
use.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import json
import multiprocessing
import time
from pathlib import Path
from typing import Dict, List, Optional

from .config import ServerConfig
from .jobs import (
    CANCELLED,
    JobQueue,
    JobSpec,
    JobSpecError,
    QueueFull,
    QuotaExceeded,
    TERMINAL,
)
from .progress import read_new_records
from .worker import execute_job

#: Reason phrases for the handful of statuses the API uses.
_STATUS_TEXT = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 409: "Conflict", 413: "Payload Too Large",
    429: "Too Many Requests", 500: "Internal Server Error",
    503: "Service Unavailable",
}
#: Largest request body the server will read.
_MAX_BODY = 8 * 1024 * 1024
#: Seconds allowed for a client to present its request head and body.
_READ_TIMEOUT = 30.0


class ReproServer:
    """One service instance; create, :meth:`start`, then :meth:`serve_forever`."""

    def __init__(self, config: Optional[ServerConfig] = None) -> None:
        self.config = config or ServerConfig()
        self.queue = JobQueue(
            max_queue=self.config.max_queue,
            tenant_quota=self.config.tenant_quota,
        )
        self.paused = False
        self.draining = False
        self.started_at: Optional[float] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._executor: Optional[concurrent.futures.ProcessPoolExecutor] = None
        self._wake: Optional[asyncio.Event] = None
        self._stopped: Optional[asyncio.Event] = None
        self._scheduler_task: Optional[asyncio.Task] = None
        self._monitors: Dict[str, asyncio.Task] = {}
        self._subscribers: Dict[str, List[asyncio.Queue]] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the socket, spin up the executor and the dispatch loop."""
        self.started_at = time.time()
        self._wake = asyncio.Event()
        self._stopped = asyncio.Event()
        try:
            # Fork keeps executor start-up cheap (workers inherit the
            # already-imported simulator); other platforms fall back to
            # their default start method.
            mp_context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX
            mp_context = None
        self._executor = concurrent.futures.ProcessPoolExecutor(
            max_workers=self.config.workers, mp_context=mp_context
        )
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.config.host,
            port=self.config.port,
        )
        self._scheduler_task = asyncio.ensure_future(self._scheduler())

    @property
    def port(self) -> int:
        """Actual bound port (resolves ``port=0`` ephemeral binds)."""
        assert self._server is not None and self._server.sockets
        return self._server.sockets[0].getsockname()[1]

    @property
    def base_url(self) -> str:
        return f"http://{self.config.host}:{self.port}"

    async def serve_forever(self) -> None:
        """Block until a shutdown completes."""
        assert self._stopped is not None
        await self._stopped.wait()

    async def shutdown(self, drain: bool = True) -> None:
        """Stop the service.

        ``drain=True`` (the graceful path) first refuses new submissions,
        then lets every queued and running job finish, then closes.
        ``drain=False`` cancels queued jobs and waits only for the jobs
        already executing (executor processes are never killed mid-run —
        a half-written cache entry is impossible anyway, but a wasted
        simulation is not).
        """
        self.draining = True
        self.paused = False  # a paused queue must still drain
        if not drain:
            for job in list(self.queue.jobs.values()):
                if job.state == "queued":
                    self.queue.cancel(job.id)
                    self._broadcast(job, {"kind": "complete",
                                          "state": CANCELLED})
        self._kick()
        while any(j.state in ("queued", "running")
                  for j in self.queue.jobs.values()):
            await asyncio.sleep(self.config.progress_poll)
        if self._scheduler_task is not None:
            self._scheduler_task.cancel()
        for task in list(self._monitors.values()):
            task.cancel()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._executor is not None:
            self._executor.shutdown(wait=True)
        assert self._stopped is not None
        self._stopped.set()

    def _kick(self) -> None:
        if self._wake is not None:
            self._wake.set()

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _spool_dir(self) -> Path:
        from ..experiments import result_cache

        base = (Path(self.config.cache_dir) if self.config.cache_dir
                else result_cache.cache_dir())
        return base / "serve"

    def _progress_path(self, job_id: str) -> Path:
        return self._spool_dir() / f"{job_id}.progress.jsonl"

    async def _scheduler(self) -> None:
        assert self._wake is not None
        while True:
            await self._wake.wait()
            self._wake.clear()
            self._dispatch_ready()

    def _dispatch_ready(self) -> None:
        if self.paused:
            return
        assert self._executor is not None
        while True:
            free = self.config.workers - self.queue.running_count()
            if free <= 0:
                return
            allow_batch = (
                self.queue.running_batch_count() < self.config.batch_slots
            )
            job = self.queue.pop(allow_batch=allow_batch)
            if job is None:
                return
            payload = job.spec.to_payload()
            if job.spec.kind == "sweep" and self.config.sweep_parallel:
                payload["_sweep_parallel"] = True
            progress_path = self._progress_path(job.id)
            loop = asyncio.get_event_loop()
            future = loop.run_in_executor(
                self._executor, execute_job, payload, str(progress_path),
                self.config.cache_dir,
            )
            self._broadcast(job, {"kind": "dispatched", "job": job.id})
            self._monitors[job.id] = asyncio.ensure_future(
                self._monitor(job, future, progress_path)
            )

    async def _monitor(self, job, future, progress_path: Path) -> None:
        """Tail the worker's progress file until the executor future
        resolves, then record the outcome and notify subscribers."""
        offset = 0
        try:
            while not future.done():
                offset = self._relay(job, progress_path, offset)
                await asyncio.sleep(self.config.progress_poll)
            self._relay(job, progress_path, offset)
            try:
                result = future.result()
                self.queue.finish(job, result=result)
            except Exception as exc:
                self.queue.finish(job, error=str(exc))
            self._broadcast(job, {
                "kind": "complete",
                "state": job.state,
                "error": job.error,
                "seconds": (job.finished or 0) - (job.started or 0),
            })
        finally:
            self._monitors.pop(job.id, None)
            self._evict_finished()
            self._kick()

    def _relay(self, job, progress_path: Path, offset: int) -> int:
        records, offset = read_new_records(progress_path, offset)
        for record in records:
            self._broadcast(job, record)
        return offset

    def _broadcast(self, job, record: dict) -> None:
        job.progress.append(record)
        for sub in self._subscribers.get(job.id, ()):  # never blocks: unbounded
            sub.put_nowait(record)

    def _evict_finished(self) -> None:
        before = set(self.queue.jobs)
        self.queue.evict_finished(self.config.keep_finished)
        for job_id in sorted(before - set(self.queue.jobs)):
            self._subscribers.pop(job_id, None)
            try:
                self._progress_path(job_id).unlink()
            except OSError:
                pass

    # ------------------------------------------------------------------
    # HTTP front end
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            await self._handle_request(reader, writer)
        except (asyncio.TimeoutError, asyncio.IncompleteReadError,
                ConnectionError):
            pass
        except Exception as exc:  # defensive: one bad request != one crash
            try:
                await self._send_json(writer, 500, {"error": str(exc)})
            except Exception:
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    async def _handle_request(self, reader, writer) -> None:
        request_line = await asyncio.wait_for(
            reader.readline(), timeout=_READ_TIMEOUT
        )
        if not request_line:
            return
        try:
            method, target, _version = (
                request_line.decode("latin-1").strip().split(" ", 2)
            )
        except ValueError:
            await self._send_json(writer, 400, {"error": "bad request line"})
            return
        headers = {}
        while True:
            line = await asyncio.wait_for(
                reader.readline(), timeout=_READ_TIMEOUT
            )
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", 0) or 0)
        if length > _MAX_BODY:
            await self._send_json(writer, 413, {"error": "body too large"})
            return
        body = b""
        if length:
            body = await asyncio.wait_for(
                reader.readexactly(length), timeout=_READ_TIMEOUT
            )
        path = target.split("?", 1)[0]
        await self._route(method.upper(), path, headers, body, writer)

    async def _route(self, method: str, path: str, headers: dict,
                     body: bytes, writer) -> None:
        parts = [p for p in path.split("/") if p]

        if method == "GET" and path == "/healthz":
            await self._send_json(writer, 200, {"ok": True})
        elif method == "GET" and path == "/stats":
            await self._send_json(writer, 200, self._stats())
        elif method == "POST" and path == "/jobs":
            await self._post_jobs(headers, body, writer)
        elif method == "GET" and path == "/jobs":
            jobs = [j.to_dict() for j in self.queue.jobs.values()]
            jobs.sort(key=lambda j: j["created"])
            await self._send_json(writer, 200, {"jobs": jobs})
        elif len(parts) >= 2 and parts[0] == "jobs":
            job = self.queue.jobs.get(parts[1])
            if job is None:
                await self._send_json(
                    writer, 404, {"error": f"no job {parts[1]!r}"}
                )
            elif method == "GET" and len(parts) == 2:
                await self._send_json(writer, 200, {"job": job.to_dict()})
            elif method == "DELETE" and len(parts) == 2:
                await self._cancel(job, writer)
            elif method == "GET" and parts[2:] == ["result"]:
                if job.state == "done":
                    await self._send_json(
                        writer, 200,
                        {"job": job.to_dict(), "payload": job.result},
                    )
                elif job.state == "failed":
                    await self._send_json(
                        writer, 409,
                        {"error": job.error, "job": job.to_dict()},
                    )
                else:
                    await self._send_json(
                        writer, 409,
                        {"error": f"job is {job.state}", "job": job.to_dict()},
                    )
            elif method == "GET" and parts[2:] == ["events"]:
                await self._stream_events(job, writer)
            else:
                await self._send_json(writer, 405, {"error": "unsupported"})
        elif method == "POST" and path == "/queue/pause":
            self.paused = True
            await self._send_json(writer, 200, {"paused": True})
        elif method == "POST" and path == "/queue/resume":
            self.paused = False
            self._kick()
            await self._send_json(writer, 200, {"paused": False})
        elif method == "POST" and path == "/shutdown":
            drain = True
            if body:
                try:
                    drain = bool(json.loads(body).get("drain", True))
                except ValueError:
                    pass
            await self._send_json(
                writer, 202, {"shutting_down": True, "drain": drain}
            )
            asyncio.ensure_future(self.shutdown(drain=drain))
        else:
            await self._send_json(
                writer, 404, {"error": f"no route {method} {path}"}
            )

    async def _post_jobs(self, headers: dict, body: bytes, writer) -> None:
        if self.draining:
            await self._send_json(
                writer, 503, {"error": "server is draining"},
                extra_headers={"Retry-After": "5"},
            )
            return
        try:
            payload = json.loads(body or b"{}")
        except ValueError:
            await self._send_json(writer, 400, {"error": "body is not JSON"})
            return
        tenant = (payload.get("tenant") if isinstance(payload, dict)
                  else None) or headers.get("x-repro-tenant") or "anon"
        try:
            spec = JobSpec.from_payload(payload)
            job, coalesced = self.queue.submit(spec, tenant=str(tenant))
        except JobSpecError as exc:
            await self._send_json(writer, 400, {"error": str(exc)})
            return
        except QuotaExceeded as exc:
            await self._send_json(writer, 429, {"error": str(exc)})
            return
        except QueueFull as exc:
            await self._send_json(
                writer, 503, {"error": str(exc)},
                extra_headers={"Retry-After": "1"},
            )
            return
        if not coalesced:
            self._broadcast(job, {"kind": "queued", "job": job.id,
                                  "priority": job.priority})
        self._kick()
        await self._send_json(
            writer, 200, {"job": job.to_dict(), "coalesced": coalesced}
        )

    async def _cancel(self, job, writer) -> None:
        try:
            self.queue.cancel(job.id)
        except JobSpecError as exc:
            await self._send_json(writer, 409, {"error": str(exc)})
            return
        self._broadcast(job, {"kind": "complete", "state": CANCELLED})
        await self._send_json(writer, 200, {"job": job.to_dict()})

    def _stats(self) -> dict:
        from ..experiments import result_cache
        from ..obs import store as event_store
        from ..trace import store as trace_store

        stats = self.queue.stats()
        stats["server"] = {
            "workers": self.config.workers,
            "batch_slots": self.config.batch_slots,
            "max_queue": self.config.max_queue,
            "tenant_quota": self.config.tenant_quota,
            "paused": self.paused,
            "draining": self.draining,
            "uptime": time.time() - (self.started_at or time.time()),
        }
        stats["cache"] = {
            "results": result_cache.stats(),
            "traces": trace_store.stats(),
            "events": event_store.stats(),
        }
        return stats

    # ------------------------------------------------------------------
    # SSE
    # ------------------------------------------------------------------
    async def _stream_events(self, job, writer) -> None:
        """Server-Sent-Events feed: full history, then live records.

        The snapshot and subscription are taken in one event-loop step
        (no ``await`` in between), so no record can be missed or
        duplicated across the hand-off.  The stream ends after the
        ``complete`` record.
        """
        sub: asyncio.Queue = asyncio.Queue()
        history = list(job.progress)
        live = job.state not in TERMINAL
        if live:
            self._subscribers.setdefault(job.id, []).append(sub)
        try:
            head = (
                "HTTP/1.1 200 OK\r\n"
                "Content-Type: text/event-stream\r\n"
                "Cache-Control: no-store\r\n"
                "Connection: close\r\n"
                "\r\n"
            )
            writer.write(head.encode("latin-1"))
            for record in history:
                await self._send_sse(writer, record)
            if not live:
                if not history or history[-1].get("kind") != "complete":
                    await self._send_sse(
                        writer, {"kind": "complete", "state": job.state,
                                 "error": job.error},
                    )
                return
            while True:
                record = await sub.get()
                await self._send_sse(writer, record)
                if record.get("kind") == "complete":
                    return
        finally:
            subs = self._subscribers.get(job.id)
            if subs and sub in subs:
                subs.remove(sub)

    async def _send_sse(self, writer, record: dict) -> None:
        data = json.dumps(record, sort_keys=True)
        writer.write(f"event: progress\ndata: {data}\n\n".encode("utf-8"))
        await writer.drain()

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    async def _send_json(self, writer, status: int, payload: dict,
                         extra_headers: Optional[dict] = None) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        lines = [
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            "Connection: close",
        ]
        for name, value in (extra_headers or {}).items():
            lines.append(f"{name}: {value}")
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1"))
        writer.write(body)
        await writer.drain()


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
async def run_server(config: Optional[ServerConfig] = None,
                     ready=None) -> None:
    """Start a server and run it until shutdown (the CLI entry point).

    Installs SIGINT/SIGTERM handlers for graceful draining where the
    platform supports them.  ``ready`` (if given) is called with the
    started :class:`ReproServer` — the smoke script uses it to learn the
    ephemeral port.
    """
    import signal

    server = ReproServer(config)
    await server.start()
    loop = asyncio.get_event_loop()
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(
                sig, lambda: asyncio.ensure_future(server.shutdown())
            )
        except NotImplementedError:  # pragma: no cover - non-POSIX loops
            pass
    if ready is not None:
        ready(server)
    print(f"repro serve: listening on {server.base_url} "
          f"({server.config.workers} worker(s))", flush=True)
    await server.serve_forever()
    print("repro serve: drained and stopped", flush=True)


class ServerThread:
    """Run a :class:`ReproServer` on a private event loop in a thread.

    The embeddable form: tests and host applications start a real service
    (real sockets, real executor processes) without blocking the caller::

        handle = ServerThread(ServerConfig(port=0, workers=1))
        handle.start()
        ... talk to handle.base_url ...
        handle.stop()
    """

    def __init__(self, config: Optional[ServerConfig] = None) -> None:
        self.config = config or ServerConfig(port=0)
        self.server: Optional[ReproServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread = None
        self._ready = None

    def start(self, timeout: float = 30.0) -> "ServerThread":
        import threading

        self._ready = threading.Event()
        self._thread = threading.Thread(
            target=self._main, name="repro-serve", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("repro serve thread failed to start")
        return self

    def _main(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        self.server = ReproServer(self.config)

        async def _run():
            await self.server.start()
            assert self._ready is not None
            self._ready.set()
            await self.server.serve_forever()

        try:
            loop.run_until_complete(_run())
        finally:
            loop.close()

    @property
    def base_url(self) -> str:
        assert self.server is not None
        return self.server.base_url

    @property
    def port(self) -> int:
        assert self.server is not None
        return self.server.port

    def stop(self, drain: bool = True, timeout: float = 60.0) -> None:
        if self._loop is None or self._thread is None:
            return
        if not self._loop.is_closed():
            asyncio.run_coroutine_threadsafe(
                self.server.shutdown(drain=drain), self._loop
            )
        self._thread.join(timeout)
