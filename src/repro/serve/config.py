"""Server-side configuration for :mod:`repro.serve`.

Kept separate from :class:`repro.config.GPUConfig` on purpose: a
:class:`ServerConfig` describes the *service* (bind address, worker pool,
admission limits), never the simulated device — device knobs arrive per
job inside the request payload (see :class:`repro.serve.jobs.JobSpec`).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Optional

from ..errors import ConfigError

#: Default TCP port (unassigned in the IANA registry; "GPUB" on a phone pad).
DEFAULT_PORT = 8642
#: Environment variable the client CLI reads for the server base URL.
ENV_SERVER_URL = "REPRO_SERVE_URL"


@dataclass(frozen=True)
class ServerConfig:
    """Tunables for one ``repro serve`` instance.

    Attributes:
        host: bind address (loopback by default — put a real proxy in
            front before exposing the service beyond one machine).
        port: TCP port; ``0`` binds an ephemeral port (the chosen one is
            reported by :meth:`repro.serve.server.ReproServer.port`).
        workers: executor processes simulating jobs.  One slot is held
            back from batch jobs whenever ``workers > 1`` so a small
            interactive run never waits behind a wall of sweeps.
        max_queue: admission-control bound on queued (not yet running)
            jobs; submissions beyond it are rejected with HTTP 503 +
            ``Retry-After`` (back-pressure, not buffering).
        tenant_quota: per-tenant cap on in-flight (queued + running)
            jobs; beyond it submissions get HTTP 429.  Coalesced joins
            are free — they add no work.
        progress_poll: seconds between progress-file polls while relaying
            worker progress to SSE subscribers.
        keep_finished: completed/failed jobs retained for status queries
            before being evicted oldest-first.
        cache_dir: explicit ``.repro_cache`` override handed to executor
            processes (``None``: workers inherit the server's resolution).
        sweep_parallel: let sweep jobs fan out with
            ``run_sweep(parallel=True)`` *inside* their executor process.
            Off by default: the worker pool is already the parallelism
            budget, and nesting pools multiplies processes.
    """

    host: str = "127.0.0.1"
    port: int = DEFAULT_PORT
    workers: int = 2
    max_queue: int = 64
    tenant_quota: int = 8
    progress_poll: float = 0.05
    keep_finished: int = 256
    cache_dir: Optional[str] = None
    sweep_parallel: bool = False

    def __post_init__(self) -> None:
        if self.workers <= 0:
            raise ConfigError(f"workers must be positive, got {self.workers}")
        if self.max_queue <= 0:
            raise ConfigError(
                f"max_queue must be positive, got {self.max_queue}"
            )
        if self.tenant_quota <= 0:
            raise ConfigError(
                f"tenant_quota must be positive, got {self.tenant_quota}"
            )
        if not 0 < self.progress_poll <= 5.0:
            raise ConfigError(
                f"progress_poll must be in (0, 5] seconds, "
                f"got {self.progress_poll}"
            )
        if self.keep_finished < 0:
            raise ConfigError("keep_finished must be non-negative")

    @property
    def batch_slots(self) -> int:
        """Executor slots batch jobs may occupy (interactive reservation)."""
        return self.workers - 1 if self.workers > 1 else 1


def default_server_url() -> str:
    """Base URL the client CLI targets (env override > local default)."""
    return os.environ.get(
        ENV_SERVER_URL, f"http://127.0.0.1:{DEFAULT_PORT}"
    ).rstrip("/")
