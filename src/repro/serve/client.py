"""Thin standard-library client for the simulation service.

:class:`ServeClient` speaks the ``repro serve`` JSON API over
``http.client`` — one connection per request, plus a long-lived streaming
connection for :meth:`ServeClient.watch` (Server-Sent Events).  The
``repro client`` CLI (see :mod:`repro.cli`) is a thin shell around this
class; tests and scripts can use it directly.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Dict, Iterator, Optional, Tuple
from urllib.parse import urlsplit

from ..errors import ReproError
from .config import default_server_url


class ServeClientError(ReproError):
    """The server rejected a request or could not be reached."""

    def __init__(self, message: str, status: int = 0) -> None:
        super().__init__(message)
        self.status = status


class ServeClient:
    """Client for one ``repro serve`` endpoint."""

    def __init__(self, base_url: Optional[str] = None,
                 tenant: str = "anon", timeout: float = 30.0) -> None:
        self.base_url = (base_url or default_server_url()).rstrip("/")
        split = urlsplit(self.base_url)
        if split.scheme != "http" or not split.hostname:
            raise ServeClientError(
                f"server URL must be http://host:port, got {self.base_url!r}"
            )
        self._host = split.hostname
        self._port = split.port or 80
        self.tenant = tenant
        self.timeout = timeout

    # -- plumbing --------------------------------------------------------
    def _connect(self, timeout: Optional[float] = None):
        return http.client.HTTPConnection(
            self._host, self._port, timeout=timeout or self.timeout
        )

    def _request(self, method: str, path: str,
                 payload: Optional[dict] = None) -> Tuple[int, dict]:
        body = None
        headers = {"X-Repro-Tenant": self.tenant}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        conn = self._connect()
        try:
            try:
                conn.request(method, path, body=body, headers=headers)
                response = conn.getresponse()
                raw = response.read()
            except (OSError, http.client.HTTPException) as exc:
                raise ServeClientError(
                    f"cannot reach {self.base_url}: {exc}"
                ) from exc
            try:
                data = json.loads(raw) if raw else {}
            except ValueError:
                data = {"error": raw.decode("utf-8", "replace")}
            return response.status, data
        finally:
            conn.close()

    def _checked(self, method: str, path: str,
                 payload: Optional[dict] = None) -> dict:
        status, data = self._request(method, path, payload)
        if status >= 400:
            raise ServeClientError(
                data.get("error", f"HTTP {status}"), status=status
            )
        return data

    # -- API -------------------------------------------------------------
    def healthz(self) -> dict:
        return self._checked("GET", "/healthz")

    def stats(self) -> dict:
        return self._checked("GET", "/stats")

    def submit(self, spec: dict) -> Tuple[dict, bool]:
        """Submit a job payload; returns ``(job, coalesced)``."""
        data = self._checked("POST", "/jobs", payload=spec)
        return data["job"], bool(data.get("coalesced"))

    def jobs(self) -> list:
        return self._checked("GET", "/jobs")["jobs"]

    def status(self, job_id: str) -> dict:
        return self._checked("GET", f"/jobs/{job_id}")["job"]

    def result(self, job_id: str) -> dict:
        """Result payload of a finished job (raises until it is done)."""
        return self._checked("GET", f"/jobs/{job_id}/result")

    def cancel(self, job_id: str) -> dict:
        return self._checked("DELETE", f"/jobs/{job_id}")["job"]

    def pause(self) -> dict:
        return self._checked("POST", "/queue/pause")

    def resume(self) -> dict:
        return self._checked("POST", "/queue/resume")

    def shutdown(self, drain: bool = True) -> dict:
        return self._checked("POST", "/shutdown", payload={"drain": drain})

    # -- waiting / streaming --------------------------------------------
    def wait(self, job_id: str, timeout: float = 600.0,
             poll: float = 0.1) -> dict:
        """Poll until the job reaches a terminal state; returns its status."""
        deadline = time.monotonic() + timeout
        while True:
            job = self.status(job_id)
            if job["state"] in ("done", "failed", "cancelled"):
                return job
            if time.monotonic() > deadline:
                raise ServeClientError(
                    f"timed out after {timeout:g}s waiting for {job_id} "
                    f"(state {job['state']})"
                )
            time.sleep(poll)

    def watch(self, job_id: str,
              timeout: float = 600.0) -> Iterator[Dict]:
        """Stream the job's SSE progress records as dicts.

        Yields every record (history first, then live) and returns after
        the terminal ``complete`` record.
        """
        conn = self._connect(timeout=timeout)
        try:
            try:
                conn.request("GET", f"/jobs/{job_id}/events",
                             headers={"X-Repro-Tenant": self.tenant})
                response = conn.getresponse()
            except (OSError, http.client.HTTPException) as exc:
                raise ServeClientError(
                    f"cannot reach {self.base_url}: {exc}"
                ) from exc
            if response.status != 200:
                raw = response.read()
                try:
                    message = json.loads(raw).get("error", "")
                except ValueError:
                    message = raw.decode("utf-8", "replace")
                raise ServeClientError(message or f"HTTP {response.status}",
                                       status=response.status)
            for record in _parse_sse(response):
                yield record
                if record.get("kind") == "complete":
                    return
        finally:
            conn.close()


def _parse_sse(stream) -> Iterator[dict]:
    """Decode ``data:`` payloads from a Server-Sent-Events byte stream."""
    data_lines = []
    for raw in stream:
        line = raw.decode("utf-8", "replace").rstrip("\r\n")
        if line == "":
            if data_lines:
                try:
                    yield json.loads("\n".join(data_lines))
                except ValueError:
                    pass
                data_lines = []
            continue
        if line.startswith("data:"):
            data_lines.append(line[5:].lstrip())
