"""Simulation-as-a-service: the ``repro serve`` subsystem.

Wraps the existing library machinery — :func:`repro.experiments.runner`
runs and sweeps, the content-addressed result/trace caches, and the
:mod:`repro.obs` event bus — in a long-lived asyncio HTTP service with a
priority job queue, per-tenant quotas and back-pressure, and request
coalescing keyed on the same config fingerprints that key the result
cache (so concurrent identical requests share one execution and every
subscriber receives the identical result payload).

Public surface:

* :class:`ServerConfig` / :class:`ReproServer` / :func:`run_server` /
  :class:`ServerThread` — the service itself;
* :class:`ServeClient` — the standard-library client the ``repro
  client`` CLI wraps;
* :class:`JobSpec` / :class:`JobQueue` — the job model, importable
  without pulling in asyncio plumbing.

See ``docs/serving.md`` for the API reference and semantics.
"""

from .client import ServeClient, ServeClientError
from .config import DEFAULT_PORT, ServerConfig, default_server_url
from .jobs import (
    Job,
    JobQueue,
    JobSpec,
    JobSpecError,
    QueueFull,
    QuotaExceeded,
)

__all__ = [
    "DEFAULT_PORT",
    "Job",
    "JobQueue",
    "JobSpec",
    "JobSpecError",
    "QueueFull",
    "QuotaExceeded",
    "ReproServer",
    "ServeClient",
    "ServeClientError",
    "ServerConfig",
    "ServerThread",
    "default_server_url",
    "run_server",
]


def __getattr__(name):
    # The server pulls in asyncio + concurrent.futures; load it lazily so
    # `from repro.serve import ServeClient` stays light.
    if name in ("ReproServer", "ServerThread", "run_server"):
        from . import server

        return getattr(server, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
