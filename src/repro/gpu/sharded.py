"""Sharded multi-SM trace replay (``GPUConfig.shards > 1``).

Partitions the device's SMs across worker processes; each worker replays
its shard's SMs with the time-skipping event loop while a coordinator in
the parent process owns the *authoritative* shared L2 and DRAM.  The
result is bit-identical to a serial replay and deterministic across runs
and shard counts.

Why this is safe under the trace frontend only
----------------------------------------------

Replay computes no lane values: warps follow recorded streams, so a shard
needs nothing from global memory, and the only mutable state shared
between SMs is the L2 tag/bank state and the DRAM channel.  The execute
frontend also mutates :class:`~repro.memory.data.GlobalMemory`, which is
why ``shards > 1`` requires ``frontend='trace'``
(:class:`~repro.config.GPUConfig` enforces this at validation time).

Epoch barriers at L2/DRAM interaction boundaries
------------------------------------------------

All intra-shard work (issue, scoreboards, L1 hits, MSHR merges) proceeds
freely inside each worker.  Every *shared* interaction — an L1 miss that
must walk the L2/DRAM — is an epoch boundary: the worker sends the access
to the coordinator and blocks for the completion time.  The coordinator
services accesses in the exact global order the serial loop would have
produced — ascending ``(tick_cycle, sm_id)``, FIFO within one SM tick —
which it can do *conservatively*: it only serves the minimum pending key
once every worker is blocked (on an access, a launch barrier, or
completion), because each worker's future keys are monotonically
non-decreasing.  Between launches the coordinator aligns every shard's
clock to the global maximum commit cycle, exactly like the serial
``GPU.now`` hand-off.

Restrictions (checked up front, reported as :class:`ConfigError`):

* the whole grid must be resident after the initial dispatch (block
  re-dispatch after a commit is a cross-shard wake the workers cannot
  observe);
* live observers cannot cross process boundaries;
* the platform must support ``fork`` (workers inherit the loaded trace
  and constructed device copy-on-write; nothing is pickled).

Determinism & merging: per-shard results are reduced with
:func:`~repro.stats.counters.merge_shard_results` — counters sum, cycles
take the global maximum, block summaries re-sort by ``block_id`` — and the
coordinator substitutes its authoritative L2/DRAM deltas, so the merged
result is independent of worker scheduling.  See ``docs/trace_driven.md``
("Sharded replay").
"""

from __future__ import annotations

import math
import multiprocessing
import traceback
from typing import List, Optional

from ..config import GPUConfig
from ..errors import ConfigError, DeadlockError
from ..memory.hierarchy import AccessOutcome, MemoryHierarchy
from ..memory.request import MemRequest
from ..stats.counters import (
    RunResult,
    merge_shard_results,
    replace_stats,
    subtract_stats,
)
from .clock import DeviceEventHeap


class ShardError(RuntimeError):
    """A sharded-replay worker died; carries the worker's traceback."""


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
class _SharedMemoryClient:
    """Worker-side stand-in for :class:`MemoryHierarchy`.

    The L1 probe, MSHR merge, and MSHR capacity gating run locally (those
    structures are private to the shard's SMs); the L2/DRAM walk crosses
    the pipe to the coordinator, which owns the authoritative shared
    state.  ``begin_tick`` stamps the ordering key — the serial loop
    walks the hierarchy in ascending ``(tick_cycle, sm_id)`` order, and
    the coordinator reproduces exactly that order.
    """

    def __init__(self, conn) -> None:
        self._conn = conn
        self._tick_cycle = 0.0
        self._sm_id = 0

    def begin_tick(self, cycle: float, sm_id: int) -> None:
        self._tick_cycle = cycle
        self._sm_id = sm_id

    def next_event_time(self, now: float) -> float:
        """Shared-side events are the coordinator's business; nothing here
        ever wakes a shard (see :mod:`repro.gpu.clock`)."""
        return math.inf

    def access(self, l1, mshr, req: MemRequest, now: float) -> AccessOutcome:
        """Same walk as :meth:`MemoryHierarchy.access`, L2/DRAM remoted."""
        l1_latency = l1.config.hit_latency
        hit = l1.access(req)
        if hit:
            return AccessOutcome(l1_hit=True, completion=now + l1_latency)
        merged_completion = mshr.lookup(req.line_addr, now)
        if merged_completion is not None:
            return AccessOutcome(
                l1_hit=False,
                completion=max(merged_completion, now + l1_latency),
                merged=True,
            )
        start = mshr.earliest_start(now) + l1_latency
        self._conn.send(
            (
                "acc",
                self._tick_cycle,
                self._sm_id,
                (req.line_addr, req.pc, req.is_load, req.is_critical,
                 req.cycle, req.signature, req.warp_key[1], req.warp_key[2]),
                start,
            )
        )
        completion = self._conn.recv()
        mshr.register(req.line_addr, completion, now=now)
        return AccessOutcome(l1_hit=False, completion=completion)


def _shard_skip_loop(gpu, owned: List, start_cycle: float, proxy) -> float:
    """The worker's event loop: :meth:`GPU._run_skip_loop` restricted to
    the shard's SMs, with the ordering key stamped before every tick.

    No dispatch branch: sharded replay requires the dispatcher exhausted
    after the initial dispatch, so commits can only end the shard's part
    of the launch.
    """
    heap = DeviceEventHeap(len(owned))
    for slot, sm in enumerate(owned):
        heap.schedule(slot, max(sm.next_event_time(start_cycle), start_cycle))
    cycle = start_cycle
    last = start_cycle - 1.0
    while True:
        t = heap.next_time()
        if math.isinf(t):
            for sm in owned:
                sm.detect_deadlock(cycle)
            raise DeadlockError("no warp can make progress (shard)")
        if t - start_cycle > gpu.max_cycles:
            raise DeadlockError(
                f"simulation exceeded {gpu.max_cycles:.0f} cycles; "
                "likely a runaway kernel"
            )
        if t > last + 1.0:
            gpu._launch_skip_jumps += 1
            gpu._launch_cycles_skipped += t - last - 1.0
        cycle = t
        for slot in heap.pop_due(t):
            sm = owned[slot]
            proxy.begin_tick(t, sm.sm_id)
            sm.tick(t)
            wake = sm.next_wake_time(t)
            heap.schedule(slot, wake if wake > t else t + 1.0)
        last = t
        if gpu._commit_pending:
            gpu._commit_pending = False
            if not any(sm.busy for sm in owned):
                return cycle


def _worker_run_launch(gpu, launch, owned: List, scheme: str, proxy):
    """One launch on one shard; mirrors :meth:`GPU.launch` step for step."""
    from ..sm.dispatcher import BlockDispatcher
    from ..trace.replay import make_warp_factory

    launch_trace = gpu._next_launch_trace(
        launch.kernel, launch.grid_dim, launch.block_dim
    )
    factory = make_warp_factory(launch_trace)
    for sm in gpu.sms:
        sm.warp_factory = factory

    dispatcher = BlockDispatcher(
        launch.kernel, launch.grid_dim, launch.block_dim, gpu.config.warp_size
    )
    start_cycle = gpu.now
    snapshots = gpu._snapshot_stats()
    # Every worker performs the SAME deterministic global dispatch over all
    # SMs (it owns a full device copy), so shard-local residency exactly
    # matches the serial run's; foreign SMs simply never tick.
    dispatcher.try_dispatch(gpu.sms, start_cycle)
    if not dispatcher.exhausted:
        raise ConfigError(
            "sharded replay requires the whole grid resident after the "
            f"initial dispatch; {dispatcher.pending} of {launch.grid_dim} "
            "blocks are still pending (dynamic re-dispatch would couple "
            "shards). Reduce grid size, raise per-SM occupancy limits, or "
            "run with shards=1."
        )

    gpu._commit_pending = False
    gpu._launch_cycles_skipped = 0.0
    gpu._launch_skip_jumps = 0
    for sm in gpu.sms:
        sm.on_commit = gpu._note_commit
    try:
        if any(sm.busy for sm in owned):
            cycle = _shard_skip_loop(gpu, owned, start_cycle, proxy)
        else:
            cycle = start_cycle  # shard received no blocks
    finally:
        for sm in gpu.sms:
            sm.on_commit = None
    result = gpu._collect(launch.kernel.name, scheme, cycle - start_cycle, snapshots)
    return result, cycle


def _worker_main(gpu, shard_idx: int, num_shards: int, scheme: str, conn) -> None:
    """Worker process entry point (forked; ``gpu`` inherited, not pickled)."""
    try:
        owned = [sm for sm in gpu.sms if sm.sm_id % num_shards == shard_idx]
        proxy = _SharedMemoryClient(conn)
        for sm in owned:
            sm.lsu.hierarchy = proxy
        if gpu.obs is not None:
            # Every worker dispatches the full grid over its device copy, so
            # foreign SMs would emit duplicate WARP_START events.  Unwire obs
            # from every SM this shard does not own: only owned SMs' events
            # reach the worker's (forked, independent) event buffer.
            owned_ids = {sm.sm_id for sm in owned}
            for sm in gpu.sms:
                if sm.sm_id in owned_ids:
                    continue
                sm.obs = None
                sm.lsu.obs = None
                sm.l1d.obs = None
                sm.mshr.obs = None
                if sm.cpl is not None:
                    sm.cpl.obs = None
                policy = sm.l1d.policy
                if getattr(policy, "name", "") == "cacp":
                    policy.obs = None
        for launch in gpu.trace_program.launches:
            result, end_cycle = _worker_run_launch(gpu, launch, owned, scheme, proxy)
            events = gpu.obs.drain() if gpu.obs is not None else None
            # Owned-SM L1 feedback signals recorded this launch (foreign
            # SMs never tick, so they publish nothing — no unwiring
            # needed); L2 signals are the coordinator's.
            signals = gpu.fb_tap.drain() if gpu.fb_tap is not None else None
            conn.send(("launch_done", result.to_dict(), end_cycle, events,
                       signals))
            tag, global_now = conn.recv()
            assert tag == "resume"
            gpu.now = global_now
        conn.send(("finished",))
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        except (BrokenPipeError, OSError):  # pragma: no cover - parent died
            pass
    finally:
        conn.close()


# ----------------------------------------------------------------------
# Coordinator side
# ----------------------------------------------------------------------
def _check_grid_resident(cfg: GPUConfig, program) -> None:
    """Up-front occupancy check mirroring :meth:`SM.can_accept`.

    Raising here (in the parent, before any fork) gives a clean error
    instead of N worker tracebacks.
    """
    for idx, launch in enumerate(program.launches):
        warps_per_block = (
            launch.block_dim + cfg.warp_size - 1
        ) // cfg.warp_size
        regs_per_block = launch.kernel.num_regs * launch.block_dim
        per_sm = min(
            cfg.max_blocks_per_sm,
            cfg.max_warps_per_sm // max(1, warps_per_block),
            cfg.registers_per_sm // max(1, regs_per_block),
        )
        if launch.grid_dim > per_sm * cfg.num_sms:
            raise ConfigError(
                f"sharded replay: launch #{idx} has {launch.grid_dim} blocks "
                f"but only {per_sm * cfg.num_sms} can be resident "
                f"({cfg.num_sms} SMs x {per_sm} blocks); dynamic re-dispatch "
                "would couple shards. Use shards=1 or a wider device config."
            )


def _serve_access(hierarchy: MemoryHierarchy, msg) -> float:
    """Apply one remoted L2/DRAM walk to the authoritative shared state."""
    _, _, sm_id, fields, start = msg
    line_addr, pc, is_load, is_critical, cycle, signature, block, warp = fields
    req = MemRequest(
        line_addr=line_addr,
        pc=pc,
        # Full warp attribution (not (sm, -1, -1)): the coordinator's L2
        # feedback signals and fill bookkeeping carry the same identities
        # a serial replay would, at zero timing impact (nothing on the
        # L2/DRAM walk reads the block/warp indices).
        warp_key=(sm_id, block, warp),
        is_load=is_load,
        is_critical=is_critical,
        cycle=cycle,
        signature=signature,
    )
    l2_hit, queued_start, l2_ready = hierarchy.l2.access(req, start)
    if l2_hit:
        return l2_ready
    return hierarchy.dram.access(queued_start, sm_id)


def replay_program_sharded(
    program,
    config: GPUConfig,
    scheme: str = "",
    oracle: Optional[dict] = None,
    max_cycles: float = 5e7,
    bus=None,
    feedback_tap=None,
) -> List[RunResult]:
    """Replay ``program`` across ``config.shards`` worker processes.

    Returns one merged :class:`RunResult` per launch, bit-identical to a
    serial :func:`~repro.trace.replay.replay_program` of the same config
    (``tests/test_sharded_replay.py`` enforces this).

    Events (``config.events != "off"`` or an explicit ``bus``): each forked
    worker records its owned SMs' events into its own (inherited,
    independent) buffer and ships the drained stream back with each
    ``launch_done`` message; the coordinator records the shared-L2/DRAM
    events itself, merges every stream into the canonical
    ``(cycle, sm, kind, fields)`` order with
    :func:`~repro.obs.collect.merge_event_streams`, and ingests the result
    into the caller-visible bus — byte-identical across shard counts
    (``tests/test_obs_sharded.py``).

    Feedback signals (``feedback_tap``): the same shipping pattern.  Each
    worker records its owned SMs' L1 signals into an inherited per-process
    tap (foreign SMs never tick, so they publish nothing); the coordinator
    records the authoritative shared-L2 signals itself and merges every
    stream into the canonical ``(cycle, sm, kind, fields)`` order with
    :func:`~repro.feedback.signals.merge_signal_streams` before appending
    to the caller's tap — identical streams across shard counts
    (``tests/test_feedback_determinism.py``).
    """
    from .gpu import GPU  # local: avoid import cycle at module load

    if "fork" not in multiprocessing.get_all_start_methods():
        raise ConfigError(
            "sharded replay requires the 'fork' start method (workers "
            "inherit the loaded trace); run with shards=1 on this platform"
        )
    # sanitize: waive FPR001 -- shard partitioning is timing-transparent (conservative PDES, bit-identical)
    num_shards = min(config.shards, config.num_sms)
    _check_grid_resident(config, program)

    # Template device, built once pre-fork: every worker inherits an
    # identical copy (copy-on-write), so per-shard construction order,
    # RNG-free policies, and trace bindings all match the serial run.
    gpu = GPU(config, oracle=oracle, max_cycles=max_cycles, trace=program,
              obs=bus)
    bus = gpu.obs  # result-facing bus (explicit, auto-built, or None)
    hierarchy = MemoryHierarchy(config)  # coordinator's authoritative L2+DRAM
    coord_bus = None
    if bus is not None:
        # The coordinator's own recording of shared-side events (L2 banks,
        # L2 tag array, DRAM).  Kept separate from the result bus so worker
        # streams and coordinator stream can be merged canonically before
        # any attached collector sees a single event.
        from ..obs.bus import bus_from_spec, wire_hierarchy

        # sanitize: waive FPR001 -- event recording never perturbs timing (obs parity grid)
        spec = config.events if config.events != "off" else "on"
        coord_bus = bus_from_spec(spec)
        wire_hierarchy(hierarchy, coord_bus)
    coord_tap = None
    if feedback_tap is not None:
        from ..feedback.channel import FeedbackChannel, SignalTap, attach_signal_tap

        # Worker-side tap on the (pre-fork) template device: every forked
        # worker inherits an independent buffer covering its owned SMs' L1
        # channels.  The coordinator's own tap covers the authoritative
        # shared L2 (the workers' local L2s are never accessed).
        attach_signal_tap(gpu, SignalTap())
        coord_tap = SignalTap()
        coord_ch = FeedbackChannel(-1)
        coord_ch.tap = coord_tap
        hierarchy.l2.cache.fb = coord_ch
        hierarchy.l2.cache.fb_owner = -1
        hierarchy.l2.cache.fb_level = 1

    ctx = multiprocessing.get_context("fork")
    conns = []
    procs = []
    try:
        for w in range(num_shards):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_main,
                args=(gpu, w, num_shards, scheme, child_conn),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            conns.append(parent_conn)
            procs.append(proc)

        merged_results: List[RunResult] = []
        for _ in program.launches:
            l2_before = replace_stats(hierarchy.l2.stats)
            dram_before = hierarchy.dram.accesses
            pending: dict = {}
            done: dict = {}
            while len(done) < num_shards:
                # Conservative barrier: every worker must be blocked (on an
                # access or the launch barrier) before anything is served.
                for w in range(num_shards):
                    if w not in pending and w not in done:
                        msg = conns[w].recv()
                        if msg[0] == "error":
                            raise ShardError(
                                f"shard {w} failed:\n{msg[1]}"
                            )
                        pending[w] = msg
                for w, msg in list(pending.items()):
                    if msg[0] == "launch_done":
                        done[w] = (
                            msg[1], msg[2],
                            msg[3] if len(msg) > 3 else None,
                            msg[4] if len(msg) > 4 else None,
                        )
                        del pending[w]
                if pending:
                    # Serve the globally earliest shared access: keys are
                    # (tick_cycle, sm_id) and each worker's keys are
                    # monotonic, so the minimum pending key is safe.
                    w = min(pending, key=lambda k: (pending[k][1], pending[k][2]))
                    conns[w].send(_serve_access(hierarchy, pending.pop(w)))

            global_end = max(item[1] for item in done.values())
            for w in range(num_shards):
                conns[w].send(("resume", global_end + 1.0))

            parts = [RunResult.from_dict(done[w][0]) for w in range(num_shards)]
            # The workers' local L2/DRAM were never touched; substitute the
            # coordinator's authoritative deltas (merge reads them from the
            # first shard's slot).
            parts[0].l2_stats = subtract_stats(hierarchy.l2.stats, l2_before)
            parts[0].dram_accesses = hierarchy.dram.accesses - dram_before
            merged = merge_shard_results(parts, num_shards)
            if bus is not None:
                from ..obs.collect import merge_event_streams

                streams = [done[w][2] for w in range(num_shards) if done[w][2]]
                coord_events = coord_bus.drain()
                if coord_events:
                    streams.append(coord_events)
                merged_events = merge_event_streams(streams)
                bus.ingest(merged_events)
                merged.extra["events_recorded"] = len(merged_events)
            if feedback_tap is not None:
                from ..feedback.signals import merge_signal_streams

                sig_streams = [
                    done[w][3] for w in range(num_shards) if done[w][3]
                ]
                coord_signals = coord_tap.drain()
                if coord_signals:
                    sig_streams.append(coord_signals)
                feedback_tap.records.extend(merge_signal_streams(sig_streams))
            merged_results.append(merged)

        for w in range(num_shards):
            tag = conns[w].recv()
            if tag[0] == "error":  # pragma: no cover - post-launch failure
                raise ShardError(f"shard {w} failed:\n{tag[1]}")
        return merged_results
    finally:
        for conn in conns:
            conn.close()
        for proc in procs:
            proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover - hung worker
                proc.terminate()
                proc.join(timeout=5.0)
