"""Top-level GPU device model and kernel-launch API."""

from .gpu import GPU

__all__ = ["GPU"]
