"""The GPU device: SMs, shared L2 + DRAM, dispatcher, and the run loops.

Two device clocks are provided (``GPUConfig.clock``):

``"cycle"`` (default)
    Cycle-based with whole-device idle skipping: every completion time is
    known the moment an instruction issues (scoreboard entries and memory
    walk results are future cycles), so when *no* SM can issue the loop
    jumps directly to the earliest wake-up.  While any SM issues, however,
    every SM is ticked every cycle.

``"skip"``
    The time-skipping clock (:mod:`repro.gpu.clock`): a global min-heap of
    per-SM next-event times drives the loop, so only the SMs that can
    actually act at an event time are ticked and the clock jumps straight
    between events.  Bit-identical to the per-cycle clock by contract
    (``tests/test_skip_clock_parity.py``); see ``docs/timing_model.md``
    ("Clock modes").

Both loops count their jumps: ``RunResult.skip_jumps`` is the number of
clock advances larger than one cycle and ``RunResult.cycles_skipped`` the
total number of cycles those advances never visited.
"""

from __future__ import annotations

import math
from typing import Callable, List, Optional

import numpy as np

from ..config import GPUConfig
from ..core.cacp import CACPPolicy
from ..core.cpl import CriticalityPredictor
from ..errors import ConfigError, DeadlockError, LaunchError, TraceMismatchError
from ..memory.data import GlobalMemory
from ..memory.hierarchy import MemoryHierarchy
from ..memory.replacement import make_policy
from ..scheduling.registry import make_scheduler
from ..simt.executor import FunctionalExecutor
from ..sm.dispatcher import BlockDispatcher
from ..sm.sm import StreamingMultiprocessor
from ..stats.counters import RunResult, merge_cache_stats, replace_stats, subtract_stats
from .clock import DeviceEventHeap


class GPU:
    """A simulated GPU devoted to one kernel launch at a time.

    Typical use::

        gpu = GPU(GPUConfig.default_sim().with_scheduler("gcaws"))
        base = gpu.memory.alloc_array(input_data)
        result = gpu.launch(kernel, grid_dim=8, block_dim=256)
        output = gpu.memory.read_array(base, len(input_data))
    """

    def __init__(
        self,
        config: Optional[GPUConfig] = None,
        oracle: Optional[dict] = None,
        max_cycles: float = 5e7,
        trace=None,
        obs=None,
    ) -> None:
        self.config = config or GPUConfig.default_sim()
        self.memory = GlobalMemory()
        self.hierarchy = MemoryHierarchy(self.config)
        self.max_cycles = max_cycles
        self._oracle = oracle
        #: Device clock, persistent across launches: resource timestamps
        #: (DRAM/L2 queues, MSHR completions, scoreboards) are absolute, so
        #: a second launch must start where the first one ended.
        self.now: float = 0.0
        #: Trace-driven frontend state (``config.frontend == "trace"``):
        #: the loaded :class:`~repro.trace.format.TraceProgram` and the
        #: index of the next launch to replay from it.
        self.trace_program = trace
        self._trace_launch_idx = 0
        #: Optional :class:`~repro.trace.recorder.TraceRecorder` capturing
        #: this GPU's issues (see :meth:`attach_recorder`).
        self._recorder = None
        #: Optional :class:`~repro.feedback.SignalTap` recording every
        #: published feedback signal; set by
        #: :func:`repro.feedback.attach_signal_tap` (sharded workers drain
        #: it per launch).
        self.fb_tap = None
        # sanitize: waive FPR001 -- frontend selection is bit-identical by contract (trace parity grid)
        if self.config.frontend == "trace":
            if trace is None:
                raise ConfigError(
                    "GPUConfig.frontend='trace' requires a recorded trace: "
                    "pass GPU(config, trace=TraceProgram.load(path)) or use "
                    "repro.trace.replay_program()"
                )
            # Refuse traces recorded under a different functional config
            # (warp size / L1 line size) before any simulation happens.
            trace.validate(self.config.functional_fingerprint())
            from ..trace.replay import TraceExecutor  # local: import cycle

            executor = TraceExecutor()
        else:
            executor = FunctionalExecutor(self.memory, self.config.warp_size)
        self.sms: List[StreamingMultiprocessor] = []
        # sanitize: waive FPR001 -- observational debug mode: raises on violation, never alters scheduling
        if self.config.use_cpl and self.config.check_cpl_bounds:
            # Debug mode: CPL predictor that cross-checks every dynamic
            # Algorithm-2 delta against the static path-length envelope.
            from ..analysis.pathlen import (  # local: analysis imports core
                CheckedCriticalityPredictor as _PredictorCls,
            )
        else:
            _PredictorCls = CriticalityPredictor
        # sanitize: waive FPR001 -- backend twins are bit-identical (vector parity grid)
        if self.config.backend == "vector":
            from ..sm.vector import VectorSM as _SMCls  # local: optional path
        else:
            _SMCls = StreamingMultiprocessor
        for sm_id in range(self.config.num_sms):
            cpl = (
                _PredictorCls(self.config.cpl_update_period)
                if self.config.use_cpl
                else None
            )
            self.sms.append(
                _SMCls(
                    sm_id=sm_id,
                    config=self.config,
                    hierarchy=self.hierarchy,
                    executor=executor,
                    scheduler_factory=self._scheduler_factory,
                    l1_policy_factory=self._l1_policy_factory,
                    cpl=cpl,
                )
            )
        # sanitize: waive FPR001 -- backend twins are bit-identical (vector parity grid)
        if self.config.backend == "vector":
            # Numpy tag mirrors for every mirrorable cache (the line
            # objects stay authoritative; unknown policies keep the
            # scalar path — see repro.memory.vector).
            from ..memory.vector import attach_mirror

            for sm in self.sms:
                attach_mirror(sm.l1d)
            attach_mirror(self.hierarchy.l2.cache)
        #: Observability event bus (:mod:`repro.obs`), or ``None`` when
        #: ``config.events == "off"``.  An explicit ``obs=`` argument wins
        #: (callers attach collectors before launch); otherwise the GPU
        #: builds one from the config spec, so CLI/runner paths get event
        #: recording just by setting ``events=...``.
        # sanitize: waive FPR001 -- collectors never perturb timing (obs parity grid)
        if obs is None and self.config.events != "off":
            from ..obs.bus import bus_from_spec  # local: keep GPU import light

            # sanitize: waive FPR001 -- collectors never perturb timing (obs parity grid)
            obs = bus_from_spec(self.config.events)
        self.obs = obs
        if obs is not None:
            from ..obs.bus import wire_gpu

            wire_gpu(self, obs)
        # Scheduler–cache co-design coupling (repro.feedback): build the
        # per-SM channels and subscribe interested schedulers, or — in the
        # golden-reference direct mode — verify no scheme needs them.
        # sanitize: waive FPR001 -- feedback wirings are bit-identical by contract (tests/test_feedback_parity.py)
        if self.config.feedback == "channel":
            from ..feedback.channel import wire_gpu_feedback

            wire_gpu_feedback(self)
        else:
            from ..feedback.channel import require_no_subscribers

            require_no_subscribers(self)

    # ------------------------------------------------------------------
    def _scheduler_factory(self):
        name = self.config.scheduler_name
        if name == "caws":
            return make_scheduler(name, oracle=self._oracle)
        return make_scheduler(name)

    def _l1_policy_factory(self):
        if self.config.use_cacp:
            critical_ways = self.config.l1d.critical_ways or self.config.l1d.ways // 2
            return CACPPolicy(
                critical_ways=critical_ways,
                total_ways=self.config.l1d.ways,
                mode=self.config.cacp_mode,
                bypass_no_reuse=self.config.cacp_bypass,
            )
        if self.config.l1d_policy == "drrip":
            return make_policy(
                "drrip",
                sets=self.config.l1d.sets,
                line_size=self.config.l1d.line_size,
            )
        return make_policy(self.config.l1d_policy)

    # ------------------------------------------------------------------
    def attach_recorder(self, recorder) -> None:
        """Record every subsequent launch into ``recorder``.

        Recording is passive (the sink only appends to Python lists), so an
        instrumented run's timing and statistics are identical to a plain
        execution-driven run.
        """
        self._recorder = recorder
        for sm in self.sms:
            sm.trace_sink = recorder

    def _next_launch_trace(self, kernel, grid_dim: int, block_dim: int):
        """Pop and validate the trace for the next replayed launch."""
        from ..trace.format import kernel_fingerprint

        idx = self._trace_launch_idx
        launches = self.trace_program.launches
        if idx >= len(launches):
            raise TraceMismatchError(
                f"trace exhausted: launch #{idx} requested but only "
                f"{len(launches)} launch(es) were recorded"
            )
        launch = launches[idx]
        if (launch.grid_dim, launch.block_dim) != (grid_dim, block_dim):
            raise TraceMismatchError(
                f"launch #{idx} geometry mismatch: trace recorded grid="
                f"{launch.grid_dim} block={launch.block_dim}, run requested "
                f"grid={grid_dim} block={block_dim}"
            )
        if kernel is not launch.kernel and kernel_fingerprint(kernel) != launch.kernel_fp:
            raise TraceMismatchError(
                f"launch #{idx} kernel mismatch: the workload's kernel "
                f"{kernel.name!r} differs from the recorded one "
                f"({launch.kernel.name!r}); re-record the trace"
            )
        self._trace_launch_idx = idx + 1
        return launch

    # ------------------------------------------------------------------
    def launch(self, kernel, grid_dim: int, block_dim: int, scheme: str = "") -> RunResult:
        """Run ``kernel`` over ``grid_dim`` blocks of ``block_dim`` threads."""
        if grid_dim <= 0 or block_dim <= 0:
            raise LaunchError("grid_dim and block_dim must be positive")
        warps_per_block = (block_dim + self.config.warp_size - 1) // self.config.warp_size
        if warps_per_block > self.config.max_warps_per_sm:
            raise LaunchError(
                f"block of {block_dim} threads needs {warps_per_block} warps, "
                f"more than the SM limit of {self.config.max_warps_per_sm}"
            )
        if kernel.num_regs * block_dim > self.config.registers_per_sm:
            raise LaunchError(
                f"block needs {kernel.num_regs * block_dim} registers, more "
                f"than the SM's {self.config.registers_per_sm}"
            )

        # sanitize: waive FPR001 -- frontend selection is bit-identical by contract (trace parity grid)
        if self.config.frontend == "trace":
            from ..trace.replay import make_warp_factory

            launch_trace = self._next_launch_trace(kernel, grid_dim, block_dim)
            factory = make_warp_factory(launch_trace)
            for sm in self.sms:
                sm.warp_factory = factory
        if self._recorder is not None:
            self._recorder.begin_launch(kernel, grid_dim, block_dim)

        dispatcher = BlockDispatcher(kernel, grid_dim, block_dim, self.config.warp_size)
        start_cycle = self.now
        snapshots = self._snapshot_stats()
        events_before = self.obs.emitted if self.obs is not None else 0
        dispatcher.try_dispatch(self.sms, start_cycle)

        # Block commits are reported by the SMs via a callback flag, so the
        # loops never sum per-SM commit counters every cycle.
        self._commit_pending = False
        self._launch_cycles_skipped = 0.0
        self._launch_skip_jumps = 0
        for sm in self.sms:
            sm.on_commit = self._note_commit
        try:
            # sanitize: waive FPR001 -- clock modes are bit-identical (skip-clock parity grid)
            if self.config.clock == "skip":
                cycle = self._run_skip_loop(dispatcher, start_cycle)
            # sanitize: waive FPR001 -- backend twins are bit-identical (vector parity grid)
            elif self.config.backend == "vector":
                cycle = self._run_cycle_loop_vector(dispatcher, start_cycle)
            else:
                cycle = self._run_cycle_loop(dispatcher, start_cycle)
        finally:
            for sm in self.sms:
                sm.on_commit = None

        self.now = cycle + 1
        result = self._collect(kernel.name, scheme, cycle - start_cycle, snapshots)
        if self.obs is not None:
            result.extra["events_recorded"] = self.obs.emitted - events_before
        return result

    # ------------------------------------------------------------------
    # Run loops (see module docstring; bit-identical by contract)
    # ------------------------------------------------------------------
    def _run_cycle_loop(self, dispatcher: BlockDispatcher, start_cycle: float) -> float:
        """Per-cycle clock: tick every SM each cycle, jump only when the
        whole device is stalled.  Returns the final cycle."""
        cycle = start_cycle
        while True:
            issued = False
            for sm in self.sms:
                if sm.tick(cycle):
                    issued = True

            if self._commit_pending:
                self._commit_pending = False
                if not dispatcher.exhausted:
                    dispatcher.try_dispatch(self.sms, cycle + 1)

            busy = any(sm.busy for sm in self.sms)
            if not busy and dispatcher.exhausted:
                return cycle

            if issued:
                cycle += 1
            else:
                wake = min(sm.next_wake_time(cycle) for sm in self.sms)
                if math.isinf(wake):
                    for sm in self.sms:
                        sm.detect_deadlock(cycle)
                    raise DeadlockError("no warp can make progress")
                nxt = max(cycle + 1, wake)
                if nxt > cycle + 1:
                    self._launch_skip_jumps += 1
                    self._launch_cycles_skipped += nxt - cycle - 1
                cycle = nxt

            if cycle - start_cycle > self.max_cycles:
                raise DeadlockError(
                    f"simulation exceeded {self.max_cycles:.0f} cycles; "
                    "likely a runaway kernel"
                )

    def _run_cycle_loop_vector(
        self, dispatcher: BlockDispatcher, start_cycle: float
    ) -> float:
        """Per-cycle clock for the vector backend: a numpy wake array
        replaces the tick-every-SM sweep of :meth:`_run_cycle_loop`.

        Each SM's :meth:`~repro.sm.vector.VectorSM.next_wake_time` is cached
        in ``wakes`` and only the *due* SMs (``wakes <= cycle``, ascending —
        the serial shared-L2/DRAM order) are ticked each cycle; non-due SMs
        cannot issue, so skipping their no-op ticks changes nothing.  Cached
        wakes may *under*-estimate (the SM re-ticks a cycle later, a no-op)
        but never over-estimate: wake times only move early through an SM's
        own issues — refreshed right after its tick — or through block
        dispatch, refreshed below via the dynamic-id marks exactly as in
        :meth:`_run_skip_loop`.  The busy scan runs only after a commit
        (the one transition that can end the launch), mirroring the skip
        loop's structure.  Bit-identical to :meth:`_run_cycle_loop` by the
        parity grid in ``tests/test_vector_backend_parity.py``.
        """
        sms = self.sms
        wakes = np.array(
            [sm.next_wake_time(start_cycle) for sm in sms], dtype=np.float64
        )
        cycle = start_cycle
        while True:
            issued = False
            for i in (wakes <= cycle).nonzero()[0].tolist():
                # Fused tick + next-wake: the tick already knows why each
                # due warp did or did not issue (see VectorSM.tick_wake).
                did, wakes[i] = sms[i].tick_wake(cycle)
                if did:
                    issued = True

            if self._commit_pending:
                self._commit_pending = False
                if not dispatcher.exhausted:
                    marks = [sm._next_dynamic_id for sm in sms]
                    dispatcher.try_dispatch(sms, cycle + 1)
                    for i, (sm, mark) in enumerate(zip(sms, marks)):
                        if sm._next_dynamic_id != mark:
                            wakes[i] = sm.next_wake_time(cycle)
                elif not any(sm.busy for sm in sms):
                    return cycle

            if issued:
                cycle += 1
            else:
                wake = float(wakes.min())
                if math.isinf(wake):
                    for sm in sms:
                        sm.detect_deadlock(cycle)
                    raise DeadlockError("no warp can make progress")
                nxt = max(cycle + 1, wake)
                if nxt > cycle + 1:
                    self._launch_skip_jumps += 1
                    self._launch_cycles_skipped += nxt - cycle - 1
                cycle = nxt

            if cycle - start_cycle > self.max_cycles:
                raise DeadlockError(
                    f"simulation exceeded {self.max_cycles:.0f} cycles; "
                    "likely a runaway kernel"
                )

    def _run_skip_loop(
        self,
        dispatcher: BlockDispatcher,
        start_cycle: float,
        sms: Optional[List[StreamingMultiprocessor]] = None,
    ) -> float:
        """Time-skipping clock: heap-driven event loop over per-SM wakes.

        Ticks only the SMs whose next-event time has arrived, in ``sm_id``
        order (the serial shared-L2/DRAM access order), and jumps the clock
        directly between event times.  Wake-time *under*-estimates (MSHR
        reserve gating, a scheduler declining its ready set) re-tick one
        cycle later, exactly as the per-cycle loop would; block dispatch —
        the only cross-SM waker — refreshes the heap entry of every SM that
        received warps.  Returns the final cycle.

        ``sms`` restricts the loop to a subset of the device's SMs (heap
        slots are positions in the list, which must be in ascending
        ``sm_id`` order).  The sharded-replay workers
        (:mod:`repro.gpu.sharded`) drive their shard's SMs this way; the
        default is the whole device.
        """
        if sms is None:
            sms = self.sms
        heap = DeviceEventHeap(len(sms))
        for slot, sm in enumerate(sms):
            heap.schedule(slot, max(sm.next_event_time(start_cycle), start_cycle))
        cycle = start_cycle
        last = start_cycle - 1.0
        while True:
            t = heap.next_time()
            if math.isinf(t):
                # No SM can ever act again.  A completed launch breaks out
                # at commit time below, so this is a deadlock.
                for sm in sms:
                    sm.detect_deadlock(cycle)
                raise DeadlockError("no warp can make progress")
            if t - start_cycle > self.max_cycles:
                raise DeadlockError(
                    f"simulation exceeded {self.max_cycles:.0f} cycles; "
                    "likely a runaway kernel"
                )
            if t > last + 1.0:
                self._launch_skip_jumps += 1
                self._launch_cycles_skipped += t - last - 1.0
            cycle = t
            for slot in heap.pop_due(t):
                sm = sms[slot]
                sm.tick(t)
                # next_wake_time *is* the SM's next_event_time; called
                # directly because this is the simulator's hottest line.
                wake = sm.next_wake_time(t)
                heap.schedule(slot, wake if wake > t else t + 1.0)
            last = t
            if self._commit_pending:
                self._commit_pending = False
                if not dispatcher.exhausted:
                    # Dispatch is the one cross-SM wake source: newly
                    # resident warps are schedulable from t+1.  Only SMs
                    # that actually received warps can have gained an
                    # earlier wake, detected via the monotonically
                    # increasing per-SM dynamic-warp-id counter.
                    marks = [sm._next_dynamic_id for sm in sms]
                    dispatcher.try_dispatch(self.sms, t + 1.0)
                    for slot, (sm, mark) in enumerate(zip(sms, marks)):
                        if sm._next_dynamic_id != mark:
                            wake = sm.next_wake_time(t)
                            heap.schedule(slot, wake if wake > t else t + 1.0)
                elif not any(sm.busy for sm in sms):
                    return cycle

    def _note_commit(self, _sm) -> None:
        self._commit_pending = True

    # ------------------------------------------------------------------
    def next_event_time(self, now: float) -> float:
        """Earliest event anywhere on the device after ``now``.

        Minimum over every SM's wake time and the shared hierarchy's
        bank/channel frees.  The skip loop itself heaps only the SM wakes
        (the hierarchy terms shape latencies, never issue eligibility); this
        aggregate exists for diagnostics and external drivers such as the
        sharded-replay coordinator (:mod:`repro.gpu.sharded`).
        """
        times = [sm.next_event_time(now) for sm in self.sms]
        times.append(self.hierarchy.next_event_time(now))
        return min(times)

    # ------------------------------------------------------------------
    def _snapshot_stats(self):
        """Capture cumulative counters so per-launch deltas can be reported."""
        return {
            "thread_instructions": sum(s.stats.thread_instructions for s in self.sms),
            "warp_instructions": sum(s.stats.warp_instructions for s in self.sms),
            "blocks": [len(s.completed_blocks) for s in self.sms],
            "l1": [replace_stats(s.l1d.stats) for s in self.sms],
            "l2": replace_stats(self.hierarchy.l2.stats),
            "dram": self.hierarchy.dram.accesses,
        }

    def _collect(self, kernel_name: str, scheme: str, cycles: float, snap) -> RunResult:
        blocks = []
        for sm, done_before in zip(self.sms, snap["blocks"]):
            blocks.extend(sm.completed_blocks[done_before:])
        blocks.sort(key=lambda b: b.block_id)
        l1_now = merge_cache_stats([sm.l1d.stats for sm in self.sms])
        l1_before = merge_cache_stats(snap["l1"])
        trace_id = None
        if self.trace_program is not None:
            trace_id = self.trace_program.trace_id
        elif self._recorder is not None:
            trace_id = "recording"
        return RunResult(
            kernel_name=kernel_name,
            scheme=scheme or self.config.scheduler_name,
            frontend=self.config.frontend,  # sanitize: waive FPR001 -- reporting metadata only
            trace_id=trace_id,
            cycles=cycles,
            thread_instructions=(
                sum(sm.stats.thread_instructions for sm in self.sms)
                - snap["thread_instructions"]
            ),
            warp_instructions=(
                sum(sm.stats.warp_instructions for sm in self.sms)
                - snap["warp_instructions"]
            ),
            l1_stats=subtract_stats(l1_now, l1_before),
            l2_stats=subtract_stats(self.hierarchy.l2.stats, snap["l2"]),
            blocks=blocks,
            dram_accesses=self.hierarchy.dram.accesses - snap["dram"],
            warp_size=self.config.warp_size,
            clock=self.config.clock,  # sanitize: waive FPR001 -- reporting metadata only
            shards=self.config.shards,  # sanitize: waive FPR001 -- reporting metadata only
            events=self.config.events,  # sanitize: waive FPR001 -- reporting metadata only
            backend=self.config.backend,  # sanitize: waive FPR001 -- reporting metadata only
            cycles_skipped=self._launch_cycles_skipped,
            skip_jumps=self._launch_skip_jumps,
        )
