"""The time-skipping device clock (``GPUConfig.clock='skip'``).

The per-cycle run loop (``clock='cycle'``) ticks *every* SM at every cycle
on which *any* SM can issue, and only jumps the clock when the whole device
is stalled.  On memory-bound workloads most of those ticks are no-ops: a
handful of warps issue while every other SM sits scoreboard- or
MSHR-blocked, yet each one still pays a Python call per cycle.

The skip clock inverts the loop.  A :class:`DeviceEventHeap` holds one
entry per event source (in practice: one per SM — see below), carrying the
earliest cycle at which that source can next *act*.  The run loop pops the
heap minimum, ticks exactly the due SMs (in ``sm_id`` order, preserving the
serial loop's shared-L2/DRAM access order), reschedules them at their
post-tick wake time, and jumps the clock straight to the next heap minimum.
Cycles on which no SM can issue are never visited at all.

Why SM wake times are a *sufficient* event set
----------------------------------------------

Every completion time in this simulator is known the moment an instruction
issues (scoreboard writes, MSHR fills, LSU walks).  A non-due SM therefore
cannot change state: its warps' readiness tuples are frozen until its own
next issue, its MSHR drains on a precomputed schedule, and barrier releases
/ block commits only happen *during* one of its own issues.  Shared L2 bank
frees and DRAM channel frees (exposed as ``next_event_time`` on those
components for diagnostics) influence the *latency* of future accesses, not
issue *eligibility* — so they are always dominated by some SM wake and need
no heap entries of their own.  CAWA's quantum edges (Algorithm 2 priority
recomputes, CACP retune epochs) are issue-indexed rather than cycle-indexed
in this codebase, so they too advance only at issue events.  The only
cross-SM waker is block dispatch after a commit, which the run loop handles
by refreshing every SM's heap entry at the dispatch boundary.

Wake times may *under*-estimate (an MSHR-reserve-gated warp can look ready
one entry early; a scheduler may decline a non-empty ready set): the due SM
then ticks without issuing, exactly as the per-cycle loop would have, and
is rescheduled one cycle later.  They must never *over*-estimate — that
invariant is what the cycle-vs-skip parity grid
(``tests/test_skip_clock_parity.py``) enforces bit-identically.
"""

from __future__ import annotations

import heapq
import math
from typing import List


class DeviceEventHeap:
    """Min-heap of next-possible-event times, one slot per event source.

    Each source (SM) has at most one *live* entry; rescheduling a source
    replaces its previous entry via sequence-number lazy invalidation, so
    duplicate times and out-of-date pushes are handled without heap
    surgery.  Times are absolute device cycles (floats, like the rest of
    the timing model); ``math.inf`` parks a source until it is explicitly
    rescheduled (e.g. by a block dispatch).
    """

    __slots__ = ("_heap", "_seq", "_times")

    def __init__(self, num_sources: int) -> None:
        self._heap: list = []  # (time, source, seq)
        self._seq: List[int] = [0] * num_sources
        self._times: List[float] = [math.inf] * num_sources

    # ------------------------------------------------------------------
    def schedule(self, source: int, time: float) -> None:
        """Set ``source``'s next event time, replacing any previous one.

        ``math.inf`` parks the source (no heap entry).  Past times are
        accepted as-is — the run loop clamps to ``now + 1`` where a
        re-tick is what's meant; unit tests exercise raw past pushes.
        """
        self._seq[source] += 1
        self._times[source] = time
        if not math.isinf(time):
            heapq.heappush(self._heap, (time, source, self._seq[source]))

    def scheduled_time(self, source: int) -> float:
        """The source's currently live event time (inf when parked)."""
        return self._times[source]

    # ------------------------------------------------------------------
    def _skim(self) -> None:
        """Drop stale (superseded) entries off the top of the heap."""
        heap = self._heap
        while heap:
            time, source, seq = heap[0]
            if seq == self._seq[source]:
                return
            heapq.heappop(heap)

    def next_time(self) -> float:
        """Earliest live event time across all sources (inf when empty)."""
        self._skim()
        return self._heap[0][0] if self._heap else math.inf

    def fast_forward(self, default: float) -> float:
        """Next live event time, or ``default`` when no source is live.

        The ``default`` is the caller's fallback boundary (e.g. the next
        scheduled quantum edge): an empty heap fast-forwards the clock
        there instead of stalling at the current cycle.
        """
        time = self.next_time()
        return default if math.isinf(time) else time

    def pop_due(self, now: float) -> List[int]:
        """Pop every source whose live event time is ``<= now``.

        Returns the due sources in ascending id order — the serial tick
        order the shared-memory timing model requires.  Popped sources are
        parked until rescheduled.
        """
        due: List[int] = []
        heap = self._heap
        while heap:
            time, source, seq = heap[0]
            if seq != self._seq[source]:
                heapq.heappop(heap)
                continue
            if time > now:
                break
            heapq.heappop(heap)
            self._times[source] = math.inf
            due.append(source)
        due.sort()
        return due

    def __len__(self) -> int:
        """Number of live sources (accurate, not counting stale entries)."""
        return sum(1 for t in self._times if not math.isinf(t))
