"""The probe/event-bus layer: near-zero-cost when disabled.

Every instrumented component (SM, LSU, L1D/L2 tag arrays, MSHR file, DRAM
channel, CPL predictor, CACP policy) carries an ``obs`` attribute that is
``None`` by default.  The *entire* disabled-path cost of the subsystem is
one pointer test per probe site::

    if self.obs is not None:
        self.obs.emit((Ev.CACHE_HIT, cycle, sm, ...))

— no closures, no no-op observers, no per-event allocation.  When
``GPUConfig.events != "off"`` the GPU builds an :class:`EventBus` from the
spec and :func:`wire_gpu` points every component's ``obs`` at it.

The bus owns one primary :class:`~repro.obs.collect.RingCollector` (the
retained recording) and fans every event out to any *attached* collectors
— objects with an ``append(event)`` method, e.g.
:class:`~repro.obs.stalls.StallAccounting` or the event-bus-fed
:class:`~repro.stats.timeline.TimelineProfiler`.  Attaching collectors
never perturbs timing: probes only ever append to Python lists
(``tests/test_obs_parity.py`` pins bit-identical cycles with collectors
on/off across every frontend x clock combination and ``shards=2``).

Buffer specs (``GPUConfig.events``):

===============  ======================================================
``"off"``        no bus; every ``obs`` stays ``None`` (the default)
``"on"``         ring buffer with the default capacity (1 Mi events)
``"ring[:N]"``   drop-oldest ring of N events
``"spill[:N]"``  unbounded recording; chunks of min(N, 64Ki) events are
                 zlib-spilled under ``.repro_cache/events/spill/``
===============  ======================================================
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import ConfigError
from .collect import DEFAULT_CAPACITY, RingCollector

#: Spec keywords accepted by :func:`parse_spec` (besides ``off``).
SPEC_KINDS = ("on", "ring", "spill")


def parse_spec(spec: str):
    """Parse an events spec; returns ``(kind, capacity)`` or raises.

    ``kind`` is ``"off"``, ``"ring"`` or ``"spill"``; ``capacity`` is the
    buffer/chunk size in events.  Shared by :class:`repro.config.GPUConfig`
    validation and :func:`bus_from_spec`, so the two can never drift.
    """
    spec = (spec or "off").strip()
    if spec == "off":
        return "off", 0
    head, _, tail = spec.partition(":")
    if head not in SPEC_KINDS:
        raise ConfigError(
            f"events spec must be 'off', 'on', 'ring[:N]' or 'spill[:N]', "
            f"got {spec!r}"
        )
    if head == "on":
        if tail:
            raise ConfigError(f"events spec 'on' takes no capacity, got {spec!r}")
        return "ring", DEFAULT_CAPACITY
    if not tail:
        return head, DEFAULT_CAPACITY
    try:
        capacity = int(tail)
    except ValueError:
        raise ConfigError(
            f"events spec capacity must be an integer, got {spec!r}"
        ) from None
    if capacity <= 0:
        raise ConfigError(f"events spec capacity must be positive, got {spec!r}")
    return head, capacity


class EventBus:
    """Fan-out point for event records; owns the primary ring collector."""

    __slots__ = ("ring", "spec", "_sinks")

    def __init__(self, capacity: int = DEFAULT_CAPACITY,
                 spill_dir=None, spec: str = "on") -> None:
        self.ring = RingCollector(capacity, spill_dir=spill_dir)
        self.spec = spec
        self._sinks: List = [self.ring]

    # -- hot path -------------------------------------------------------
    def emit(self, ev: tuple) -> None:
        for sink in self._sinks:
            sink.append(ev)

    # -- collector management -------------------------------------------
    def attach(self, collector) -> None:
        """Fan events out to ``collector`` (an object with ``append(ev)``)."""
        if not callable(getattr(collector, "append", None)):
            raise TypeError(
                f"collector {type(collector).__name__} has no append() method"
            )
        self._sinks.append(collector)

    def detach(self, collector) -> None:
        self._sinks.remove(collector)

    @property
    def collectors(self) -> List:
        """Attached collectors (excluding the primary ring)."""
        return self._sinks[1:]

    # -- reads ----------------------------------------------------------
    @property
    def emitted(self) -> int:
        """Total events emitted through this bus (monotonic)."""
        return self.ring.total

    def events(self) -> List[tuple]:
        """Retained events in emission order."""
        return self.ring.events()

    def drain(self) -> List[tuple]:
        """Return retained events and reset the ring (sharded hand-off)."""
        return self.ring.drain()

    def ingest(self, events) -> None:
        """Feed pre-recorded events (e.g. a merged sharded stream) through
        every sink, exactly as if they had been emitted live."""
        for ev in events:
            self.emit(ev)


def bus_from_spec(spec: str) -> Optional[EventBus]:
    """Build an :class:`EventBus` from a ``GPUConfig.events`` spec.

    Returns ``None`` for ``"off"``.  Spill mode resolves its directory
    lazily through :func:`repro.obs.store.spill_dir` (kept out of module
    scope to avoid the ``repro`` package-init import cycle).
    """
    kind, capacity = parse_spec(spec)
    if kind == "off":
        return None
    if kind == "spill":
        from .store import spill_dir  # lazy: store -> result_cache -> repro

        return EventBus(capacity, spill_dir=spill_dir(), spec=spec)
    return EventBus(capacity, spec=spec)


# ----------------------------------------------------------------------
# Wiring
# ----------------------------------------------------------------------
def wire_sms(sms, bus: EventBus) -> None:
    """Point every per-SM probe (SM, LSU, L1D, MSHR, CPL, CACP) at ``bus``.

    Split out from :func:`wire_gpu` because sharded-replay workers own
    only their SMs — the shared hierarchy lives with the coordinator.
    """
    for sm in sms:
        sm.obs = bus
        sm.lsu.obs = bus
        sm.l1d.obs = bus
        sm.l1d.obs_level = 0  # LEVEL_L1D
        sm.l1d.obs_owner = sm.sm_id
        sm.mshr.obs = bus
        sm.mshr.obs_owner = sm.sm_id
        if sm.cpl is not None:
            sm.cpl.obs = bus
            sm.cpl.obs_owner = sm.sm_id
        policy = sm.l1d.policy
        if getattr(policy, "name", "") == "cacp":
            policy.obs = bus


def wire_hierarchy(hierarchy, bus: EventBus) -> None:
    """Point the shared-memory-side probes (L2 banks + tag array, DRAM
    channel) at ``bus``.  The sharded coordinator calls this on its
    authoritative hierarchy; serial runs get it via :func:`wire_gpu`."""
    hierarchy.l2.obs = bus
    hierarchy.l2.cache.obs = bus
    hierarchy.l2.cache.obs_level = 1  # LEVEL_L2
    hierarchy.l2.cache.obs_owner = -1
    hierarchy.dram.obs = bus


def wire_gpu(gpu, bus: EventBus) -> None:
    """Wire a whole serial device (every SM plus the shared hierarchy)."""
    wire_sms(gpu.sms, bus)
    wire_hierarchy(gpu.hierarchy, bus)
