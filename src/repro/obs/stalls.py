"""Per-warp stall-cycle accounting from the event stream.

:class:`StallAccounting` is a bus collector (attach with
:meth:`~repro.obs.bus.EventBus.attach`) that decomposes each warp's
lifetime into *issue* cycles and per-reason *stall* buckets — the paper's
Fig 2c / §3 "why is the critical warp slow" breakdown, reconstructed
purely from :data:`~repro.obs.events.Ev.WARP_ISSUE` /
:data:`~repro.obs.events.Ev.WARP_STALL` events.

The accounting identity: for every issued instruction the gap since the
warp's previous issue is split into ``barrier`` (parked at the block
barrier), ``mem_pending`` / ``scoreboard_dep`` (operands not ready —
waiting on a load vs an ALU/SFU scoreboard entry), and ``no_slot``
(operand-ready but not selected: lost arbitration, MSHR gating).  Summing
issue cycles (one per issue) and all stall buckets therefore reproduces
each warp's active lifetime exactly.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from .events import Ev, STALL_NAMES, Stall

WarpKey = Tuple[int, int, int]  # (sm, block, warp)

_ISSUE = int(Ev.WARP_ISSUE)
_STALL = int(Ev.WARP_STALL)
_FINISH = int(Ev.WARP_FINISH)


class StallAccounting:
    """Aggregates issue counts and per-reason stall cycles per warp."""

    def __init__(self) -> None:
        #: warp -> issue count.
        self.issues: Dict[WarpKey, int] = {}
        #: warp -> {reason code -> stalled cycles}.
        self.stalls: Dict[WarpKey, Dict[int, float]] = {}
        #: warp -> finish cycle (from WARP_FINISH).
        self.finishes: Dict[WarpKey, float] = {}

    # -- bus collector protocol -----------------------------------------
    def append(self, ev: Sequence) -> None:
        kind = ev[0]
        if kind == _ISSUE:
            key = (ev[2], ev[3], ev[4])
            self.issues[key] = self.issues.get(key, 0) + 1
        elif kind == _STALL:
            key = (ev[2], ev[3], ev[4])
            buckets = self.stalls.get(key)
            if buckets is None:
                buckets = self.stalls[key] = {}
            reason = ev[5]
            buckets[reason] = buckets.get(reason, 0.0) + ev[6]
        elif kind == _FINISH:
            self.finishes[(ev[2], ev[3], ev[4])] = ev[1]

    def extend(self, events: Iterable[Sequence]) -> "StallAccounting":
        """Feed a pre-recorded stream (store/export round trips)."""
        for ev in events:
            self.append(ev)
        return self

    # -- aggregation ------------------------------------------------------
    def reason_totals(self) -> Dict[str, float]:
        """Total stalled cycles per reason name across all warps."""
        totals: Dict[int, float] = {}
        for buckets in self.stalls.values():
            for reason, cycles in buckets.items():
                totals[reason] = totals.get(reason, 0.0) + cycles
        return {
            STALL_NAMES.get(reason, str(reason)): cycles
            for reason, cycles in totals.items()
        }

    def issue_cycles(self) -> float:
        """Total issue cycles (one per issued warp instruction)."""
        return float(sum(self.issues.values()))

    def warp_cycles(self) -> float:
        """Total accounted warp-cycles: issue + every stall bucket.

        This is the denominator for the Fig 2c-style shares: each warp's
        active lifetime equals its issue cycles plus its stall cycles, so
        the sum over warps is the device's warp-cycle budget.
        """
        return self.issue_cycles() + sum(self.reason_totals().values())

    def shares(self) -> Dict[str, float]:
        """Fraction of total warp-cycles per stall reason (plus 'issue')."""
        total = self.warp_cycles()
        if total <= 0:
            return {}
        out = {"issue": self.issue_cycles() / total}
        for name, cycles in self.reason_totals().items():
            out[name] = cycles / total
        return out

    def top_reasons(self, n: int = 3) -> List[Tuple[str, float, float]]:
        """Top-``n`` stall reasons as ``(name, cycles, share_of_warp_cycles)``.

        Sorted by cycles descending, name ascending on ties (deterministic).
        """
        total = self.warp_cycles()
        rows = sorted(
            self.reason_totals().items(), key=lambda kv: (-kv[1], kv[0])
        )
        return [
            (name, cycles, cycles / total if total > 0 else 0.0)
            for name, cycles in rows[:n]
        ]

    def per_warp(self) -> Dict[WarpKey, Dict[str, float]]:
        """Per-warp breakdown: issue cycles plus named stall buckets."""
        keys = set(self.issues) | set(self.stalls)
        out: Dict[WarpKey, Dict[str, float]] = {}
        for key in sorted(keys):
            row: Dict[str, float] = {"issue": float(self.issues.get(key, 0))}
            for reason, cycles in self.stalls.get(key, {}).items():
                row[STALL_NAMES.get(reason, str(reason))] = cycles
            out[key] = row
        return out

    def critical_warp(self) -> Tuple[WarpKey, Dict[str, float]]:
        """The warp with the largest accounted lifetime and its breakdown.

        The critical warp in the paper's sense: the one whose cycles
        dominate its block — ``repro events stats`` prints its breakdown
        next to the device-wide one.
        """
        per_warp = self.per_warp()
        if not per_warp:
            raise ValueError("no warp events recorded")
        key = max(per_warp, key=lambda k: (sum(per_warp[k].values()), k))
        return key, per_warp[key]

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly summary (CLI ``--format json``, metric dumps)."""
        return {
            "warps": len(set(self.issues) | set(self.stalls)),
            "issue_cycles": self.issue_cycles(),
            "warp_cycles": self.warp_cycles(),
            "reason_totals": self.reason_totals(),
            "shares": self.shares(),
            "top_reasons": [
                {"reason": name, "cycles": cycles, "share": share}
                for name, cycles, share in self.top_reasons()
            ],
        }

    def format_table(self) -> str:
        """Device-wide stall breakdown as an aligned text table."""
        total = self.warp_cycles()
        lines = [
            f"{'bucket':<16} {'warp-cycles':>14} {'share':>8}",
        ]
        rows: List[Tuple[str, float]] = [("issue", self.issue_cycles())]
        rows.extend(
            sorted(self.reason_totals().items(), key=lambda kv: (-kv[1], kv[0]))
        )
        for name, cycles in rows:
            share = cycles / total if total > 0 else 0.0
            lines.append(f"{name:<16} {cycles:>14.0f} {share:>7.1%}")
        lines.append(f"{'total':<16} {total:>14.0f} {1.0:>7.1%}" if total > 0
                     else f"{'total':<16} {0.0:>14.0f} {'-':>8}")
        return "\n".join(lines)


def format_top_reasons(top: List[Tuple[str, float, float]]) -> str:
    """Compact ``name share%`` rendering for table cells."""
    if not top:
        return "-"
    return "  ".join(f"{name} {share:.0%}" for name, _cycles, share in top)


#: Re-exported for collectors that want to name reasons themselves.
__all__ = [
    "StallAccounting",
    "Stall",
    "STALL_NAMES",
    "format_top_reasons",
]
