"""``repro.obs`` — the structured observability subsystem.

A typed, versioned event schema (:mod:`~repro.obs.events`), a
near-zero-cost probe/event bus (:mod:`~repro.obs.bus`), bounded
collectors with deterministic sharded merging (:mod:`~repro.obs.collect`),
per-warp stall attribution (:mod:`~repro.obs.stalls`), a persistent store
(:mod:`~repro.obs.store`), and Chrome-trace / CSV exporters
(:mod:`~repro.obs.export`).  See ``docs/observability.md``.

Only the leaf modules are imported eagerly — the recording harness
(:func:`record_events`, :func:`record_stalls`) pulls in the GPU and the
experiment runner, so it is exposed via module ``__getattr__`` instead.
"""

from __future__ import annotations

from .bus import EventBus, bus_from_spec, parse_spec, wire_gpu, wire_hierarchy, wire_sms
from .collect import RingCollector, merge_event_streams, sort_events
from .events import (
    EVENT_FIELDS,
    SCHEMA_VERSION,
    STALL_NAMES,
    Ev,
    SchemaError,
    Stall,
    event_to_dict,
    schema_table,
    validate_events,
    validate_schema,
)
from .export import chrome_trace, events_csv, kind_counts, write_chrome_trace
from .stalls import StallAccounting, format_top_reasons

__all__ = [
    "Ev",
    "Stall",
    "SchemaError",
    "SCHEMA_VERSION",
    "STALL_NAMES",
    "EVENT_FIELDS",
    "validate_events",
    "validate_schema",
    "event_to_dict",
    "schema_table",
    "EventBus",
    "bus_from_spec",
    "parse_spec",
    "wire_gpu",
    "wire_sms",
    "wire_hierarchy",
    "RingCollector",
    "sort_events",
    "merge_event_streams",
    "StallAccounting",
    "format_top_reasons",
    "chrome_trace",
    "write_chrome_trace",
    "events_csv",
    "kind_counts",
    "record_events",
    "record_stalls",
]


def __getattr__(name: str):
    if name in ("record_events", "record_stalls"):
        from . import harness

        return getattr(harness, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
