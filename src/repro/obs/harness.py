"""One-call event recording: run a (workload, scheme) cell with a bus.

:func:`record_events` is the programmatic counterpart of ``repro events
record``: it builds an events-enabled config, attaches any caller
collectors *before* launch, runs the cell under whichever frontend /
clock / shards the config selects, and hands back ``(result, bus)``.

Kept in its own module (and exported lazily from ``repro.obs``) because
it imports the GPU and the experiment runner — far too heavy for the
``repro.obs`` leaf modules that the simulator hot paths import.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

from ..config import GPUConfig
from .bus import EventBus, bus_from_spec
from .stalls import StallAccounting


def record_events(
    workload: str,
    scheme: str,
    scale: float = 1.0,
    config: Optional[GPUConfig] = None,
    collectors: Iterable = (),
    check: bool = True,
) -> Tuple[object, EventBus]:
    """Run one cell with the event bus live; return ``(result, bus)``.

    If ``config`` has ``events == "off"`` it is upgraded to ``"on"`` —
    asking to record with events disabled is never what the caller meant.
    Works under both frontends, both clocks, and ``shards > 1`` (the
    coordinator feeds the merged worker streams back through this bus).

    With ``config.sampling != "off"`` the bus observes the *sampled*
    replay: the stream covers only the selected subset (under renumbered
    block ids in blocks mode) and the returned result is a
    :class:`~repro.stats.sampling.SampledRunResult`.  Persisted event
    streams carry the sampling spec in their provenance metadata.
    """
    from ..core.cawa import apply_scheme
    from ..experiments.runner import build_oracle
    from ..gpu import GPU
    from ..workloads import make_workload

    base = config or GPUConfig.default_sim()
    if base.events == "off":
        base = base.with_events("on")
    cfg = apply_scheme(base, scheme)

    bus = bus_from_spec(cfg.events)
    assert bus is not None  # events != "off" by construction
    for collector in collectors:
        bus.attach(collector)

    oracle = (build_oracle(workload, scale, config)
              if cfg.scheduler_name == "caws" else None)

    if cfg.frontend == "trace":
        from .. import trace as trace_mod
        from ..experiments.runner import run_scheme

        program = trace_mod.load_program(workload, scale, cfg, None)
        if program is None:
            # Record the trace once through the standard runner path
            # (events off: the recording run's stream would be the
            # execute frontend's, not the replay we are about to time).
            run_scheme(
                workload, scheme, scale=scale,
                config=base.with_events("off").with_shards(1)
                           .with_sampling("off"),
                check=check, use_cache=False, persistent=False,
            )
            program = trace_mod.load_program(workload, scale, cfg, None)
        if program is None:  # pragma: no cover - store failure
            raise RuntimeError(
                f"could not record a trace for {workload!r} at scale {scale}"
            )
        if cfg.sampling != "off":
            from ..sampling import calibrate as sampling_calibrate
            from ..sampling.replay import replay_sampled

            envelope, source = sampling_calibrate.envelope_for(
                workload, cfg.sampling
            )
            result = replay_sampled(
                program, cfg, scheme=scheme, oracle=oracle, bus=bus,
                envelope_rel=envelope, envelope_source=source,
            )
            return result, bus
        results = trace_mod.replay_program(
            program, cfg, scheme=scheme, oracle=oracle, bus=bus
        )
        return results[-1], bus

    gpu = GPU(cfg, oracle=oracle, obs=bus)
    wl = make_workload(workload, scale=scale)
    result = wl.run(gpu, scheme=scheme, check=check)
    return result, bus


def record_stalls(
    workload: str,
    scheme: str,
    scale: float = 1.0,
    config: Optional[GPUConfig] = None,
    check: bool = True,
) -> Tuple[object, StallAccounting]:
    """Convenience wrapper: record with a stall aggregator attached.

    Returns ``(result, stall_accounting)`` — the Fig 2c breakdown for one
    cell in a single call (used by ``repro profile --compare``'s stall
    columns and ``repro events stats``).
    """
    stalls = StallAccounting()
    result, _bus = record_events(
        workload, scheme, scale=scale, config=config,
        collectors=(stalls,), check=check,
    )
    return result, stalls
