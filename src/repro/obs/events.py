"""Typed, versioned event schema for the observability subsystem.

Every probe in the simulator's hot paths (SM issue, stall accounting, L1D,
MSHR, L2 banks, DRAM, CPL, CACP) emits one *event record*: a plain tuple

    (kind, cycle, sm_id, *fields)

where ``kind`` is an :class:`Ev` code, ``cycle`` the device cycle the event
is stamped with, and ``sm_id`` the originating SM (``-1`` for device-level
components such as the shared L2 tag array).  Tuples — not dataclasses —
keep emission near-free on the hot path and make records trivially
picklable (sharded replay ships per-worker buffers through a pipe) and
JSON-serializable (persistent store, Chrome-trace export).

The schema is *versioned* (:data:`SCHEMA_VERSION`): the per-kind field
lists below are a contract checked by :func:`validate_events`, round-
tripped by :mod:`repro.obs.store`, and rendered by
:mod:`repro.obs.export`.  Extending the schema means appending new kinds
or new trailing fields and bumping the version.

See ``docs/observability.md`` for the full schema table and the
stall-reason taxonomy.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterable, List, Sequence, Tuple

#: Bump on any change to event kinds or their field lists.
SCHEMA_VERSION = 1

#: ``level`` field values for cache events.
LEVEL_L1D = 0
LEVEL_L2 = 1

LEVEL_NAMES = {LEVEL_L1D: "L1D", LEVEL_L2: "L2"}


class Ev(enum.IntEnum):
    """Event kinds.  Values are stable across releases (wire format)."""

    # -- warp lifecycle / issue ----------------------------------------
    WARP_START = 1
    WARP_ISSUE = 2
    WARP_STALL = 3
    WARP_FINISH = 4
    # -- L1D / L2 tag arrays -------------------------------------------
    CACHE_HIT = 10
    CACHE_MISS = 11
    CACHE_FILL = 12
    CACHE_EVICT = 13
    CACHE_BYPASS = 14
    # -- MSHR file ------------------------------------------------------
    MSHR_ALLOC = 20
    MSHR_MERGE = 21
    MSHR_FULL = 22
    # -- shared memory side ----------------------------------------------
    L2_BANK = 30
    DRAM_ENQ = 31
    DRAM_SERVICE = 32
    # -- CAWA components --------------------------------------------------
    CPL_DELTA = 40
    CACP_INSERT = 41
    CACP_PROMOTE = 42
    # -- LSU --------------------------------------------------------------
    LSU_ISSUE = 50


class Stall(enum.IntEnum):
    """Stall-reason taxonomy for :data:`Ev.WARP_STALL` (Paper Fig 2c/§3).

    ``EMPTY_IBUFFER`` is part of the taxonomy for completeness with the
    paper's breakdown but is *reserved* in this simulator: the
    functional-at-issue pipeline has no fetch/decode stage, so an empty
    instruction buffer cannot occur (the count is always zero).
    """

    SCOREBOARD_DEP = 0  # operands waiting on an ALU/SFU scoreboard entry
    NO_SLOT = 1         # operand-ready but lost scheduler arbitration / gated
    MEM_PENDING = 2     # operands waiting on an outstanding load
    BARRIER = 3         # parked at the block barrier
    EMPTY_IBUFFER = 4   # reserved (see class docstring)


STALL_NAMES: Dict[int, str] = {
    Stall.SCOREBOARD_DEP: "scoreboard_dep",
    Stall.NO_SLOT: "no_slot",
    Stall.MEM_PENDING: "mem_pending",
    Stall.BARRIER: "barrier",
    Stall.EMPTY_IBUFFER: "empty_ibuffer",
}


#: Per-kind field names *after* the common ``(kind, cycle, sm_id)`` prefix.
#: This is the schema contract: ``validate_events`` checks arity against it
#: and exporters use the names for CSV headers and slice arguments.
EVENT_FIELDS: Dict[Ev, Tuple[str, ...]] = {
    Ev.WARP_START: ("block", "warp"),
    Ev.WARP_ISSUE: ("block", "warp", "pc", "op"),
    # ``start`` is the first cycle of the stalled interval; ``cycle`` (the
    # common field) is the issue cycle that *ended* the stall.
    Ev.WARP_STALL: ("block", "warp", "reason", "cycles", "start"),
    Ev.WARP_FINISH: ("block", "warp"),
    Ev.CACHE_HIT: ("level", "pc", "line_addr", "critical"),
    Ev.CACHE_MISS: ("level", "pc", "line_addr", "critical"),
    Ev.CACHE_FILL: ("level", "line_addr", "critical"),
    Ev.CACHE_EVICT: ("level", "line_addr", "reused"),
    Ev.CACHE_BYPASS: ("level", "line_addr"),
    Ev.MSHR_ALLOC: ("line_addr", "completion", "outstanding"),
    Ev.MSHR_MERGE: ("line_addr", "completion"),
    Ev.MSHR_FULL: ("outstanding", "free_at"),
    Ev.L2_BANK: ("bank", "hit", "wait"),
    Ev.DRAM_ENQ: ("wait",),
    Ev.DRAM_SERVICE: ("completion",),
    Ev.CPL_DELTA: ("block", "warp", "delta", "criticality"),
    Ev.CACP_INSERT: ("signature", "critical", "rrpv"),
    Ev.CACP_PROMOTE: ("signature", "critical"),
    Ev.LSU_ISSUE: ("block", "warp", "pc", "lines", "completion"),
}

#: Common prefix of every record.
COMMON_FIELDS: Tuple[str, ...] = ("kind", "cycle", "sm")


class SchemaError(ValueError):
    """An event record (or the schema itself) is malformed."""


def validate_schema() -> None:
    """Internal consistency check of the schema tables.

    Raises :class:`SchemaError` on any inconsistency; the CI lint job runs
    this via ``repro events schema --check``.
    """
    for kind in Ev:
        if kind not in EVENT_FIELDS:
            raise SchemaError(f"event kind {kind.name} has no field list")
    for kind in EVENT_FIELDS:
        if not isinstance(kind, Ev):
            raise SchemaError(f"EVENT_FIELDS key {kind!r} is not an Ev")
    for reason in Stall:
        if reason not in STALL_NAMES:
            raise SchemaError(f"stall reason {reason.name} has no name")
    seen = set()
    for kind in Ev:
        if kind.value in seen:  # pragma: no cover - IntEnum forbids dupes
            raise SchemaError(f"duplicate event code {kind.value}")
        seen.add(kind.value)


def validate_events(events: Iterable[Sequence]) -> int:
    """Check every record against the schema; returns the record count.

    Raises :class:`SchemaError` on the first unknown kind, wrong arity, or
    non-numeric cycle/sm field.  Used by the store on load and by
    ``repro events schema --validate``.
    """
    count = 0
    for ev in events:
        count += 1
        if len(ev) < 3:
            raise SchemaError(f"record #{count} too short: {ev!r}")
        try:
            kind = Ev(ev[0])
        except ValueError:
            raise SchemaError(
                f"record #{count} has unknown event kind {ev[0]!r}"
            ) from None
        expected = 3 + len(EVENT_FIELDS[kind])
        if len(ev) != expected:
            raise SchemaError(
                f"record #{count} ({kind.name}) has {len(ev)} fields, "
                f"schema v{SCHEMA_VERSION} expects {expected}"
            )
        if not isinstance(ev[1], (int, float)):
            raise SchemaError(f"record #{count} cycle is not numeric: {ev[1]!r}")
        if not isinstance(ev[2], int):
            raise SchemaError(f"record #{count} sm is not an int: {ev[2]!r}")
        if kind is Ev.WARP_STALL:
            try:
                Stall(ev[5])
            except ValueError:
                raise SchemaError(
                    f"record #{count} has unknown stall reason {ev[5]!r}"
                ) from None
    return count


def event_to_dict(ev: Sequence) -> Dict[str, object]:
    """Name the fields of one record (debugging / JSON metric dumps)."""
    kind = Ev(ev[0])
    out: Dict[str, object] = {
        "kind": kind.name,
        "cycle": ev[1],
        "sm": ev[2],
    }
    for name, value in zip(EVENT_FIELDS[kind], ev[3:]):
        if name == "reason":
            value = STALL_NAMES.get(int(value), str(value))
        elif name == "level":
            value = LEVEL_NAMES.get(int(value), str(value))
        out[name] = value
    return out


def schema_table() -> List[Tuple[str, int, Tuple[str, ...]]]:
    """(name, code, fields) rows for docs and ``repro events schema``."""
    return [(kind.name, int(kind), EVENT_FIELDS[kind]) for kind in Ev]
