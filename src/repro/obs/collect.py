"""Bounded ring-buffer collectors and deterministic event-stream merging.

The primary sink of every :class:`~repro.obs.bus.EventBus` is a
:class:`RingCollector`: a bounded buffer that either *drops oldest* (plain
ring) or *spills* full chunks to zlib-compressed files under
``.repro_cache/events/spill/`` so unbounded recordings stay bounded in
memory.

Canonical ordering
------------------

Serial emission order is **not** cycle-sorted: cache/CACP events are
stamped with the request's LSU issue time (``req.cycle``), which can run
ahead of the tick that emitted them, and sharded replay produces one
stream per worker plus the coordinator's L2/DRAM stream.  Every consumer
that needs a deterministic order therefore goes through
:func:`sort_events` — a stable sort on ``(cycle, sm, kind, fields...)`` —
and sharded merging (:func:`merge_event_streams`) is defined as the
canonical sort of the concatenation.  Two runs that emit the same event
*multiset* thus export byte-identical artifacts regardless of shard count
(``tests/test_obs_sharded.py``).
"""

from __future__ import annotations

import json
import os
import zlib
from collections import deque
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Tuple

#: Default ring capacity (events) for ``events='on'`` / bare ``'ring'``.
DEFAULT_CAPACITY = 1 << 20
#: Events per spill chunk file.
SPILL_CHUNK = 1 << 16


def _sort_key(ev: Sequence) -> Tuple:
    return (ev[1], ev[2], ev[0], ev[3:])


def sort_events(events: Iterable[Sequence]) -> List[tuple]:
    """Canonical deterministic order: ``(cycle, sm, kind, fields)``."""
    return sorted((tuple(ev) for ev in events), key=_sort_key)


def merge_event_streams(streams: Iterable[Iterable[Sequence]]) -> List[tuple]:
    """Deterministically merge per-shard streams into one canonical list.

    Defined as the canonical sort of the concatenation, so the result is
    independent of shard count and worker scheduling as long as the union
    of emitted events matches (which the sharded bit-identity contract
    guarantees).
    """
    merged: List[tuple] = []
    for stream in streams:
        merged.extend(tuple(ev) for ev in stream)
    merged.sort(key=_sort_key)
    return merged


class RingCollector:
    """Bounded event buffer: drop-oldest ring or spill-to-disk chunks."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY,
                 spill_dir: Optional[Path] = None) -> None:
        if capacity <= 0:
            raise ValueError(f"ring capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.spill_dir = Path(spill_dir) if spill_dir is not None else None
        #: Total events ever appended (never decremented).
        self.total = 0
        #: Events discarded by ring overflow (always 0 in spill mode).
        self.dropped = 0
        self._chunks: List[Path] = []
        self._chunk_seq = 0
        if self.spill_dir is not None:
            self._buf: deque = deque()
            self._chunk_size = min(capacity, SPILL_CHUNK)
        else:
            self._buf = deque(maxlen=capacity)

    # -- hot path -------------------------------------------------------
    def append(self, ev: tuple) -> None:
        self.total += 1
        buf = self._buf
        if self.spill_dir is None:
            if len(buf) == self.capacity:
                self.dropped += 1
            buf.append(ev)
            return
        buf.append(ev)
        if len(buf) >= self._chunk_size:
            self._spill()

    # -- spill management ----------------------------------------------
    def _spill(self) -> None:
        self.spill_dir.mkdir(parents=True, exist_ok=True)
        path = self.spill_dir / f"chunk-{os.getpid()}-{self._chunk_seq:06d}.evz"
        self._chunk_seq += 1
        payload = json.dumps([list(ev) for ev in self._buf])
        path.write_bytes(zlib.compress(payload.encode("utf-8"), level=6))
        self._chunks.append(path)
        self._buf.clear()

    @staticmethod
    def _read_chunk(path: Path) -> List[tuple]:
        raw = zlib.decompress(path.read_bytes()).decode("utf-8")
        return [tuple(ev) for ev in json.loads(raw)]

    # -- reads ----------------------------------------------------------
    def events(self) -> List[tuple]:
        """All retained events in emission order (spilled chunks first)."""
        out: List[tuple] = []
        for path in self._chunks:
            out.extend(self._read_chunk(path))
        out.extend(self._buf)
        return out

    def drain(self) -> List[tuple]:
        """Return all retained events and reset the buffer.

        ``total`` keeps counting across drains (it is the emission count,
        not the retention count); spill chunk files are deleted.
        """
        out = self.events()
        self._buf.clear()
        for path in self._chunks:
            try:
                path.unlink()
            except OSError:  # pragma: no cover - already gone
                pass
        self._chunks.clear()
        return out

    def __len__(self) -> int:
        retained = len(self._buf)
        if self.spill_dir is not None:
            retained += len(self._chunks) * self._chunk_size
        return retained
