"""Persistent event-stream store under ``.repro_cache/events/``.

Recorded event streams are artifacts like traces: zlib-compressed JSON
envelopes with a format marker, schema version, and provenance metadata
(workload, scheme, config fingerprint, event count).  ``repro events
record`` writes them; ``repro events stats|export`` read them back, so
an expensive run is recorded once and analyzed many times.

Layout::

    .repro_cache/events/
        <workload>-<scheme>-<scale>-<fingerprint12>.evt.z   saved streams
        spill/                                              RingCollector spill chunks

All imports of :func:`repro.experiments.result_cache.cache_dir` are lazy
(inside functions): ``result_cache`` does ``from .. import __version__``,
which is only defined at the *end* of ``repro/__init__``, so importing it
at module scope from a package-init-reachable module would cycle.
"""

from __future__ import annotations

import json
import zlib
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .. import fslock
from ..errors import ReproError
from .events import SCHEMA_VERSION, validate_events

#: Subdirectory of the repro cache holding event artifacts.
EVENTS_SUBDIR = "events"
#: On-disk format marker.
FORMAT = "repro-events"
#: Bump on envelope (not schema) changes.
FORMAT_VERSION = 1
#: File suffix for saved streams.
SUFFIX = ".evt.z"


class EventStoreError(ReproError):
    """A saved event stream is missing, corrupt, or incompatible."""


def events_dir() -> Path:
    """Root directory for event artifacts (created on demand)."""
    from ..experiments.result_cache import cache_dir  # lazy: import cycle

    path = cache_dir() / EVENTS_SUBDIR
    path.mkdir(parents=True, exist_ok=True)
    return path


def spill_dir() -> Path:
    """Directory for :class:`~repro.obs.collect.RingCollector` spill chunks."""
    path = events_dir() / "spill"
    path.mkdir(parents=True, exist_ok=True)
    return path


def event_key(workload: str, scheme: str, scale: float,
              fingerprint: str) -> str:
    """Stable artifact key: workload x scheme x scale x config fingerprint."""
    scale_tag = f"{scale:g}".replace(".", "p")
    return f"{workload}-{scheme}-{scale_tag}-{fingerprint[:12]}"


def event_path(key: str) -> Path:
    return events_dir() / f"{key}{SUFFIX}"


def save_events(path: Path, events: Iterable[Sequence],
                meta: Optional[Dict[str, object]] = None) -> Path:
    """Write an event stream (validated against the schema) to ``path``."""
    records = [list(ev) for ev in events]
    validate_events(records)
    envelope = {
        "format": FORMAT,
        "version": FORMAT_VERSION,
        "schema_version": SCHEMA_VERSION,
        "meta": dict(meta or {}),
        "count": len(records),
        "events": records,
    }
    path = Path(path)
    payload = json.dumps(envelope, sort_keys=True).encode("utf-8")
    # Atomic (temp + os.replace): a concurrent reader of the same artifact
    # sees either the previous complete stream or this one, never a torn
    # zlib payload.
    fslock.atomic_write_bytes(path, zlib.compress(payload, level=6))
    return path


def load_events(path: Path) -> Tuple[List[tuple], Dict[str, object]]:
    """Read ``(events, meta)`` back; validates format, version, schema."""
    path = Path(path)
    if not path.exists():
        raise EventStoreError(f"no event stream at {path}")
    try:
        envelope = json.loads(zlib.decompress(path.read_bytes()))
    except (zlib.error, ValueError) as exc:
        raise EventStoreError(f"corrupt event stream {path}: {exc}") from exc
    if envelope.get("format") != FORMAT:
        raise EventStoreError(
            f"{path} is not a {FORMAT} artifact "
            f"(format={envelope.get('format')!r})"
        )
    if envelope.get("version") != FORMAT_VERSION:
        raise EventStoreError(
            f"{path} has envelope version {envelope.get('version')!r}, "
            f"this build reads {FORMAT_VERSION}"
        )
    if envelope.get("schema_version") != SCHEMA_VERSION:
        raise EventStoreError(
            f"{path} uses event schema v{envelope.get('schema_version')!r}, "
            f"this build speaks v{SCHEMA_VERSION}"
        )
    events = [tuple(ev) for ev in envelope.get("events", [])]
    validate_events(events)
    return events, dict(envelope.get("meta", {}))


def list_events() -> List[Tuple[str, Path]]:
    """``(key, path)`` for every saved stream, sorted by key."""
    root = events_dir()
    out = [
        (p.name[: -len(SUFFIX)], p)
        for p in sorted(root.glob(f"*{SUFFIX}"))
        if p.is_file()
    ]
    out.sort()
    return out


def stats() -> dict:
    """Entry count and byte total for the event-stream store."""
    root = events_dir()
    out = fslock.dir_stats(root, f"*{SUFFIX}")
    out["dir"] = str(root)
    return out


def gc(
    max_age_seconds: Optional[float] = None,
    max_entries: Optional[int] = None,
    blocking: bool = True,
) -> int:
    """Lock-safe garbage collection of stale event streams (and spill
    chunks), same contract as :func:`repro.experiments.result_cache.gc`."""
    root = events_dir()
    lock = fslock.lock_path(root)

    def _collect() -> int:
        removed = fslock.gc_entries(
            root, f"*{SUFFIX}", max_age_seconds, max_entries
        )
        removed += fslock.gc_entries(
            root / "spill", "*", max_age_seconds, None
        )
        return removed

    if blocking:
        with fslock.locked(lock):
            return _collect()
    with fslock.try_locked(lock) as acquired:
        if not acquired:
            return 0
        return _collect()
