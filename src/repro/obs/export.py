"""Exporters: Chrome Trace Format / Perfetto JSON and CSV metric dumps.

The Chrome trace maps the device onto the trace-viewer hierarchy:

* one **process row per SM** (pid = sm id; device-level events with
  ``sm == -1`` land on a synthetic "device" process);
* one **thread per warp** (tid assigned deterministically from the sorted
  set of ``(block, warp)`` keys seen on that SM), named ``b<block>/w<warp>``;
* ``WARP_ISSUE`` renders as a 1-cycle complete slice named by opcode,
  ``WARP_STALL`` as a complete slice over the stalled interval named by
  the stall reason — so a skip-clock jump shows up as a *gap* (or an
  explicit stall slice), never as fabricated busy time;
* cache / MSHR / LSU events become instants on a per-SM ``mem`` thread;
  L2 / DRAM / CACP instants live on the device process.

Byte determinism: :func:`write_chrome_trace` canonically sorts the events
(:func:`~repro.obs.collect.sort_events`) and serializes with
``sort_keys=True`` and fixed separators, so two runs emitting the same
event multiset export byte-identical files regardless of shard count.

Timestamps are in microseconds per the trace format; we map **1 cycle ==
1 µs** so Perfetto's time axis reads directly in cycles.
"""

from __future__ import annotations

import io
import json
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Tuple

from .collect import sort_events
from .events import (
    COMMON_FIELDS,
    EVENT_FIELDS,
    Ev,
    LEVEL_NAMES,
    STALL_NAMES,
    event_to_dict,
)

#: pid used for device-level events (sm == -1).  Real SM pids are sm_id+1
#: so pid 0 (disallowed by some viewers) never appears.
DEVICE_PID = 1_000_000

#: tid for the per-SM memory instant track and device-level track.
MEM_TID = 0


def _pid(sm: int) -> int:
    return DEVICE_PID if sm < 0 else sm + 1


def chrome_trace(events: Iterable[Sequence]) -> Dict[str, object]:
    """Build a Chrome Trace Format / Perfetto ``traceEvents`` document."""
    events = sort_events(events)

    # Deterministic warp->tid maps, one per SM.  tid 0 is the mem track.
    warps_by_sm: Dict[int, List[Tuple[int, int]]] = {}
    for ev in events:
        if ev[0] in (int(Ev.WARP_START), int(Ev.WARP_ISSUE),
                     int(Ev.WARP_STALL), int(Ev.WARP_FINISH)):
            warps_by_sm.setdefault(ev[2], []).append((ev[3], ev[4]))
    tids: Dict[Tuple[int, int, int], int] = {}
    for sm, keys in warps_by_sm.items():
        for i, (block, warp) in enumerate(sorted(set(keys))):
            tids[(sm, block, warp)] = i + 1

    out: List[Dict[str, object]] = []

    def meta(pid: int, tid: int, name: str, what: str) -> None:
        out.append({
            "ph": "M", "name": what, "pid": pid, "tid": tid,
            "args": {"name": name},
        })

    # Process/thread naming metadata.
    seen_pids = sorted({_pid(ev[2]) for ev in events})
    for pid in seen_pids:
        label = "device" if pid == DEVICE_PID else f"SM {pid - 1}"
        meta(pid, MEM_TID, label, "process_name")
        meta(pid, MEM_TID, "mem", "thread_name")
    for (sm, block, warp), tid in sorted(tids.items()):
        meta(_pid(sm), tid, f"b{block}/w{warp}", "thread_name")

    _issue = int(Ev.WARP_ISSUE)
    _stall = int(Ev.WARP_STALL)
    _start = int(Ev.WARP_START)
    _finish = int(Ev.WARP_FINISH)
    for ev in events:
        kind, cycle, sm = ev[0], ev[1], ev[2]
        pid = _pid(sm)
        if kind == _issue:
            out.append({
                "ph": "X", "name": str(ev[6]), "cat": "issue",
                "pid": pid, "tid": tids[(sm, ev[3], ev[4])],
                "ts": cycle, "dur": 1, "args": {"pc": ev[5]},
            })
        elif kind == _stall:
            reason = STALL_NAMES.get(int(ev[5]), str(ev[5]))
            out.append({
                "ph": "X", "name": reason, "cat": "stall",
                "pid": pid, "tid": tids[(sm, ev[3], ev[4])],
                "ts": ev[7], "dur": ev[6], "args": {"reason": reason},
            })
        elif kind in (_start, _finish):
            out.append({
                "ph": "i", "s": "t",
                "name": "start" if kind == _start else "finish",
                "cat": "warp", "pid": pid,
                "tid": tids[(sm, ev[3], ev[4])], "ts": cycle, "args": {},
            })
        else:
            row = event_to_dict(ev)
            name = row.pop("kind")
            row.pop("cycle")
            row.pop("sm")
            if "level" in row:
                name = f"{row['level']}_{name.split('_', 1)[1]}"
            out.append({
                "ph": "i", "s": "p", "name": name, "cat": "mem",
                "pid": pid, "tid": MEM_TID, "ts": cycle, "args": row,
            })

    return {
        "traceEvents": out,
        "displayTimeUnit": "ms",
        "otherData": {"source": "repro.obs", "cycles_per_us": 1},
    }


def write_chrome_trace(events: Iterable[Sequence], path) -> Path:
    """Serialize :func:`chrome_trace` byte-deterministically to ``path``."""
    doc = chrome_trace(events)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(doc, sort_keys=True, separators=(",", ":")) + "\n",
        encoding="utf-8",
    )
    return path


def events_csv(events: Iterable[Sequence]) -> str:
    """Flat CSV dump: common columns plus the union of all field names."""
    events = sort_events(events)
    field_names: List[str] = []
    for kind in Ev:
        for name in EVENT_FIELDS[kind]:
            if name not in field_names:
                field_names.append(name)
    header = list(COMMON_FIELDS) + field_names
    buf = io.StringIO()
    buf.write(",".join(header) + "\n")
    for ev in events:
        row = event_to_dict(ev)
        cells = [str(row.get(col, "")) for col in header]
        buf.write(",".join(cells) + "\n")
    return buf.getvalue()


def kind_counts(events: Iterable[Sequence]) -> Dict[str, int]:
    """Event count per kind name (``repro events stats`` summary)."""
    counts: Dict[int, int] = {}
    for ev in events:
        counts[ev[0]] = counts.get(ev[0], 0) + 1
    return {
        Ev(code).name: n
        for code, n in sorted(counts.items())
    }


#: Re-export for exporters' callers.
__all__ = [
    "chrome_trace",
    "write_chrome_trace",
    "events_csv",
    "kind_counts",
    "DEVICE_PID",
    "LEVEL_NAMES",
]
