"""Finding/report types, the sanitize rule registry, and the driver.

Built on the same machinery as the kernel linter
(:mod:`repro.analysis.common`): stable rule IDs, severities, waivers that
report-but-don't-fail, text/JSON rendering.  Where :func:`lint_kernel`
takes one finalized kernel, :func:`sanitize_tree` takes a source-tree
root and hands every registered checker one shared
:class:`SanitizeContext`.

Checkers yield :func:`hit` tuples; ``hit(..., waivable=False)`` marks a
finding that a ``# sanitize: waive`` comment must *not* suppress
(FPR001's stale-waiver findings: a waiver cannot vouch for itself).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from ..analysis.common import BaseFinding, ReportBase, Rule, RuleRegistry, Severity
from .source import ConfigFacts, SourceModule, SourceTree

__all__ = [
    "Severity",
    "SanitizeFinding",
    "SanitizeReport",
    "SanitizeContext",
    "REGISTRY",
    "RULES",
    "rule",
    "hit",
    "sanitize_tree",
    "default_root",
]


@dataclass(frozen=True)
class SanitizeFinding(BaseFinding):
    """One sanitize hit, tied to a rule ID and a source line."""

    path: str = ""
    line: int = 0
    #: The offending source line, stripped.
    source: str = ""

    def location(self) -> str:
        return f"{self.path}:{self.line}"

    def to_dict(self) -> Dict[str, object]:
        out = super().to_dict()
        out.update(path=self.path, line=self.line, source=self.source)
        return out

    def __str__(self) -> str:
        line = f" | {self.source}" if self.source else ""
        return super().__str__() + line


@dataclass
class SanitizeReport(ReportBase):
    """All findings for one analyzed tree, plus pass/fail summary logic."""

    root: str
    findings: List[SanitizeFinding] = field(default_factory=list)

    @property
    def subject(self) -> str:
        return self.root

    def to_dict(self) -> Dict[str, object]:
        out = super().to_dict()
        # Sanitize reports name their subject "root".
        out["root"] = out.pop("subject")
        return out


@dataclass
class SanitizeContext:
    """Everything a rule checker may consult."""

    tree: SourceTree
    config: ConfigFacts


#: ``(module, lineno, message, waivable)`` as built by :func:`hit`.
Hit = Tuple[SourceModule, int, str, bool]
Checker = Callable[[SanitizeContext], Iterator[Hit]]


def hit(
    module: SourceModule, lineno: int, message: str, *, waivable: bool = True
) -> Hit:
    """Build one checker hit; ``waivable=False`` defeats waiver comments."""
    return (module, lineno, message, waivable)

REGISTRY: RuleRegistry[Checker] = RuleRegistry("sanitize")

#: The live rule catalogue, keyed by stable ID.
RULES: Dict[str, Rule[Checker]] = REGISTRY.rules

#: Decorator registering a checker under a stable ID in :data:`RULES`.
rule = REGISTRY.rule


def default_root() -> Path:
    """The shipped ``src/repro`` tree (the package this module lives in)."""
    return Path(__file__).resolve().parent.parent


def sanitize_tree(
    root: Optional[Path] = None,
    *,
    rules: Optional[Iterable[str]] = None,
    config_facts: Optional[ConfigFacts] = None,
) -> SanitizeReport:
    """Run the sanitize rule catalogue over the tree at ``root``.

    Args:
        root: directory to analyze (default: the installed ``repro``
            package source).
        rules: restrict to these rule IDs (default: every registered rule).
        config_facts: override the fingerprint ground truth instead of
            parsing it from the tree's ``config.py`` — used by tests to
            simulate exclusion-list edits.

    Returns:
        A :class:`SanitizeReport`; ``report.ok`` is False when any
        unsuppressed ERROR-severity finding exists.
    """
    tree = SourceTree.load(root if root is not None else default_root())
    facts = config_facts if config_facts is not None else tree.config_facts()
    ctx = SanitizeContext(tree=tree, config=facts)
    report = SanitizeReport(root=str(tree.root))
    for rule_def in REGISTRY.select(rules).values():
        for module, lineno, message, waivable in rule_def.check(ctx):
            report.findings.append(
                SanitizeFinding(
                    rule=rule_def.rule_id,
                    severity=rule_def.severity,
                    message=message,
                    path=module.rel,
                    line=lineno,
                    source=module.source_line(lineno),
                    suppressed=waivable
                    and module.waived(rule_def.rule_id, lineno),
                )
            )
    report.findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return report
