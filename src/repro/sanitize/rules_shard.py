"""SHD001 — shard safety of worker-closure modules.

Sharded replay (``GPUConfig.shards=N``, :mod:`repro.gpu.sharded`) forks
worker processes that own disjoint SM partitions; the L2 and DRAM stay
*coordinator-owned*, reached only through the ``_SharedMemoryClient``
proxy's message protocol.  A worker module that touched ``BankedL2`` /
``DRAMModel`` state directly would operate on the fork-time *copy* —
timing would silently diverge from serial replay, the exact bug class
conservative PDES exists to prevent.

The worker closure is every module a forked worker imports: ``sm/``,
``simt/``, ``scheduling/``, ``core/``, the L1-side half of ``memory/``,
and the trace replay/format modules.  Inside it this rule flags:

* imports of ``repro.memory.l2`` / ``repro.memory.dram`` (absolute or
  relative) and imports of the ``BankedL2`` / ``DRAMModel`` names;
* runtime references to those names;
* attribute access to coordinator-owned state through the hierarchy
  (``hierarchy.l2`` / ``hierarchy.dram``) — workers must call
  ``hierarchy.access(...)``, which the sharded runner swaps for the
  proxy.

``if TYPE_CHECKING:`` blocks are exempt: typing-only imports never
execute in a worker.
"""

from __future__ import annotations

import ast
from typing import Iterator, Tuple

from ..analysis.common import Severity
from .registry import Hit, SanitizeContext, hit, rule
from .source import SourceModule, terminal_name, walk_runtime

#: Module prefixes forked workers import wholesale.
WORKER_PREFIXES: Tuple[str, ...] = ("sm/", "simt/", "scheduling/", "core/")
#: Individual worker-closure modules (the L1-side half of ``memory/``
#: plus trace replay).
WORKER_FILES = frozenset({
    "memory/cache.py",
    "memory/mshr.py",
    "memory/request.py",
    "memory/replacement.py",
    "memory/data.py",
    "trace/replay.py",
    "trace/format.py",
})
#: Coordinator-owned module suffixes and class names.
_COORD_MODULES = ("memory.l2", "memory.dram")
_COORD_RELATIVE = frozenset({"l2", "dram"})
_COORD_NAMES = frozenset({"BankedL2", "DRAMModel"})
_HIERARCHY_RECEIVERS = frozenset({"hierarchy", "memory_hierarchy"})


def in_worker_closure(module: SourceModule) -> bool:
    return module.rel.startswith(WORKER_PREFIXES) or module.rel in WORKER_FILES


@rule(
    "SHD001",
    Severity.ERROR,
    "worker-closure module references coordinator-owned L2/DRAM state",
)
def check_shard_safety(ctx: SanitizeContext) -> Iterator[Hit]:
    for module in ctx.tree.modules:
        if not in_worker_closure(module):
            continue
        for node in walk_runtime(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.endswith(_COORD_MODULES):
                        yield hit(
                            module,
                            node.lineno,
                            f"imports coordinator-owned module "
                            f"{alias.name!r} into the worker closure",
                        )
            elif isinstance(node, ast.ImportFrom):
                source = node.module or ""
                if source.endswith(_COORD_MODULES) or (
                    node.level > 0 and source in _COORD_RELATIVE
                ):
                    yield hit(
                        module,
                        node.lineno,
                        f"imports from coordinator-owned module "
                        f"{source!r} into the worker closure",
                    )
                    continue
                for alias in node.names:
                    if alias.name in _COORD_NAMES:
                        yield hit(
                            module,
                            node.lineno,
                            f"imports coordinator-owned class "
                            f"{alias.name!r} into the worker closure",
                        )
            elif isinstance(node, ast.Name):
                if node.id in _COORD_NAMES and isinstance(node.ctx, ast.Load):
                    yield hit(
                        module,
                        node.lineno,
                        f"references coordinator-owned class {node.id!r}; "
                        "workers must go through the hierarchy proxy",
                    )
            elif isinstance(node, ast.Attribute):
                if (
                    node.attr in ("l2", "dram")
                    and terminal_name(node.value) in _HIERARCHY_RECEIVERS
                ):
                    yield hit(
                        module,
                        node.lineno,
                        f"touches hierarchy.{node.attr} directly; in a "
                        "sharded run that is the coordinator's state — "
                        "call hierarchy.access(...) so the proxy can "
                        "intercept",
                    )
