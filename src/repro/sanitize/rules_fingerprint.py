"""FPR001 — fingerprint soundness of GPUConfig reads on the timing path.

The persistent result cache keys on :meth:`GPUConfig.fingerprint`, which
hashes every field *except* the declared
:data:`GPUConfig.FINGERPRINT_EXCLUDED` set — knobs that are bit-identical
by contract (issue core, frontend, clock, shards, events, backend,
CPL-bounds checking).  The soundness invariant is:

    **timing-path code may read fingerprinted fields freely, but every
    read of an excluded field must be waived with a written rationale** —
    because if an excluded knob ever influenced cycle counts, two
    configurations sharing a cache entry would disagree about the result.

Two checks enforce it, both parsed statically (the analyzed tree is never
imported):

1. Every attribute read ``<config>.<field>`` in a timing-path module
   (``sm/``, ``memory/``, ``gpu/``, ``core/``, ``scheduling/``,
   ``simt/``; receiver named ``config``/``cfg``/``_config``/
   ``gpu_config``) where ``field`` is excluded must carry an FPR001
   waiver.
2. Every FPR001 waiver must actually cover an excluded-field read —
   otherwise it is **stale** and reported unwaivably.  This is what makes
   the exclusion list and the waivers move in lockstep: deleting an entry
   from ``FINGERPRINT_EXCLUDED`` (making the field fingerprinted, hence
   freely readable) turns its waivers stale and fails the run until they
   are removed too.

A new config field is fingerprinted by default (``fingerprint()`` hashes
everything not excluded), so new knobs are born sound; adding one to the
exclusion list is the reviewed, waiver-documented act.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set

from ..analysis.common import Severity
from .registry import Hit, SanitizeContext, hit, rule
from .source import terminal_name

#: Receiver names treated as "a GPUConfig instance".
CONFIG_RECEIVERS = frozenset({"config", "cfg", "_config", "gpu_config"})


@rule(
    "FPR001",
    Severity.ERROR,
    "unfingerprinted GPUConfig read on the timing path",
)
def check_fingerprint_soundness(ctx: SanitizeContext) -> Iterator[Hit]:
    facts = ctx.config
    if not facts.fields:
        # No GPUConfig in the analyzed tree: nothing to be sound about.
        return
    for module in ctx.tree.timing_modules():
        excluded_read_lines: Set[int] = set()
        hits: List[Hit] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Attribute):
                continue
            if not isinstance(node.ctx, ast.Load):
                continue
            if node.attr not in facts.fields:
                continue
            receiver = terminal_name(node.value)
            if receiver not in CONFIG_RECEIVERS:
                continue
            if node.attr not in facts.excluded:
                continue  # fingerprinted: always sound to read
            excluded_read_lines.add(node.lineno)
            # Waived reads are still yielded — the driver marks them
            # suppressed, so JSON reports list every excluded read.
            hits.append(
                hit(
                    module,
                    node.lineno,
                    f"read of {node.attr!r}, which is excluded from "
                    "GPUConfig.fingerprint(), in a timing-path module; "
                    "excluded knobs must be timing-transparent — waive "
                    "with a rationale or fingerprint the field",
                )
            )
        yield from hits
        # Stale waivers: an FPR001 waiver that covers no excluded-field
        # read justifies nothing — most likely the exclusion list changed
        # under it.  Unwaivable by construction.
        for waiver in module.waivers.values():
            if "FPR001" not in waiver.rules:
                continue
            covered = {waiver.line, waiver.line + 1}
            if not covered & excluded_read_lines:
                yield hit(
                    module,
                    waiver.line,
                    "stale FPR001 waiver: no read of a "
                    "FINGERPRINT_EXCLUDED field on this or the next line "
                    "(was the field removed from the exclusion list?)",
                    waivable=False,
                )
