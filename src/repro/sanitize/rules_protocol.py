"""CLK001 — clock-protocol conformance of timing components.

The skip clock (``GPUConfig.clock='skip'``) advances the device between
*events*: :class:`repro.gpu.clock.DeviceEventHeap` asks every component
it drives for its ``next_event_time(now)`` (or an SM's
``next_wake_time``), jumps to the minimum, and ticks only what can act.
A timing component that participates in simulation — anything defining
``tick`` or ``access`` in a timing-path module — but answers no
next-event query is invisible to the heap: the skip clock would jump
straight over its work, silently diverging from the cycle clock.

The check is structural and inheritance-aware: defining *or* inheriting
(through bases resolvable inside the analyzed tree) either protocol
method satisfies it.  Classes with unresolvable non-trivial bases are
skipped — an external base may well provide the method, and guessing
would produce noise, not soundness.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from ..analysis.common import Severity
from .registry import Hit, SanitizeContext, hit, rule

#: Method names that mark a class as clock-driven.
TRIGGERS = frozenset({"tick", "access"})
#: Method names satisfying the protocol.
PROVIDERS = frozenset({"next_event_time", "next_wake_time"})
#: Base names that never provide the protocol and never resolve in-tree.
_TRIVIAL_BASES = frozenset({
    "object",
    "ABC",
    "Protocol",
    "Generic",
    "Enum",
    "IntEnum",
    "NamedTuple",
    "Exception",
})


def _method_names(cls_node: ast.ClassDef) -> Set[str]:
    return {
        stmt.name
        for stmt in cls_node.body
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


def _base_names(cls_node: ast.ClassDef) -> Set[str]:
    names: Set[str] = set()
    for base in cls_node.bases:
        if isinstance(base, ast.Name):
            names.add(base.id)
        elif isinstance(base, ast.Attribute):
            names.add(base.attr)
    return names


@rule(
    "CLK001",
    Severity.ERROR,
    "clock-driven component without next_event_time()",
)
def check_clock_protocol(ctx: SanitizeContext) -> Iterator[Hit]:
    for module in ctx.tree.timing_modules():
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            methods = _method_names(node)
            triggers = methods & TRIGGERS
            if not triggers:
                continue
            if methods & PROVIDERS:
                continue
            chain = ctx.tree.resolve_bases(node)
            if any(
                _method_names(base_cls) & PROVIDERS for _, base_cls in chain
            ):
                continue
            resolved = {base_cls.name for _, base_cls in chain}
            unresolved = _base_names(node) - resolved - _TRIVIAL_BASES
            if unresolved:
                # External base classes may provide the protocol.
                continue
            yield hit(
                module,
                node.lineno,
                f"class {node.name} defines {sorted(triggers)} but "
                "neither defines nor inherits next_event_time()/"
                "next_wake_time(); the skip clock cannot schedule it "
                "(see repro.gpu.clock.DeviceEventHeap)",
            )
