"""FBK001 — feedback-signal parity between scalar and vector cache twins.

The scheduler–cache co-design contract (docs/schemes.md) is the same
shape as the observability one: every mode of the bit-identical matrix
must publish *byte-identical* feedback signal streams, because schedulers
(ccws/wasp/ciao) change issue decisions based on them — a dropped publish
is not a missing log line, it is a different simulation.

This rule reuses the OBS001 parity engine
(:func:`repro.sanitize.rules_obs.iter_parity_hits`) parameterized for the
channel idiom:

    fb.publish((_SIG_EVICT, ...))        # module-level alias
    ch.publish((Sig.FILL, ...))          # direct enum head
    _SIG_EVICT = int(Sig.EVICT)          # the alias declaration

and enforces:

1.  **Override parity** — a subclass overriding a method whose base
    implementation publishes signal kinds (the scalar/vector cache twin
    pattern) must call ``super()`` or publish the same kinds itself.
2.  **Kind coverage** — when the tree defines ``Sig``, every member has
    at least one publish site and every published kind is a member.
"""

from __future__ import annotations

from typing import Iterator

from ..analysis.common import Severity
from .registry import Hit, SanitizeContext, rule
from .rules_obs import ParitySpec, iter_parity_hits

FBK_SPEC = ParitySpec(
    enum_name="Sig",
    methods=frozenset({"publish", "publish_checked"}),
    verb="publication",
    stream="signal streams",
    dead_msg="dead schema entries rot the channel and its subscribers",
)


@rule(
    "FBK001",
    Severity.ERROR,
    "feedback publish parity broken between a cache and its twin",
)
def check_feedback_parity(ctx: SanitizeContext) -> Iterator[Hit]:
    yield from iter_parity_hits(ctx, FBK_SPEC)
