"""repro.sanitize — static invariant checking of the simulator's own source.

PR 3 pointed AST/CFG analysis at the *kernels* the simulator runs
(:mod:`repro.analysis`); this package points the same machinery — stable
rule IDs, severities, waivers, text/JSON reports, one shared registry
design (:mod:`repro.analysis.common`) — at ``src/repro`` itself.  The
correctness story of this codebase is a matrix of bit-identical modes
(backend x frontend x clock x shards x events) guarded at runtime by
parity grids; these rules guard the *conventions* that keep the matrix
honest, at lint time, without importing the analyzed tree:

=========  ========  ======================================================
rule id    severity  what it catches
=========  ========  ======================================================
FPR001     error     GPUConfig reads on the timing path that are neither
                     fingerprinted nor waived-excluded (result-cache
                     aliasing), plus stale FPR001 waivers
DET001     error     unseeded randomness (global ``random``/``np.random``)
DET002     error     wall-clock reads outside declared domains (serve/)
DET003     error     order-unstable iteration: unsorted glob/listdir,
                     set iteration, id()-based ordering
OBS001     error     probe parity: overrides dropping event emission;
                     Ev kinds never emitted / unknown kinds emitted
FBK001     error     feedback publish parity: overrides dropping signal
                     publication; Sig kinds never published / unknown
                     kinds published
CLK001     error     timing components invisible to the skip clock (no
                     next_event_time()/next_wake_time())
SHD001     error     worker-closure modules touching coordinator-owned
                     L2/DRAM state
=========  ========  ======================================================

Entry points: ``repro sanitize`` (CLI), ``make sanitize``,
:func:`sanitize_tree`.  See docs/static_analysis.md ("Sanitizing the
simulator") for the waiver syntax and the FPR001 / new-config-field
interaction.
"""

from .registry import (
    REGISTRY,
    RULES,
    SanitizeContext,
    SanitizeFinding,
    SanitizeReport,
    Severity,
    default_root,
    sanitize_tree,
)
from .source import ConfigFacts, SourceModule, SourceTree, parse_config_facts

# Import for effect: each module registers its rules in REGISTRY.
from . import rules_fingerprint  # noqa: E402,F401  (registration)
from . import rules_determinism  # noqa: E402,F401  (registration)
from . import rules_obs  # noqa: E402,F401  (registration)
from . import rules_fbk  # noqa: E402,F401  (registration)
from . import rules_protocol  # noqa: E402,F401  (registration)
from . import rules_shard  # noqa: E402,F401  (registration)

__all__ = [
    "ConfigFacts",
    "REGISTRY",
    "RULES",
    "SanitizeContext",
    "SanitizeFinding",
    "SanitizeReport",
    "Severity",
    "SourceModule",
    "SourceTree",
    "default_root",
    "parse_config_facts",
    "sanitize_tree",
]
