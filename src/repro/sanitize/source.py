"""Source-tree loading, waiver parsing, and shared AST facts.

:mod:`repro.sanitize` rules all consume the same picture of the analyzed
tree: every module parsed once (:class:`SourceModule`), a class index for
name-based inheritance resolution, the ``# sanitize: waive`` comments, and
the fingerprint ground truth parsed statically out of ``config.py``
(:class:`ConfigFacts`).  This module builds that picture; the rules in the
``rules_*`` modules only read it.

Waiver syntax (documented in ``docs/static_analysis.md``)::

    x = self.config.backend == "vector"  # sanitize: waive FPR001 -- why

    # sanitize: waive DET003 -- order is irrelevant: every entry is removed
    for entry in directory.glob(pattern):

A waiver on line *L* applies to line *L* (inline form) and to line *L+1*
(comment-above form).  Waived findings are still reported — with
``suppressed=True`` — but do not fail the run; rules may declare specific
findings unwaivable (FPR001's stale-waiver check is, by design: a waiver
cannot vouch for itself).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, Iterator, List, Optional, Tuple

#: Module prefixes (relative to the analyzed root, ``/``-separated) that
#: form the *timing path*: code here decides cycle counts, so FPR001 and
#: CLK001 scope to it.
TIMING_PREFIXES: Tuple[str, ...] = (
    "sm/",
    "memory/",
    "gpu/",
    "core/",
    "scheduling/",
    "simt/",
)

_WAIVER_RE = re.compile(
    r"#\s*sanitize:\s*waive\s+"
    r"(?P<rules>[A-Z]+\d+(?:\s*,\s*[A-Z]+\d+)*)"
    r"\s*(?:--\s*(?P<reason>.*\S))?\s*$"
)


@dataclass(frozen=True)
class Waiver:
    """One ``# sanitize: waive`` comment."""

    line: int
    rules: FrozenSet[str]
    reason: str


@dataclass
class SourceModule:
    """One parsed Python module of the analyzed tree."""

    path: Path
    #: Path relative to the analyzed root, ``/``-separated ("sm/sm.py").
    rel: str
    lines: List[str]
    tree: ast.Module
    #: Waivers keyed by the line the comment appears on.
    waivers: Dict[int, Waiver] = field(default_factory=dict)

    @classmethod
    def load(cls, path: Path, rel: str) -> "SourceModule":
        text = path.read_text(encoding="utf-8")
        lines = text.splitlines()
        module = cls(
            path=path,
            rel=rel,
            lines=lines,
            tree=ast.parse(text, filename=str(path)),
        )
        for lineno, line in enumerate(lines, start=1):
            match = _WAIVER_RE.search(line)
            if match is None:
                continue
            rules = frozenset(
                r.strip() for r in match.group("rules").split(",")
            )
            module.waivers[lineno] = Waiver(
                line=lineno, rules=rules, reason=match.group("reason") or ""
            )
        return module

    def in_timing_path(self) -> bool:
        return self.rel.startswith(TIMING_PREFIXES)

    def waived(self, rule_id: str, lineno: int) -> bool:
        """True when a waiver for ``rule_id`` covers ``lineno``."""
        for waiver_line in (lineno, lineno - 1):
            waiver = self.waivers.get(waiver_line)
            if waiver is not None and rule_id in waiver.rules:
                return True
        return False

    def source_line(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""


@dataclass(frozen=True)
class ConfigFacts:
    """Fingerprint ground truth, parsed statically from ``config.py``.

    ``fields`` are the ``GPUConfig`` dataclass field names; ``excluded``
    is the declared :data:`GPUConfig.FINGERPRINT_EXCLUDED` set.  Parsed
    from the *analyzed* tree's AST (never imported) so fixture trees can
    carry their own miniature ``config.py`` and tests can doctor the
    facts to simulate exclusion-list edits.
    """

    fields: FrozenSet[str] = frozenset()
    excluded: FrozenSet[str] = frozenset()

    @property
    def fingerprinted(self) -> FrozenSet[str]:
        return self.fields - self.excluded


def _is_classvar(annotation: ast.expr) -> bool:
    node = annotation
    if isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id == "ClassVar"
    if isinstance(node, ast.Attribute):
        return node.attr == "ClassVar"
    return False


def _string_elements(node: ast.expr) -> FrozenSet[str]:
    """The string constants inside a set/list/tuple display."""
    if isinstance(node, (ast.Set, ast.List, ast.Tuple)):
        return frozenset(
            e.value
            for e in node.elts
            if isinstance(e, ast.Constant) and isinstance(e.value, str)
        )
    return frozenset()


def parse_config_facts(module: SourceModule) -> ConfigFacts:
    """Extract :class:`ConfigFacts` from a ``config.py`` module."""
    for node in module.tree.body:
        if not (isinstance(node, ast.ClassDef) and node.name == "GPUConfig"):
            continue
        fields: List[str] = []
        excluded: FrozenSet[str] = frozenset()
        for stmt in node.body:
            if not isinstance(stmt, ast.AnnAssign):
                continue
            if not isinstance(stmt.target, ast.Name):
                continue
            if _is_classvar(stmt.annotation):
                if (
                    stmt.target.id == "FINGERPRINT_EXCLUDED"
                    and isinstance(stmt.value, ast.Call)
                    and stmt.value.args
                ):
                    excluded = _string_elements(stmt.value.args[0])
                continue
            fields.append(stmt.target.id)
        return ConfigFacts(fields=frozenset(fields), excluded=excluded)
    return ConfigFacts()


class SourceTree:
    """Every module under one root, plus cross-module indexes."""

    def __init__(self, root: Path, modules: List[SourceModule]) -> None:
        self.root = root
        self.modules = modules
        #: Class name -> (defining module, ClassDef).  Class names are
        #: unique across the tree in practice; on a clash the first
        #: module (sorted ``rel`` order) wins, which keeps resolution
        #: deterministic.
        self.classes: Dict[str, Tuple[SourceModule, ast.ClassDef]] = {}
        for module in modules:
            for node in ast.walk(module.tree):
                if isinstance(node, ast.ClassDef):
                    self.classes.setdefault(node.name, (module, node))

    @classmethod
    def load(cls, root: Path) -> "SourceTree":
        root = root.resolve()
        modules = [
            SourceModule.load(path, path.relative_to(root).as_posix())
            for path in sorted(root.rglob("*.py"))
        ]
        return cls(root, modules)

    def timing_modules(self) -> Iterator[SourceModule]:
        for module in self.modules:
            if module.in_timing_path():
                yield module

    def config_facts(self) -> ConfigFacts:
        for module in self.modules:
            if module.rel == "config.py":
                return parse_config_facts(module)
        return ConfigFacts()

    def resolve_bases(
        self, cls_node: ast.ClassDef
    ) -> List[Tuple[SourceModule, ast.ClassDef]]:
        """The in-tree base-class chain of ``cls_node`` (nearest first).

        Bases whose names are not defined anywhere in the tree are simply
        absent from the result — callers decide whether that means
        "external dependency, be lenient" (CLK001) or "nothing to
        compare against" (OBS001).
        """
        out: List[Tuple[SourceModule, ast.ClassDef]] = []
        seen = {cls_node.name}
        queue = list(cls_node.bases)
        while queue:
            base = queue.pop(0)
            name: Optional[str] = None
            if isinstance(base, ast.Name):
                name = base.id
            elif isinstance(base, ast.Attribute):
                name = base.attr
            if name is None or name in seen:
                continue
            seen.add(name)
            entry = self.classes.get(name)
            if entry is None:
                continue
            out.append(entry)
            queue.extend(entry[1].bases)
        return out


def dotted_name(node: ast.expr) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def terminal_name(node: ast.expr) -> Optional[str]:
    """The last component of a receiver expression.

    ``self.config`` -> "config", ``cfg`` -> "cfg", ``gpu.config`` ->
    "config"; anything else (calls, subscripts) -> None.
    """
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def walk_runtime(tree: ast.AST) -> Iterator[ast.AST]:
    """Like :func:`ast.walk`, skipping ``if TYPE_CHECKING:`` bodies.

    Typing-only imports never execute, so shard-safety (SHD001) must not
    flag them.
    """
    queue: List[ast.AST] = [tree]
    while queue:
        node = queue.pop(0)
        yield node
        if isinstance(node, ast.If):
            test = node.test
            guard = (
                isinstance(test, ast.Name) and test.id == "TYPE_CHECKING"
            ) or (
                isinstance(test, ast.Attribute)
                and test.attr == "TYPE_CHECKING"
            )
            if guard:
                queue.extend(node.orelse)
                continue
        queue.extend(ast.iter_child_nodes(node))
