"""OBS001 — probe parity between scalar components and their twins.

The observability contract (docs/observability.md) is that every mode of
the bit-identical matrix produces *byte-identical* event streams.  Two
static invariants keep that true:

1.  **Override parity.**  If a subclass overrides a method whose base
    implementation emits event kinds (the scalar/vector twin pattern:
    ``VectorSM(StreamingMultiprocessor)``), the override must either call
    ``super()`` (inheriting the emission) or emit the same kinds itself.
    An override that silently drops an emission desynchronizes the
    streams only when that subclass is selected — exactly the bug class
    runtime parity tests catch late and expensively.

2.  **Kind coverage.**  When the analyzed tree defines the ``Ev`` enum,
    every member must have at least one emission site somewhere in the
    tree (a kind nobody emits is dead schema), and every emitted kind
    must be an ``Ev`` member (an unknown kind would fail schema
    validation at runtime).

Emission sites are recognized by the established probe idioms::

    self.obs.emit((_EV_WARP_ISSUE, ...))     # module-level alias
    emit((Ev.WARP_ISSUE, ...))               # local binding of bus.emit
    _EV_WARP_ISSUE = int(Ev.WARP_ISSUE)      # the alias declaration

The same machinery, parameterized over (enum class, call-site method
names), backs FBK001 in :mod:`repro.sanitize.rules_fbk` for the feedback
channel's ``Sig``/``publish`` idiom — one engine, two schemas.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, Optional, Set, Tuple

from ..analysis.common import Severity
from .registry import Hit, SanitizeContext, hit, rule
from .source import SourceModule


@dataclass(frozen=True)
class ParitySpec:
    """One (enum, call idiom) pairing the parity engine checks.

    ``enum_name`` is the kind-enum class (``Ev``, ``Sig``); ``methods``
    the attribute/name call targets recognized as sites (``emit``,
    ``publish``); ``verb``/``noun`` feed the finding messages.
    """

    enum_name: str
    methods: FrozenSet[str]
    verb: str  # "emission" / "publication"
    stream: str  # "event streams" / "signal streams"
    dead_msg: str  # tail of the dead-schema finding


def _kind_from_enum_attr(node: ast.expr, enum_name: str) -> Optional[str]:
    """``<Enum>.X`` or ``int(<Enum>.X)`` -> "X"."""
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "int"
        and len(node.args) == 1
    ):
        node = node.args[0]
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == enum_name
    ):
        return node.attr
    return None


def _module_aliases(module: SourceModule, enum_name: str) -> Dict[str, str]:
    """Module-level ``_EV_X = int(Ev.X)`` / ``= Ev.X`` alias bindings."""
    aliases: Dict[str, str] = {}
    for stmt in module.tree.body:
        if not (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1):
            continue
        target = stmt.targets[0]
        if not isinstance(target, ast.Name):
            continue
        kind = _kind_from_enum_attr(stmt.value, enum_name)
        if kind is not None:
            aliases[target.id] = kind
    return aliases


def _site_kinds(
    node: ast.AST, aliases: Dict[str, str], spec: ParitySpec
) -> Iterator[Tuple[str, int]]:
    """``(kind, lineno)`` for every recognizable site under ``node``."""
    for sub in ast.walk(node):
        if not isinstance(sub, ast.Call):
            continue
        func = sub.func
        is_site = (
            isinstance(func, ast.Name) and func.id in spec.methods
        ) or (isinstance(func, ast.Attribute) and func.attr in spec.methods)
        if not is_site or not sub.args:
            continue
        record = sub.args[0]
        if not isinstance(record, ast.Tuple) or not record.elts:
            continue
        head = record.elts[0]
        kind = _kind_from_enum_attr(head, spec.enum_name)
        if kind is None and isinstance(head, ast.Name):
            kind = aliases.get(head.id)
        if kind is not None:
            yield kind, sub.lineno


def _class_methods(cls_node: ast.ClassDef) -> Dict[str, ast.FunctionDef]:
    return {
        stmt.name: stmt
        for stmt in cls_node.body
        if isinstance(stmt, ast.FunctionDef)
    }


def _calls_super(fn: ast.FunctionDef) -> bool:
    for node in ast.walk(fn):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "super"
        ):
            return True
    return False


def iter_parity_hits(
    ctx: SanitizeContext, spec: ParitySpec
) -> Iterator[Hit]:
    """Override-parity + kind-coverage findings for one :class:`ParitySpec`."""
    alias_cache: Dict[str, Dict[str, str]] = {}

    def aliases_of(module: SourceModule) -> Dict[str, str]:
        if module.rel not in alias_cache:
            alias_cache[module.rel] = _module_aliases(module, spec.enum_name)
        return alias_cache[module.rel]

    # -- override parity -------------------------------------------------
    for module in ctx.tree.modules:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            own = _class_methods(node)
            if not own:
                continue
            checked: Set[str] = set()
            for base_mod, base_cls in ctx.tree.resolve_bases(node):
                base_aliases = aliases_of(base_mod)
                for name, base_fn in _class_methods(base_cls).items():
                    if name not in own or name in checked:
                        continue
                    checked.add(name)  # nearest base definition governs
                    base_kinds = {
                        k
                        for k, _ in _site_kinds(base_fn, base_aliases, spec)
                    }
                    if not base_kinds:
                        continue
                    override = own[name]
                    if _calls_super(override):
                        continue
                    mine = {
                        k
                        for k, _ in _site_kinds(
                            override, aliases_of(module), spec
                        )
                    }
                    missing = base_kinds - mine
                    if missing:
                        yield hit(
                            module,
                            override.lineno,
                            f"override of {base_cls.name}.{name} drops "
                            f"{spec.verb} of {sorted(missing)}; twins must "
                            f"produce identical {spec.stream} — call "
                            "super() or reproduce the same kinds",
                        )

    # -- kind coverage ---------------------------------------------------
    enum_entry = ctx.tree.classes.get(spec.enum_name)
    if enum_entry is None:
        return
    enum_module, enum_cls = enum_entry
    members: Dict[str, int] = {}
    for stmt in enum_cls.body:
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            if isinstance(target, ast.Name):
                members[target.id] = stmt.lineno
        elif isinstance(stmt, ast.AnnAssign) and isinstance(
            stmt.target, ast.Name
        ):
            members[stmt.target.id] = stmt.lineno

    sites: Dict[str, Tuple[SourceModule, int]] = {}
    for module in ctx.tree.modules:
        for kind, lineno in _site_kinds(
            module.tree, aliases_of(module), spec
        ):
            sites.setdefault(kind, (module, lineno))

    for kind, lineno in members.items():
        if kind not in sites:
            yield hit(
                enum_module,
                lineno,
                f"{spec.enum_name}.{kind} has no site anywhere in the "
                f"tree; {spec.dead_msg}",
            )
    for kind, (module, lineno) in sorted(sites.items()):
        if kind not in members:
            yield hit(
                module,
                lineno,
                f"uses kind {kind!r}, which is not a {spec.enum_name} "
                "member; the record would fail schema validation",
            )


OBS_SPEC = ParitySpec(
    enum_name="Ev",
    methods=frozenset({"emit"}),
    verb="emission",
    stream="event streams",
    dead_msg="dead schema entries rot the exporter and collectors",
)


@rule(
    "OBS001",
    Severity.ERROR,
    "probe parity broken between a component and its twin",
)
def check_probe_parity(ctx: SanitizeContext) -> Iterator[Hit]:
    yield from iter_parity_hits(ctx, OBS_SPEC)
