"""OBS001 — probe parity between scalar components and their twins.

The observability contract (docs/observability.md) is that every mode of
the bit-identical matrix produces *byte-identical* event streams.  Two
static invariants keep that true:

1.  **Override parity.**  If a subclass overrides a method whose base
    implementation emits event kinds (the scalar/vector twin pattern:
    ``VectorSM(StreamingMultiprocessor)``), the override must either call
    ``super()`` (inheriting the emission) or emit the same kinds itself.
    An override that silently drops an emission desynchronizes the
    streams only when that subclass is selected — exactly the bug class
    runtime parity tests catch late and expensively.

2.  **Kind coverage.**  When the analyzed tree defines the ``Ev`` enum,
    every member must have at least one emission site somewhere in the
    tree (a kind nobody emits is dead schema), and every emitted kind
    must be an ``Ev`` member (an unknown kind would fail schema
    validation at runtime).

Emission sites are recognized by the established probe idioms::

    self.obs.emit((_EV_WARP_ISSUE, ...))     # module-level alias
    emit((Ev.WARP_ISSUE, ...))               # local binding of bus.emit
    _EV_WARP_ISSUE = int(Ev.WARP_ISSUE)      # the alias declaration
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Set, Tuple

from ..analysis.common import Severity
from .registry import Hit, SanitizeContext, hit, rule
from .source import SourceModule


def _kind_from_ev_attr(node: ast.expr) -> Optional[str]:
    """``Ev.X`` or ``int(Ev.X)`` -> "X"."""
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "int"
        and len(node.args) == 1
    ):
        node = node.args[0]
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "Ev"
    ):
        return node.attr
    return None


def _module_aliases(module: SourceModule) -> Dict[str, str]:
    """Module-level ``_EV_X = int(Ev.X)`` / ``= Ev.X`` alias bindings."""
    aliases: Dict[str, str] = {}
    for stmt in module.tree.body:
        if not (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1):
            continue
        target = stmt.targets[0]
        if not isinstance(target, ast.Name):
            continue
        kind = _kind_from_ev_attr(stmt.value)
        if kind is not None:
            aliases[target.id] = kind
    return aliases


def _emitted_kinds(
    node: ast.AST, aliases: Dict[str, str]
) -> Iterator[Tuple[str, int]]:
    """``(kind, lineno)`` for every recognizable emit site under ``node``."""
    for sub in ast.walk(node):
        if not isinstance(sub, ast.Call):
            continue
        func = sub.func
        is_emit = (isinstance(func, ast.Name) and func.id == "emit") or (
            isinstance(func, ast.Attribute) and func.attr == "emit"
        )
        if not is_emit or not sub.args:
            continue
        record = sub.args[0]
        if not isinstance(record, ast.Tuple) or not record.elts:
            continue
        head = record.elts[0]
        kind = _kind_from_ev_attr(head)
        if kind is None and isinstance(head, ast.Name):
            kind = aliases.get(head.id)
        if kind is not None:
            yield kind, sub.lineno


def _class_methods(cls_node: ast.ClassDef) -> Dict[str, ast.FunctionDef]:
    return {
        stmt.name: stmt
        for stmt in cls_node.body
        if isinstance(stmt, ast.FunctionDef)
    }


def _calls_super(fn: ast.FunctionDef) -> bool:
    for node in ast.walk(fn):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "super"
        ):
            return True
    return False


@rule(
    "OBS001",
    Severity.ERROR,
    "probe parity broken between a component and its twin",
)
def check_probe_parity(ctx: SanitizeContext) -> Iterator[Hit]:
    alias_cache: Dict[str, Dict[str, str]] = {}

    def aliases_of(module: SourceModule) -> Dict[str, str]:
        if module.rel not in alias_cache:
            alias_cache[module.rel] = _module_aliases(module)
        return alias_cache[module.rel]

    # -- override parity -------------------------------------------------
    for module in ctx.tree.modules:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            own = _class_methods(node)
            if not own:
                continue
            checked: Set[str] = set()
            for base_mod, base_cls in ctx.tree.resolve_bases(node):
                base_aliases = aliases_of(base_mod)
                for name, base_fn in _class_methods(base_cls).items():
                    if name not in own or name in checked:
                        continue
                    checked.add(name)  # nearest base definition governs
                    base_kinds = {
                        k for k, _ in _emitted_kinds(base_fn, base_aliases)
                    }
                    if not base_kinds:
                        continue
                    override = own[name]
                    if _calls_super(override):
                        continue
                    mine = {
                        k
                        for k, _ in _emitted_kinds(
                            override, aliases_of(module)
                        )
                    }
                    missing = base_kinds - mine
                    if missing:
                        yield hit(
                            module,
                            override.lineno,
                            f"override of {base_cls.name}.{name} drops "
                            f"emission of {sorted(missing)}; twins must "
                            "produce identical event streams — call "
                            "super() or emit the same kinds",
                        )

    # -- kind coverage ---------------------------------------------------
    ev_entry = ctx.tree.classes.get("Ev")
    if ev_entry is None:
        return
    ev_module, ev_cls = ev_entry
    members: Dict[str, int] = {}
    for stmt in ev_cls.body:
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            if isinstance(target, ast.Name):
                members[target.id] = stmt.lineno
        elif isinstance(stmt, ast.AnnAssign) and isinstance(
            stmt.target, ast.Name
        ):
            members[stmt.target.id] = stmt.lineno

    sites: Dict[str, Tuple[SourceModule, int]] = {}
    for module in ctx.tree.modules:
        for kind, lineno in _emitted_kinds(module.tree, aliases_of(module)):
            sites.setdefault(kind, (module, lineno))

    for kind, lineno in members.items():
        if kind not in sites:
            yield hit(
                ev_module,
                lineno,
                f"Ev.{kind} has no emission site anywhere in the tree; "
                "dead schema entries rot the exporter and collectors",
            )
    for kind, (module, lineno) in sorted(sites.items()):
        if kind not in members:
            yield hit(
                module,
                lineno,
                f"emits kind {kind!r}, which is not an Ev member; the "
                "record would fail schema validation",
            )
