"""DET001–DET003 — determinism of the simulator's own source.

The bit-identical mode matrix (backend x frontend x clock x shards x
events) and the fingerprint-keyed result cache both assume a run's output
is a pure function of its configuration.  Three classes of Python idiom
silently break that:

DET001
    Unseeded randomness — calls through the process-global ``random`` /
    ``numpy.random`` state, or RNG constructors without a seed argument.
    Workloads must thread an explicit seed (``np.random.RandomState(seed)``
    is fine; ``np.random.rand()`` is not).

DET002
    Wall-clock reads (``time.time``, ``time.monotonic``,
    ``time.perf_counter``, ``datetime.now``, ...) anywhere outside the
    declared wall-clock domains — the service layer (``serve/``), which
    legitimately measures real elapsed time.  Simulated time comes from
    the device clock, never the host's.

DET003
    Order-unstable iteration feeding anything: unsorted
    ``Path.glob``/``iterdir``/``os.listdir``/``os.scandir`` results in a
    loop or comprehension (filesystem enumeration order is
    platform-dependent), iteration directly over a ``set`` expression
    (hash-randomized for strings across processes), and ``id()``-based
    ordering (``sorted(key=id)``), which varies run to run.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple

from ..analysis.common import Severity
from .registry import Hit, SanitizeContext, hit, rule
from .source import dotted_name

# --------------------------------------------------------------------
# DET001 — unseeded randomness
# --------------------------------------------------------------------
#: ``random``-module functions that use the process-global RNG.
_GLOBAL_RANDOM = frozenset({
    "random.random",
    "random.randint",
    "random.randrange",
    "random.choice",
    "random.choices",
    "random.shuffle",
    "random.sample",
    "random.uniform",
    "random.gauss",
})
#: ``numpy.random`` module-level functions (global RandomState).
_GLOBAL_NP_RANDOM = frozenset({
    "rand",
    "randn",
    "randint",
    "random",
    "random_sample",
    "choice",
    "shuffle",
    "permutation",
    "uniform",
    "normal",
})
#: RNG constructors that are unseeded when called without arguments.
_RNG_CONSTRUCTORS = ("random.Random", "random.RandomState", "random.default_rng")


@rule("DET001", Severity.ERROR, "unseeded random number generation")
def check_unseeded_random(ctx: SanitizeContext) -> Iterator[Hit]:
    for module in ctx.tree.modules:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func)
            if dotted is None:
                continue
            if dotted in _GLOBAL_RANDOM:
                yield hit(
                    module,
                    node.lineno,
                    f"{dotted}() draws from the process-global RNG; "
                    "use an explicitly seeded generator",
                )
            elif (
                dotted.startswith(("np.random.", "numpy.random."))
                and dotted.rsplit(".", 1)[1] in _GLOBAL_NP_RANDOM
            ):
                yield hit(
                    module,
                    node.lineno,
                    f"{dotted}() draws from numpy's global RandomState; "
                    "use np.random.RandomState(seed)",
                )
            elif (
                dotted.endswith(_RNG_CONSTRUCTORS)
                and not node.args
                and not node.keywords
            ):
                yield hit(
                    module,
                    node.lineno,
                    f"{dotted}() constructed without a seed seeds from "
                    "the OS entropy pool; pass an explicit seed",
                )


# --------------------------------------------------------------------
# DET002 — wall-clock reads
# --------------------------------------------------------------------
_WALLCLOCK = frozenset({
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "datetime.now",
    "datetime.utcnow",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
})

#: Module prefixes where wall-clock reads are the point: the HTTP service
#: measures real elapsed time (timeouts, uptime, job timestamps).
WALLCLOCK_DOMAINS: Tuple[str, ...] = ("serve/",)


@rule("DET002", Severity.ERROR, "wall-clock read outside a declared domain")
def check_wallclock(ctx: SanitizeContext) -> Iterator[Hit]:
    for module in ctx.tree.modules:
        if module.rel.startswith(WALLCLOCK_DOMAINS):
            continue
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Attribute):
                continue
            dotted = dotted_name(node)
            if dotted in _WALLCLOCK:
                yield hit(
                    module,
                    node.lineno,
                    f"{dotted} reads the host wall clock; simulated time "
                    "comes from the device clock (waive only for "
                    "host-side bookkeeping that never reaches results)",
                )


# --------------------------------------------------------------------
# DET003 — order-unstable iteration
# --------------------------------------------------------------------
_SCAN_METHODS = frozenset({"glob", "rglob", "iterdir"})
_SCAN_FUNCTIONS = frozenset({"os.listdir", "os.scandir"})


def _unstable_iter(node: ast.expr) -> Optional[str]:
    """Describe why iterating ``node`` is order-unstable, or None."""
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in _SCAN_METHODS:
            return (
                f".{func.attr}() yields entries in filesystem order, "
                "which is platform-dependent; wrap in sorted()"
            )
        dotted = dotted_name(func)
        if dotted in _SCAN_FUNCTIONS:
            return (
                f"{dotted}() yields entries in filesystem order, which is "
                "platform-dependent; wrap in sorted()"
            )
        if isinstance(func, ast.Name) and func.id == "set":
            return (
                "iteration over a set is hash-ordered (randomized for "
                "strings across processes); wrap in sorted()"
            )
        return None
    if isinstance(node, (ast.Set, ast.SetComp)):
        return (
            "iteration over a set is hash-ordered (randomized for "
            "strings across processes); wrap in sorted()"
        )
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        # set(a) | set(b) and friends: unstable if either side is.
        return _unstable_iter(node.left) or _unstable_iter(node.right)
    return None


@rule("DET003", Severity.ERROR, "order-unstable iteration or id()-ordering")
def check_unstable_order(ctx: SanitizeContext) -> Iterator[Hit]:
    for module in ctx.tree.modules:
        for node in ast.walk(module.tree):
            iters: List[ast.expr] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                iters.extend(gen.iter for gen in node.generators)
            for it in iters:
                reason = _unstable_iter(it)
                if reason is not None:
                    yield hit(module, it.lineno, reason)
            if isinstance(node, ast.Call):
                func = node.func
                is_order_fn = (
                    isinstance(func, ast.Name)
                    and func.id in ("sorted", "min", "max")
                ) or (isinstance(func, ast.Attribute) and func.attr == "sort")
                if is_order_fn and any(
                    kw.arg == "key"
                    and isinstance(kw.value, ast.Name)
                    and kw.value.id == "id"
                    for kw in node.keywords
                ):
                    yield hit(
                        module,
                        node.lineno,
                        "ordering by id() varies between runs and "
                        "processes; order by a stable key",
                    )
