"""Command-line interface.

Usage (``python -m repro <command>``)::

    python -m repro list
    python -m repro run --workload kmeans --scheme cawa
    python -m repro sweep --workloads bfs,kmeans --schemes rr,gto,cawa
    python -m repro sweep --sampled --workloads backprop,pathfinder
    python -m repro sample calibrate --workloads backprop --rates 0.1,0.25
    python -m repro sample rates
    python -m repro sample run --workload backprop --scheme gto
    python -m repro figure 9
    python -m repro tables
    python -m repro lint --all
    python -m repro lint --workload bfs --format json
    python -m repro trace record --workload bfs
    python -m repro trace replay --workload bfs --scheme cawa
    python -m repro trace info
    python -m repro events record bfs cawa
    python -m repro events stats bfs cawa
    python -m repro events export --format chrome bfs cawa
    python -m repro events schema --check
    python -m repro serve --port 8642 --workers 4
    python -m repro client submit --workload bfs --scheme cawa --watch
    python -m repro client stats
    python -m repro cache stats
    python -m repro cache gc --max-age-days 30
    python -m repro schemes
    python -m repro schemes --signals
    python -m repro schemes --compare --workloads backprop,kmeans
"""

from __future__ import annotations

import argparse
import importlib
import sys
from typing import List, Optional

from .config import GPUConfig
from .core.cawa import SCHEMES
from .experiments.runner import run_scheme, run_sweep, sweep_table
from .stats.report import format_table
from .workloads import NON_SENS_WORKLOADS, SENS_WORKLOADS, workload_names

#: Figure numbers with a dedicated experiment module.
FIGURES = (1, 2, 3, 4, 9, 10, 11, 12, 13, 14, 15, 16, 17)


def _base_config(args) -> GPUConfig:
    if getattr(args, "fermi", False):
        return GPUConfig.fermi_gtx480()
    return GPUConfig.default_sim()


def cmd_list(args) -> int:
    print("Workloads (Table 2):")
    for name in SENS_WORKLOADS:
        print(f"  {name:<16} [Sens]")
    for name in NON_SENS_WORKLOADS:
        print(f"  {name:<16} [Non-sens]")
    print("\nSchemes:")
    for scheme, (scheduler, cacp) in SCHEMES.items():
        cacp_note = " + CACP" if cacp else ""
        print(f"  {scheme:<16} scheduler={scheduler}{cacp_note}")
    print(f"\nFigures: {', '.join(str(f) for f in FIGURES)} (plus 'tables')")
    return 0


def cmd_schemes(args) -> int:
    from .feedback.signals import Sig, schema_table
    from .scheduling.registry import SCHEDULERS, scheduler_info

    if args.signals:
        print(schema_table())
        return 0
    if args.compare:
        from .experiments.schemes_table import (
            DEFAULT_WORKLOADS,
            format_head_to_head,
            schemes_head_to_head,
        )

        workloads = (
            args.workloads.split(",") if args.workloads
            else list(DEFAULT_WORKLOADS)
        )
        results = schemes_head_to_head(
            workloads, scale=args.scale, config=_base_config(args),
            parallel=args.parallel,
        )
        print(format_head_to_head(results, workloads))
        return 0
    print("Registered warp schedulers (see docs/schemes.md):")
    seen = {}
    for name in sorted(SCHEDULERS):
        factory = SCHEDULERS[name]
        if factory in seen:
            print(f"  {name:<10} alias of {seen[factory]}")
            continue
        seen[factory] = name
        description, kinds = scheduler_info(name)
        signals = (
            "subscribes: " + ",".join(Sig(k).name for k in kinds)
            if kinds else "no feedback subscription"
        )
        print(f"  {name:<10} {description}")
        print(f"  {'':<10} {signals}")
    return 0


def cmd_run(args) -> int:
    result = run_scheme(
        args.workload,
        args.scheme,
        scale=args.scale,
        config=_base_config(args),
        check=not args.no_check,
        use_cache=False,
    )
    print(result.summary())
    print(
        f"warp instructions: {result.warp_instructions}, "
        f"thread instructions: {result.thread_instructions}, "
        f"DRAM accesses: {result.dram_accesses}"
    )
    print(
        f"L1D: {result.l1_stats.hits}/{result.l1_stats.accesses} hits, "
        f"critical hit rate {result.critical_hit_rate:.1%}; "
        f"L2 hit rate {result.l2_stats.hit_rate:.1%}"
    )
    return 0


def cmd_sweep(args) -> int:
    workloads = args.workloads.split(",") if args.workloads else workload_names()
    schemes = args.schemes.split(",")
    sampled = False if args.exact else args.sampled
    results = run_sweep(workloads, schemes, scale=args.scale,
                        config=_base_config(args), sampled=sampled)
    metric = {
        "ipc": lambda r: round(r.ipc, 3),
        "mpki": lambda r: round(r.l1_mpki, 2),
        "cycles": lambda r: int(r.cycles),
    }[args.metric]
    print(sweep_table(results, workloads, schemes, metric, "workload"))
    if args.metric == "ipc" and "rr" in schemes:
        rows = []
        for workload in workloads:
            base = results[(workload, "rr")].ipc
            rows.append(
                [workload]
                + [f"{results[(workload, s)].ipc / base:.2f}x" for s in schemes]
            )
        print("\nSpeedup over rr:")
        print(format_table(["workload"] + schemes, rows))
    if sampled:
        metric_key = {"ipc": "ipc", "mpki": "l1_mpki",
                      "cycles": "cycles"}[args.metric]
        rows = []
        for workload in workloads:
            row = [workload]
            for scheme in schemes:
                result = results[(workload, scheme)]
                est = getattr(result, "ci", {}).get(metric_key)
                row.append(f"+/-{100.0 * est.rel_half_width:.1f}%"
                           if est is not None else "exact")
            rows.append(row)
        print(f"\nsampled 95% CI half-width ({args.metric}):")
        print(format_table(["workload"] + schemes, rows))
    return 0


def cmd_sample(args) -> int:
    """Calibrate, inspect, or run the sampled trace-replay frontend."""
    import json

    from .sampling import calibrate as sampling_calibrate
    from .stats.report import format_estimate_table

    if args.sample_command == "calibrate":
        workloads = args.workloads.split(",")
        schemes = args.schemes.split(",")
        rates = tuple(float(r) for r in args.rates.split(","))
        report = sampling_calibrate.calibrate(
            workloads, schemes=schemes, rates=rates, scale=args.scale,
            config=_base_config(args), mode=args.mode,
            target_rel_err=args.target, safety=args.safety,
            persist=not args.no_persist,
        )
        for workload, entry in report["workloads"].items():
            spec = entry["spec"]
            if spec is None:
                print(f"{workload:<16} no rate met the "
                      f"{entry['target_rel_err']:.0%} target -- sampled "
                      "sweeps will run this workload exactly")
                continue
            stats = entry["rates"][spec.split(":", 1)[1]]
            fraction = entry.get("replay_fraction", 1.0)
            speedup = 1.0 / fraction if fraction else 1.0
            print(f"{workload:<16} {spec:<14} worst err "
                  f"{stats['max_rel_err']:.1%} ({stats['worst_metric']}), "
                  f"replays {fraction:.1%} of records (~{speedup:.0f}x)")
        if not args.no_persist:
            print(f"table -> {sampling_calibrate.table_path()}")
        return 0

    if args.sample_command == "rates":
        table = sampling_calibrate.load_table()
        if args.format == "json":
            print(json.dumps(table, indent=2, sort_keys=True))
            return 0
        if not table["workloads"]:
            print(f"no calibration table at {sampling_calibrate.table_path()}")
            return 0
        rows = []
        for workload, entry in sorted(table["workloads"].items()):
            spec = entry.get("spec")
            envelope = entry.get("envelope") or {}
            fraction = entry.get("replay_fraction")
            rows.append([
                workload,
                spec if spec else "exact (failed target)",
                f"{fraction:.1%}" if fraction is not None else "-",
                f"{max(envelope.values()):.1%}" if envelope else "-",
                f"{entry.get('scale', 1.0):g}",
            ])
        print(format_table(
            ["workload", "spec", "replay", "max envelope", "scale"], rows))
        print(f"table: {sampling_calibrate.table_path()}")
        return 0

    # sample run: one sampled cell with its full CI table.
    spec = args.spec
    if spec is None:
        spec, _envelope, _source = sampling_calibrate.lookup(args.workload)
        if spec is None:
            print(f"error: calibration marked {args.workload!r} unsafe to "
                  "sample at every candidate rate; pass --spec to override",
                  file=sys.stderr)
            return 2
    cfg = _base_config(args).with_frontend("trace").with_sampling(spec)
    result = run_scheme(args.workload, args.scheme, scale=args.scale,
                        config=cfg, use_cache=not args.force)
    info = getattr(result, "info", None)
    if info is None:  # pragma: no cover - sampling off implies exact result
        print(result.summary())
        return 0
    print(f"{args.workload} / {args.scheme} sampled {info.spec} "
          f"(seed {info.seed}): {info.sampled_blocks}/{info.total_blocks} "
          f"blocks in {info.strata} strata, replays "
          f"{info.replay_fraction:.1%} of records "
          f"(~{info.estimated_speedup:.0f}x), "
          f"envelope: {info.envelope_source}")
    from .stats.sampling import REPORT_METRICS

    order = [name for name in REPORT_METRICS if name in result.ci]
    print(format_estimate_table(result.ci, order=order))
    return 0


def _print_stall_columns(top) -> None:
    """Top stall reasons as aligned columns (% of total warp-cycles)."""
    if not top:
        return
    header = "".join(f"{name:>18}" for name, _c, _s in top)
    cells = "".join(f"{share:>17.1%} " for _n, _c, share in top)
    print("\ntop stall reasons (% of warp-cycles):")
    print(header)
    print(cells)


def cmd_profile(args) -> int:
    from .experiments import profiling

    if args.compare:
        kind, _, values = args.compare.partition("=")
        if kind in ("clock", "clocks"):
            clocks = tuple(v.strip() for v in values.split(",") if v.strip()) \
                or ("cycle", "skip")
            report = profiling.compare_clocks(
                args.workload, args.scheme, scale=args.scale,
                config=_base_config(args), repeats=args.repeats, clocks=clocks,
            )
            print(f"{'clock':<7} {'cycles':>10} {'CPU s':>8} {'cycles/s':>13} "
                  f"{'skipped':>9} {'jumps':>7}")
            for clock in clocks:
                row = report[clock]["throughput"]
                print(
                    f"{clock:<7} {row['cycles']:>10.0f} {row['seconds']:>8.2f} "
                    f"{row['cycles_per_second']:>13,.0f} "
                    f"{row['cycles_skipped']:>9.0f} {row['skip_jumps']:>7.0f}"
                )
            print(f"{clocks[-1]}-clock speedup over {clocks[0]}: "
                  f"{report['speedup']['wall']:.2f}x")
            _print_stall_columns(report.get("stalls"))
            components = sorted(
                {c for clock in clocks for c in report[clock]["components"]}
            )
            print("\nper-component self time (one profiled run):")
            header = f"{'component':<18}" + "".join(f"{c:>10}" for c in clocks)
            print(header)
            for comp in components:
                cells = "".join(
                    f"{report[clock]['components'].get(comp, 0.0):>10.3f}"
                    for clock in clocks
                )
                print(f"{comp:<18}{cells}")
            return 0
        if kind in ("backend", "backends"):
            backends = tuple(v.strip() for v in values.split(",") if v.strip()) \
                or ("python", "vector")
            report = profiling.compare_backends(
                args.workload, args.scheme, scale=args.scale,
                config=_base_config(args), repeats=args.repeats,
                backends=backends,
            )
            print(f"{'backend':<8} {'cycles':>10} {'CPU s':>8} {'cycles/s':>13}")
            for backend in backends:
                row = report[backend]["throughput"]
                print(
                    f"{backend:<8} {row['cycles']:>10.0f} "
                    f"{row['seconds']:>8.2f} "
                    f"{row['cycles_per_second']:>13,.0f}"
                )
            print(f"{backends[-1]}-backend speedup over {backends[0]}: "
                  f"{report['speedup']['wall']:.2f}x")
            _print_stall_columns(report.get("stalls"))
            delta = report["component_delta"]
            print("\nper-component self time (one profiled run):")
            header = (f"{'component':<18}"
                      + "".join(f"{b:>10}" for b in backends)
                      + f"{'delta':>10}")
            print(header)
            for comp in sorted(delta):
                cells = "".join(
                    f"{report[b]['components'].get(comp, 0.0):>10.3f}"
                    for b in backends
                )
                print(f"{comp:<18}{cells}{delta[comp]:>+10.3f}")
            return 0
        if kind in ("core", "cores"):
            report = profiling.compare_cores(
                args.workload, args.scheme, scale=args.scale,
                config=_base_config(args), repeats=args.repeats,
            )
            for core in ("event", "scan"):
                row = report[core]
                print(
                    f"{core:<6} {row['cycles']:>10.0f} cycles  "
                    f"{row['seconds']:>7.2f}s CPU  "
                    f"{row['cycles_per_second']:>12,.0f} cycles/s"
                )
            print(f"event-core speedup: {report['event_speedup']['wall']:.2f}x")
            _print_stall_columns(report.get("stalls"))
            return 0
        print(f"unknown --compare spec {args.compare!r}; use 'core', "
              "'clock=cycle,skip', or 'backend=python,vector'")
        return 2
    profiling.profile_run(
        args.workload, args.scheme, scale=args.scale,
        config=_base_config(args), core=args.core,
        sort=args.sort, top=args.top,
    )
    return 0


def cmd_lint(args) -> int:
    """Statically analyze workload kernels (``repro lint``)."""
    import json

    from .analysis import lint_kernel
    from .gpu import GPU
    from .workloads import make_workload

    config = _base_config(args)
    names = (
        workload_names(include_synthetic=True) if args.all else [args.workload]
    )
    reports = []
    for name in names:
        # Building the workload (not simulating it) materializes its kernel.
        gpu = GPU(config)
        spec = make_workload(name, scale=args.scale).build(gpu)
        reports.append(
            lint_kernel(
                spec.kernel,
                warp_size=config.warp_size,
                line_size=config.l1d.line_size,
            )
        )
    ok = all(r.ok for r in reports)
    if args.format == "json":
        print(json.dumps([r.to_dict() for r in reports], indent=2))
    else:
        for report in reports:
            print(report.format_text())
        failed = [r.kernel for r in reports if not r.ok]
        print(
            f"\nlinted {len(reports)} kernel(s): "
            + ("all clean" if ok else f"FAILED: {', '.join(failed)}")
        )
    return 0 if ok else 1


def cmd_sanitize(args) -> int:
    """Statically check the simulator's own source (``repro sanitize``)."""
    from pathlib import Path

    from .sanitize import RULES, sanitize_tree

    rules = None
    if args.rule:
        unknown = [r for r in args.rule if r not in RULES]
        if unknown:
            print(
                f"unknown sanitize rule(s): {', '.join(unknown)} "
                f"(known: {', '.join(sorted(RULES))})",
                file=sys.stderr,
            )
            return 2
        rules = args.rule
    root = Path(args.root) if args.root else None
    report = sanitize_tree(root, rules=rules)
    if args.format == "json":
        print(report.to_json())
    else:
        print(report.format_text())
    return 0 if report.ok else 1


def cmd_trace(args) -> int:
    from . import trace as trace_mod
    from .errors import TraceError

    config = _base_config(args)
    if args.trace_command == "record":
        result, program = trace_mod.record_workload(
            args.workload, scale=args.scale, config=config,
            scheme=args.scheme, check=not args.no_check,
        )
        path = trace_mod.store_program(program, args.workload, args.scale, config)
        print(result.summary())
        print(
            f"recorded trace {program.trace_id}: "
            f"{len(program.launches)} launch(es), "
            f"{program.record_count} records -> {path}"
        )
        return 0

    if args.trace_command == "replay":
        try:
            program = trace_mod.load_program(
                args.workload, args.scale, config, strict=True
            )
        except TraceError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        from .core.cawa import apply_scheme

        cfg = apply_scheme(config, args.scheme).with_frontend("trace")
        oracle = None
        if cfg.scheduler_name == "caws":
            from .experiments.runner import build_oracle

            oracle = build_oracle(args.workload, args.scale, config)
        results = trace_mod.replay_program(
            program, cfg, scheme=args.scheme, oracle=oracle
        )
        for result in results:
            print(result.summary())
        print(f"replayed trace {program.trace_id} ({len(results)} launch(es))")
        return 0

    # info: list every stored trace with its header metadata.
    entries = trace_mod.list_traces()
    if not entries:
        print(f"no traces under {trace_mod.trace_dir()}")
        return 0
    rows = []
    for path, program in entries:
        if isinstance(program, Exception):
            rows.append([path.name, "<unreadable>", "-", "-", "-", str(program)])
            continue
        rows.append([
            path.name,
            program.workload,
            f"{program.scale:g}",
            program.trace_id,
            str(program.record_count),
            program.meta.get("recorded_scheme", "?"),
        ])
    print(format_table(
        ["file", "workload", "scale", "trace_id", "records", "scheme"], rows
    ))
    return 0


def _events_load_or_record(args, config: GPUConfig):
    """Shared ``events stats``/``events export`` front half.

    Returns ``(events, meta)``: a stored recording for this exact
    (workload, scheme, scale, config-fingerprint) cell when one exists,
    else a fresh recording (stored for next time unless ``--no-store``).
    """
    from .core.cawa import apply_scheme
    from .obs import harness, store

    cfg = apply_scheme(config, args.scheme)
    key = store.event_key(args.workload, args.scheme, args.scale,
                          cfg.fingerprint())
    path = store.event_path(key)
    if path.exists() and not getattr(args, "force", False):
        return store.load_events(path)

    result, bus = harness.record_events(
        args.workload, args.scheme, scale=args.scale, config=config,
    )
    events = bus.events()
    meta = {
        "workload": args.workload,
        "scheme": args.scheme,
        "scale": args.scale,
        "cycles": result.cycles,
        "frontend": result.frontend,
        "sampling": cfg.sampling,
        "fingerprint": cfg.fingerprint(),
    }
    if not getattr(args, "no_store", False):
        store.save_events(path, events, meta)
    return events, meta


def cmd_events(args) -> int:
    """Record, summarize, export, or describe observability event streams."""
    import json

    from .obs import (
        StallAccounting,
        chrome_trace,
        events_csv,
        kind_counts,
        schema_table,
        validate_schema,
        write_chrome_trace,
    )

    if args.events_command == "schema":
        if args.check:
            validate_schema()
            print("events schema OK")
            return 0
        from .obs import SCHEMA_VERSION

        print(f"event schema v{SCHEMA_VERSION} "
              f"(common fields: kind, cycle, sm)")
        for name, code, fields in schema_table():
            print(f"  {code:>3}  {name:<16} {', '.join(fields)}")
        return 0

    config = _base_config(args)

    if args.events_command == "record":
        from .obs import harness, store
        from .core.cawa import apply_scheme

        result, bus = harness.record_events(
            args.workload, args.scheme, scale=args.scale, config=config,
        )
        events = bus.events()
        cfg = apply_scheme(config, args.scheme)
        key = store.event_key(args.workload, args.scheme, args.scale,
                              cfg.fingerprint())
        path = store.event_path(key)
        if not args.no_store:
            store.save_events(path, events, {
                "workload": args.workload,
                "scheme": args.scheme,
                "scale": args.scale,
                "cycles": result.cycles,
                "frontend": result.frontend,
                "sampling": cfg.sampling,
                "fingerprint": cfg.fingerprint(),
            })
        print(result.summary())
        print(f"recorded {len(events)} events"
              + ("" if args.no_store else f" -> {path}"))
        for name, count in kind_counts(events).items():
            print(f"  {name:<16} {count}")
        return 0

    if args.events_command == "stats":
        events, meta = _events_load_or_record(args, config)
        acct = StallAccounting().extend(events)
        if args.format == "json":
            payload = acct.to_dict()
            payload["kind_counts"] = kind_counts(events)
            payload["meta"] = {k: v for k, v in meta.items()}
            print(json.dumps(payload, indent=2, sort_keys=True))
            return 0
        print(f"{args.workload} / {args.scheme}: {len(events)} events")
        print(acct.format_table())
        key, breakdown = acct.critical_warp()
        cells = "  ".join(f"{n}={c:.0f}" for n, c in sorted(
            breakdown.items(), key=lambda kv: (-kv[1], kv[0])))
        print(f"critical warp sm{key[0]} b{key[1]}/w{key[2]}: {cells}")
        return 0

    if args.events_command == "export":
        events, _meta = _events_load_or_record(args, config)
        out = args.output
        if args.format == "chrome":
            out = out or f"{args.workload}-{args.scheme}.trace.json"
            path = write_chrome_trace(events, out)
            doc = chrome_trace(events)
            print(f"wrote {len(doc['traceEvents'])} trace events -> {path}")
            print("open in https://ui.perfetto.dev ('Open trace file')")
            return 0
        if args.format == "csv":
            text = events_csv(events)
        else:  # json: raw event tuples + field names
            from .obs import event_to_dict

            text = "\n".join(
                json.dumps(event_to_dict(ev), sort_keys=True) for ev in events
            ) + "\n"
        if out:
            with open(out, "w", encoding="utf-8") as fh:
                fh.write(text)
            print(f"wrote {len(events)} events -> {out}")
        else:
            sys.stdout.write(text)
        return 0

    # info: list stored recordings.
    from .obs import store

    entries = store.list_events()
    if not entries:
        print(f"no event recordings under {store.events_dir()}")
        return 0
    for key, path in entries:
        print(f"{key:<48} {path}")
    return 0


def cmd_serve(args) -> int:
    """Run the asyncio simulation service (see docs/serving.md)."""
    import asyncio

    from .serve import DEFAULT_PORT, ServerConfig
    from .serve.server import run_server

    config = ServerConfig(
        host=args.host,
        port=DEFAULT_PORT if args.port is None else args.port,
        workers=args.workers,
        max_queue=args.max_queue,
        tenant_quota=args.tenant_quota,
        sweep_parallel=args.sweep_parallel,
    )
    try:
        asyncio.run(run_server(config))
    except KeyboardInterrupt:
        pass
    return 0


def _client_spec_from_args(args) -> dict:
    spec: dict = {"kind": args.kind, "scale": args.scale}
    if args.kind == "figure":
        if args.figure is None:
            print("error: figure jobs need --figure N", file=sys.stderr)
            raise SystemExit(2)
        spec["figure"] = args.figure
    else:
        if args.workload:
            key = "workloads" if "," in args.workload else "workload"
            spec[key] = (args.workload.split(",") if key == "workloads"
                         else args.workload)
        if args.scheme:
            key = "schemes" if "," in args.scheme else "scheme"
            spec[key] = (args.scheme.split(",") if key == "schemes"
                         else args.scheme)
    if args.fermi:
        spec["fermi"] = True
    if args.events:
        spec["events"] = True
    if args.priority != "auto":
        spec["priority"] = args.priority
    device = {}
    for knob in ("backend", "clock", "frontend", "sampling"):
        value = getattr(args, knob, None)
        if value:
            device[knob] = value
    if getattr(args, "shards", 0) and args.shards > 1:
        device["shards"] = args.shards
    if device:
        spec["device"] = device
    return spec


def _print_progress_record(record: dict) -> None:
    kind = record.get("kind", "?")
    rest = {k: v for k, v in record.items() if k != "kind"}
    cells = " ".join(f"{k}={v}" for k, v in sorted(rest.items())
                     if v is not None)
    print(f"  [{kind}] {cells}" if cells else f"  [{kind}]")


def cmd_client(args) -> int:
    """Talk to a running ``repro serve`` instance."""
    import json

    from .serve import ServeClient, ServeClientError

    client = ServeClient(args.server, tenant=args.tenant)
    try:
        if args.client_command == "submit":
            job, coalesced = client.submit(_client_spec_from_args(args))
            verb = "coalesced into" if coalesced else "submitted"
            print(f"{verb} job {job['id']} ({job['describe']}, "
                  f"priority {job['priority']})")
            if args.watch:
                for record in client.watch(job["id"]):
                    _print_progress_record(record)
            if args.watch or args.wait:
                final = client.wait(job["id"], timeout=args.timeout)
                if final["state"] != "done":
                    print(f"job {job['id']} {final['state']}: "
                          f"{final.get('error')}", file=sys.stderr)
                    return 1
                payload = client.result(job["id"])["payload"]
                if payload.get("summary"):
                    print(payload["summary"])
            return 0
        if args.client_command == "status":
            print(json.dumps(client.status(args.job_id), indent=2,
                             sort_keys=True))
            return 0
        if args.client_command == "result":
            data = client.result(args.job_id)
            if args.format == "json":
                print(json.dumps(data, indent=2, sort_keys=True))
            else:
                payload = data["payload"]
                if payload.get("summary"):
                    print(payload["summary"])
                elif payload.get("text"):
                    print(payload["text"])
                else:
                    for cell in payload.get("cells", ()):
                        print(f"{cell['workload']:<20} {cell['scheme']:<12} "
                              f"{cell['result']['cycles']:>10.0f} cycles")
            return 0
        if args.client_command == "watch":
            for record in client.watch(args.job_id, timeout=args.timeout):
                _print_progress_record(record)
            return 0
        if args.client_command == "cancel":
            job = client.cancel(args.job_id)
            print(f"job {job['id']} cancelled")
            return 0
        if args.client_command == "pause":
            client.pause()
            print("dispatch paused")
            return 0
        if args.client_command == "resume":
            client.resume()
            print("dispatch resumed")
            return 0
        if args.client_command == "shutdown":
            client.shutdown(drain=not args.no_drain)
            print("shutdown requested"
                  + (" (draining)" if not args.no_drain else ""))
            return 0
        # stats
        print(json.dumps(client.stats(), indent=2, sort_keys=True))
        return 0
    except ServeClientError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def cmd_cache(args) -> int:
    """Inspect or garbage-collect the persistent ``.repro_cache/`` stores."""
    import json

    from .experiments import result_cache
    from .obs import store as event_store
    from .trace import store as trace_store

    stores = {
        "results": result_cache,
        "traces": trace_store,
        "events": event_store,
    }
    if args.cache_command == "gc":
        names = (args.what.split(",") if args.what else list(stores))
        bad = [n for n in names if n not in stores]
        if bad:
            print(f"error: unknown store(s) {', '.join(bad)}; "
                  f"choose from {', '.join(stores)}", file=sys.stderr)
            return 2
        max_age = (args.max_age_days * 86400.0
                   if args.max_age_days is not None else None)
        if max_age is None and args.max_entries is None:
            print("error: give --max-age-days and/or --max-entries",
                  file=sys.stderr)
            return 2
        total = 0
        for name in names:
            removed = stores[name].gc(
                max_age_seconds=max_age, max_entries=args.max_entries
            )
            total += removed
            print(f"{name:<8} removed {removed} entr"
                  f"{'y' if removed == 1 else 'ies'}")
        print(f"total    removed {total}")
        return 0

    # stats
    payload = {name: store.stats() for name, store in stores.items()}
    if args.format == "json":
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(f"{'store':<8} {'entries':>8} {'bytes':>12}  dir")
    for name, info in payload.items():
        print(f"{name:<8} {info['entries']:>8} {info['bytes']:>12}  "
              f"{info['dir']}")
    return 0


def cmd_figure(args) -> int:
    if args.number not in FIGURES:
        print(f"no module for figure {args.number}; available: {FIGURES}",
              file=sys.stderr)
        return 2
    module = importlib.import_module(f"repro.experiments.fig{args.number:02d}")
    data = module.run(scale=args.scale, config=_base_config(args))
    print(module.render(data))
    return 0


def cmd_tables(args) -> int:
    from .experiments import tables

    print(tables.table1(_base_config(args) if args.fermi else None))
    print()
    print(tables.table2())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CAWA (ISCA 2015) reproduction: run workloads, schemes, "
        "and paper figures on the SIMT GPU simulator.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list workloads, schemes, and figures")

    p_run = sub.add_parser("run", help="run one workload under one scheme")
    p_run.add_argument("--workload", required=True,
                       choices=workload_names(include_synthetic=True))
    p_run.add_argument("--scheme", default="rr", choices=sorted(SCHEMES))
    p_run.add_argument("--scale", type=float, default=1.0)
    p_run.add_argument("--fermi", action="store_true",
                       help="use the full Table 1 GTX480 configuration (slow)")
    p_run.add_argument("--no-check", action="store_true",
                       help="skip functional verification")

    p_sweep = sub.add_parser("sweep", help="run a workload x scheme grid")
    p_sweep.add_argument("--workloads", default="",
                         help="comma-separated names (default: all of Table 2)")
    p_sweep.add_argument("--schemes", default="rr,gto,cawa")
    p_sweep.add_argument("--metric", default="ipc",
                         choices=["ipc", "mpki", "cycles"])
    p_sweep.add_argument("--scale", type=float, default=1.0)
    p_sweep.add_argument("--fermi", action="store_true")
    p_sweep.add_argument(
        "--sampled", nargs="?", const=True, default=False, metavar="SPEC",
        help="statistical replay: estimate each cell from a sampled subset "
        "of its trace with 95%% CIs (bare flag: per-workload calibrated "
        "rates from 'repro sample calibrate'; a SPEC such as 'blocks:0.1' "
        "forces one rate everywhere); see docs/sampling.md",
    )
    p_sweep.add_argument("--exact", action="store_true",
                         help="force exact replay (overrides --sampled)")

    p_prof = sub.add_parser(
        "profile",
        help="cProfile one run, or compare the event/scan issue cores",
    )
    p_prof.add_argument("workload",
                        choices=workload_names(include_synthetic=True))
    p_prof.add_argument("scheme", nargs="?", default="cawa",
                        choices=sorted(SCHEMES))
    p_prof.add_argument("--scale", type=float, default=1.0)
    p_prof.add_argument("--fermi", action="store_true")
    p_prof.add_argument("--core", choices=["event", "scan"], default=None,
                        help="issue core to profile (default: config default)")
    p_prof.add_argument("--sort", default="cumulative",
                        choices=["cumulative", "tottime", "ncalls"])
    p_prof.add_argument("--top", type=int, default=25,
                        help="number of profile rows to print")
    p_prof.add_argument(
        "--compare", nargs="?", const="core", default=None, metavar="SPEC",
        help="comparison mode instead of profiling: 'core' (default when "
        "the flag is bare) times the event/scan issue cores; "
        "'clock=cycle,skip' times both device clocks and prints wall "
        "time, cycles/s, and a per-component breakdown; "
        "'backend=python,vector' times the scalar and vectorized engines "
        "with a per-component self-time delta column",
    )
    p_prof.add_argument("--repeats", type=int, default=3,
                        help="best-of-N repeats for --compare")

    p_lint = sub.add_parser(
        "lint",
        help="statically analyze workload kernels (CFG, dataflow, CPL "
        "path-length bounds); see docs/static_analysis.md",
    )
    lint_target = p_lint.add_mutually_exclusive_group(required=True)
    lint_target.add_argument("--workload",
                             choices=workload_names(include_synthetic=True))
    lint_target.add_argument("--all", action="store_true",
                             help="lint every registered workload kernel")
    p_lint.add_argument("--format", choices=["text", "json"], default="text")
    p_lint.add_argument("--scale", type=float, default=1.0)
    p_lint.add_argument("--fermi", action="store_true")

    p_sanitize = sub.add_parser(
        "sanitize",
        help="statically check the simulator's own source (fingerprint "
        "soundness, determinism, probe parity, protocol conformance); "
        "see docs/static_analysis.md",
    )
    p_sanitize.add_argument(
        "--rule", action="append", metavar="ID",
        help="restrict to this rule ID (repeatable; default: all rules)",
    )
    p_sanitize.add_argument(
        "--all", action="store_true",
        help="run every rule (the default; accepted for symmetry with "
        "'repro lint --all')",
    )
    p_sanitize.add_argument("--format", choices=["text", "json"],
                            default="text")
    p_sanitize.add_argument(
        "--root", default=None,
        help="tree to analyze (default: the installed repro package)",
    )

    p_trace = sub.add_parser(
        "trace",
        help="record, replay, or inspect trace-driven simulation traces",
    )
    trace_sub = p_trace.add_subparsers(dest="trace_command", required=True)
    p_trec = trace_sub.add_parser(
        "record", help="run a workload once and store its functional trace"
    )
    p_trec.add_argument("--workload", required=True,
                        choices=workload_names(include_synthetic=True))
    p_trec.add_argument("--scheme", default="rr", choices=sorted(SCHEMES),
                        help="scheme for the recording run (trace content is "
                        "scheme-invariant; default rr)")
    p_trec.add_argument("--scale", type=float, default=1.0)
    p_trec.add_argument("--fermi", action="store_true")
    p_trec.add_argument("--no-check", action="store_true",
                        help="skip functional verification")
    p_trep = trace_sub.add_parser(
        "replay", help="replay a stored trace through the timing model"
    )
    p_trep.add_argument("--workload", required=True,
                        choices=workload_names(include_synthetic=True))
    p_trep.add_argument("--scheme", default="rr", choices=sorted(SCHEMES))
    p_trep.add_argument("--scale", type=float, default=1.0)
    p_trep.add_argument("--fermi", action="store_true")
    trace_sub.add_parser("info", help="list stored traces and their headers")

    p_sample = sub.add_parser(
        "sample",
        help="calibrate and run sampled trace replay with error bars "
        "(see docs/sampling.md)",
    )
    sample_sub = p_sample.add_subparsers(dest="sample_command", required=True)
    p_scal = sample_sub.add_parser(
        "calibrate",
        help="sweep sampling rates against exact runs; persist safe rates",
    )
    p_scal.add_argument("--workloads", required=True,
                        help="comma-separated workload names")
    p_scal.add_argument("--schemes", default="rr,gto")
    p_scal.add_argument("--rates", default="0.05,0.1,0.25,0.5",
                        help="comma-separated candidate sampling rates")
    p_scal.add_argument("--scale", type=float, default=1.0)
    p_scal.add_argument("--mode", choices=["blocks", "intervals"],
                        default="blocks")
    p_scal.add_argument("--target", type=float, default=0.08,
                        help="worst-case relative-error target (default 0.08)")
    p_scal.add_argument("--safety", type=float, default=2.0,
                        help="envelope inflation over the measured error")
    p_scal.add_argument("--no-persist", action="store_true",
                        help="report without writing the rate table")
    p_scal.add_argument("--fermi", action="store_true")
    p_srates = sample_sub.add_parser(
        "rates", help="print the persisted per-workload safe-rate table"
    )
    p_srates.add_argument("--format", choices=["text", "json"],
                          default="text")
    p_srun = sample_sub.add_parser(
        "run", help="run one cell sampled and print its per-metric CI table"
    )
    p_srun.add_argument("--workload", required=True,
                        choices=workload_names(include_synthetic=True))
    p_srun.add_argument("--scheme", default="rr", choices=sorted(SCHEMES))
    p_srun.add_argument("--scale", type=float, default=1.0)
    p_srun.add_argument("--spec", default=None,
                        help="sampling spec, e.g. 'blocks:0.25' (default: "
                        "the calibrated rate, else the built-in default)")
    p_srun.add_argument("--force", action="store_true",
                        help="bypass the result cache")
    p_srun.add_argument("--fermi", action="store_true")

    p_events = sub.add_parser(
        "events",
        help="record, summarize, and export observability event streams "
        "(see docs/observability.md)",
    )
    events_sub = p_events.add_subparsers(dest="events_command", required=True)

    def _events_run_args(p, positional=True):
        if positional:
            p.add_argument("workload",
                           choices=workload_names(include_synthetic=True))
            p.add_argument("scheme", nargs="?", default="rr",
                           choices=sorted(SCHEMES))
        p.add_argument("--scale", type=float, default=1.0)
        p.add_argument("--fermi", action="store_true")

    p_erec = events_sub.add_parser(
        "record", help="run one cell with the event bus on and store the stream"
    )
    _events_run_args(p_erec)
    p_erec.add_argument("--no-store", action="store_true",
                        help="print the summary without persisting the stream")
    p_estat = events_sub.add_parser(
        "stats", help="per-reason stall breakdown (Fig 2c-style) for one cell"
    )
    _events_run_args(p_estat)
    p_estat.add_argument("--format", choices=["text", "json"], default="text")
    p_estat.add_argument("--force", action="store_true",
                         help="re-record even if a stored stream exists")
    p_estat.add_argument("--no-store", action="store_true")
    p_eexp = events_sub.add_parser(
        "export",
        help="export a recorded stream (chrome = Perfetto-loadable JSON)",
    )
    _events_run_args(p_eexp)
    p_eexp.add_argument("--format", choices=["chrome", "csv", "json"],
                        default="chrome")
    p_eexp.add_argument("-o", "--output", default=None,
                        help="output path (default: <wl>-<scheme>.trace.json "
                        "for chrome, stdout otherwise)")
    p_eexp.add_argument("--force", action="store_true")
    p_eexp.add_argument("--no-store", action="store_true")
    p_esch = events_sub.add_parser(
        "schema", help="print the event schema (field names per kind)"
    )
    p_esch.add_argument("--check", action="store_true",
                        help="validate schema consistency and exit")
    events_sub.add_parser("info", help="list stored event recordings")

    p_serve = sub.add_parser(
        "serve",
        help="run the asyncio simulation service (see docs/serving.md)",
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=None,
                         help="TCP port (default 8642; 0 = ephemeral)")
    p_serve.add_argument("--workers", type=int, default=2,
                         help="executor processes simulating jobs")
    p_serve.add_argument("--max-queue", type=int, default=64,
                         help="admission bound on queued jobs (503 beyond)")
    p_serve.add_argument("--tenant-quota", type=int, default=8,
                         help="per-tenant in-flight job cap (429 beyond)")
    p_serve.add_argument("--sweep-parallel", action="store_true",
                         help="let sweep jobs fan out inside their worker")

    p_client = sub.add_parser(
        "client",
        help="submit and track jobs on a running `repro serve` instance",
    )
    p_client.add_argument("--server", default=None,
                          help="base URL (default: $REPRO_SERVE_URL or "
                          "http://127.0.0.1:8642)")
    p_client.add_argument("--tenant", default="anon",
                          help="tenant id for quota accounting")
    p_client.add_argument("--timeout", type=float, default=600.0,
                          help="seconds to wait/watch before giving up")
    client_sub = p_client.add_subparsers(dest="client_command", required=True)
    p_csub = client_sub.add_parser("submit", help="submit a job")
    p_csub.add_argument("--kind", choices=["run", "sweep", "figure"],
                        default="run")
    p_csub.add_argument("--workload", default=None,
                        help="workload name (comma-separate for sweeps)")
    p_csub.add_argument("--scheme", default=None,
                        help="scheme name (comma-separate for sweeps)")
    p_csub.add_argument("--scale", type=float, default=1.0)
    p_csub.add_argument("--figure", type=int, default=None)
    p_csub.add_argument("--fermi", action="store_true")
    p_csub.add_argument("--events", action="store_true",
                        help="stream live obs progress over SSE (bypasses "
                        "the result cache: recording runs always simulate)")
    p_csub.add_argument("--priority", choices=["auto", "interactive", "batch"],
                        default="auto")
    p_csub.add_argument("--backend", choices=["python", "vector"],
                        default=None)
    p_csub.add_argument("--clock", choices=["cycle", "skip"], default=None)
    p_csub.add_argument("--frontend", choices=["execute", "trace"],
                        default=None)
    p_csub.add_argument("--sampling", default=None, metavar="SPEC",
                        help="sampled replay spec for run jobs, e.g. "
                        "'blocks:0.25' (changes the answer: never "
                        "coalesces with exact jobs)")
    p_csub.add_argument("--shards", type=int, default=0)
    p_csub.add_argument("--watch", action="store_true",
                        help="stream progress, then print the summary")
    p_csub.add_argument("--wait", action="store_true",
                        help="block until done, then print the summary")
    for name, help_text in (
        ("status", "print one job's status"),
        ("result", "print a finished job's result"),
        ("watch", "stream a job's SSE progress"),
        ("cancel", "cancel a queued job"),
    ):
        p = client_sub.add_parser(name, help=help_text)
        p.add_argument("job_id")
        if name == "result":
            p.add_argument("--format", choices=["text", "json"],
                           default="text")
    client_sub.add_parser("stats", help="print queue/cache metrics")
    client_sub.add_parser("pause", help="hold dispatch (admission continues)")
    client_sub.add_parser("resume", help="resume dispatch")
    p_cshut = client_sub.add_parser("shutdown",
                                    help="gracefully stop the server")
    p_cshut.add_argument("--no-drain", action="store_true",
                         help="cancel queued jobs instead of finishing them")

    p_cache = sub.add_parser(
        "cache",
        help="inspect or garbage-collect the .repro_cache/ stores",
    )
    cache_sub = p_cache.add_subparsers(dest="cache_command", required=True)
    p_cstat = cache_sub.add_parser("stats", help="entry/byte counts per store")
    p_cstat.add_argument("--format", choices=["text", "json"], default="text")
    p_cgc = cache_sub.add_parser(
        "gc", help="lock-safe removal of stale entries"
    )
    p_cgc.add_argument("--max-age-days", type=float, default=None,
                       help="drop entries older than this many days")
    p_cgc.add_argument("--max-entries", type=int, default=None,
                       help="keep at most this many newest entries per store")
    p_cgc.add_argument("--what", default=None,
                       help="comma-separated stores (results,traces,events); "
                       "default all")

    p_fig = sub.add_parser("figure", help="regenerate one paper figure")
    p_fig.add_argument("number", type=int)
    p_fig.add_argument("--scale", type=float, default=1.0)
    p_fig.add_argument("--fermi", action="store_true")

    p_tab = sub.add_parser("tables", help="print Tables 1 and 2")
    p_tab.add_argument("--fermi", action="store_true")

    p_schemes = sub.add_parser(
        "schemes",
        help="list registered schedulers and their feedback subscriptions",
    )
    p_schemes.add_argument(
        "--signals", action="store_true",
        help="print the feedback signal schema instead",
    )
    p_schemes.add_argument(
        "--compare", action="store_true",
        help="run the co-design head-to-head (IPC/MPKI vs gto/caws/cawa)",
    )
    p_schemes.add_argument("--workloads", default="",
                           help="comma-separated list for --compare")
    p_schemes.add_argument("--scale", type=float, default=1.0)
    p_schemes.add_argument("--parallel", action="store_true")
    p_schemes.add_argument("--fermi", action="store_true")

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "list": cmd_list,
        "run": cmd_run,
        "sweep": cmd_sweep,
        "sample": cmd_sample,
        "profile": cmd_profile,
        "figure": cmd_figure,
        "tables": cmd_tables,
        "lint": cmd_lint,
        "sanitize": cmd_sanitize,
        "trace": cmd_trace,
        "events": cmd_events,
        "serve": cmd_serve,
        "client": cmd_client,
        "cache": cmd_cache,
        "schemes": cmd_schemes,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
