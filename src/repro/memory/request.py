"""Memory request descriptors shared across the cache hierarchy."""

from __future__ import annotations

from dataclasses import dataclass


def make_signature(pc: int, line_addr: int, bits: int = 8, region_shift: int = 12) -> int:
    """CACP signature: xor of the low bits of the PC and the address region.

    The paper (Section 3.3) combines the lower 8 bits of the instruction PC
    with the memory address *region*.  We take 4KB regions
    (``region_shift=12``): fine enough to separate data structures, coarse
    enough that the predictor tables see stable, learnable signatures
    instead of one signature per line.
    """
    mask = (1 << bits) - 1
    return (pc & mask) ^ ((line_addr >> region_shift) & mask)


@dataclass
class MemRequest:
    """One cache-line access from one warp's memory instruction.

    Attributes:
        line_addr: line-aligned byte address.
        pc: issuing instruction's PC (signature component).
        warp_key: (sm_id, block_id, warp_id) identifying the issuing warp.
        is_load: load vs. store.
        is_critical: CPL's criticality verdict for the issuing warp at issue
            time; consumed by CACP and by the per-criticality statistics.
        cycle: issue cycle.
        signature: CACP/SHiP signature (filled by the LSU).
    """

    line_addr: int
    pc: int
    warp_key: tuple
    is_load: bool
    is_critical: bool
    cycle: float
    signature: int = 0
