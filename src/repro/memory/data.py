"""Functional global memory: a flat, word-addressed value store.

The timing model never touches data; this store guarantees loads return what
stores wrote, so workload kernels compute real results that tests can verify
against NumPy reference implementations.
"""

from __future__ import annotations

import numpy as np

from ..errors import SimulationError

_WORD = 8  # bytes per register-width word


class GlobalMemory:
    """Flat byte-addressed global memory backed by a float64 word array."""

    def __init__(self, initial_words: int = 1024) -> None:
        self._words = np.zeros(initial_words, dtype=np.float64)
        self._next_free_word = 0

    @property
    def allocated_bytes(self) -> int:
        return self._next_free_word * _WORD

    def alloc(self, num_words: int) -> int:
        """Reserve ``num_words`` words; returns the base *byte* address."""
        if num_words < 0:
            raise SimulationError("negative allocation")
        base_word = self._next_free_word
        self._next_free_word += num_words
        if self._next_free_word > len(self._words):
            new_size = max(self._next_free_word, 2 * len(self._words))
            grown = np.zeros(new_size, dtype=np.float64)
            grown[: len(self._words)] = self._words
            self._words = grown
        return base_word * _WORD

    def alloc_array(self, values: np.ndarray) -> int:
        """Allocate and initialize from ``values``; returns base byte address."""
        flat = np.asarray(values, dtype=np.float64).ravel()
        base = self.alloc(len(flat))
        self._words[base // _WORD : base // _WORD + len(flat)] = flat
        return base

    def read_array(self, base: int, num_words: int) -> np.ndarray:
        """Copy ``num_words`` words starting at byte address ``base``."""
        self._check_range(base, num_words)
        start = base // _WORD
        return self._words[start : start + num_words].copy()

    def write_word(self, addr: int, value: float) -> None:
        self._check_range(addr, 1)
        self._words[addr // _WORD] = value

    def read_word(self, addr: int) -> float:
        self._check_range(addr, 1)
        return float(self._words[addr // _WORD])

    def load(self, addrs: np.ndarray, mask_bools: np.ndarray) -> np.ndarray:
        """Gather one word per active lane; inactive lanes read as 0."""
        values = np.zeros(len(addrs), dtype=np.float64)
        lanes = np.nonzero(mask_bools)[0]
        if lanes.size:
            idx = addrs[lanes] // _WORD
            self._check_indices(idx)
            values[lanes] = self._words[idx]
        return values

    def store(self, addrs: np.ndarray, values: np.ndarray, mask_bools: np.ndarray) -> None:
        """Scatter one word per active lane (lane order resolves conflicts)."""
        lanes = np.nonzero(mask_bools)[0]
        if lanes.size:
            idx = addrs[lanes] // _WORD
            self._check_indices(idx)
            # Highest lane wins on conflicting addresses, deterministically.
            self._words[idx] = values[lanes]

    def _check_range(self, base: int, num_words: int) -> None:
        if base < 0 or base % _WORD != 0:
            raise SimulationError(f"bad address {base:#x}")
        if base // _WORD + num_words > self._next_free_word:
            raise SimulationError(
                f"access beyond allocated memory: addr={base:#x} words={num_words}"
            )

    def _check_indices(self, idx: np.ndarray) -> None:
        if idx.size and (idx.min() < 0 or idx.max() >= self._next_free_word):
            bad = int(idx.min()) if idx.min() < 0 else int(idx.max())
            raise SimulationError(
                f"out-of-bounds memory access at word {bad} "
                f"(allocated {self._next_free_word} words)"
            )
