"""Banked unified L2 cache timing wrapper."""

from __future__ import annotations

from typing import List

from ..config import CacheConfig
from .cache import Cache
from .replacement import make_policy
from .request import MemRequest


class BankedL2:
    """Unified L2 shared by all SMs, interleaved across banks by line address.

    Tags/replacement live in one :class:`Cache` (capacity behaviour); each
    bank contributes an independent service queue (bandwidth behaviour).
    """

    def __init__(
        self,
        config: CacheConfig,
        num_banks: int,
        latency: int,
        service_interval: int,
        policy_name: str = "lru",
    ) -> None:
        self.cache = Cache(config, make_policy(policy_name))
        self.num_banks = num_banks
        self.latency = latency
        self.service_interval = service_interval
        self._bank_next_free: List[float] = [0.0] * num_banks

    def bank_of(self, line_addr: int) -> int:
        return (line_addr // self.cache.config.line_size) % self.num_banks

    def access(self, req: MemRequest, now: float):
        """Probe the L2; returns ``(hit, queued_start, data_ready_time)``.

        ``queued_start`` is when the bank actually begins service (after
        queueing); ``data_ready_time`` adds the L2 latency.  On a miss the
        caller starts the DRAM trip from ``queued_start`` so the paper's
        minimum latencies (120 to L2, 220 to DRAM) hold end to end.
        """
        bank = self.bank_of(req.line_addr)
        start = max(now, self._bank_next_free[bank])
        self._bank_next_free[bank] = start + self.service_interval
        hit = self.cache.access(req)
        return hit, start, start + self.latency

    @property
    def stats(self):
        return self.cache.stats
