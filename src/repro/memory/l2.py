"""Banked unified L2 cache timing wrapper."""

from __future__ import annotations

import math
from typing import List

import numpy as np

from ..config import CacheConfig
from ..obs.events import Ev
from .cache import Cache
from .replacement import make_policy
from .request import MemRequest

_EV_L2_BANK = int(Ev.L2_BANK)


class BankedL2:
    """Unified L2 shared by all SMs, interleaved across banks by line address.

    Tags/replacement live in one :class:`Cache` (capacity behaviour); each
    bank contributes an independent service queue (bandwidth behaviour).
    """

    def __init__(
        self,
        config: CacheConfig,
        num_banks: int,
        latency: int,
        service_interval: int,
        policy_name: str = "lru",
    ) -> None:
        self.cache = Cache(config, make_policy(policy_name))
        self.num_banks = num_banks
        self.latency = latency
        self.service_interval = service_interval
        self._bank_next_free: List[float] = [0.0] * num_banks
        #: Cumulative cycles requests spent queued behind busy banks.
        self.queue_cycles = 0.0
        #: Event bus (``repro.obs``) or ``None``; set by ``wire_hierarchy``.
        self.obs = None

    def bank_of(self, line_addr: int) -> int:
        return (line_addr // self.cache.config.line_size) % self.num_banks

    def bank_of_batch(self, line_addrs) -> np.ndarray:
        """Vectorized :meth:`bank_of` over an array of line addresses."""
        arr = np.asarray(line_addrs, dtype=np.int64)
        return (arr // self.cache.config.line_size) % self.num_banks

    def queue_delays_batch(self, line_addrs, now: float) -> np.ndarray:
        """Per-line bank backlogs at ``now`` (vectorized :meth:`queue_delay`).

        Read-only diagnostic batching for the vector backend's profilers;
        the access path itself stays sequential because each access moves
        its bank's free time before the next one queries it.
        """
        banks = self.bank_of_batch(line_addrs)
        free = np.asarray(self._bank_next_free, dtype=np.float64)
        return np.maximum(0.0, free[banks] - now)

    def access(self, req: MemRequest, now: float):
        """Probe the L2; returns ``(hit, queued_start, data_ready_time)``.

        ``queued_start`` is when the bank actually begins service (after
        queueing); ``data_ready_time`` adds the L2 latency.  On a miss the
        caller starts the DRAM trip from ``queued_start`` so the paper's
        minimum latencies (120 to L2, 220 to DRAM) hold end to end.
        """
        bank = self.bank_of(req.line_addr)
        busy_until = self._bank_next_free[bank]
        start = now if now >= busy_until else busy_until
        self._bank_next_free[bank] = start + self.service_interval
        self.queue_cycles += start - now
        hit = self.cache.access(req)
        if self.obs is not None:
            self.obs.emit((_EV_L2_BANK, now, req.warp_key[0], bank,
                           1 if hit else 0, start - now))
        return hit, start, start + self.latency

    def bank_busy_cycles(self, now: float) -> float:
        """Total *remaining* busy cycles across banks as of ``now``.

        Each bank contributes ``max(0, next_free - now)``: clamping per
        bank guards the report against a clock that has already jumped
        past some banks' free times (skip-clock boundaries), where the
        old unclamped sum mixed stale negative backlogs into the total.
        """
        total = 0.0
        for next_free in self._bank_next_free:
            if next_free > now:
                total += next_free - now
        return total

    def queue_delay(self, req_or_line, now: float) -> float:
        """Backlog a request to this line's bank would see at ``now``."""
        line_addr = getattr(req_or_line, "line_addr", req_or_line)
        return max(0.0, self._bank_next_free[self.bank_of(line_addr)] - now)

    def next_event_time(self, now: float) -> float:
        """Earliest bank-free time after ``now`` (inf when all idle).

        Diagnostic member of the device-wide ``next_event_time`` protocol;
        bank frees shape future access latencies, not issue eligibility,
        so the skip clock never heaps them (see :mod:`repro.gpu.clock`).
        """
        earliest = math.inf
        for next_free in self._bank_next_free:
            if now < next_free < earliest:
                earliest = next_free
        return earliest

    @property
    def stats(self):
        return self.cache.stats
