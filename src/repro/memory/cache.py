"""Set-associative cache with pluggable replacement/partitioning policies.

The cache models tags and replacement state only (data is functionally
served by :class:`~repro.memory.data.GlobalMemory`).  Policies control the
fill-way choice within a way range, which is how CACP's critical/non-critical
partitioning plugs in without the cache knowing about criticality.

Observers can subscribe to access/evict events; the reuse-distance profiler
(Fig 3) and zero-reuse accounting (Fig 15) are implemented that way.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional

from ..config import CacheConfig
from ..feedback.signals import Sig
from ..obs.events import Ev
from .replacement import ReplacementPolicy
from .request import MemRequest

_EV_CACHE_HIT = int(Ev.CACHE_HIT)
_EV_CACHE_MISS = int(Ev.CACHE_MISS)
_EV_CACHE_FILL = int(Ev.CACHE_FILL)
_EV_CACHE_EVICT = int(Ev.CACHE_EVICT)
_EV_CACHE_BYPASS = int(Ev.CACHE_BYPASS)

_SIG_MISS = int(Sig.MISS)
_SIG_FILL = int(Sig.FILL)
_SIG_EVICT = int(Sig.EVICT)


@dataclass
class CacheLine:
    """Tag-array entry plus policy and CAWA bookkeeping state."""

    valid: bool = False
    tag: int = -1
    line_addr: int = -1
    # Replacement-policy state.
    last_use: int = 0
    rrpv: int = 0
    signature: int = 0
    # Reuse bookkeeping.
    reuse_count: int = 0
    filled_by_critical: bool = False
    fill_pc: int = -1
    fill_cycle: float = 0.0
    # Warp attribution of the fill (``req.warp_key[1:]``): lets eviction
    # feedback signals name the *victim's* owner (CCWS victim tag arrays,
    # CIAO interference scores).  -1 when unattributed.
    fill_block: int = -1
    fill_warp: int = -1
    # CACP per-line flags (Algorithm 4).
    c_reuse: bool = False
    nc_reuse: bool = False
    in_critical_partition: bool = False

    @property
    def reused(self) -> bool:
        return self.reuse_count > 0

    def reset_for_fill(self, line_addr: int, req: MemRequest) -> None:
        self.valid = True
        self.tag = line_addr
        self.line_addr = line_addr
        self.reuse_count = 0
        self.filled_by_critical = req.is_critical
        self.fill_pc = req.pc
        self.fill_cycle = req.cycle
        self.fill_block = req.warp_key[1]
        self.fill_warp = req.warp_key[2]
        self.c_reuse = False
        self.nc_reuse = False
        self.signature = req.signature


@dataclass
class CacheStats:
    """Aggregate counters for one cache instance."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    bypasses: int = 0
    critical_accesses: int = 0
    critical_hits: int = 0
    evictions: int = 0
    zero_reuse_evictions: int = 0
    critical_fill_evictions: int = 0
    critical_zero_reuse_evictions: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def critical_hit_rate(self) -> float:
        if not self.critical_accesses:
            return 0.0
        return self.critical_hits / self.critical_accesses

    @property
    def zero_reuse_fraction(self) -> float:
        if not self.evictions:
            return 0.0
        return self.zero_reuse_evictions / self.evictions

    @property
    def critical_zero_reuse_fraction(self) -> float:
        if not self.critical_fill_evictions:
            return 0.0
        return self.critical_zero_reuse_evictions / self.critical_fill_evictions


class Cache:
    """One set-associative cache level."""

    def __init__(self, config: CacheConfig, policy: ReplacementPolicy) -> None:
        self.config = config
        self.policy = policy
        self._sets: List[List[CacheLine]] = [
            [CacheLine() for _ in range(config.ways)] for _ in range(config.sets)
        ]
        self.stats = CacheStats()
        self.observers: List = []
        #: Event bus (``repro.obs``) or ``None``; set by the wire helpers.
        self.obs = None
        #: ``LEVEL_L1D`` (0) or ``LEVEL_L2`` (1) stamped on emitted records.
        self.obs_level = 0
        #: SM id stamped on records, or -1 to derive it from the request's
        #: ``warp_key`` (shared caches serve every SM).
        self.obs_owner = -1
        #: Numpy tag mirror (:class:`repro.memory.vector.TagMirror`) or
        #: ``None``; attached by the vector backend via ``attach_mirror``.
        #: The line objects stay authoritative — the mirror only replaces
        #: the probe loops and victim searches with array operations.
        self.mirror = None
        #: FeedbackChannel (``repro.feedback``) or ``None``; set by
        #: :func:`repro.feedback.wire_gpu_feedback` /
        #: :func:`~repro.feedback.attach_signal_tap` only when a scheme
        #: subscribes or a tap records, so the disabled cost is one
        #: pointer test.  Both backends publish from the same scalar
        #: fill/evict code (the TagMirror only changes way-finding), so
        #: signal streams are backend-identical by construction.
        self.fb = None
        #: SM id stamped on published signals, or -1 to derive it from the
        #: request's ``warp_key`` (the shared L2 serves every SM).
        self.fb_owner = -1
        #: ``LEVEL_L1D`` (0) or ``LEVEL_L2`` (1) on published signals.
        self.fb_level = 0

    # ------------------------------------------------------------------
    def lookup(self, line_addr: int) -> Optional[CacheLine]:
        """Tag probe without side effects (no stats, no promotion)."""
        for line in self._sets[self.config.set_index(line_addr)]:
            if line.valid and line.tag == line_addr:
                return line
        return None

    def access(self, req: MemRequest) -> bool:
        """Probe + fill-on-miss; returns True on hit.

        Stores are modeled write-through / write-allocate: they probe and
        fill like loads (GPU L1s in GPGPU-sim's Fermi config evict on write;
        allocating keeps the model simple and preserves the contention the
        paper studies).
        """
        set_idx = self.config.set_index(req.line_addr)
        lines = self._sets[set_idx]
        self.stats.accesses += 1
        if req.is_critical:
            self.stats.critical_accesses += 1

        mirror = self.mirror
        if mirror is not None:
            way = mirror.find_way(set_idx, req.line_addr)
            line = lines[way] if way >= 0 else None
        else:
            line = None
            for cand in lines:
                if cand.valid and cand.tag == req.line_addr:
                    line = cand
                    break
        if line is not None:
            self.stats.hits += 1
            if req.is_critical:
                self.stats.critical_hits += 1
            line.reuse_count += 1
            self.policy.on_hit(line, req)
            if mirror is not None:
                mirror.sync(set_idx, way, line)
            for obs in self.observers:
                obs.on_access(req, hit=True, line=line)
            if self.obs is not None:
                owner = self.obs_owner
                self.obs.emit((
                    _EV_CACHE_HIT, req.cycle,
                    owner if owner >= 0 else req.warp_key[0],
                    self.obs_level, req.pc, req.line_addr,
                    1 if req.is_critical else 0,
                ))
            return True

        self.stats.misses += 1
        fb = self.fb
        if fb is not None:
            # Published *before* the fill so subscribers probe their victim
            # tag state as it stood when the miss was detected (the fill's
            # own eviction lands after this record).
            owner = self.fb_owner
            fb.publish((
                _SIG_MISS, req.cycle,
                owner if owner >= 0 else req.warp_key[0],
                self.fb_level, req.warp_key[1], req.warp_key[2],
                req.line_addr, req.pc,
            ))
        if getattr(self.policy, "should_bypass", None) and self.policy.should_bypass(req):
            # Bypass: the request is serviced from L2/DRAM without
            # allocating a line, so it cannot evict useful data.
            self.stats.bypasses += 1
            if self.obs is not None:
                owner = self.obs_owner
                self.obs.emit((
                    _EV_CACHE_BYPASS, req.cycle,
                    owner if owner >= 0 else req.warp_key[0],
                    self.obs_level, req.line_addr,
                ))
        else:
            self._fill(lines, req, set_idx)
        for obs in self.observers:
            obs.on_access(req, hit=False, line=None)
        if self.obs is not None:
            owner = self.obs_owner
            self.obs.emit((
                _EV_CACHE_MISS, req.cycle,
                owner if owner >= 0 else req.warp_key[0],
                self.obs_level, req.pc, req.line_addr,
                1 if req.is_critical else 0,
            ))
        return False

    def _fill(self, lines: List[CacheLine], req: MemRequest, set_idx: int) -> None:
        lo, hi = self.policy.way_range(lines, req, self.config.ways)
        mirror = self.mirror
        if mirror is not None:
            # attach_mirror only mirrors policies whose victim choice the
            # mirror replicates exactly (same way, same aging side effects).
            way = mirror.choose_way(lines, set_idx, lo, hi)
        else:
            way = self.policy.choose_way(lines, req, lo, hi)
        line = lines[way]
        if line.valid:
            self._evict(line, req)
        line.reset_for_fill(req.line_addr, req)
        # The policy may retune its partition at runtime, so prefer its
        # current boundary over the static config value.
        boundary = getattr(self.policy, "critical_ways", self.config.critical_ways)
        line.in_critical_partition = way < boundary
        self.policy.on_fill(line, req)
        if mirror is not None:
            mirror.sync(set_idx, way, line)
        if self.obs is not None:
            owner = self.obs_owner
            self.obs.emit((
                _EV_CACHE_FILL, req.cycle,
                owner if owner >= 0 else req.warp_key[0],
                self.obs_level, req.line_addr, 1 if req.is_critical else 0,
            ))
        fb = self.fb
        if fb is not None:
            owner = self.fb_owner
            fb.publish((
                _SIG_FILL, req.cycle,
                owner if owner >= 0 else req.warp_key[0],
                self.fb_level, req.warp_key[1], req.warp_key[2],
                req.line_addr, 1 if req.is_critical else 0,
            ))

    def _evict(self, line: CacheLine, req: MemRequest) -> None:
        self.stats.evictions += 1
        if line.reuse_count == 0:
            self.stats.zero_reuse_evictions += 1
        if line.filled_by_critical:
            self.stats.critical_fill_evictions += 1
            if line.reuse_count == 0:
                self.stats.critical_zero_reuse_evictions += 1
        self.policy.on_evict(line, req)
        for obs in self.observers:
            obs.on_evict(line)
        if self.obs is not None:
            owner = self.obs_owner
            self.obs.emit((
                _EV_CACHE_EVICT, req.cycle,
                owner if owner >= 0 else req.warp_key[0],
                self.obs_level, line.line_addr,
                1 if line.reuse_count > 0 else 0,
            ))
        fb = self.fb
        if fb is not None:
            # Dual attribution: the victim's filler (from the line) and the
            # evicting requester (from the fill request being serviced).
            owner = self.fb_owner
            fb.publish((
                _SIG_EVICT, req.cycle,
                owner if owner >= 0 else req.warp_key[0],
                self.fb_level, line.fill_block, line.fill_warp,
                line.line_addr, 1 if line.reuse_count > 0 else 0,
                req.warp_key[1], req.warp_key[2],
            ))

    def batch_hits(self, line_addrs: List[int], req: MemRequest) -> bool:
        """All-hit probe + commit for one coalesced warp access.

        Vector-backend fast path: when *every* address in ``line_addrs``
        currently hits, applies the exact per-line bookkeeping the scalar
        :meth:`access` sequence would have (stats, ``reuse_count``,
        ``policy.on_hit`` in address order) and returns True; otherwise
        returns False having mutated nothing, and the caller falls back to
        the sequential walk.  Sound because hits never evict: "all hit now"
        implies each access would still hit when performed one at a time.

        ``req`` is shared across the lines, which is exact only because no
        in-tree ``on_hit`` reads the per-line request fields (``line_addr``,
        ``pc``, ``signature``, ``cycle``).  Observer hooks *do* read them,
        so the LSU only takes this path with ``observers`` empty and every
        ``obs`` bus (cache, policy, LSU) detached.  Feedback channels
        (``self.fb``) need no such guard: the signal schema publishes only
        misses, fills and evictions, and the all-hit path produces none.
        """
        mirror = self.mirror
        if mirror is None or not mirror.all_hit(line_addrs):
            return False
        stats = self.stats
        k = len(line_addrs)
        stats.accesses += k
        stats.hits += k
        if req.is_critical:
            stats.critical_accesses += k
            stats.critical_hits += k
        set_index = self.config.set_index
        on_hit = self.policy.on_hit
        sets = self._sets
        for line_addr in line_addrs:
            set_idx = set_index(line_addr)
            way = mirror.find_way(set_idx, line_addr)
            line = sets[set_idx][way]
            line.reuse_count += 1
            on_hit(line, req)
            mirror.sync(set_idx, way, line)
        return True

    def invalidate_all(self) -> None:
        """Drop all lines (used between kernel launches in tests)."""
        for lines in self._sets:
            for line in lines:
                line.valid = False
                line.tag = -1
        if self.mirror is not None:
            self.mirror.invalidate_all()

    def next_event_time(self, now: float) -> float:
        """Always ``inf``: the tag array is passive.

        A cache only changes state when *accessed*; it never spontaneously
        wakes anything.  Defined so the cache is a uniform member of the
        device-wide ``next_event_time`` protocol (see :mod:`repro.gpu.clock`).
        """
        return math.inf

    def occupancy(self) -> float:
        total = self.config.sets * self.config.ways
        valid = sum(1 for lines in self._sets for line in lines if line.valid)
        return valid / total
