"""Set-associative cache with pluggable replacement/partitioning policies.

The cache models tags and replacement state only (data is functionally
served by :class:`~repro.memory.data.GlobalMemory`).  Policies control the
fill-way choice within a way range, which is how CACP's critical/non-critical
partitioning plugs in without the cache knowing about criticality.

Observers can subscribe to access/evict events; the reuse-distance profiler
(Fig 3) and zero-reuse accounting (Fig 15) are implemented that way.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional

from ..config import CacheConfig
from ..obs.events import Ev
from .replacement import ReplacementPolicy
from .request import MemRequest

_EV_CACHE_HIT = int(Ev.CACHE_HIT)
_EV_CACHE_MISS = int(Ev.CACHE_MISS)
_EV_CACHE_FILL = int(Ev.CACHE_FILL)
_EV_CACHE_EVICT = int(Ev.CACHE_EVICT)
_EV_CACHE_BYPASS = int(Ev.CACHE_BYPASS)


@dataclass
class CacheLine:
    """Tag-array entry plus policy and CAWA bookkeeping state."""

    valid: bool = False
    tag: int = -1
    line_addr: int = -1
    # Replacement-policy state.
    last_use: int = 0
    rrpv: int = 0
    signature: int = 0
    # Reuse bookkeeping.
    reuse_count: int = 0
    filled_by_critical: bool = False
    fill_pc: int = -1
    fill_cycle: float = 0.0
    # CACP per-line flags (Algorithm 4).
    c_reuse: bool = False
    nc_reuse: bool = False
    in_critical_partition: bool = False

    @property
    def reused(self) -> bool:
        return self.reuse_count > 0

    def reset_for_fill(self, line_addr: int, req: MemRequest) -> None:
        self.valid = True
        self.tag = line_addr
        self.line_addr = line_addr
        self.reuse_count = 0
        self.filled_by_critical = req.is_critical
        self.fill_pc = req.pc
        self.fill_cycle = req.cycle
        self.c_reuse = False
        self.nc_reuse = False
        self.signature = req.signature


@dataclass
class CacheStats:
    """Aggregate counters for one cache instance."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    bypasses: int = 0
    critical_accesses: int = 0
    critical_hits: int = 0
    evictions: int = 0
    zero_reuse_evictions: int = 0
    critical_fill_evictions: int = 0
    critical_zero_reuse_evictions: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def critical_hit_rate(self) -> float:
        if not self.critical_accesses:
            return 0.0
        return self.critical_hits / self.critical_accesses

    @property
    def zero_reuse_fraction(self) -> float:
        if not self.evictions:
            return 0.0
        return self.zero_reuse_evictions / self.evictions

    @property
    def critical_zero_reuse_fraction(self) -> float:
        if not self.critical_fill_evictions:
            return 0.0
        return self.critical_zero_reuse_evictions / self.critical_fill_evictions


class Cache:
    """One set-associative cache level."""

    def __init__(self, config: CacheConfig, policy: ReplacementPolicy) -> None:
        self.config = config
        self.policy = policy
        self._sets: List[List[CacheLine]] = [
            [CacheLine() for _ in range(config.ways)] for _ in range(config.sets)
        ]
        self.stats = CacheStats()
        self.observers: List = []
        #: Event bus (``repro.obs``) or ``None``; set by the wire helpers.
        self.obs = None
        #: ``LEVEL_L1D`` (0) or ``LEVEL_L2`` (1) stamped on emitted records.
        self.obs_level = 0
        #: SM id stamped on records, or -1 to derive it from the request's
        #: ``warp_key`` (shared caches serve every SM).
        self.obs_owner = -1

    # ------------------------------------------------------------------
    def lookup(self, line_addr: int) -> Optional[CacheLine]:
        """Tag probe without side effects (no stats, no promotion)."""
        for line in self._sets[self.config.set_index(line_addr)]:
            if line.valid and line.tag == line_addr:
                return line
        return None

    def access(self, req: MemRequest) -> bool:
        """Probe + fill-on-miss; returns True on hit.

        Stores are modeled write-through / write-allocate: they probe and
        fill like loads (GPU L1s in GPGPU-sim's Fermi config evict on write;
        allocating keeps the model simple and preserves the contention the
        paper studies).
        """
        lines = self._sets[self.config.set_index(req.line_addr)]
        self.stats.accesses += 1
        if req.is_critical:
            self.stats.critical_accesses += 1

        for line in lines:
            if line.valid and line.tag == req.line_addr:
                self.stats.hits += 1
                if req.is_critical:
                    self.stats.critical_hits += 1
                line.reuse_count += 1
                self.policy.on_hit(line, req)
                for obs in self.observers:
                    obs.on_access(req, hit=True, line=line)
                if self.obs is not None:
                    owner = self.obs_owner
                    self.obs.emit((
                        _EV_CACHE_HIT, req.cycle,
                        owner if owner >= 0 else req.warp_key[0],
                        self.obs_level, req.pc, req.line_addr,
                        1 if req.is_critical else 0,
                    ))
                return True

        self.stats.misses += 1
        if getattr(self.policy, "should_bypass", None) and self.policy.should_bypass(req):
            # Bypass: the request is serviced from L2/DRAM without
            # allocating a line, so it cannot evict useful data.
            self.stats.bypasses += 1
            if self.obs is not None:
                owner = self.obs_owner
                self.obs.emit((
                    _EV_CACHE_BYPASS, req.cycle,
                    owner if owner >= 0 else req.warp_key[0],
                    self.obs_level, req.line_addr,
                ))
        else:
            self._fill(lines, req)
        for obs in self.observers:
            obs.on_access(req, hit=False, line=None)
        if self.obs is not None:
            owner = self.obs_owner
            self.obs.emit((
                _EV_CACHE_MISS, req.cycle,
                owner if owner >= 0 else req.warp_key[0],
                self.obs_level, req.pc, req.line_addr,
                1 if req.is_critical else 0,
            ))
        return False

    def _fill(self, lines: List[CacheLine], req: MemRequest) -> None:
        lo, hi = self.policy.way_range(lines, req, self.config.ways)
        way = self.policy.choose_way(lines, req, lo, hi)
        line = lines[way]
        if line.valid:
            self._evict(line, req)
        line.reset_for_fill(req.line_addr, req)
        # The policy may retune its partition at runtime, so prefer its
        # current boundary over the static config value.
        boundary = getattr(self.policy, "critical_ways", self.config.critical_ways)
        line.in_critical_partition = way < boundary
        self.policy.on_fill(line, req)
        if self.obs is not None:
            owner = self.obs_owner
            self.obs.emit((
                _EV_CACHE_FILL, req.cycle,
                owner if owner >= 0 else req.warp_key[0],
                self.obs_level, req.line_addr, 1 if req.is_critical else 0,
            ))

    def _evict(self, line: CacheLine, req: MemRequest) -> None:
        self.stats.evictions += 1
        if line.reuse_count == 0:
            self.stats.zero_reuse_evictions += 1
        if line.filled_by_critical:
            self.stats.critical_fill_evictions += 1
            if line.reuse_count == 0:
                self.stats.critical_zero_reuse_evictions += 1
        self.policy.on_evict(line, req)
        for obs in self.observers:
            obs.on_evict(line)
        if self.obs is not None:
            owner = self.obs_owner
            self.obs.emit((
                _EV_CACHE_EVICT, req.cycle,
                owner if owner >= 0 else req.warp_key[0],
                self.obs_level, line.line_addr,
                1 if line.reuse_count > 0 else 0,
            ))

    def invalidate_all(self) -> None:
        """Drop all lines (used between kernel launches in tests)."""
        for lines in self._sets:
            for line in lines:
                line.valid = False
                line.tag = -1

    def next_event_time(self, now: float) -> float:
        """Always ``inf``: the tag array is passive.

        A cache only changes state when *accessed*; it never spontaneously
        wakes anything.  Defined so the cache is a uniform member of the
        device-wide ``next_event_time`` protocol (see :mod:`repro.gpu.clock`).
        """
        return math.inf

    def occupancy(self) -> float:
        total = self.config.sets * self.config.ways
        valid = sum(1 for lines in self._sets for line in lines if line.valid)
        return valid / total
