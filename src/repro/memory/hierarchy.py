"""Composition of the full memory hierarchy's timing path.

One :class:`MemoryHierarchy` serves every SM: it owns the shared L2 and the
DRAM model, while each SM brings its own L1 data cache + MSHR file.  The
timing walk happens at access time — hit/miss outcomes and queueing delays
compose into a single completion cycle the LSU writes into the warp's
scoreboard.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import GPUConfig
from .cache import Cache
from .l2 import BankedL2
from .dram import DRAMModel
from .mshr import MSHRFile
from .request import MemRequest


@dataclass
class AccessOutcome:
    """Result of one line access through the hierarchy."""

    l1_hit: bool
    completion: float
    merged: bool = False


class MemoryHierarchy:
    """Shared L2 + DRAM; L1s are owned by SMs and passed per access."""

    def __init__(self, config: GPUConfig) -> None:
        self.config = config
        self.l2 = BankedL2(
            config.l2,
            num_banks=config.l2_banks,
            latency=config.l2_latency,
            service_interval=config.l2_service_interval,
        )
        self.dram = DRAMModel(config.dram_latency, config.dram_service_interval)

    def next_event_time(self, now: float) -> float:
        """Earliest shared-memory-side event after ``now`` (bank or
        channel free; inf when both idle).  Diagnostic — see
        :mod:`repro.gpu.clock` for why these never gate the skip clock."""
        return min(self.l2.next_event_time(now), self.dram.next_event_time(now))

    def access(self, l1: Cache, mshr: MSHRFile, req: MemRequest, now: float) -> AccessOutcome:
        """Walk ``req`` through L1 -> (MSHR) -> L2 -> DRAM; returns timing."""
        l1_latency = l1.config.hit_latency
        hit = l1.access(req)
        if hit:
            return AccessOutcome(l1_hit=True, completion=now + l1_latency)

        # Merge with an in-flight fill of the same line, if any.
        merged_completion = mshr.lookup(req.line_addr, now)
        if merged_completion is not None:
            return AccessOutcome(
                l1_hit=False, completion=max(merged_completion, now + l1_latency), merged=True
            )

        start = mshr.earliest_start(now) + l1_latency
        l2_hit, queued_start, l2_ready = self.l2.access(req, start)
        completion = (l2_ready if l2_hit
                      else self.dram.access(queued_start, req.warp_key[0]))
        mshr.register(req.line_addr, completion, now=now)
        return AccessOutcome(l1_hit=False, completion=completion)
