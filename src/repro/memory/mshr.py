"""Miss-status holding registers: miss merging and outstanding-miss limits."""

from __future__ import annotations

import heapq
import math
from typing import Dict, Optional

from ..obs.events import Ev

_EV_MSHR_ALLOC = int(Ev.MSHR_ALLOC)
_EV_MSHR_MERGE = int(Ev.MSHR_MERGE)
_EV_MSHR_FULL = int(Ev.MSHR_FULL)


class MSHRFile:
    """Tracks in-flight line fills for one cache.

    Two jobs:
      * **merging** — a second miss to an in-flight line completes with the
        first (no duplicate L2/DRAM traffic);
      * **throttling** — at most ``entries`` lines may be outstanding; when
        the file is full a new miss cannot begin service until the oldest
        in-flight fill completes (modeled by delaying its start time).
    """

    def __init__(self, entries: int) -> None:
        self._entries = entries
        self._inflight: Dict[int, float] = {}
        self._completions: list = []  # heap of (completion, line_addr)
        self.merged_misses = 0
        self.stall_inducing_misses = 0
        #: Event bus (``repro.obs``) or ``None``; set by ``wire_sms``.
        self.obs = None
        #: Owning SM id stamped on emitted MSHR records.
        self.obs_owner = -1

    def _purge(self, now: float) -> None:
        while self._completions and self._completions[0][0] <= now:
            _, line_addr = heapq.heappop(self._completions)
            done = self._inflight.get(line_addr)
            if done is not None and done <= now:
                del self._inflight[line_addr]

    def lookup(self, line_addr: int, now: float) -> Optional[float]:
        """Completion time of an in-flight fill of ``line_addr``, if any."""
        self._purge(now)
        completion = self._inflight.get(line_addr)
        if completion is not None:
            self.merged_misses += 1
            if self.obs is not None:
                self.obs.emit((_EV_MSHR_MERGE, now, self.obs_owner,
                               line_addr, completion))
        return completion

    def lookup_batch(self, line_addrs, now: float) -> list:
        """Batched :meth:`lookup`: one purge, then per-line probes.

        Equivalent to sequential ``lookup`` calls at the same ``now`` —
        the purge is the only time-dependent work and it is idempotent at
        a fixed ``now`` — with merged-miss accounting and emits applied
        per line in order.  A *primitive* for the vector backend: the full
        hierarchy walk stays sequential (a fill for one line can evict
        what the next line would have hit), but the probe itself batches.
        """
        self._purge(now)
        inflight = self._inflight
        out = []
        for line_addr in line_addrs:
            completion = inflight.get(line_addr)
            if completion is not None:
                self.merged_misses += 1
                if self.obs is not None:
                    self.obs.emit((_EV_MSHR_MERGE, now, self.obs_owner,
                                   line_addr, completion))
            out.append(completion)
        return out

    def earliest_start(self, now: float) -> float:
        """Earliest time a new miss may begin service (capacity limit)."""
        self._purge(now)
        if len(self._inflight) < self._entries:
            return now
        self.stall_inducing_misses += 1
        free_at = self._completions[0][0] if self._completions else now
        if self.obs is not None:
            self.obs.emit((_EV_MSHR_FULL, now, self.obs_owner,
                           len(self._inflight), free_at))
        return free_at

    def free_entries(self, now: float) -> int:
        """Number of unoccupied MSHR entries at ``now``."""
        self._purge(now)
        return max(0, self._entries - len(self._inflight))

    def is_full(self, now: float) -> bool:
        """True when no MSHR entry is free at ``now``.

        The SM gates issue of global memory instructions on this — the
        back-pressure that makes warp schedulers arbitrate memory access
        (and lets greedy/criticality-aware policies shrink the set of warps
        competing for the L1).
        """
        self._purge(now)
        return len(self._inflight) >= self._entries

    def next_free_time(self, now: float) -> float:
        """Earliest future cycle an entry frees up (now if one is free)."""
        self._purge(now)
        if len(self._inflight) < self._entries:
            return now
        return self._completions[0][0] if self._completions else now

    def next_event_time(self, now: float) -> float:
        """Next in-flight fill completion after ``now`` (inf when idle).

        Unlike :meth:`next_free_time` this reports the completion event
        itself rather than the capacity condition, making the MSHR file a
        uniform member of the device's ``next_event_time`` protocol.
        """
        self._purge(now)
        return self._completions[0][0] if self._completions else math.inf

    def register(self, line_addr: int, completion: float,
                 now: float = 0.0) -> None:
        self._inflight[line_addr] = completion
        heapq.heappush(self._completions, (completion, line_addr))
        if self.obs is not None:
            self.obs.emit((_EV_MSHR_ALLOC, now, self.obs_owner,
                           line_addr, completion, len(self._inflight)))

    @property
    def outstanding(self) -> int:
        return len(self._inflight)
