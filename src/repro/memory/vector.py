"""Numpy tag-array mirror and batched probes for the vector backend.

The scalar :class:`~repro.memory.cache.Cache` stores its tag array as lists
of :class:`~repro.memory.cache.CacheLine` objects; every probe is a Python
loop over attribute reads, and every victim search is a loop (or several,
for RRIP aging) over the same objects.  :class:`TagMirror` keeps three
numpy arrays — tags, LRU stamps, RRPVs — in lockstep with those line
objects so that:

* tag matching is one O(1) probe of a hash *tag directory* (``index``,
  mapping resident line address -> way) kept in lockstep with the tag
  array — a line address determines its set, so the flat map is unambiguous;
* LRU victim selection is an ``argmin`` over the candidate way range;
* RRIP victim selection (SRRIP/SHiP/BRRIP/DRRIP and CACP's partitioned
  variant) is an ``argmax`` plus a *closed-form* aging step.

The line objects remain authoritative: the mirror is consulted for
*finding* ways, and every mutation of policy state still happens on the
line objects (then synced).  Exactness arguments, pinned bit-for-bit by
``tests/test_vector_memory.py``:

* ``valid and tag == addr``  ⇔  ``mirror.tags[set, way] == addr``, because
  invalid lines carry ``tag == -1`` (construction, ``invalidate_all``) and
  real line addresses are non-negative.
* LRU: ``min(range(lo, hi), key=last_use)`` returns the *first* way with
  the minimal stamp; ``lo + argmin(last_use[lo:hi])`` has identical
  first-tie semantics (stamps are unique anyway — the policy clock is
  monotone).
* RRIP: the scalar search repeats "return first way with
  ``rrpv >= RRPV_MAX``, else age every way in range by 1".  RRPVs never
  exceed ``RRPV_MAX``, so the loop runs exactly ``RRPV_MAX - max(rrpv)``
  aging passes and then returns the first way that held the maximum.  The
  mirror applies that delta to every way in the range (mirror *and* line
  objects) and returns ``lo + argmax`` — the same victim, the same
  post-state.

Policies with out-of-tree subclasses (anything whose exact type is not one
of the known implementations) simply do not get a mirror; the cache then
runs the scalar path unchanged.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .._jit import jit_or
from .replacement import (
    RRPV_MAX,
    BRRIPPolicy,
    DRRIPPolicy,
    LRUPolicy,
    SHiPPolicy,
    SRRIPPolicy,
)

__all__ = ["TagMirror", "attach_mirror"]


# ---------------------------------------------------------------------------
# JIT-able scalar kernels with exact numpy fallbacks (see repro._jit)
# ---------------------------------------------------------------------------
def _find_tag_numpy(row: np.ndarray, tag: int) -> int:
    eq = row == tag
    return int(eq.argmax()) if eq.any() else -1


@jit_or(_find_tag_numpy)
def _find_tag(row, tag):  # pragma: no cover - numba-compiled variant
    for way in range(row.shape[0]):
        if row[way] == tag:
            return way
    return -1


def _first_invalid_numpy(row: np.ndarray, lo: int, hi: int) -> int:
    inv = row[lo:hi] == -1
    return lo + int(inv.argmax()) if inv.any() else -1


@jit_or(_first_invalid_numpy)
def _first_invalid(row, lo, hi):  # pragma: no cover - numba-compiled variant
    for way in range(lo, hi):
        if row[way] == -1:
            return way
    return -1


# ---------------------------------------------------------------------------
class TagMirror:
    """Numpy shadow of one cache's tags and replacement state."""

    __slots__ = ("tags", "last_use", "rrpv", "index", "kind",
                 "_num_sets", "_line_size", "_valid_count", "_ways")

    #: Victim-selection families the mirror knows how to replicate.
    KINDS = ("lru", "rrip", "cacp")

    def __init__(self, cache, kind: str) -> None:
        if kind not in self.KINDS:
            raise ValueError(f"unknown mirror kind {kind!r}")
        self.kind = kind
        cfg = cache.config
        self._num_sets = cfg.sets
        self._line_size = cfg.line_size
        self._ways = cfg.ways
        self.tags = np.full((cfg.sets, cfg.ways), -1, dtype=np.int64)
        self.last_use = np.zeros((cfg.sets, cfg.ways), dtype=np.int64)
        self.rrpv = np.zeros((cfg.sets, cfg.ways), dtype=np.int64)
        #: Resident lines per set — lets ``choose_way`` skip the invalid-way
        #: scans entirely once a set is full (the steady state).
        self._valid_count = np.zeros(cfg.sets, dtype=np.int64)
        #: Tag directory: resident line address -> way.  The set index is
        #: a function of the address, so the flat map is unambiguous; it
        #: turns every tag probe into one O(1) hash lookup.
        self.index = {}
        # Adopt any pre-existing contents (mirrors can attach mid-life).
        for set_idx, lines in enumerate(cache._sets):
            for way, line in enumerate(lines):
                if line.valid:
                    self.sync(set_idx, way, line)

    # -- probes ---------------------------------------------------------
    def find_way(self, set_idx: int, line_addr: int) -> int:
        """Way holding ``line_addr``, or -1 (no side effects)."""
        return self.index.get(line_addr, -1)

    def all_hit(self, line_addrs: List[int]) -> bool:
        """True when *every* address currently hits (no side effects).

        Hits never evict, so "all hit now" implies every one of these
        accesses would hit when performed sequentially — the condition the
        LSU's batched hit path relies on.
        """
        index = self.index
        for line_addr in line_addrs:
            if line_addr not in index:
                return False
        return True

    def verify(self, cache) -> None:
        """Cross-check the mirror against the authoritative line objects.

        Debug/test helper: asserts tag array, directory, and replacement
        columns all agree with the cache's lines (uses the jit-able
        :func:`_find_tag` scan as an independent probe of the tag array).
        """
        for set_idx, lines in enumerate(cache._sets):
            row = self.tags[set_idx]
            valid = sum(1 for line in lines if line.valid)
            assert int(self._valid_count[set_idx]) == valid, set_idx
            for way, line in enumerate(lines):
                expected = line.tag if line.valid else -1
                assert int(row[way]) == expected, (set_idx, way)
                if line.valid:
                    assert _find_tag(row, line.tag) >= 0
                    assert self.index.get(line.tag) == way, (set_idx, way)
                    assert int(self.last_use[set_idx, way]) == line.last_use
                    assert int(self.rrpv[set_idx, way]) == line.rrpv

    # -- synchronization ------------------------------------------------
    def sync(self, set_idx: int, way: int, line) -> None:
        """Copy one line's authoritative state into the mirror."""
        tags = self.tags
        old = int(tags[set_idx, way])
        new = line.tag if line.valid else -1
        if old != new:
            if old != -1:
                self.index.pop(old, None)
            else:
                self._valid_count[set_idx] += 1
            if new != -1:
                self.index[new] = way
            elif old != -1:
                self._valid_count[set_idx] -= 1
            tags[set_idx, way] = new
        self.last_use[set_idx, way] = line.last_use
        self.rrpv[set_idx, way] = line.rrpv

    def invalidate_all(self) -> None:
        self.tags.fill(-1)
        self.index.clear()
        self._valid_count.fill(0)

    # -- victim selection -----------------------------------------------
    def choose_way(self, lines: List, set_idx: int, lo: int, hi: int) -> int:
        """Replicates ``policy.choose_way`` for the mirrored policy family."""
        tag_row = self.tags[set_idx]
        if self._valid_count[set_idx] < self._ways:  # else: set full, skip scans
            way = _first_invalid(tag_row, lo, hi)
            if way >= 0:
                return way
            if self.kind == "cacp":
                # CACP falls back to an invalid way *anywhere* before
                # evicting (an empty partition must not force evictions in
                # the other) — and one exists, since the set is not full.
                return _first_invalid(tag_row, 0, self._ways)
        if self.kind == "cacp":
            return self._rrip_victim(lines, set_idx, lo, hi)
        if self.kind == "lru":
            return lo + int(np.argmin(self.last_use[set_idx, lo:hi]))
        return self._rrip_victim(lines, set_idx, lo, hi)

    def _rrip_victim(self, lines: List, set_idx: int, lo: int, hi: int) -> int:
        """Closed-form SRRIP victim search + aging over ``[lo, hi)``.

        Ages the mirror *and* the authoritative line objects by the same
        delta the scalar loop would have applied, then returns the first
        way at ``RRPV_MAX`` — bit-identical post-state and victim.
        """
        window = self.rrpv[set_idx, lo:hi]
        delta = RRPV_MAX - int(window.max())
        if delta > 0:
            window += delta
            for way in range(lo, hi):
                lines[way].rrpv += delta
        return lo + int(np.argmax(window >= RRPV_MAX))


# ---------------------------------------------------------------------------
def attach_mirror(cache) -> Optional[TagMirror]:
    """Attach a :class:`TagMirror` to ``cache`` if its policy is mirrorable.

    Dispatch is on the *exact* policy type: subclasses with overridden
    victim logic would silently diverge from the mirror's replication, so
    anything unknown keeps the scalar path (returns ``None``).
    """
    kind = _mirror_kind(cache.policy)
    if kind is None:
        return None
    mirror = TagMirror(cache, kind)
    cache.mirror = mirror
    return mirror


def _mirror_kind(policy) -> Optional[str]:
    cls = type(policy)
    if cls is LRUPolicy:
        return "lru"
    if cls in (SRRIPPolicy, SHiPPolicy, BRRIPPolicy, DRRIPPolicy):
        return "rrip"
    # Local import: core.cacp imports from repro.memory, so importing it at
    # module scope would cycle during package initialization.
    from ..core.cacp import CACPPolicy

    if cls is CACPPolicy:
        return "cacp"
    return None
