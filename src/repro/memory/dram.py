"""DRAM timing model: minimum access latency plus bandwidth queueing."""

from __future__ import annotations

import math

from ..obs.events import Ev

_EV_DRAM_ENQ = int(Ev.DRAM_ENQ)
_EV_DRAM_SERVICE = int(Ev.DRAM_SERVICE)


class DRAMModel:
    """Single-channel DRAM with a fixed minimum latency.

    Each request occupies the channel for ``service_interval`` cycles, so
    bursts of misses queue up behind each other — the bandwidth contention
    that memory-intensive workloads like kmeans expose.
    """

    def __init__(self, latency: int, service_interval: int) -> None:
        self.latency = latency
        self.service_interval = service_interval
        self._next_free = 0.0
        self.accesses = 0
        self.busy_cycles = 0.0
        #: Cumulative cycles requests spent waiting for the channel (the
        #: ``start - now`` queueing component of every access).
        self.queue_cycles = 0.0
        #: Event bus (``repro.obs``) or ``None``; set by ``wire_hierarchy``.
        self.obs = None

    def access(self, now: float, sm_id: int = -1) -> float:
        """Completion time of a request arriving at ``now``.

        ``sm_id`` only stamps emitted DRAM events (the channel itself is
        device-level); timing is independent of it.
        """
        start = max(now, self._next_free)
        self._next_free = start + self.service_interval
        self.accesses += 1
        self.busy_cycles += self.service_interval
        self.queue_cycles += start - now
        if self.obs is not None:
            self.obs.emit((_EV_DRAM_ENQ, now, sm_id, start - now))
            self.obs.emit((_EV_DRAM_SERVICE, start, sm_id,
                           start + self.latency))
        return start + self.latency

    def queue_delay(self, now: float) -> float:
        """Instantaneous backlog: how long a request arriving *now* waits.

        Clamped at zero so a clock that just jumped past ``_next_free``
        (skip-clock boundaries) never reports a negative — or stale
        positive — delay computed from an out-of-date ``now``.
        """
        return max(0.0, self._next_free - now)

    def queue_delay_estimate(self, now: float | None = None) -> float:
        """Mean queueing delay per access (diagnostics).

        Historically this was ``busy_cycles / accesses`` — the mean
        *service occupancy*, which silently mixed service time into the
        "queue delay" it claimed to report and, worse, was read at skip
        boundaries where the caller's ``now`` had already jumped past the
        backlog it implied.  It now reports the true mean queueing wait
        (``queue_cycles / accesses``); pass ``now`` to fold in the current
        live backlog via :meth:`queue_delay` so estimates taken mid-run
        are consistent with the clock position.
        """
        if not self.accesses:
            return 0.0 if now is None else self.queue_delay(now)
        mean = self.queue_cycles / self.accesses
        if now is None:
            return mean
        # A probe right after a burst must not under-report: the live
        # backlog is a floor on what the next request will actually wait.
        return max(mean, self.queue_delay(now))

    def next_event_time(self, now: float) -> float:
        """Next channel-free time after ``now`` (inf when already idle).

        Diagnostic member of the device-wide ``next_event_time`` protocol:
        channel frees change future access *latencies*, never issue
        *eligibility*, so the skip clock does not heap them (see
        :mod:`repro.gpu.clock`).
        """
        return self._next_free if self._next_free > now else math.inf
