"""DRAM timing model: minimum access latency plus bandwidth queueing."""

from __future__ import annotations

import math

import numpy as np

from ..obs.events import Ev

_EV_DRAM_ENQ = int(Ev.DRAM_ENQ)
_EV_DRAM_SERVICE = int(Ev.DRAM_SERVICE)


class DRAMModel:
    """Single-channel DRAM with a fixed minimum latency.

    Each request occupies the channel for ``service_interval`` cycles, so
    bursts of misses queue up behind each other — the bandwidth contention
    that memory-intensive workloads like kmeans expose.
    """

    def __init__(self, latency: int, service_interval: int) -> None:
        self.latency = latency
        self.service_interval = service_interval
        self._next_free = 0.0
        self.accesses = 0
        self.busy_cycles = 0.0
        #: Cumulative cycles requests spent waiting for the channel (the
        #: ``start - now`` queueing component of every access).
        self.queue_cycles = 0.0
        #: Event bus (``repro.obs``) or ``None``; set by ``wire_hierarchy``.
        self.obs = None

    def access(self, now: float, sm_id: int = -1) -> float:
        """Completion time of a request arriving at ``now``.

        ``sm_id`` only stamps emitted DRAM events (the channel itself is
        device-level); timing is independent of it.
        """
        start = max(now, self._next_free)
        self._next_free = start + self.service_interval
        self.accesses += 1
        self.busy_cycles += self.service_interval
        self.queue_cycles += start - now
        if self.obs is not None:
            self.obs.emit((_EV_DRAM_ENQ, now, sm_id, start - now))
            self.obs.emit((_EV_DRAM_SERVICE, start, sm_id,
                           start + self.latency))
        return start + self.latency

    def access_batch(self, times, sm_id: int = -1) -> np.ndarray:
        """Completion times for requests arriving at ``times``, in order.

        Closed form of ``[self.access(t) for t in times]``:

            ``start_i = i*svc + max(next_free, max_{j<=i}(t_j - j*svc))``

        (each request starts no earlier than its arrival and no earlier
        than ``svc`` after its predecessor's start).  Bit-exact versus the
        sequential loop because every simulation time is an integer-valued
        float below 2**53, so the subtractions and running max are exact.
        Stats and per-access emits match the sequential walk; emits happen
        per access, in order.  A vector-backend *primitive* — the hierarchy
        walk itself stays sequential (see ``MSHRFile.lookup_batch``).
        """
        arr = np.asarray(times, dtype=np.float64)
        n = arr.shape[0]
        if n == 0:
            return arr
        svc = float(self.service_interval)
        offsets = svc * np.arange(n, dtype=np.float64)
        starts = offsets + np.maximum.accumulate(
            np.maximum(arr - offsets, self._next_free)
        )
        self._next_free = float(starts[-1]) + svc
        self.accesses += n
        self.busy_cycles += svc * n
        self.queue_cycles += float((starts - arr).sum())
        if self.obs is not None:
            latency = self.latency
            for i in range(n):
                now_i = float(arr[i])
                start_i = float(starts[i])
                self.obs.emit((_EV_DRAM_ENQ, now_i, sm_id, start_i - now_i))
                self.obs.emit((_EV_DRAM_SERVICE, start_i, sm_id,
                               start_i + latency))
        return starts + self.latency

    def queue_delay(self, now: float) -> float:
        """Instantaneous backlog: how long a request arriving *now* waits.

        Clamped at zero so a clock that just jumped past ``_next_free``
        (skip-clock boundaries) never reports a negative — or stale
        positive — delay computed from an out-of-date ``now``.
        """
        return max(0.0, self._next_free - now)

    def queue_delay_estimate(self, now: float | None = None) -> float:
        """Mean queueing delay per access (diagnostics).

        Historically this was ``busy_cycles / accesses`` — the mean
        *service occupancy*, which silently mixed service time into the
        "queue delay" it claimed to report and, worse, was read at skip
        boundaries where the caller's ``now`` had already jumped past the
        backlog it implied.  It now reports the true mean queueing wait
        (``queue_cycles / accesses``); pass ``now`` to fold in the current
        live backlog via :meth:`queue_delay` so estimates taken mid-run
        are consistent with the clock position.
        """
        if not self.accesses:
            return 0.0 if now is None else self.queue_delay(now)
        mean = self.queue_cycles / self.accesses
        if now is None:
            return mean
        # A probe right after a burst must not under-report: the live
        # backlog is a floor on what the next request will actually wait.
        return max(mean, self.queue_delay(now))

    def next_event_time(self, now: float) -> float:
        """Next channel-free time after ``now`` (inf when already idle).

        Diagnostic member of the device-wide ``next_event_time`` protocol:
        channel frees change future access *latencies*, never issue
        *eligibility*, so the skip clock does not heap them (see
        :mod:`repro.gpu.clock`).
        """
        return self._next_free if self._next_free > now else math.inf
