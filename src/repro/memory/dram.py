"""DRAM timing model: minimum access latency plus bandwidth queueing."""

from __future__ import annotations


class DRAMModel:
    """Single-channel DRAM with a fixed minimum latency.

    Each request occupies the channel for ``service_interval`` cycles, so
    bursts of misses queue up behind each other — the bandwidth contention
    that memory-intensive workloads like kmeans expose.
    """

    def __init__(self, latency: int, service_interval: int) -> None:
        self.latency = latency
        self.service_interval = service_interval
        self._next_free = 0.0
        self.accesses = 0
        self.busy_cycles = 0.0

    def access(self, now: float) -> float:
        """Completion time of a request arriving at ``now``."""
        start = max(now, self._next_free)
        self._next_free = start + self.service_interval
        self.accesses += 1
        self.busy_cycles += self.service_interval
        return start + self.latency

    @property
    def queue_delay_estimate(self) -> float:
        """Mean service occupancy (diagnostics only)."""
        return self.busy_cycles / self.accesses if self.accesses else 0.0
