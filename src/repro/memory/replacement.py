"""Cache replacement policies: LRU, SRRIP, and SHiP.

Policies own the per-line recency/RRPV state and the victim choice within a
candidate way range.  The CACP policy (the paper's contribution) lives in
:mod:`repro.core.cacp` and composes these building blocks with criticality
partitioning.
"""

from __future__ import annotations

from typing import List, Optional

from .request import MemRequest

#: 2-bit re-reference prediction values (RRIP [12]).
RRPV_MAX = 3
RRPV_LONG = 2
RRPV_NEAR = 0


class ReplacementPolicy:
    """Interface: pick fill ways, maintain per-line promotion state."""

    name = "base"

    def way_range(self, lines: List, req: MemRequest, ways: int):
        """Way interval ``[lo, hi)`` eligible for filling ``req``.

        The default is the whole set; partitioning policies (CACP) narrow
        this to the partition their predictor selects.
        """
        return 0, ways

    def choose_way(self, lines: List, req: MemRequest, lo: int, hi: int) -> int:
        """Pick the way in ``[lo, hi)`` to fill for ``req``.

        Invalid ways are preferred; subclasses implement the valid-victim
        choice in :meth:`_victim`.
        """
        for way in range(lo, hi):
            if not lines[way].valid:
                return way
        return self._victim(lines, req, lo, hi)

    def _victim(self, lines: List, req: MemRequest, lo: int, hi: int) -> int:
        raise NotImplementedError

    def on_fill(self, line, req: MemRequest) -> None:
        """Initialize policy state for a just-filled line."""

    def on_hit(self, line, req: MemRequest) -> None:
        """Promote a line on a hit."""

    def on_evict(self, line, req: MemRequest) -> None:
        """Learn from an eviction (used by SHiP)."""


class LRUPolicy(ReplacementPolicy):
    """Least-recently-used via a monotone access stamp."""

    name = "lru"

    def __init__(self) -> None:
        self._clock = 0

    def _touch(self, line) -> None:
        self._clock += 1
        line.last_use = self._clock

    def _victim(self, lines: List, req: MemRequest, lo: int, hi: int) -> int:
        return min(range(lo, hi), key=lambda way: lines[way].last_use)

    def on_fill(self, line, req: MemRequest) -> None:
        self._touch(line)

    def on_hit(self, line, req: MemRequest) -> None:
        self._touch(line)


class SRRIPPolicy(ReplacementPolicy):
    """Static RRIP [12]: insert at long re-reference, promote to near on hit."""

    name = "srrip"

    def _victim(self, lines: List, req: MemRequest, lo: int, hi: int) -> int:
        # Find an RRPV_MAX line, aging the range until one appears.
        while True:
            for way in range(lo, hi):
                if lines[way].rrpv >= RRPV_MAX:
                    return way
            for way in range(lo, hi):
                lines[way].rrpv += 1

    def on_fill(self, line, req: MemRequest) -> None:
        line.rrpv = RRPV_LONG

    def on_hit(self, line, req: MemRequest) -> None:
        line.rrpv = RRPV_NEAR


class SHiPPolicy(SRRIPPolicy):
    """Signature-based Hit Predictor [38] over SRRIP.

    A table of saturating counters, indexed by the request signature, learns
    whether lines inserted by that signature receive re-references.  Lines
    from signatures with no observed reuse are inserted at distant RRPV so
    they are evicted quickly.
    """

    name = "ship"

    def __init__(self, table_size: int = 256, counter_max: int = 3, initial: int = 1) -> None:
        self.table = [initial] * table_size
        self._counter_max = counter_max
        self._table_size = table_size

    def _index(self, signature: int) -> int:
        return signature % self._table_size

    def predicts_reuse(self, signature: int) -> bool:
        return self.table[self._index(signature)] > 0

    def train_hit(self, signature: int) -> None:
        idx = self._index(signature)
        if self.table[idx] < self._counter_max:
            self.table[idx] += 1

    def train_no_reuse(self, signature: int) -> None:
        idx = self._index(signature)
        if self.table[idx] > 0:
            self.table[idx] -= 1

    def insertion_rrpv(self, signature: int) -> int:
        """SHiP-guided insertion: long when reuse predicted, distant else."""
        return RRPV_LONG if self.predicts_reuse(signature) else RRPV_MAX

    def on_fill(self, line, req: MemRequest) -> None:
        line.rrpv = self.insertion_rrpv(req.signature)
        line.signature = req.signature

    def on_hit(self, line, req: MemRequest) -> None:
        line.rrpv = RRPV_NEAR
        self.train_hit(line.signature)

    def on_evict(self, line, req: MemRequest) -> None:
        if not line.reused:
            self.train_no_reuse(line.signature)


class BRRIPPolicy(SRRIPPolicy):
    """Bimodal RRIP: distant insertion, long insertion every Nth fill.

    The thrash-resistant half of DRRIP [12]: most lines insert at distant
    RRPV (evicted quickly), with a deterministic 1-in-``long_interval``
    trickle inserted at long RRPV to retain a sample of the working set.
    """

    name = "brrip"

    def __init__(self, long_interval: int = 32) -> None:
        self.long_interval = long_interval
        self._fills = 0

    def on_fill(self, line, req: MemRequest) -> None:
        self._fills += 1
        line.rrpv = RRPV_LONG if self._fills % self.long_interval == 0 else RRPV_MAX


class DRRIPPolicy(ReplacementPolicy):
    """Dynamic RRIP via set dueling [12, 29, 30].

    A few leader sets are dedicated to SRRIP and to BRRIP; misses in each
    group steer a saturating PSEL counter, and all follower sets insert
    with the currently-winning policy.  Promotion and victim selection are
    plain SRRIP everywhere.
    """

    name = "drrip"

    def __init__(
        self,
        sets: int = 8,
        line_size: int = 128,
        leader_sets: int = 2,
        psel_bits: int = 10,
        long_interval: int = 32,
    ) -> None:
        if leader_sets * 2 > sets:
            raise ValueError("too many leader sets for the cache geometry")
        self.sets = sets
        self.line_size = line_size
        self._srrip = SRRIPPolicy()
        self._brrip = BRRIPPolicy(long_interval)
        #: Leader set indices: first `leader_sets` follow SRRIP, last follow BRRIP.
        self._srrip_leaders = frozenset(range(leader_sets))
        self._brrip_leaders = frozenset(range(sets - leader_sets, sets))
        self._psel_max = (1 << psel_bits) - 1
        #: PSEL above midpoint -> BRRIP wins (SRRIP missed more).
        self.psel = self._psel_max // 2

    def _set_of(self, req: MemRequest) -> int:
        return (req.line_addr // self.line_size) % self.sets

    def _insertion_policy(self, set_idx: int) -> SRRIPPolicy:
        if set_idx in self._srrip_leaders:
            return self._srrip
        if set_idx in self._brrip_leaders:
            return self._brrip
        return self._brrip if self.psel > self._psel_max // 2 else self._srrip

    def _victim(self, lines: List, req: MemRequest, lo: int, hi: int) -> int:
        return self._srrip._victim(lines, req, lo, hi)

    def on_fill(self, line, req: MemRequest) -> None:
        set_idx = self._set_of(req)
        # A fill is a miss: train PSEL on the leader sets.
        if set_idx in self._srrip_leaders and self.psel < self._psel_max:
            self.psel += 1
        elif set_idx in self._brrip_leaders and self.psel > 0:
            self.psel -= 1
        self._insertion_policy(set_idx).on_fill(line, req)

    def on_hit(self, line, req: MemRequest) -> None:
        line.rrpv = RRPV_NEAR


def make_policy(name: str, **kwargs) -> ReplacementPolicy:
    """Instantiate a replacement policy by name (lru / srrip / brrip / drrip / ship)."""
    policies = {
        "lru": LRUPolicy,
        "srrip": SRRIPPolicy,
        "brrip": BRRIPPolicy,
        "drrip": DRRIPPolicy,
        "ship": SHiPPolicy,
    }
    if name not in policies:
        raise ValueError(
            f"unknown replacement policy {name!r}; expected one of {sorted(policies)}"
        )
    return policies[name](**kwargs)
