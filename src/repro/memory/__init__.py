"""GPU memory subsystem: functional data store plus timing models.

Data (what a load returns) lives in :class:`~repro.memory.data.GlobalMemory`
and is always functionally correct.  Timing (when the value arrives) is
modeled by the cache hierarchy in :mod:`repro.memory.hierarchy`: per-SM L1
data caches with pluggable replacement/partitioning policies, a banked
unified L2, and a DRAM model with minimum latency plus bandwidth queueing —
the structure of Table 1 in the paper.
"""

from .cache import Cache, CacheLine
from .data import GlobalMemory
from .hierarchy import MemoryHierarchy
from .replacement import LRUPolicy, ReplacementPolicy, SHiPPolicy, SRRIPPolicy, make_policy
from .request import MemRequest, make_signature
from .vector import TagMirror, attach_mirror

__all__ = [
    "Cache",
    "CacheLine",
    "GlobalMemory",
    "LRUPolicy",
    "MemRequest",
    "MemoryHierarchy",
    "ReplacementPolicy",
    "SHiPPolicy",
    "SRRIPPolicy",
    "TagMirror",
    "attach_mirror",
    "make_policy",
    "make_signature",
]
