"""Measurement and analysis utilities for simulator runs."""

from .accuracy import CriticalityAccuracyTracker
from .counters import RunResult, merge_cache_stats
from .disparity import block_disparity, max_block_disparity, warp_time_profile
from .reuse import ReuseDistanceProfiler
from .report import format_table

__all__ = [
    "CriticalityAccuracyTracker",
    "ReuseDistanceProfiler",
    "RunResult",
    "block_disparity",
    "format_table",
    "max_block_disparity",
    "merge_cache_stats",
    "warp_time_profile",
]
