"""Measurement and analysis utilities for simulator runs."""

from .accuracy import (
    CriticalityAccuracyTracker,
    EstimateError,
    compare_results,
    interval_covers,
    max_rel_error,
    relative_error,
)
from .counters import RunResult, merge_cache_stats, result_from_dict
from .disparity import block_disparity, max_block_disparity, warp_time_profile
from .reuse import ReuseDistanceProfiler
from .report import format_ci, format_estimate_table, format_table
from .sampling import (
    REPORT_METRICS,
    MetricEstimate,
    SampledRunResult,
    SamplingInfo,
    estimate_sampled_result,
    metric_value,
)

__all__ = [
    "CriticalityAccuracyTracker",
    "EstimateError",
    "MetricEstimate",
    "REPORT_METRICS",
    "ReuseDistanceProfiler",
    "RunResult",
    "SampledRunResult",
    "SamplingInfo",
    "block_disparity",
    "compare_results",
    "estimate_sampled_result",
    "format_ci",
    "format_estimate_table",
    "format_table",
    "interval_covers",
    "max_block_disparity",
    "max_rel_error",
    "merge_cache_stats",
    "metric_value",
    "relative_error",
    "result_from_dict",
    "warp_time_profile",
]
