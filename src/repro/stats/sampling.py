"""Estimators for sampled trace replay: extrapolation + error bars.

The sampling frontend (:mod:`repro.sampling`) replays a subset of a
recorded trace through the unchanged timing model; this module turns the
subset's measured :class:`~repro.stats.counters.RunResult` plus the
sampler's :class:`~repro.sampling.plan.LaunchPlan` into a
:class:`SampledRunResult` — a drop-in result whose headline fields are
*estimates of the exact run* with per-metric 95% confidence intervals.

Estimator structure (see ``docs/sampling.md`` for the derivation):

* **Instruction totals are exact.**  Warp/thread instruction counts are
  functional properties of the full trace, computed by a linear scan —
  no estimation, zero-width intervals.
* **Cycles use a stratified ratio estimator.**  Each replayed block
  contributes its measured serial execution time ``e_b`` (commit −
  dispatch), expanded by its stratum weight ``N_h/n_h`` and, under
  interval truncation, its record expansion factor ``f_b``.  The
  stratified total ``S`` estimates the whole grid's serial block time;
  multiplying by the *observed* parallelism factor ``kappa = C_s / sum
  e_b`` (sampled wall cycles over sampled serial time) converts it to
  device cycles.  At rate 1 the estimator collapses to the exact count.
* **Intensive metrics ride the exact totals.**  IPC is (exact thread
  instructions)/(estimated cycles); cache and DRAM counters scale by the
  exact-to-sampled thread-instruction ratio, which makes MPKI and hit
  rates equal to their sampled values — intensive quantities that cluster
  sampling estimates directly.
* **Error bars: delete-one-block jackknife over strata, folded with a
  calibrated envelope.**  The jackknife measures within-stratum spread of
  the expansion estimator; strata with a single sampled block contribute
  nothing (counted as ``degenerate_strata``).  The final half-width is
  ``max(1.96*SE, envelope_rel * |estimate|)`` where the envelope comes
  from the calibration table (:mod:`repro.sampling.calibrate`) or a
  conservative default — metrics with no per-block decomposition (MPKI,
  DRAM) carry the envelope alone.  Envelopes are per-metric (calibration
  measures each metric's own worst error): a noisy stall attribution does
  not widen the cycles interval.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from ..memory.cache import CacheStats
from .counters import BlockSummary, RunResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sampling.plan import LaunchPlan

#: Normal 95% quantile used for all intervals (the jackknife SE is
#: approximately normal for the block counts we sample).
Z95 = 1.96

#: Relative half-width assumed when no calibration entry covers a
#: workload.  Deliberately wide — see docs/sampling.md ("when not to
#: trust sampled numbers").
DEFAULT_ENVELOPE_REL = 0.10

#: Metrics reported with confidence intervals.  ``exact`` metrics have
#: zero-width intervals by construction.
REPORT_METRICS = (
    "cycles",
    "ipc",
    "l1_mpki",
    "l1_misses",
    "l2_misses",
    "dram_accesses",
    "total_stall_cycles",
    "mem_stall_cycles",
    "sched_stall_cycles",
    "warp_instructions",
    "thread_instructions",
)


@dataclass
class MetricEstimate:
    """One extrapolated metric with its 95% confidence interval."""

    value: float
    lo: float
    hi: float
    se: float = 0.0
    #: "exact", "jackknife+envelope", or "envelope".
    method: str = "envelope"

    def covers(self, exact: float) -> bool:
        return self.lo <= exact <= self.hi

    @property
    def half_width(self) -> float:
        return (self.hi - self.lo) / 2.0

    @property
    def rel_half_width(self) -> float:
        return self.half_width / abs(self.value) if self.value else 0.0


@dataclass
class SamplingInfo:
    """Provenance and coverage of one sampled run."""

    spec: str
    mode: str
    rate: float
    seed: int
    total_blocks: int
    sampled_blocks: int
    strata: int
    degenerate_strata: int
    records_total: int
    records_replayed: int
    #: A single relative envelope, or a per-metric mapping (the shape the
    #: calibration table persists).
    envelope_rel: object = DEFAULT_ENVELOPE_REL
    envelope_source: str = "default"

    @property
    def replay_fraction(self) -> float:
        """Fraction of dynamic records actually replayed (cost proxy)."""
        if not self.records_total:
            return 1.0
        return self.records_replayed / self.records_total

    @property
    def estimated_speedup(self) -> float:
        """Deterministic speedup proxy: 1 / replay_fraction."""
        fraction = self.replay_fraction
        return 1.0 / fraction if fraction else 1.0


@dataclass
class SampledRunResult(RunResult):
    """A :class:`RunResult` whose headline numbers are extrapolations.

    Duck-types the exact result everywhere (figures, tables, caches):
    ``cycles``/``l1_stats``/... hold the point estimates and ``blocks``
    the replayed subset's summaries with their *original* block ids.
    ``ci`` adds the per-metric intervals and ``info`` the sampling frame.
    """

    ci: Dict[str, MetricEstimate] = field(default_factory=dict)
    info: Optional[SamplingInfo] = None

    def to_dict(self) -> Dict:
        data = super().to_dict()
        data["sampled"] = {
            "info": dataclasses.asdict(self.info) if self.info else None,
            "ci": {
                name: dataclasses.asdict(est) for name, est in self.ci.items()
            },
        }
        return data

    @classmethod
    def from_dict(cls, data: Dict) -> "SampledRunResult":
        base = RunResult.from_dict(data)
        sampled = data.get("sampled") or {}
        info_data = sampled.get("info")
        result = cls(
            **{
                f.name: getattr(base, f.name)
                for f in dataclasses.fields(RunResult)
            },
            ci={
                name: MetricEstimate(**est)
                for name, est in sampled.get("ci", {}).items()
            },
            info=SamplingInfo(**info_data) if info_data else None,
        )
        return result


# ----------------------------------------------------------------------
# Metric accessors (shared by calibration and reporting)
# ----------------------------------------------------------------------
def _stall_sum(result: RunResult, attr: str) -> float:
    return sum(
        getattr(w, attr) for b in result.blocks for w in b.warps
    )


_ACCESSORS = {
    "cycles": lambda r: float(r.cycles),
    "ipc": lambda r: r.ipc,
    "l1_mpki": lambda r: r.l1_mpki,
    "l1_misses": lambda r: float(r.l1_stats.misses),
    "l2_misses": lambda r: float(r.l2_stats.misses),
    "dram_accesses": lambda r: float(r.dram_accesses),
    "total_stall_cycles": lambda r: _stall_sum(r, "total_stall_cycles"),
    "mem_stall_cycles": lambda r: _stall_sum(r, "mem_stall_cycles"),
    "sched_stall_cycles": lambda r: _stall_sum(r, "sched_stall_cycles"),
    "warp_instructions": lambda r: float(r.warp_instructions),
    "thread_instructions": lambda r: float(r.thread_instructions),
}


def metric_value(result: RunResult, name: str) -> float:
    """Uniform metric accessor for exact *and* sampled results.

    Sampled results answer from their ``ci`` point estimates (their
    ``blocks`` hold only the replayed subset, so summing over them would
    not be the extrapolated value); exact results compute directly.
    """
    ci = getattr(result, "ci", None)
    if ci and name in ci:
        return ci[name].value
    try:
        accessor = _ACCESSORS[name]
    except KeyError:
        raise KeyError(
            f"unknown sampling metric {name!r}; expected one of "
            f"{sorted(_ACCESSORS)}"
        ) from None
    return accessor(result)


# ----------------------------------------------------------------------
# Stratified totals + jackknife
# ----------------------------------------------------------------------
def _weighted_total(
    contribs: List[Tuple[int, float]], sizes: List[Tuple[int, int]]
) -> float:
    """Stratified expansion total: sum_h (N_h/n_h) * sum_{j in h} v_j."""
    per_stratum: Dict[int, float] = {}
    for stratum, value in contribs:
        per_stratum[stratum] = per_stratum.get(stratum, 0.0) + value
    total = 0.0
    for stratum, summed in per_stratum.items():
        population, sampled = sizes[stratum]
        total += (population / sampled) * summed
    return total


def _jackknife_se(
    contribs: List[Tuple[int, float]],
    sizes: List[Tuple[int, int]],
    transform,
) -> Tuple[float, int]:
    """Delete-one-block jackknife SE of ``transform(weighted total)``.

    Returns ``(se, degenerate_strata)`` where degenerate strata (a single
    sampled block) cannot contribute variance and are only counted.
    """
    base_sums: Dict[int, float] = {}
    members: Dict[int, List[float]] = {}
    for stratum, value in contribs:
        base_sums[stratum] = base_sums.get(stratum, 0.0) + value
        members.setdefault(stratum, []).append(value)
    variance = 0.0
    degenerate = 0
    for stratum, values in members.items():
        population, sampled = sizes[stratum]
        if sampled < 2:
            degenerate += 1
            continue
        # Replicate totals: stratum `stratum` reweighted to n_h - 1
        # blocks, every other stratum unchanged.
        others = sum(
            (sizes[s][0] / sizes[s][1]) * base_sums[s]
            for s in base_sums
            if s != stratum
        )
        replicates = []
        for value in values:
            reduced = (population / (sampled - 1)) * (
                base_sums[stratum] - value
            )
            replicates.append(transform(others + reduced))
        mean = sum(replicates) / len(replicates)
        variance += ((sampled - 1) / sampled) * sum(
            (rep - mean) ** 2 for rep in replicates
        )
    return math.sqrt(variance), degenerate


def _scale_cache_stats(stats: CacheStats, factor: float) -> CacheStats:
    scaled = CacheStats()
    for field_info in dataclasses.fields(CacheStats):
        name = field_info.name
        setattr(scaled, name, round(getattr(stats, name) * factor))
    return scaled


def _estimate(
    value: float,
    se: float,
    envelope_rel: float,
    method: str,
) -> MetricEstimate:
    half = max(Z95 * se, envelope_rel * abs(value))
    return MetricEstimate(
        value=value, lo=value - half, hi=value + half, se=se, method=method
    )


# ----------------------------------------------------------------------
# The estimator
# ----------------------------------------------------------------------
def estimate_sampled_result(
    replay_result: RunResult,
    plan: "LaunchPlan",
    spec: str,
    envelope_rel=None,
    envelope_source: str = "default",
) -> SampledRunResult:
    """Extrapolate one sampled replay to a full-run estimate with CIs.

    ``replay_result`` is the (exact) timing result of replaying the
    derived sub-program; ``plan`` is what the sampler kept.  Block ids in
    the replayed result are the dense renumbered ids — they are mapped
    back to the original grid here, so downstream block-level analyses
    see original identities.

    ``envelope_rel`` is a single relative envelope, a per-metric mapping
    (missing metrics fall back to :data:`DEFAULT_ENVELOPE_REL`), or
    ``None`` for the default everywhere.
    """
    if envelope_rel is None:
        envelope_rel = DEFAULT_ENVELOPE_REL
    if isinstance(envelope_rel, dict):
        _envelopes = envelope_rel

        def _env(name: str) -> float:
            return float(_envelopes.get(name, DEFAULT_ENVELOPE_REL))
    else:
        _flat = float(envelope_rel)

        def _env(name: str) -> float:
            return _flat

    # Per-replayed-block measurements, keyed by original block id.
    selected_set = set(plan.selected)
    sizes = [
        (len(members), len([b for b in members if b in selected_set]))
        for members in plan.strata
    ]
    stratum_index = {
        block: index
        for index, members in enumerate(plan.strata)
        for block in members
    }
    blocks: List[BlockSummary] = []
    exec_contribs: List[Tuple[int, float]] = []  # f_b * e_b
    stall_contribs: Dict[str, List[Tuple[int, float]]] = {
        "total_stall_cycles": [],
        "mem_stall_cycles": [],
        "sched_stall_cycles": [],
    }
    sampled_exec = 0.0
    for position, block in enumerate(replay_result.blocks):
        summary = (
            block
            if isinstance(block, BlockSummary)
            else BlockSummary.from_block(block)
        )
        if plan.mode == "blocks":
            original = plan.original_id(summary.block_id)
        else:
            original = summary.block_id
        summary = dataclasses.replace(summary, block_id=original)
        blocks.append(summary)
        stratum = stratum_index[original]
        exec_time = summary.execution_time or 0.0
        expansion = plan.expansion(original)
        sampled_exec += exec_time
        exec_contribs.append((stratum, expansion * exec_time))
        for name in stall_contribs:
            attr_sum = sum(getattr(w, name) for w in summary.warps)
            stall_contribs[name].append((stratum, expansion * attr_sum))
    blocks.sort(key=lambda b: b.block_id)

    sampled_cycles = float(replay_result.cycles)
    serial_total = _weighted_total(exec_contribs, sizes)
    kappa = sampled_cycles / sampled_exec if sampled_exec else 1.0
    cycles_hat = kappa * serial_total if serial_total else sampled_cycles

    threads_total = float(plan.total_threads)
    records_total = float(plan.total_records)
    threads_sampled = float(replay_result.thread_instructions) or 1.0
    scale_threads = threads_total / threads_sampled

    ci: Dict[str, MetricEstimate] = {}
    se_cycles, degenerate = _jackknife_se(
        exec_contribs, sizes, lambda s: kappa * s
    )
    ci["cycles"] = _estimate(
        cycles_hat, se_cycles, _env("cycles"), "jackknife+envelope"
    )
    ci["ipc"] = _estimate(
        threads_total / cycles_hat if cycles_hat else 0.0,
        _jackknife_se(
            exec_contribs,
            sizes,
            lambda s: threads_total / (kappa * s) if s else 0.0,
        )[0],
        _env("ipc"),
        "jackknife+envelope",
    )
    for name, contribs in stall_contribs.items():
        total = _weighted_total(contribs, sizes)
        se, _ = _jackknife_se(contribs, sizes, lambda s: s)
        ci[name] = _estimate(total, se, _env(name), "jackknife+envelope")

    l1_hat = _scale_cache_stats(replay_result.l1_stats, scale_threads)
    l2_hat = _scale_cache_stats(replay_result.l2_stats, scale_threads)
    dram_hat = round(replay_result.dram_accesses * scale_threads)
    mpki_hat = 1000.0 * l1_hat.misses / threads_total if threads_total else 0.0
    ci["l1_misses"] = _estimate(
        float(l1_hat.misses), 0.0, _env("l1_misses"), "envelope"
    )
    ci["l2_misses"] = _estimate(
        float(l2_hat.misses), 0.0, _env("l2_misses"), "envelope"
    )
    ci["dram_accesses"] = _estimate(
        float(dram_hat), 0.0, _env("dram_accesses"), "envelope"
    )
    ci["l1_mpki"] = _estimate(mpki_hat, 0.0, _env("l1_mpki"), "envelope")
    ci["warp_instructions"] = MetricEstimate(
        value=records_total, lo=records_total, hi=records_total,
        method="exact",
    )
    ci["thread_instructions"] = MetricEstimate(
        value=threads_total, lo=threads_total, hi=threads_total,
        method="exact",
    )

    info = SamplingInfo(
        spec=spec,
        mode=plan.mode,
        rate=plan.rate,
        seed=plan.seed,
        total_blocks=plan.total_blocks,
        sampled_blocks=len(plan.selected),
        strata=len(plan.strata),
        degenerate_strata=degenerate,
        records_total=plan.total_records,
        records_replayed=plan.replayed_records,
        envelope_rel=envelope_rel,
        envelope_source=envelope_source,
    )
    extra = dict(replay_result.extra)
    extra["sampling_replay_fraction"] = info.replay_fraction
    return SampledRunResult(
        kernel_name=replay_result.kernel_name,
        scheme=replay_result.scheme,
        cycles=cycles_hat,
        thread_instructions=plan.total_threads,
        warp_instructions=plan.total_records,
        l1_stats=l1_hat,
        l2_stats=l2_hat,
        blocks=blocks,
        dram_accesses=dram_hat,
        extra=extra,
        warp_size=replay_result.warp_size,
        frontend="trace",
        trace_id=replay_result.trace_id,
        clock=replay_result.clock,
        shards=replay_result.shards,
        cycles_skipped=replay_result.cycles_skipped,
        skip_jumps=replay_result.skip_jumps,
        events=replay_result.events,
        backend=replay_result.backend,
        sampling=spec,
        ci=ci,
        info=info,
    )
