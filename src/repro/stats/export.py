"""Serialize run results and sweeps to JSON / CSV for external analysis."""

from __future__ import annotations

import csv
import dataclasses
import io
import json
from typing import Dict, Tuple

from .counters import RunResult

#: Scalar metrics exported for each run.
METRIC_FIELDS = (
    "cycles",
    "thread_instructions",
    "warp_instructions",
    "ipc",
    "simd_efficiency",
    "l1_mpki",
    "l1_hit_rate",
    "critical_hit_rate",
    "dram_accesses",
)


def result_to_dict(result: RunResult) -> Dict:
    """Flatten a :class:`RunResult` into JSON-ready primitives."""
    out = {
        "kernel": result.kernel_name,
        "scheme": result.scheme,
    }
    for name in METRIC_FIELDS:
        out[name] = getattr(result, name)
    out["l1"] = dataclasses.asdict(result.l1_stats)
    out["l2"] = dataclasses.asdict(result.l2_stats)
    out["blocks"] = [
        {
            "block_id": block.block_id,
            "dispatch_cycle": block.dispatch_cycle,
            "commit_cycle": block.commit_cycle,
            "warp_execution_times": block.warp_execution_times(),
        }
        for block in result.blocks
    ]
    return out


def result_to_json(result: RunResult, indent: int = 2) -> str:
    return json.dumps(result_to_dict(result), indent=indent)


def sweep_to_csv(results: Dict[Tuple[str, str], RunResult]) -> str:
    """Render a (workload, scheme) -> result mapping as CSV text."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(("workload", "scheme") + METRIC_FIELDS)
    for (workload, scheme), result in sorted(results.items()):
        writer.writerow(
            [workload, scheme] + [getattr(result, name) for name in METRIC_FIELDS]
        )
    return buffer.getvalue()
