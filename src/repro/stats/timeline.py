"""Warp execution timeline profiling and ASCII rendering.

The :class:`TimelineProfiler` subscribes to SM issue events and records
when each warp issued instructions; :func:`render_block_timeline` draws a
per-warp activity strip ("Gantt chart") for one thread block, which makes
warp criticality — a slow warp's lonely tail after its siblings finish —
directly visible in a terminal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

WarpKey = Tuple[int, int, int]  # (sm_id, block_id, warp_id_in_block)

#: Activity density glyphs, sparse to dense.
_GLYPHS = " .:-=+*#%@"


@dataclass
class WarpTimeline:
    """Issue cycles recorded for one warp."""

    issue_cycles: List[float] = field(default_factory=list)
    start_cycle: float = 0.0
    finish_cycle: Optional[float] = None


class TimelineProfiler:
    """SM issue observer recording every warp's issue cycles."""

    def __init__(self) -> None:
        self.timelines: Dict[WarpKey, WarpTimeline] = {}

    def on_issue(self, sm, warp, inst, now: float) -> None:
        key = (sm.sm_id, warp.block.block_id, warp.warp_id_in_block)
        timeline = self.timelines.get(key)
        if timeline is None:
            timeline = WarpTimeline(start_cycle=warp.start_cycle)
            self.timelines[key] = timeline
        timeline.issue_cycles.append(now)
        if warp.finished:
            timeline.finish_cycle = now

    # ------------------------------------------------------------------
    def block_keys(self) -> List[Tuple[int, int]]:
        """(sm_id, block_id) pairs observed, in first-seen order."""
        seen = []
        for sm_id, block_id, _ in self.timelines:
            if (sm_id, block_id) not in seen:
                seen.append((sm_id, block_id))
        return seen

    def block_timelines(self, sm_id: int, block_id: int) -> Dict[int, WarpTimeline]:
        """warp_id -> timeline for one block."""
        return {
            warp_id: timeline
            for (s, b, warp_id), timeline in self.timelines.items()
            if s == sm_id and b == block_id
        }


def render_block_timeline(
    profiler: TimelineProfiler,
    sm_id: int,
    block_id: int,
    width: int = 72,
) -> str:
    """ASCII activity strip: one row per warp, glyph = issue density."""
    warps = profiler.block_timelines(sm_id, block_id)
    if not warps:
        return f"(no issue samples for SM{sm_id} block {block_id})"
    t0 = min(t.issue_cycles[0] for t in warps.values() if t.issue_cycles)
    t1 = max(t.issue_cycles[-1] for t in warps.values() if t.issue_cycles)
    span = max(1.0, t1 - t0)
    bucket = span / width

    lines = [
        f"SM{sm_id} block {block_id}: warp activity over cycles "
        f"{t0:.0f}..{t1:.0f} ({bucket:.0f} cycles/char)"
    ]
    max_density = 1
    histograms = {}
    for warp_id, timeline in sorted(warps.items()):
        histogram = [0] * width
        for cycle in timeline.issue_cycles:
            slot = min(width - 1, int((cycle - t0) / bucket))
            histogram[slot] += 1
        histograms[warp_id] = histogram
        max_density = max(max_density, max(histogram))

    for warp_id, histogram in histograms.items():
        strip = "".join(
            _GLYPHS[min(len(_GLYPHS) - 1, (count * (len(_GLYPHS) - 1)) // max_density)]
            for count in histogram
        )
        finish = warps[warp_id].finish_cycle
        tail = f" done @{finish:.0f}" if finish is not None else ""
        lines.append(f"  w{warp_id:<3}|{strip}|{tail}")
    return "\n".join(lines)


def critical_tail_cycles(profiler: TimelineProfiler, sm_id: int, block_id: int) -> float:
    """Cycles between the first and last warp completion in a block.

    The paper's warp-criticality cost in its rawest form: how long the
    block kept resources allocated after its first warp went idle.
    """
    warps = profiler.block_timelines(sm_id, block_id)
    finishes = [t.finish_cycle for t in warps.values() if t.finish_cycle is not None]
    if len(finishes) < 2:
        return 0.0
    return max(finishes) - min(finishes)
