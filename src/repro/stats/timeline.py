"""Warp execution timeline profiling and ASCII rendering.

The :class:`TimelineProfiler` records when each warp issued instructions;
:func:`render_block_timeline` draws a per-warp activity strip ("Gantt
chart") for one thread block, which makes warp criticality — a slow
warp's lonely tail after its siblings finish — directly visible in a
terminal.

The profiler is an **event-bus collector** (see :mod:`repro.obs`): attach
it with :meth:`repro.obs.bus.EventBus.attach` and it reconstructs every
timeline from ``WARP_START`` / ``WARP_ISSUE`` / ``WARP_FINISH`` events::

    bus = bus_from_spec("on")
    profiler = TimelineProfiler()
    bus.attach(profiler)
    gpu = GPU(config, obs=bus)

or feed a stored recording after the fact with :meth:`TimelineProfiler.extend`.
The pre-``repro.obs`` direct-hook registration
(``sm.issue_observers.append(profiler)``) still works but is deprecated —
it only sees issue events on the SMs it was manually attached to and
cannot work under sharded replay, where collectors ride the event bus
across process boundaries (``docs/observability.md``).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..obs.events import Ev

WarpKey = Tuple[int, int, int]  # (sm_id, block_id, warp_id_in_block)

_EV_WARP_START = int(Ev.WARP_START)
_EV_WARP_ISSUE = int(Ev.WARP_ISSUE)
_EV_WARP_FINISH = int(Ev.WARP_FINISH)

#: Activity density glyphs, sparse to dense.
_GLYPHS = " .:-=+*#%@"


@dataclass
class WarpTimeline:
    """Issue cycles recorded for one warp."""

    issue_cycles: List[float] = field(default_factory=list)
    start_cycle: float = 0.0
    finish_cycle: Optional[float] = None


class TimelineProfiler:
    """Event-bus collector recording every warp's issue cycles.

    Also still accepts the legacy SM ``issue_observers`` hook
    (:meth:`on_issue`), with a :class:`DeprecationWarning` on first use.
    """

    def __init__(self) -> None:
        self.timelines: Dict[WarpKey, WarpTimeline] = {}
        self._warned = False

    # -- event-bus collector protocol ----------------------------------
    def append(self, ev: Sequence) -> None:
        """Consume one event record (bus fan-out or stored stream)."""
        kind = ev[0]
        if kind == _EV_WARP_ISSUE:
            key = (ev[2], ev[3], ev[4])
            timeline = self.timelines.get(key)
            if timeline is None:
                timeline = WarpTimeline(start_cycle=ev[1])
                self.timelines[key] = timeline
            timeline.issue_cycles.append(ev[1])
        elif kind == _EV_WARP_START:
            key = (ev[2], ev[3], ev[4])
            if key not in self.timelines:
                self.timelines[key] = WarpTimeline(start_cycle=ev[1])
        elif kind == _EV_WARP_FINISH:
            timeline = self.timelines.get((ev[2], ev[3], ev[4]))
            if timeline is not None:
                timeline.finish_cycle = ev[1]

    def extend(self, events: Iterable[Sequence]) -> "TimelineProfiler":
        """Rebuild timelines from a pre-recorded event stream."""
        for ev in events:
            self.append(ev)
        return self

    # -- deprecated direct-hook protocol -------------------------------
    def on_issue(self, sm, warp, inst, now: float) -> None:
        """Legacy ``sm.issue_observers`` hook.

        .. deprecated::
            Attach the profiler to an :class:`~repro.obs.bus.EventBus`
            instead; the direct hook cannot cross process boundaries under
            sharded replay and misses ``WARP_START`` timestamps.
        """
        if not self._warned:
            self._warned = True
            warnings.warn(
                "registering TimelineProfiler via sm.issue_observers is "
                "deprecated; attach it to an event bus instead "
                "(bus.attach(profiler), see docs/observability.md)",
                DeprecationWarning,
                stacklevel=2,
            )
        key = (sm.sm_id, warp.block.block_id, warp.warp_id_in_block)
        timeline = self.timelines.get(key)
        if timeline is None:
            timeline = WarpTimeline(start_cycle=warp.start_cycle)
            self.timelines[key] = timeline
        timeline.issue_cycles.append(now)
        if warp.finished:
            timeline.finish_cycle = now

    # ------------------------------------------------------------------
    def block_keys(self) -> List[Tuple[int, int]]:
        """(sm_id, block_id) pairs observed, in first-seen order."""
        seen = []
        for sm_id, block_id, _ in self.timelines:
            if (sm_id, block_id) not in seen:
                seen.append((sm_id, block_id))
        return seen

    def block_timelines(self, sm_id: int, block_id: int) -> Dict[int, WarpTimeline]:
        """warp_id -> timeline for one block."""
        return {
            warp_id: timeline
            for (s, b, warp_id), timeline in self.timelines.items()
            if s == sm_id and b == block_id
        }


def render_block_timeline(
    profiler: TimelineProfiler,
    sm_id: int,
    block_id: int,
    width: int = 72,
) -> str:
    """ASCII activity strip: one row per warp, glyph = issue density."""
    warps = profiler.block_timelines(sm_id, block_id)
    warps = {w: t for w, t in warps.items() if t.issue_cycles}
    if not warps:
        return f"(no issue samples for SM{sm_id} block {block_id})"
    t0 = min(t.issue_cycles[0] for t in warps.values())
    t1 = max(t.issue_cycles[-1] for t in warps.values())
    span = max(1.0, t1 - t0)
    bucket = span / width

    lines = [
        f"SM{sm_id} block {block_id}: warp activity over cycles "
        f"{t0:.0f}..{t1:.0f} ({bucket:.0f} cycles/char)"
    ]
    max_density = 1
    histograms = {}
    for warp_id, timeline in sorted(warps.items()):
        histogram = [0] * width
        for cycle in timeline.issue_cycles:
            slot = min(width - 1, int((cycle - t0) / bucket))
            histogram[slot] += 1
        histograms[warp_id] = histogram
        max_density = max(max_density, max(histogram))

    for warp_id, histogram in histograms.items():
        strip = "".join(
            _GLYPHS[min(len(_GLYPHS) - 1, (count * (len(_GLYPHS) - 1)) // max_density)]
            for count in histogram
        )
        finish = warps[warp_id].finish_cycle
        tail = f" done @{finish:.0f}" if finish is not None else ""
        lines.append(f"  w{warp_id:<3}|{strip}|{tail}")
    return "\n".join(lines)


def critical_tail_cycles(profiler: TimelineProfiler, sm_id: int, block_id: int) -> float:
    """Cycles between the first and last warp completion in a block.

    The paper's warp-criticality cost in its rawest form: how long the
    block kept resources allocated after its first warp went idle.
    """
    warps = profiler.block_timelines(sm_id, block_id)
    finishes = [t.finish_cycle for t in warps.values() if t.finish_cycle is not None]
    if len(finishes) < 2:
        return 0.0
    return max(finishes) - min(finishes)
