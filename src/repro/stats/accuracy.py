"""Accuracy metrics: CPL prediction scoring and estimator error measures.

Two families live here:

* :class:`CriticalityAccuracyTracker` — the paper's Figure 11 protocol:
  sample CPL verdicts during the run and check, after the block commits,
  how often the *actually* critical warp (slowest by measured execution
  time) had been flagged as a slow warp (criticality above the block
  median).  Implemented as an SM issue observer.
* Estimator error measures (:func:`relative_error`,
  :class:`EstimateError`) — shared by the sampling calibration harness
  (:mod:`repro.sampling.calibrate`) and the sampled-replay reports: how
  far a :class:`~repro.stats.sampling.SampledRunResult` estimate landed
  from the exact run, and whether the exact value fell inside the
  estimate's confidence interval.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Tuple

BlockKey = Tuple[int, int]  # (sm_id, block_id)


@dataclass
class _BlockSamples:
    samples: int = 0
    flagged_slow: Dict[int, int] = field(default_factory=dict)  # warp_id -> count


class CriticalityAccuracyTracker:
    """SM issue observer sampling CPL verdicts at a fixed issue period."""

    def __init__(self, sample_period: int = 64) -> None:
        self.sample_period = sample_period
        self._issues: Dict[BlockKey, int] = {}
        self._samples: Dict[BlockKey, _BlockSamples] = {}

    # SM issue-observer interface ---------------------------------------
    def on_issue(self, sm, warp, inst, now) -> None:
        if sm.cpl is None:
            return
        key = (sm.sm_id, warp.block.block_id)
        count = self._issues.get(key, 0) + 1
        self._issues[key] = count
        if count % self.sample_period:
            return
        record = self._samples.setdefault(key, _BlockSamples())
        record.samples += 1
        for peer in warp.block.warps:
            if peer.finished:
                continue
            if sm.cpl.is_critical(peer):
                record.flagged_slow[peer.warp_id_in_block] = (
                    record.flagged_slow.get(peer.warp_id_in_block, 0) + 1
                )

    # Post-run scoring ---------------------------------------------------
    def accuracy(self, result) -> float:
        """Fraction of samples in which the true critical warp was flagged.

        Blocks with fewer than two warps are trivially predicted (the
        paper's footnote on needle: 100% accuracy when a block has only one
        or two warps); they score 1 per sample.
        """
        total_samples = 0
        correct = 0.0
        for block in result.blocks:
            times = [(w.execution_time, w.warp_id_in_block) for w in block.warps]
            if not times:
                continue
            critical_id = max(times)[1]
            for key, record in self._samples.items():
                if key[1] != block.block_id:
                    continue
                total_samples += record.samples
                if len(block.warps) <= 2:
                    correct += record.samples
                else:
                    correct += record.flagged_slow.get(critical_id, 0)
        return correct / total_samples if total_samples else 1.0


# ----------------------------------------------------------------------
# Estimator error measures (sampled replay calibration)
# ----------------------------------------------------------------------
def relative_error(estimate: float, exact: float) -> float:
    """``|estimate - exact| / |exact|``, with the zero-denominator edge.

    An exact value of zero scores 0.0 when the estimate agrees and
    ``inf`` otherwise — an infinite relative error can never pass a
    calibration target, which is the safe failure mode.
    """
    if exact == 0:
        return 0.0 if estimate == 0 else float("inf")
    return abs(estimate - exact) / abs(exact)


def interval_covers(lo: float, hi: float, exact: float) -> bool:
    """True when ``exact`` lies inside the closed interval ``[lo, hi]``."""
    return lo <= exact <= hi


@dataclass
class EstimateError:
    """One metric's sampled-vs-exact comparison (JSON round-trippable)."""

    metric: str
    exact: float
    estimate: float
    lo: float
    hi: float

    @property
    def rel_error(self) -> float:
        return relative_error(self.estimate, self.exact)

    @property
    def covered(self) -> bool:
        return interval_covers(self.lo, self.hi, self.exact)

    def to_dict(self) -> Dict:
        return {
            "metric": self.metric,
            "exact": self.exact,
            "estimate": self.estimate,
            "lo": self.lo,
            "hi": self.hi,
            "rel_error": self.rel_error,
            "covered": self.covered,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "EstimateError":
        return cls(
            metric=data["metric"],
            exact=data["exact"],
            estimate=data["estimate"],
            lo=data["lo"],
            hi=data["hi"],
        )


def compare_results(
    sampled, exact, metrics: Iterable[str]
) -> Dict[str, EstimateError]:
    """Per-metric :class:`EstimateError` for a sampled/exact result pair.

    ``sampled`` is a :class:`~repro.stats.sampling.SampledRunResult`
    (metrics answered from its ``ci`` point estimates and intervals);
    ``exact`` is any :class:`~repro.stats.counters.RunResult`.
    """
    from .sampling import metric_value

    errors: Dict[str, EstimateError] = {}
    for name in metrics:
        estimate = metric_value(sampled, name)
        ci = getattr(sampled, "ci", {}).get(name)
        lo = ci.lo if ci is not None else estimate
        hi = ci.hi if ci is not None else estimate
        errors[name] = EstimateError(
            metric=name,
            exact=metric_value(exact, name),
            estimate=estimate,
            lo=lo,
            hi=hi,
        )
    return errors


def max_rel_error(errors: Dict[str, EstimateError]) -> float:
    """Largest relative error across a comparison set (0.0 when empty)."""
    if not errors:
        return 0.0
    return max(err.rel_error for err in errors.values())
