"""CPL prediction-accuracy measurement (paper Figure 11, Section 5.2).

The paper scores CPL by sampling its verdicts during the run and checking,
after the block commits, how often the *actually* critical warp (slowest by
measured execution time) had been flagged as a slow warp (criticality above
the block median).  This tracker implements exactly that protocol as an SM
issue observer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

BlockKey = Tuple[int, int]  # (sm_id, block_id)


@dataclass
class _BlockSamples:
    samples: int = 0
    flagged_slow: Dict[int, int] = field(default_factory=dict)  # warp_id -> count


class CriticalityAccuracyTracker:
    """SM issue observer sampling CPL verdicts at a fixed issue period."""

    def __init__(self, sample_period: int = 64) -> None:
        self.sample_period = sample_period
        self._issues: Dict[BlockKey, int] = {}
        self._samples: Dict[BlockKey, _BlockSamples] = {}

    # SM issue-observer interface ---------------------------------------
    def on_issue(self, sm, warp, inst, now) -> None:
        if sm.cpl is None:
            return
        key = (sm.sm_id, warp.block.block_id)
        count = self._issues.get(key, 0) + 1
        self._issues[key] = count
        if count % self.sample_period:
            return
        record = self._samples.setdefault(key, _BlockSamples())
        record.samples += 1
        for peer in warp.block.warps:
            if peer.finished:
                continue
            if sm.cpl.is_critical(peer):
                record.flagged_slow[peer.warp_id_in_block] = (
                    record.flagged_slow.get(peer.warp_id_in_block, 0) + 1
                )

    # Post-run scoring ---------------------------------------------------
    def accuracy(self, result) -> float:
        """Fraction of samples in which the true critical warp was flagged.

        Blocks with fewer than two warps are trivially predicted (the
        paper's footnote on needle: 100% accuracy when a block has only one
        or two warps); they score 1 per sample.
        """
        total_samples = 0
        correct = 0.0
        for block in result.blocks:
            times = [(w.execution_time, w.warp_id_in_block) for w in block.warps]
            if not times:
                continue
            critical_id = max(times)[1]
            for key, record in self._samples.items():
                if key[1] != block.block_id:
                    continue
                total_samples += record.samples
                if len(block.warps) <= 2:
                    correct += record.samples
                else:
                    correct += record.flagged_slow.get(critical_id, 0)
        return correct / total_samples if total_samples else 1.0
