"""Reuse-distance (LRU stack distance) profiling — paper Figures 3 and 8.

Subscribes to a cache's access stream and computes, per re-reference, the
number of distinct lines touched since the previous access to the same line.
A re-reference whose stack distance exceeds the cache's line capacity would
miss in a fully-associative LRU cache of that size — the paper's "evicted
before re-reference" criterion for critical warp data.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional

#: Histogram bucket upper bounds (in distinct lines); the last bucket is
#: unbounded and "no reuse" is tracked separately.
BUCKETS = (8, 16, 32, 64, 128, 256, 512)


@dataclass
class ReuseProfile:
    """Reuse-distance histogram for one access class."""

    histogram: List[int] = field(default_factory=lambda: [0] * (len(BUCKETS) + 1))
    references: int = 0
    rereferences: int = 0

    def record(self, distance: int) -> None:
        self.rereferences += 1
        for i, bound in enumerate(BUCKETS):
            if distance < bound:
                self.histogram[i] += 1
                return
        self.histogram[-1] += 1

    def fraction_beyond(self, capacity_lines: int) -> float:
        """Fraction of re-references with stack distance >= capacity."""
        if not self.rereferences:
            return 0.0
        # A bucket counts as "beyond" when its whole range lies at or past
        # the capacity; the open-ended final bucket always does.
        beyond = self.histogram[-1]
        lower = 0
        for i, bound in enumerate(BUCKETS):
            if lower >= capacity_lines:
                beyond += self.histogram[i]
            lower = bound
        return beyond / self.rereferences


class ReuseDistanceProfiler:
    """Cache observer computing stack distances per criticality class and PC."""

    def __init__(self) -> None:
        self._stack: "OrderedDict[int, None]" = OrderedDict()
        self._last_owner_critical: Dict[int, bool] = {}
        self.critical = ReuseProfile()
        self.non_critical = ReuseProfile()
        self.by_pc: Dict[int, ReuseProfile] = {}
        self._fill_pc: Dict[int, int] = {}

    # Cache observer interface -----------------------------------------
    def on_access(self, req, hit: bool, line) -> None:
        addr = req.line_addr
        profile = self.critical if req.is_critical else self.non_critical
        profile.references += 1
        pc_profile = self.by_pc.setdefault(req.pc, ReuseProfile())
        pc_profile.references += 1

        if addr in self._stack:
            distance = self._distance(addr)
            profile.record(distance)
            fill_pc = self._fill_pc.get(addr, req.pc)
            self.by_pc.setdefault(fill_pc, ReuseProfile()).record(distance)
            self._stack.move_to_end(addr)
        else:
            self._stack[addr] = None
            self._fill_pc[addr] = req.pc
        self._last_owner_critical[addr] = req.is_critical
        # Bound profiler memory on streaming workloads.
        while len(self._stack) > 65536:
            old, _ = self._stack.popitem(last=False)
            self._fill_pc.pop(old, None)
            self._last_owner_critical.pop(old, None)

    def on_evict(self, line) -> None:  # stack distance ignores evictions
        pass

    def _distance(self, addr: int) -> int:
        # Position from the MRU end of the stack.
        distance = 0
        for key in reversed(self._stack):
            if key == addr:
                return distance
            distance += 1
        return distance
