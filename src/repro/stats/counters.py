"""Run-level results: IPC, MPKI, and aggregated cache statistics."""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..memory.cache import CacheStats


def replace_stats(stats: CacheStats) -> CacheStats:
    """Shallow copy of a :class:`CacheStats` (snapshot for launch deltas)."""
    return dataclasses.replace(stats)


def subtract_stats(now: CacheStats, before: CacheStats) -> CacheStats:
    """Field-wise ``now - before`` of two cumulative counters."""
    delta = CacheStats()
    for field_info in dataclasses.fields(CacheStats):
        name = field_info.name
        setattr(delta, name, getattr(now, name) - getattr(before, name))
    return delta


def merge_cache_stats(parts: List[CacheStats]) -> CacheStats:
    """Sum per-SM cache counters into one aggregate."""
    total = CacheStats()
    for part in parts:
        total.accesses += part.accesses
        total.hits += part.hits
        total.misses += part.misses
        total.bypasses += part.bypasses
        total.critical_accesses += part.critical_accesses
        total.critical_hits += part.critical_hits
        total.evictions += part.evictions
        total.zero_reuse_evictions += part.zero_reuse_evictions
        total.critical_fill_evictions += part.critical_fill_evictions
        total.critical_zero_reuse_evictions += part.critical_zero_reuse_evictions
    return total


@dataclass
class WarpSummary:
    """Picklable / JSON-serializable snapshot of one committed warp.

    Carries every per-warp field the analysis layers (disparity, figure
    scripts, the CAWS oracle) read from live :class:`~repro.simt.warp.Warp`
    objects, so cached or cross-process results duck-type cleanly.
    """

    warp_id_in_block: int
    execution_time: float
    issued_instructions: int
    thread_instructions: int
    divergent_branches: int
    total_stall_cycles: float
    mem_stall_cycles: float
    sched_stall_cycles: float
    criticality: float

    @classmethod
    def from_warp(cls, warp) -> "WarpSummary":
        return cls(
            warp_id_in_block=warp.warp_id_in_block,
            execution_time=warp.execution_time,
            issued_instructions=warp.issued_instructions,
            thread_instructions=warp.thread_instructions,
            divergent_branches=warp.divergent_branches,
            total_stall_cycles=warp.total_stall_cycles,
            mem_stall_cycles=warp.mem_stall_cycles,
            sched_stall_cycles=warp.sched_stall_cycles,
            criticality=warp.criticality,
        )


@dataclass
class BlockSummary:
    """Serializable snapshot of one committed thread block."""

    block_id: int
    num_warps: int
    dispatch_cycle: float
    commit_cycle: Optional[float]
    warps: List[WarpSummary] = field(default_factory=list)

    @classmethod
    def from_block(cls, block) -> "BlockSummary":
        return cls(
            block_id=block.block_id,
            num_warps=block.num_warps,
            dispatch_cycle=block.dispatch_cycle,
            commit_cycle=block.commit_cycle,
            warps=[WarpSummary.from_warp(w) for w in block.warps],
        )

    @property
    def execution_time(self) -> Optional[float]:
        if self.commit_cycle is None:
            return None
        return self.commit_cycle - self.dispatch_cycle

    def warp_execution_times(self) -> List[float]:
        return [w.execution_time for w in self.warps]


def _jsonable(value) -> bool:
    """True for plain scalars that survive a JSON round trip unchanged."""
    return isinstance(value, (bool, int, float, str)) or value is None


@dataclass
class RunResult:
    """Everything a launch produced, ready for the experiment harness.

    ``blocks`` keeps the committed :class:`~repro.simt.block.ThreadBlock`
    objects (with their warps) so disparity and criticality analyses can be
    run after the fact; ``extra`` carries observer outputs such as reuse
    profiles or the Fig 12 priority trace.
    """

    kernel_name: str
    scheme: str
    cycles: float
    thread_instructions: int
    warp_instructions: int
    l1_stats: CacheStats
    l2_stats: CacheStats
    blocks: List = field(default_factory=list)
    dram_accesses: int = 0
    extra: Dict[str, object] = field(default_factory=dict)

    #: Lanes per warp, used by :attr:`simd_efficiency` (set at collection).
    warp_size: int = 32

    #: Provenance: which simulation frontend produced this result —
    #: ``"execute"`` (functional execution at issue time) or ``"trace"``
    #: (trace replay; bit-identical by contract, see docs/trace_driven.md).
    frontend: str = "execute"
    #: Trace provenance: the replayed trace's content id, ``"recording"``
    #: for an execute run that recorded a trace, or ``None`` for a plain
    #: execution-driven run.
    trace_id: Optional[str] = None

    #: Provenance: which device clock produced this result (``"cycle"`` or
    #: ``"skip"``) and how many replay shards ran it.  Timing-transparent by
    #: contract — results must be bit-identical across clocks and shard
    #: counts — so these are excluded from parity comparisons and from the
    #: result-cache fingerprint (see :meth:`repro.config.GPUConfig.fingerprint`).
    clock: str = "cycle"
    shards: int = 1
    #: Clock-advance telemetry (both clocks count them): ``skip_jumps`` is
    #: the number of clock advances larger than one cycle, ``cycles_skipped``
    #: the total cycles those advances never visited.  Diagnostic only —
    #: excluded from parity comparisons.
    cycles_skipped: float = 0.0
    skip_jumps: int = 0
    #: Provenance: the observability events spec this run was produced
    #: under (``"off"`` unless the event bus was live).  Collectors never
    #: perturb timing, so — like ``clock``/``shards`` — this is excluded
    #: from parity comparisons and the result-cache fingerprint.
    events: str = "off"
    #: Provenance: which hot-path engine produced this result (``"python"``
    #: or ``"vector"``).  Bit-identical by contract (the backend parity
    #: grid, ``tests/test_vector_backend_parity.py``), so — like ``clock``
    #: — excluded from parity comparisons and the result-cache fingerprint.
    #: See docs/backends.md.
    backend: str = "python"
    #: Provenance: the trace-sampling spec this result was produced under
    #: (``"off"`` for exact runs).  Unlike the provenance knobs above,
    #: sampling *changes the reported numbers* — sampled results are
    #: :class:`~repro.stats.sampling.SampledRunResult` estimates with
    #: confidence intervals — so the spec is fingerprinted (see
    #: :meth:`repro.config.GPUConfig.fingerprint`) and never aliases an
    #: exact entry.
    sampling: str = "off"

    @property
    def ipc(self) -> float:
        """Thread-level instructions per cycle (the paper's IPC metric)."""
        return self.thread_instructions / self.cycles if self.cycles else 0.0

    @property
    def simd_efficiency(self) -> float:
        """Mean fraction of lanes active per issued warp instruction.

        1.0 means no divergence / no partial warps; branch-divergent
        workloads (Section 2.2.2) sit well below it.
        """
        if not self.warp_instructions:
            return 0.0
        return self.thread_instructions / (self.warp_instructions * self.warp_size)

    @property
    def l1_mpki(self) -> float:
        """L1D misses per kilo (thread) instruction."""
        if not self.thread_instructions:
            return 0.0
        return 1000.0 * self.l1_stats.misses / self.thread_instructions

    @property
    def l1_hit_rate(self) -> float:
        return self.l1_stats.hit_rate

    @property
    def critical_hit_rate(self) -> float:
        return self.l1_stats.critical_hit_rate

    def speedup_over(self, baseline: "RunResult") -> float:
        """IPC speedup of this run relative to ``baseline``."""
        if self.ipc == 0 or baseline.ipc == 0:
            return 0.0
        return self.ipc / baseline.ipc

    def summary(self) -> str:
        return (
            f"{self.kernel_name:<16} {self.scheme:<14} cycles={self.cycles:>10.0f} "
            f"IPC={self.ipc:7.3f} L1 hit={self.l1_hit_rate:6.2%} "
            f"MPKI={self.l1_mpki:7.2f}"
        )

    # ------------------------------------------------------------------
    # Serialization (persistent result cache, cross-process sweeps)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        """Plain-data form of this result (JSON- and pickle-friendly).

        Live :class:`~repro.simt.block.ThreadBlock` objects are reduced to
        :class:`BlockSummary`; ``extra`` entries that are not plain scalars
        (e.g. profiler objects) are dropped.
        """
        blocks = [
            b if isinstance(b, BlockSummary) else BlockSummary.from_block(b)
            for b in self.blocks
        ]
        return {
            "kernel_name": self.kernel_name,
            "scheme": self.scheme,
            "cycles": self.cycles,
            "thread_instructions": self.thread_instructions,
            "warp_instructions": self.warp_instructions,
            "l1_stats": dataclasses.asdict(self.l1_stats),
            "l2_stats": dataclasses.asdict(self.l2_stats),
            "dram_accesses": self.dram_accesses,
            "warp_size": self.warp_size,
            "frontend": self.frontend,
            "trace_id": self.trace_id,
            "clock": self.clock,
            "shards": self.shards,
            "cycles_skipped": self.cycles_skipped,
            "skip_jumps": self.skip_jumps,
            "events": self.events,
            "backend": self.backend,
            "sampling": self.sampling,
            "blocks": [dataclasses.asdict(b) for b in blocks],
            "extra": {k: v for k, v in self.extra.items() if _jsonable(v)},
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "RunResult":
        """Rebuild a result whose blocks are :class:`BlockSummary` objects."""
        blocks = [
            BlockSummary(
                block_id=b["block_id"],
                num_warps=b["num_warps"],
                dispatch_cycle=b["dispatch_cycle"],
                commit_cycle=b["commit_cycle"],
                warps=[WarpSummary(**w) for w in b["warps"]],
            )
            for b in data["blocks"]
        ]
        return cls(
            kernel_name=data["kernel_name"],
            scheme=data["scheme"],
            cycles=data["cycles"],
            thread_instructions=data["thread_instructions"],
            warp_instructions=data["warp_instructions"],
            l1_stats=CacheStats(**data["l1_stats"]),
            l2_stats=CacheStats(**data["l2_stats"]),
            blocks=blocks,
            dram_accesses=data["dram_accesses"],
            extra=dict(data.get("extra", {})),
            warp_size=data.get("warp_size", 32),
            frontend=data.get("frontend", "execute"),
            trace_id=data.get("trace_id"),
            clock=data.get("clock", "cycle"),
            shards=data.get("shards", 1),
            cycles_skipped=data.get("cycles_skipped", 0.0),
            skip_jumps=data.get("skip_jumps", 0),
            events=data.get("events", "off"),
            backend=data.get("backend", "python"),
            sampling=data.get("sampling", "off"),
        )


def result_from_dict(data: Dict) -> "RunResult":
    """Deserialize a result dict to its concrete type.

    Sampled results (produced under ``config.sampling != "off"``) carry a
    ``"sampled"`` envelope with their confidence intervals and sampling
    frame; they round-trip as
    :class:`~repro.stats.sampling.SampledRunResult` so cache hits and
    cross-process sweep results keep their error bars.  Everything else is
    a plain :class:`RunResult`.
    """
    if "sampled" in data:
        # Local import: stats.sampling builds on this module.
        from .sampling import SampledRunResult

        return SampledRunResult.from_dict(data)
    return RunResult.from_dict(data)


def merge_shard_results(parts: List["RunResult"], shards: int) -> "RunResult":
    """Deterministically merge per-shard results into one device result.

    Each shard simulates a disjoint subset of SMs against the shared L2/DRAM
    (see :mod:`repro.gpu.sharded`), so the merge is pure aggregation:

    * scalar instruction / access counters **sum**;
    * ``cycles`` is the **max** over shards (the device ran until its last
      SM finished);
    * cache stats sum field-wise (the coordinator supplies the single
      authoritative L2 delta on ``parts[0]``; per-shard results carry only
      their own SMs' L1 counters);
    * ``blocks`` concatenate and re-sort by ``block_id`` — the same order
      :meth:`repro.gpu.gpu.GPU._collect` produces serially, making the merge
      independent of shard count and completion order.

    ``parts`` must be passed in shard order; determinism of the output then
    follows from determinism of each shard.
    """
    if not parts:
        raise ValueError("merge_shard_results needs at least one shard result")
    head = parts[0]
    blocks: List = []
    for part in parts:
        blocks.extend(part.blocks)
    blocks.sort(key=lambda b: b.block_id)
    extra: Dict[str, object] = {}
    for part in parts:
        extra.update(part.extra)
    return RunResult(
        kernel_name=head.kernel_name,
        scheme=head.scheme,
        cycles=max(p.cycles for p in parts),
        thread_instructions=sum(p.thread_instructions for p in parts),
        warp_instructions=sum(p.warp_instructions for p in parts),
        l1_stats=merge_cache_stats([p.l1_stats for p in parts]),
        l2_stats=head.l2_stats,
        blocks=blocks,
        dram_accesses=head.dram_accesses,
        extra=extra,
        warp_size=head.warp_size,
        frontend=head.frontend,
        trace_id=head.trace_id,
        clock=head.clock,
        shards=shards,
        events=head.events,
        backend=head.backend,
        sampling=head.sampling,
        cycles_skipped=sum(p.cycles_skipped for p in parts),
        skip_jumps=sum(p.skip_jumps for p in parts),
    )
