"""Run-level results: IPC, MPKI, and aggregated cache statistics."""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..memory.cache import CacheStats


def replace_stats(stats: CacheStats) -> CacheStats:
    """Shallow copy of a :class:`CacheStats` (snapshot for launch deltas)."""
    return dataclasses.replace(stats)


def subtract_stats(now: CacheStats, before: CacheStats) -> CacheStats:
    """Field-wise ``now - before`` of two cumulative counters."""
    delta = CacheStats()
    for field_info in dataclasses.fields(CacheStats):
        name = field_info.name
        setattr(delta, name, getattr(now, name) - getattr(before, name))
    return delta


def merge_cache_stats(parts: List[CacheStats]) -> CacheStats:
    """Sum per-SM cache counters into one aggregate."""
    total = CacheStats()
    for part in parts:
        total.accesses += part.accesses
        total.hits += part.hits
        total.misses += part.misses
        total.bypasses += part.bypasses
        total.critical_accesses += part.critical_accesses
        total.critical_hits += part.critical_hits
        total.evictions += part.evictions
        total.zero_reuse_evictions += part.zero_reuse_evictions
        total.critical_fill_evictions += part.critical_fill_evictions
        total.critical_zero_reuse_evictions += part.critical_zero_reuse_evictions
    return total


@dataclass
class RunResult:
    """Everything a launch produced, ready for the experiment harness.

    ``blocks`` keeps the committed :class:`~repro.simt.block.ThreadBlock`
    objects (with their warps) so disparity and criticality analyses can be
    run after the fact; ``extra`` carries observer outputs such as reuse
    profiles or the Fig 12 priority trace.
    """

    kernel_name: str
    scheme: str
    cycles: float
    thread_instructions: int
    warp_instructions: int
    l1_stats: CacheStats
    l2_stats: CacheStats
    blocks: List = field(default_factory=list)
    dram_accesses: int = 0
    extra: Dict[str, object] = field(default_factory=dict)

    #: Lanes per warp, used by :attr:`simd_efficiency` (set at collection).
    warp_size: int = 32

    @property
    def ipc(self) -> float:
        """Thread-level instructions per cycle (the paper's IPC metric)."""
        return self.thread_instructions / self.cycles if self.cycles else 0.0

    @property
    def simd_efficiency(self) -> float:
        """Mean fraction of lanes active per issued warp instruction.

        1.0 means no divergence / no partial warps; branch-divergent
        workloads (Section 2.2.2) sit well below it.
        """
        if not self.warp_instructions:
            return 0.0
        return self.thread_instructions / (self.warp_instructions * self.warp_size)

    @property
    def l1_mpki(self) -> float:
        """L1D misses per kilo (thread) instruction."""
        if not self.thread_instructions:
            return 0.0
        return 1000.0 * self.l1_stats.misses / self.thread_instructions

    @property
    def l1_hit_rate(self) -> float:
        return self.l1_stats.hit_rate

    @property
    def critical_hit_rate(self) -> float:
        return self.l1_stats.critical_hit_rate

    def speedup_over(self, baseline: "RunResult") -> float:
        """IPC speedup of this run relative to ``baseline``."""
        if self.ipc == 0 or baseline.ipc == 0:
            return 0.0
        return self.ipc / baseline.ipc

    def summary(self) -> str:
        return (
            f"{self.kernel_name:<16} {self.scheme:<14} cycles={self.cycles:>10.0f} "
            f"IPC={self.ipc:7.3f} L1 hit={self.l1_hit_rate:6.2%} "
            f"MPKI={self.l1_mpki:7.2f}"
        )
