"""Warp execution-time disparity analysis (paper Figures 1 and 2).

Disparity of a thread block is the gap between its slowest (critical) and
fastest warps.  ``relative_to="max"`` expresses the gap as a fraction of the
critical warp's time (bounded by 1; used for the Figure 1 bars);
``relative_to="min"`` expresses it as a fraction of the fastest warp's time
(the paper's Figure 2a phrasing: "approximately 20% of the fastest warp's
execution time").
"""

from __future__ import annotations

from typing import List, Optional


def warp_time_profile(block) -> List[float]:
    """Per-warp execution times of a committed block, ascending."""
    return sorted(block.warp_execution_times())


def block_disparity(block, relative_to: str = "max") -> Optional[float]:
    """Fast-vs-slow warp gap for one block; None for single-warp blocks."""
    times = warp_time_profile(block)
    if len(times) < 2:
        return None
    fastest, slowest = times[0], times[-1]
    if slowest <= 0:
        return 0.0
    if relative_to == "max":
        return (slowest - fastest) / slowest
    if relative_to == "min":
        return (slowest - fastest) / fastest if fastest > 0 else float("inf")
    raise ValueError(f"relative_to must be 'max' or 'min', got {relative_to!r}")


def max_block_disparity(result, relative_to: str = "max") -> float:
    """Highest per-block disparity in a run (the Figure 1 metric)."""
    best = 0.0
    for block in result.blocks:
        d = block_disparity(block, relative_to)
        if d is not None and d > best:
            best = d
    return best


def mean_block_disparity(result, relative_to: str = "max") -> float:
    """Mean per-block disparity over blocks with at least two warps."""
    values = [
        d
        for block in result.blocks
        if (d := block_disparity(block, relative_to)) is not None
    ]
    return sum(values) / len(values) if values else 0.0


def critical_warp_of(block):
    """The slowest warp of a committed block."""
    return max(block.warps, key=lambda w: w.execution_time)


def memory_stall_share(warp) -> float:
    """Fraction of a warp's execution time spent stalled on memory."""
    t = warp.execution_time
    return warp.mem_stall_cycles / t if t > 0 else 0.0


def scheduler_stall_share(warp) -> float:
    """Fraction of a warp's execution time that is scheduler-induced wait.

    The warp was ready to issue but not selected — the Figure 4 metric.
    """
    t = warp.execution_time
    return warp.sched_stall_cycles / t if t > 0 else 0.0
