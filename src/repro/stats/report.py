"""Plain-text table formatting for the experiment harness output."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Render a fixed-width table matching the paper's row/column layout."""
    str_rows: List[List[str]] = [[_fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = [" | ".join(h.ljust(w) for h, w in zip(headers, widths)), sep]
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
