"""Plain-text table formatting for the experiment harness output.

Besides the fixed-width :func:`format_table` used by every figure script,
this module renders the confidence-interval columns of sampled runs
(:func:`format_ci`, :func:`format_estimate_table`): a
:class:`~repro.stats.sampling.SampledRunResult` reports each metric as
``estimate [lo, hi]`` with its relative half-width and estimation method,
so a reader can tell at a glance which numbers are exact and how much the
extrapolated ones should be trusted.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Optional, Sequence


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Render a fixed-width table matching the paper's row/column layout."""
    str_rows: List[List[str]] = [[_fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = [" | ".join(h.ljust(w) for h, w in zip(headers, widths)), sep]
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _sig(value: float) -> str:
    """Compact numeric formatting for CI columns (4 significant digits)."""
    if value == int(value) and abs(value) < 1e12:
        return str(int(value))
    return f"{value:.4g}"


def format_ci(value: float, lo: float, hi: float) -> str:
    """Render one estimate with its interval: ``123.4 [120.1, 126.7]``."""
    return f"{_sig(value)} [{_sig(lo)}, {_sig(hi)}]"


def format_estimate_table(
    ci: Mapping[str, object], order: Optional[Sequence[str]] = None
) -> str:
    """Per-metric CI table for one sampled run.

    ``ci`` maps metric name to an estimate object exposing ``value``,
    ``lo``, ``hi``, ``rel_half_width`` and ``method`` (duck-typed
    :class:`~repro.stats.sampling.MetricEstimate`).  ``order`` fixes the
    row order; by default metrics appear sorted by name.
    """
    names = list(order) if order is not None else sorted(ci)
    rows = []
    for name in names:
        est = ci[name]
        rows.append([
            name,
            format_ci(est.value, est.lo, est.hi),
            f"{100.0 * est.rel_half_width:.1f}%",
            est.method,
        ])
    return format_table(["metric", "estimate [95% CI]", "+/-", "method"], rows)
