"""Workload registry mirroring Table 2 of the paper."""

from __future__ import annotations

from functools import partial
from typing import Callable, Dict, List

from .backprop import BackpropWorkload
from .base import Workload
from .bfs import BFSWorkload
from .btree import BTreeWorkload
from .heartwall import HeartwallWorkload
from .kmeans import KMeansWorkload
from .needle import NeedleWorkload
from .particle import ParticleWorkload
from .pathfinder import PathfinderWorkload
from .srad import SradWorkload
from .streamcluster import StreamclusterWorkload
from .synthetic import DivergenceWorkload, ImbalanceWorkload, MemStressWorkload
from .tpacf import TpacfWorkload

WORKLOADS: Dict[str, Callable[..., Workload]] = {
    # Sens (Table 2): execution-time disparity + L1D sensitivity.
    "bfs": BFSWorkload,
    "b+tree": BTreeWorkload,
    "heartwall": HeartwallWorkload,
    "kmeans": KMeansWorkload,
    "needle": NeedleWorkload,
    "srad_1": SradWorkload,
    # functools.partial (not a lambda) so inspect.signature sees the real
    # constructor parameters — run_sweep validates its kwargs against them.
    "strcltr_small": partial(StreamclusterWorkload, variant="small"),
    # Non-sens (Table 2).
    "backprop": BackpropWorkload,
    "particle": ParticleWorkload,
    "pathfinder": PathfinderWorkload,
    "strcltr_mid": partial(StreamclusterWorkload, variant="mid"),
    "tpacf": TpacfWorkload,
    # Synthetic microbenchmarks (not part of Table 2).
    "synthetic_imbalance": ImbalanceWorkload,
    "synthetic_divergence": DivergenceWorkload,
    "synthetic_memstress": MemStressWorkload,
}

#: The paper's seven scheduling/cache-sensitive applications.
SENS_WORKLOADS: List[str] = [
    "bfs",
    "b+tree",
    "heartwall",
    "kmeans",
    "needle",
    "srad_1",
    "strcltr_small",
]

#: The paper's five non-sensitive applications.
NON_SENS_WORKLOADS: List[str] = [
    "backprop",
    "particle",
    "pathfinder",
    "strcltr_mid",
    "tpacf",
]


def workload_names(include_synthetic: bool = False) -> List[str]:
    """Table 2 workload names, optionally with the synthetic extras."""
    names = SENS_WORKLOADS + NON_SENS_WORKLOADS
    if include_synthetic:
        names += ["synthetic_imbalance", "synthetic_divergence", "synthetic_memstress"]
    return names


def make_workload(name: str, **kwargs) -> Workload:
    """Instantiate a workload by its Table 2 name."""
    try:
        factory = WORKLOADS[name]
    except KeyError:
        raise ValueError(
            f"unknown workload {name!r}; expected one of {sorted(WORKLOADS)}"
        ) from None
    return factory(**kwargs)
