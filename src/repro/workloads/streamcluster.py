"""streamcluster — assign points to the cheapest open center (Parboil/PARSEC).

Each thread owns a point and scans the open centers, tracking the cheapest
weighted distance.  Two configurations from the paper's Table 2:

* **small** (Sens) — feature-major layout with per-point columns re-read for
  every center: cluster-loop reuse exists, so cache policy and scheduler
  concentration matter (like kmeans, but with a weighted-cost update that
  adds a divergent compare-and-assign tail).
* **mid** (Non-sens) — point-major layout streamed in a single pass per
  center: essentially no reusable working set, so neither scheduling nor
  cache policy moves the needle.
"""

from __future__ import annotations

import numpy as np

from ..isa.instructions import CmpOp, Special
from ..isa.kernel import KernelBuilder
from .base import LaunchSpec, Workload


class StreamclusterWorkload(Workload):
    category = "Sens"
    dataset = "1024 points x 8 dims, 8 centers (32x4096 in the paper)"

    def __init__(
        self,
        seed: int = 29,
        scale: float = 1.0,
        variant: str = "small",
        block_dim: int = 256,
    ) -> None:
        super().__init__(seed=seed, scale=scale)
        if variant not in ("small", "mid"):
            raise ValueError(f"variant must be 'small' or 'mid', got {variant!r}")
        self.variant = variant
        self.name = f"strcltr_{variant}"
        if variant == "small":
            self.num_points, self.dims, self.centers = 1024, 8, 8
            self.category = "Sens"
        else:
            # A single streaming cost-evaluation pass: no reusable working
            # set, so neither warp scheduling nor cache policy can help —
            # the measured insensitivity that puts the mid input in the
            # paper's Non-sens set.
            self.num_points, self.dims, self.centers = 1024, 16, 1
            self.category = "Non-sens"
            self.dataset = "1024 points x 16 dims, 1 center (64x8192 in the paper)"
        self.num_points = self._int(self.num_points)
        self.block_dim = block_dim

    def build(self, gpu) -> LaunchSpec:
        n, d, k = self.num_points, self.dims, self.centers
        # Both variants use the feature-major layout (coalesced lane reads);
        # "small" re-reads its columns for every center (reuse to exploit),
        # "mid" is one streaming pass with no reusable working set.
        feature_major = True
        points = self.rng.rand(d, n) if feature_major else self.rng.rand(n, d)
        centers = self.rng.rand(k, d)
        weights = (1.0 + self.rng.rand(k)).round(3)

        mem = gpu.memory
        base_pts = mem.alloc_array(points)
        base_ctr = mem.alloc_array(centers)
        base_wgt = mem.alloc_array(weights)
        base_assign = mem.alloc_array(np.zeros(n))
        base_cost = mem.alloc_array(np.zeros(n))

        b = KernelBuilder(self.name)
        tid = b.sreg(Special.GTID)
        in_range = b.pred()
        b.setp(in_range, CmpOp.LT, tid, float(n))
        with b.if_then(in_range):
            best_cost = b.const(1e30)
            best_center = b.const(0.0)
            c = b.const(0.0)
            c_done = b.pred()
            with b.loop() as outer:
                b.setp(c_done, CmpOp.GE, c, float(k))
                outer.break_if(c_done)
                dist = b.const(0.0)
                f = b.const(0.0)
                if feature_major:
                    pt_addr = b.addr(tid, base=base_pts, scale=8)
                    pt_stride = float(n * 8)
                else:
                    pt_addr = b.reg()
                    b.mad(pt_addr, tid, float(d * 8), b.const(float(base_pts)))
                    pt_stride = 8.0
                ctr_addr = b.reg()
                b.mad(ctr_addr, c, float(d * 8), b.const(float(base_ctr)))
                pt_ptr = b.reg()
                b.mov(pt_ptr, pt_addr)
                f_done = b.pred()
                with b.loop() as inner:
                    b.setp(f_done, CmpOp.GE, f, float(d))
                    inner.break_if(f_done)
                    x = b.ld(pt_ptr)
                    y = b.ld(ctr_addr)
                    diff = b.reg()
                    b.sub(diff, x, y)
                    b.mad(dist, diff, diff, dist)
                    b.add(pt_ptr, pt_ptr, pt_stride)
                    b.add(ctr_addr, ctr_addr, 8.0)
                    b.add(f, f, 1.0)
                w = b.ld(b.addr(c, base=base_wgt, scale=8))
                cost = b.reg()
                b.mul(cost, dist, w)
                cheaper = b.pred()
                b.setp(cheaper, CmpOp.LT, cost, best_cost)
                b.selp(best_cost, cheaper, cost, best_cost)
                b.selp(best_center, cheaper, c, best_center)
                b.add(c, c, 1.0)
            b.st(b.addr(tid, base=base_assign, scale=8), best_center)
            b.st(b.addr(tid, base=base_cost, scale=8), best_cost)
        kernel = b.build()

        grid_dim = (n + self.block_dim - 1) // self.block_dim

        def verifier(gpu_) -> bool:
            assign = gpu_.memory.read_array(base_assign, n)
            cost_out = gpu_.memory.read_array(base_cost, n)
            pts = points if feature_major else points.T  # (d, n)
            dists = ((pts[None, :, :] - centers[:, :, None]) ** 2).sum(axis=1)
            costs = dists * weights[:, None]
            expected_assign = np.argmin(costs, axis=0).astype(np.float64)
            expected_cost = costs.min(axis=0)
            return bool(
                np.array_equal(assign, expected_assign)
                and np.allclose(cost_out, expected_cost)
            )

        return LaunchSpec(
            kernel=kernel,
            grid_dim=grid_dim,
            block_dim=self.block_dim,
            buffers={"points": base_pts, "centers": base_ctr, "assign": base_assign},
            verifier=verifier,
        )
