"""particle — particle-filter likelihood evaluation (Rodinia particlefilter).

One thread per particle: a fixed-length loop over observation points
computing a Gaussian likelihood with SFU-heavy math (exp, sqrt).  Uniform
trip counts and coalesced per-observation accesses make it compute-bound
and criticality-flat — Non-sens in Table 2.
"""

from __future__ import annotations

import numpy as np

from ..isa.instructions import CmpOp, Special
from ..isa.kernel import KernelBuilder
from .base import LaunchSpec, Workload


class ParticleWorkload(Workload):
    name = "particle"
    category = "Non-sens"
    dataset = "1024 particles x 32 observations (128x128x10 in the paper)"

    def __init__(
        self,
        seed: int = 37,
        scale: float = 1.0,
        num_particles: int = 1024,
        num_obs: int = 32,
        block_dim: int = 256,
    ) -> None:
        super().__init__(seed=seed, scale=scale)
        self.num_particles = self._int(num_particles)
        self.num_obs = num_obs
        self.block_dim = block_dim

    def build(self, gpu) -> LaunchSpec:
        n, m = self.num_particles, self.num_obs
        # Observation-major samples so lane accesses coalesce.
        samples = self.rng.rand(m, n)
        measurements = self.rng.rand(m)

        mem = gpu.memory
        base_samples = mem.alloc_array(samples)
        base_meas = mem.alloc_array(measurements)
        base_weight = mem.alloc_array(np.zeros(n))

        b = KernelBuilder("particle")
        tid = b.sreg(Special.GTID)
        in_range = b.pred()
        b.setp(in_range, CmpOp.LT, tid, float(n))
        with b.if_then(in_range):
            log_lik = b.const(0.0)
            i = b.const(0.0)
            s_addr = b.addr(tid, base=base_samples, scale=8)
            m_addr = b.const(float(base_meas))
            done = b.pred()
            with b.loop() as obs:
                b.setp(done, CmpOp.GE, i, float(m))
                obs.break_if(done)
                s = b.ld(s_addr)
                z = b.ld(m_addr)
                diff = b.reg()
                b.sub(diff, s, z)
                sq = b.reg()
                b.mul(sq, diff, diff)
                b.mad(log_lik, sq, -0.5, log_lik)
                b.add(s_addr, s_addr, float(n * 8))
                b.add(m_addr, m_addr, 8.0)
                b.add(i, i, 1.0)
            # weight = exp(log_lik / m) (normalized log-likelihood)
            scaled = b.reg()
            b.mul(scaled, log_lik, 1.0 / m)
            w = b.reg()
            b.exp(w, scaled)
            b.st(b.addr(tid, base=base_weight, scale=8), w)
        kernel = b.build()

        grid_dim = (n + self.block_dim - 1) // self.block_dim

        def verifier(gpu_) -> bool:
            out = gpu_.memory.read_array(base_weight, n)
            log_lik = (-0.5 * (samples - measurements[:, None]) ** 2).sum(axis=0)
            expected = np.exp(log_lik / m)
            return bool(np.allclose(out, expected, atol=1e-9))

        return LaunchSpec(
            kernel=kernel,
            grid_dim=grid_dim,
            block_dim=self.block_dim,
            buffers={"samples": base_samples, "weights": base_weight},
            verifier=verifier,
        )
