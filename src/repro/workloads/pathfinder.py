"""pathfinder — row-by-row dynamic programming over a cost grid (Rodinia).

Each thread owns one column of a block-wide stripe; every step it reads the
previous row's three neighbouring partial sums (clamped at the stripe
boundary), adds its own cell cost, and synchronizes at a block barrier.
Uniform loops and coalesced row accesses keep criticality low — Non-sens.
"""

from __future__ import annotations

import numpy as np

from ..isa.instructions import CmpOp, Special
from ..isa.kernel import KernelBuilder
from .base import LaunchSpec, Workload


class PathfinderWorkload(Workload):
    name = "pathfinder"
    category = "Non-sens"
    dataset = "2048 columns x 16 rows (100000 nodes in the paper)"

    def __init__(
        self,
        seed: int = 41,
        scale: float = 1.0,
        num_cols: int = 2048,
        num_rows: int = 16,
        block_dim: int = 256,
    ) -> None:
        super().__init__(seed=seed, scale=scale)
        self.num_cols = self._int(num_cols)
        self.num_rows = num_rows
        self.block_dim = block_dim

    def build(self, gpu) -> LaunchSpec:
        cols, rows = self.num_cols, self.num_rows
        bd = self.block_dim
        grid = self.rng.randint(1, 10, size=(rows, cols)).astype(np.float64)

        mem = gpu.memory
        base_grid = mem.alloc_array(grid)
        # Two row buffers, ping-ponged per DP step.
        base_row0 = mem.alloc_array(grid[0].copy())
        base_row1 = mem.alloc_array(np.zeros(cols))

        b = KernelBuilder("pathfinder")
        tid = b.sreg(Special.GTID)
        ntid = b.sreg(Special.NTID)
        ctaid = b.sreg(Special.CTAID)
        in_range = b.pred()
        b.setp(in_range, CmpOp.LT, tid, float(cols))
        # Stripe bounds for boundary clamping (each block is independent,
        # so neighbours are clamped at the stripe edge).
        lo = b.reg()
        b.mul(lo, ctaid, ntid)
        hi = b.reg()
        b.add(hi, lo, ntid)
        b.sub(hi, hi, 1.0)
        b.min_(hi, hi, float(cols - 1))

        left = b.reg()
        b.max_(left, b.sub(b.reg(), tid, 1.0), lo)
        right = b.reg()
        b.min_(right, b.add(b.reg(), tid, 1.0), hi)

        src = b.reg()
        b.mov(src, float(base_row0))
        dst = b.reg()
        b.mov(dst, float(base_row1))
        row = b.const(1.0)
        done = b.pred()
        with b.loop() as dp:
            b.setp(done, CmpOp.GE, row, float(rows))
            dp.break_if(done)
            la = b.reg()
            b.mad(la, left, 8.0, src)
            ca = b.reg()
            b.mad(ca, tid, 8.0, src)
            ra = b.reg()
            b.mad(ra, right, 8.0, src)
            lv = b.ld(la, pred=in_range)
            cv = b.ld(ca, pred=in_range)
            rv = b.ld(ra, pred=in_range)
            best = b.reg()
            b.min_(best, lv, cv)
            b.min_(best, best, rv)
            cost_idx = b.reg()
            b.mad(cost_idx, row, float(cols), tid)
            cost = b.ld(b.addr(cost_idx, base=base_grid, scale=8), pred=in_range)
            total = b.reg()
            b.add(total, best, cost)
            da = b.reg()
            b.mad(da, tid, 8.0, dst)
            b.st(da, total, pred=in_range)
            b.bar()
            # Swap src/dst buffers.
            tmp = b.reg()
            b.mov(tmp, src)
            b.mov(src, dst)
            b.mov(dst, tmp)
            b.add(row, row, 1.0)
        kernel = b.build()

        grid_dim = (cols + bd - 1) // bd

        def verifier(gpu_) -> bool:
            final_base = base_row0 if (rows - 1) % 2 == 0 else base_row1
            out = gpu_.memory.read_array(final_base, cols)
            # Reference DP with per-stripe clamping.
            prev = grid[0].copy()
            for r in range(1, rows):
                cur = np.zeros(cols)
                for c in range(cols):
                    stripe_lo = (c // bd) * bd
                    stripe_hi = min(stripe_lo + bd - 1, cols - 1)
                    lo_ = max(c - 1, stripe_lo)
                    hi_ = min(c + 1, stripe_hi)
                    cur[c] = min(prev[lo_], prev[c], prev[hi_]) + grid[r, c]
                prev = cur
            return bool(np.allclose(out, prev))

        return LaunchSpec(
            kernel=kernel,
            grid_dim=grid_dim,
            block_dim=bd,
            buffers={"grid": base_grid, "row0": base_row0, "row1": base_row1},
            verifier=verifier,
        )
