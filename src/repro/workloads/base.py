"""Workload interface shared by all benchmark re-implementations."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

import numpy as np

from ..gpu import GPU
from ..stats.counters import RunResult


@dataclass
class LaunchSpec:
    """Everything needed to launch and verify one kernel run."""

    kernel: object
    grid_dim: int
    block_dim: int
    #: Buffer name -> base byte address in the GPU's global memory.
    buffers: Dict[str, int] = field(default_factory=dict)
    #: Optional verifier run after the launch; returns True on success.
    verifier: Optional[Callable[[GPU], bool]] = None

    def verify(self, gpu: GPU) -> bool:
        if self.verifier is None:
            return True
        return self.verifier(gpu)


class Workload:
    """One benchmark: input generation, kernel construction, verification.

    Subclasses set :attr:`name`, :attr:`category` (``"Sens"`` or
    ``"Non-sens"``, Table 2), and :attr:`dataset` (a human-readable summary
    of the synthetic input standing in for the paper's dataset), and
    implement :meth:`build`.
    """

    name = "workload"
    category = "Sens"
    dataset = ""

    def __init__(self, seed: int = 7, scale: float = 1.0) -> None:
        #: Seeded generator: every run of a workload sees identical inputs,
        #: so scheme comparisons are apples-to-apples.
        self.seed = seed
        #: Input-size multiplier for quick-vs-thorough sweeps.
        self.scale = scale
        self.rng = np.random.RandomState(seed)

    def build(self, gpu: GPU) -> LaunchSpec:
        """Allocate inputs in ``gpu.memory`` and construct the kernel."""
        raise NotImplementedError

    def run(self, gpu: GPU, scheme: str = "", check: bool = True) -> RunResult:
        """Build, launch, and (optionally) verify on ``gpu``."""
        spec = self.build(gpu)
        result = gpu.launch(spec.kernel, spec.grid_dim, spec.block_dim, scheme=scheme)
        if check and not spec.verify(gpu):
            raise AssertionError(f"{self.name}: functional verification failed")
        return result

    def _int(self, value: float) -> int:
        """Scale an integral size parameter, keeping it at least 1."""
        return max(1, int(round(value * self.scale)))
