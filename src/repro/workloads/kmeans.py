"""kmeans — cluster membership assignment (Rodinia).

One thread per data point; for every cluster the thread re-reads its
feature column and accumulates a squared distance.  The feature array is
re-referenced k times per thread with a reuse distance proportional to the
number of interleaved warps, so under a fair round-robin scheduler the L1
thrashes badly — the paper's most cache-sensitive benchmark (CAWA speeds it
up 3.13x by limiting the active warp set and protecting critical lines).
"""

from __future__ import annotations

import numpy as np

from ..isa.instructions import CmpOp, Special
from ..isa.kernel import KernelBuilder
from .base import LaunchSpec, Workload


class KMeansWorkload(Workload):
    name = "kmeans"
    category = "Sens"
    dataset = "2048 points x 8 features, 8 clusters (494020 nodes in the paper)"

    def __init__(
        self,
        seed: int = 11,
        scale: float = 1.0,
        num_points: int = 2048,
        num_features: int = 8,
        num_clusters: int = 8,
        block_dim: int = 256,
    ) -> None:
        super().__init__(seed=seed, scale=scale)
        self.num_points = self._int(num_points)
        self.num_features = num_features
        self.num_clusters = num_clusters
        self.block_dim = block_dim

    def build(self, gpu) -> LaunchSpec:
        n, d, k = self.num_points, self.num_features, self.num_clusters
        features = self.rng.rand(d, n)  # feature-major: coalesced lane reads
        centroids = self.rng.rand(k, d)

        mem = gpu.memory
        base_feat = mem.alloc_array(features)
        base_cent = mem.alloc_array(centroids)
        base_member = mem.alloc_array(np.zeros(n))

        b = KernelBuilder("kmeans")
        tid = b.sreg(Special.GTID)
        in_range = b.pred()
        b.setp(in_range, CmpOp.LT, tid, float(n))
        with b.if_then(in_range):
            best = b.const(1e30)
            best_cluster = b.const(0.0)
            cluster = b.const(0.0)
            feat_addr = b.addr(tid, base=base_feat, scale=8)  # column of feature 0
            cluster_done = b.pred()
            with b.loop() as outer:
                b.setp(cluster_done, CmpOp.GE, cluster, float(k))
                outer.break_if(cluster_done)
                dist = b.const(0.0)
                f = b.const(0.0)
                cent_addr = b.reg()
                b.mad(cent_addr, cluster, float(d * 8), b.const(float(base_cent)))
                feat_ptr = b.reg()
                b.mov(feat_ptr, feat_addr)
                feat_done = b.pred()
                with b.loop() as inner:
                    b.setp(feat_done, CmpOp.GE, f, float(d))
                    inner.break_if(feat_done)
                    x = b.ld(feat_ptr)
                    c = b.ld(cent_addr)
                    diff = b.reg()
                    b.sub(diff, x, c)
                    b.mad(dist, diff, diff, dist)
                    b.add(feat_ptr, feat_ptr, float(n * 8))  # next feature row
                    b.add(cent_addr, cent_addr, 8.0)
                    b.add(f, f, 1.0)
                closer = b.pred()
                b.setp(closer, CmpOp.LT, dist, best)
                b.selp(best, closer, dist, best)
                b.selp(best_cluster, closer, cluster, best_cluster)
                b.add(cluster, cluster, 1.0)
            b.st(b.addr(tid, base=base_member, scale=8), best_cluster)
        kernel = b.build()

        grid_dim = (n + self.block_dim - 1) // self.block_dim

        def verifier(gpu_) -> bool:
            member = gpu_.memory.read_array(base_member, n)
            # argmin over clusters of squared distance, first-wins ties
            dists = (
                (features[None, :, :] - centroids[:, :, None]) ** 2
            ).sum(axis=1)  # (k, n)
            expected = np.argmin(dists, axis=0).astype(np.float64)
            return bool(np.array_equal(member, expected))

        return LaunchSpec(
            kernel=kernel,
            grid_dim=grid_dim,
            block_dim=self.block_dim,
            buffers={
                "features": base_feat,
                "centroids": base_cent,
                "membership": base_member,
            },
            verifier=verifier,
        )
