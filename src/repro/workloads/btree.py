"""b+tree — batched key lookups descending a B+ tree (Rodinia).

Each thread resolves one query by walking the tree from the root: at every
level it scans the node's keys until the query key is smaller (an early-exit
loop — thread-level divergence), then follows the child pointer.  The top
levels are shared by every thread (heavy *inter-warp* reuse, which the paper
notes CACP does not capture — b+tree is one of the two applications that
regress slightly under full CAWA), while leaf-level nodes scatter.
"""

from __future__ import annotations

import numpy as np

from ..isa.instructions import CmpOp, Special
from ..isa.kernel import KernelBuilder
from .base import LaunchSpec, Workload


class BTreeWorkload(Workload):
    name = "b+tree"
    category = "Sens"
    dataset = "order-8 tree, depth 4, 2048 queries (1M nodes in the paper)"

    def __init__(
        self,
        seed: int = 13,
        scale: float = 1.0,
        fanout: int = 8,
        depth: int = 4,
        num_queries: int = 2048,
        block_dim: int = 256,
    ) -> None:
        super().__init__(seed=seed, scale=scale)
        self.fanout = fanout
        self.depth = depth
        self.num_queries = self._int(num_queries)
        self.block_dim = block_dim

    def _make_tree(self):
        """Key arrays per level, flattened level-major.

        Level ``l`` has ``fanout**l`` nodes of ``fanout`` keys each.  Keys
        are the standard B+ tree separators over [0, fanout**depth).
        """
        levels = []
        for level in range(self.depth):
            num_nodes = self.fanout**level
            span = self.fanout ** (self.depth - level)  # key range per node
            child_span = span // self.fanout
            nodes = np.zeros((num_nodes, self.fanout))
            for node in range(num_nodes):
                start = node * span
                # Separator i is the lower bound of child i+1.
                nodes[node] = start + child_span * (np.arange(self.fanout) + 1)
            levels.append(nodes.ravel())
        return levels

    def build(self, gpu) -> LaunchSpec:
        fanout, depth = self.fanout, self.depth
        levels = self._make_tree()
        queries = self.rng.randint(0, fanout**depth, size=self.num_queries).astype(
            np.float64
        )

        mem = gpu.memory
        level_bases = [mem.alloc_array(level) for level in levels]
        base_queries = mem.alloc_array(queries)
        base_out = mem.alloc_array(np.zeros(self.num_queries))
        # Level base addresses live in memory so the kernel can index them.
        base_level_table = mem.alloc_array(np.array(level_bases, dtype=np.float64))

        b = KernelBuilder("b+tree")
        tid = b.sreg(Special.GTID)
        in_range = b.pred()
        b.setp(in_range, CmpOp.LT, tid, float(self.num_queries))
        with b.if_then(in_range):
            query = b.ld(b.addr(tid, base=base_queries, scale=8))
            node = b.const(0.0)  # node index within the current level
            level = b.const(0.0)
            level_done = b.pred()
            with b.loop() as walk:
                b.setp(level_done, CmpOp.GE, level, float(depth))
                walk.break_if(level_done)
                level_base = b.ld(b.addr(level, base=base_level_table, scale=8))
                # Byte address of this node's first key.
                key_addr = b.reg()
                b.mad(key_addr, node, float(fanout * 8), level_base)
                slot = b.const(0.0)
                scan_done = b.pred()
                with b.loop() as scan:
                    # Early exit: stop at the first separator > query, or
                    # after the last key (rightmost child).
                    b.setp(scan_done, CmpOp.GE, slot, float(fanout - 1))
                    scan.break_if(scan_done)
                    key = b.ld(key_addr)
                    smaller = b.pred()
                    b.setp(smaller, CmpOp.LT, query, key)
                    scan.break_if(smaller)
                    b.add(slot, slot, 1.0)
                    b.add(key_addr, key_addr, 8.0)
                b.mad(node, node, float(fanout), slot)
                b.add(level, level, 1.0)
            b.st(b.addr(tid, base=base_out, scale=8), node)
        kernel = b.build()

        grid_dim = (self.num_queries + self.block_dim - 1) // self.block_dim

        def verifier(gpu_) -> bool:
            out = gpu_.memory.read_array(base_out, self.num_queries)
            expected = np.zeros(self.num_queries)
            for i, q in enumerate(queries):
                node = 0
                for level in range(depth):
                    keys = levels[level][node * fanout : (node + 1) * fanout]
                    slot = fanout - 1
                    for j in range(fanout - 1):
                        if q < keys[j]:
                            slot = j
                            break
                    node = node * fanout + slot
                expected[i] = node
            return bool(np.array_equal(out, expected))

        return LaunchSpec(
            kernel=kernel,
            grid_dim=grid_dim,
            block_dim=self.block_dim,
            buffers={"queries": base_queries, "out": base_out},
            verifier=verifier,
        )
