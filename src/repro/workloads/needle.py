"""needle — Needleman-Wunsch wavefront DP (Rodinia).

Each thread block fills one (T+1)x(T+1) dynamic-programming tile in 2T-1
anti-diagonal steps separated by block barriers; thread ``tx`` owns column
``tx`` and is predicated on/off as the diagonal sweeps across the tile.
Blocks hold a single warp (T = warp size), reproducing the paper's footnote
that needle lacks warp-level parallelism (one or two warps per block), which
makes CPL's criticality prediction trivially correct.
"""

from __future__ import annotations

import numpy as np

from ..isa.instructions import CmpOp, Special
from ..isa.kernel import KernelBuilder
from .base import LaunchSpec, Workload


class NeedleWorkload(Workload):
    name = "needle"
    category = "Sens"
    dataset = "16 independent 32x32 DP tiles (1024x1024 in the paper)"

    def __init__(
        self,
        seed: int = 19,
        scale: float = 1.0,
        tile: int = 32,
        num_tiles: int = 16,
        penalty: float = 10.0,
    ) -> None:
        super().__init__(seed=seed, scale=scale)
        self.tile = tile
        self.num_tiles = self._int(num_tiles)
        self.penalty = penalty

    def build(self, gpu) -> LaunchSpec:
        t = self.tile
        stride = t + 1
        num_tiles = self.num_tiles
        # Reference (substitution score) matrix per tile, plus the DP matrix
        # with its first row/column pre-initialized with gap penalties.
        refs = self.rng.randint(-4, 5, size=(num_tiles, t, t)).astype(np.float64)
        mats = np.zeros((num_tiles, stride, stride))
        for k in range(num_tiles):
            mats[k, 0, :] = -self.penalty * np.arange(stride)
            mats[k, :, 0] = -self.penalty * np.arange(stride)

        mem = gpu.memory
        base_ref = mem.alloc_array(refs)
        base_mat = mem.alloc_array(mats)

        b = KernelBuilder("needle")
        tx = b.sreg(Special.TID)
        cta = b.sreg(Special.CTAID)
        mat_base = b.reg()
        b.mad(mat_base, cta, float(stride * stride * 8), b.const(float(base_mat)))
        ref_base = b.reg()
        b.mad(ref_base, cta, float(t * t * 8), b.const(float(base_ref)))

        diag = b.const(0.0)
        sweep_done = b.pred()
        row = b.reg()
        rowclip = b.reg()
        guard = b.pred()
        cell = b.reg()
        col_off = b.reg()
        b.mul(col_off, tx, 8.0)
        with b.loop() as sweep:
            b.setp(sweep_done, CmpOp.GE, diag, float(2 * t - 1))
            sweep.break_if(sweep_done)
            # Thread tx computes cell (row, tx) with row = diag - tx, active
            # only while 0 <= row < t.  Guarded by predication (never
            # branches) so the barrier below stays warp-uniform.  Inactive
            # lanes keep a clipped row so their (unused) addresses stay in
            # bounds.
            b.sub(row, diag, tx)
            b.max_(rowclip, row, 0.0)
            b.min_(rowclip, rowclip, float(t - 1))
            # guard = (row >= 0) AND (row < t): equivalently row == rowclip.
            b.setp(guard, CmpOp.EQ, row, rowclip)
            # addr of m[row+1][tx+1]
            b.mad(cell, rowclip, float(stride * 8), mat_base)
            b.add(cell, cell, float((stride + 1) * 8))
            b.add(cell, cell, col_off)
            nw = b.ld(cell, offset=-(stride + 1) * 8, pred=guard)
            north = b.ld(cell, offset=-stride * 8, pred=guard)
            west = b.ld(cell, offset=-8, pred=guard)
            refa = b.reg()
            b.mad(refa, rowclip, float(t * 8), ref_base)
            b.add(refa, refa, col_off)
            score = b.ld(refa, pred=guard)
            best = b.reg()
            b.add(best, nw, score, pred=guard)
            cand = b.reg()
            b.sub(cand, north, self.penalty, pred=guard)
            b.max_(best, best, cand, pred=guard)
            b.sub(cand, west, self.penalty, pred=guard)
            b.max_(best, best, cand, pred=guard)
            b.st(cell, best, pred=guard)
            b.bar()
            b.add(diag, diag, 1.0)

        kernel = b.build()

        def verifier(gpu_) -> bool:
            out = gpu_.memory.read_array(base_mat, num_tiles * stride * stride)
            out = out.reshape(num_tiles, stride, stride)
            expected = mats.copy()
            for k in range(num_tiles):
                for i in range(1, stride):
                    for j in range(1, stride):
                        expected[k, i, j] = max(
                            expected[k, i - 1, j - 1] + refs[k, i - 1, j - 1],
                            expected[k, i - 1, j] - self.penalty,
                            expected[k, i, j - 1] - self.penalty,
                        )
            return bool(np.allclose(out, expected))

        return LaunchSpec(
            kernel=kernel,
            grid_dim=num_tiles,
            block_dim=t,
            buffers={"ref": base_ref, "mat": base_mat},
            verifier=verifier,
        )
