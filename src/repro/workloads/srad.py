"""srad_1 — speckle-reducing anisotropic diffusion, kernel 1 (Rodinia).

One thread per pixel: load the 4-neighbour stencil, compute the diffusion
coefficient (divergent boundary handling plus SFU math), then run a local
smoothing loop whose trip count depends on the pixel's contrast bucket —
the per-pixel iterative refinement that gives srad_1 the highest warp
execution-time disparity in the paper's Figure 1 (about 70%).
"""

from __future__ import annotations

import numpy as np

from ..isa.instructions import CmpOp, Special
from ..isa.kernel import KernelBuilder
from .base import LaunchSpec, Workload


class SradWorkload(Workload):
    name = "srad_1"
    category = "Sens"
    dataset = "64x64 image, contrast-driven refinement (502x458 in the paper)"

    def __init__(
        self,
        seed: int = 23,
        scale: float = 1.0,
        rows: int = 64,
        cols: int = 64,
        max_refine: int = 24,
        block_dim: int = 256,
    ) -> None:
        super().__init__(seed=seed, scale=scale)
        self.rows = self._int(rows)
        self.cols = cols
        self.max_refine = max_refine
        self.block_dim = block_dim

    def build(self, gpu) -> LaunchSpec:
        rows, cols = self.rows, self.cols
        n = rows * cols
        # Mix smooth regions with noisy patches so contrast varies by warp.
        image = self.rng.rand(rows, cols) * 0.05
        num_patches = max(1, n // 512)
        for _ in range(num_patches):
            r = self.rng.randint(0, rows - 8)
            c = self.rng.randint(0, cols - 8)
            image[r : r + 8, c : c + 8] += self.rng.rand(8, 8)
        flat = image.ravel()

        mem = gpu.memory
        base_img = mem.alloc_array(flat)
        base_coef = mem.alloc_array(np.zeros(n))
        base_out = mem.alloc_array(np.zeros(n))

        b = KernelBuilder("srad_1")
        # The laplacian accumulator below mirrors the real SRAD kernel's
        # instruction stream even though the simplified diffusion
        # coefficient only consumes the gradient term; the final
        # accumulation is therefore a (deliberate) dead write.
        b.waive_lint(
            "DF002",
            "laplacian statistic kept for instruction-stream fidelity; "
            "the simplified coefficient drops the term",
        )
        tid = b.sreg(Special.GTID)
        in_range = b.pred()
        b.setp(in_range, CmpOp.LT, tid, float(n))
        with b.if_then(in_range):
            # row = floor(tid / cols); col = tid - row * cols
            rowf = b.reg()
            b.mul(rowf, tid, 1.0 / cols)
            row = b.reg()
            b.floor(row, rowf)
            col = b.reg()
            b.mad(col, row, float(-cols), tid)
            # Clamped neighbour indices (replicate-edge boundary).
            rn = b.reg()
            b.max_(rn, b.sub(b.reg(), row, 1.0), 0.0)
            rs = b.reg()
            b.min_(rs, b.add(b.reg(), row, 1.0), float(rows - 1))
            cw = b.reg()
            b.max_(cw, b.sub(b.reg(), col, 1.0), 0.0)
            ce = b.reg()
            b.min_(ce, b.add(b.reg(), col, 1.0), float(cols - 1))

            def pixel(r, c):
                idx = b.reg()
                b.mad(idx, r, float(cols), c)
                return b.ld(b.addr(idx, base=base_img, scale=8))

            jc = pixel(row, col)
            jn = pixel(rn, col)
            js = pixel(rs, col)
            jw = pixel(row, cw)
            je = pixel(row, ce)

            # SRAD diffusion coefficient (simplified): gradient and
            # laplacian statistics around the pixel, squashed by exp.
            g2 = b.const(0.0)
            lap = b.const(0.0)
            for nb in (jn, js, jw, je):
                d = b.reg()
                b.sub(d, nb, jc)
                b.mad(g2, d, d, g2)
                b.add(lap, lap, d)
            safe_jc = b.reg()
            b.max_(safe_jc, jc, 1e-6)
            inv = b.reg()
            b.rcp(inv, safe_jc)
            num = b.reg()
            b.mul(num, g2, inv)
            b.mul(num, num, inv)
            coef = b.reg()
            ncoef = b.reg()
            b.neg(ncoef, num)
            b.exp(coef, ncoef)
            b.st(b.addr(tid, base=base_coef, scale=8), coef)

            # Contrast-dependent refinement: noisy pixels iterate longer.
            # iters = min(max_refine, floor(g2 * 8)) over the raw gradient.
            itersf = b.reg()
            b.mul(itersf, g2, 8.0)
            b.floor(itersf, itersf)
            b.min_(itersf, itersf, float(self.max_refine))
            acc = b.reg()
            b.mov(acc, jc)
            k = b.const(0.0)
            ref_done = b.pred()
            with b.loop() as refine:
                b.setp(ref_done, CmpOp.GE, k, itersf)
                refine.break_if(ref_done)
                # One damped Jacobi step toward the neighbour mean.
                mean = b.reg()
                b.add(mean, jn, js)
                b.add(mean, mean, jw)
                b.add(mean, mean, je)
                b.mul(mean, mean, 0.25)
                d = b.reg()
                b.sub(d, mean, acc)
                b.mad(acc, d, 0.25, acc)
                b.add(k, k, 1.0)
            b.st(b.addr(tid, base=base_out, scale=8), acc)
        kernel = b.build()

        grid_dim = (n + self.block_dim - 1) // self.block_dim

        def verifier(gpu_) -> bool:
            coef = gpu_.memory.read_array(base_coef, n).reshape(rows, cols)
            out = gpu_.memory.read_array(base_out, n).reshape(rows, cols)
            padded_n = np.vstack([image[:1], image[:-1]])
            padded_s = np.vstack([image[1:], image[-1:]])
            padded_w = np.hstack([image[:, :1], image[:, :-1]])
            padded_e = np.hstack([image[:, 1:], image[:, -1:]])
            dn, ds = padded_n - image, padded_s - image
            dw, de = padded_w - image, padded_e - image
            g2 = dn**2 + ds**2 + dw**2 + de**2
            safe = np.maximum(image, 1e-6)
            expected_coef = np.exp(-(g2 / safe / safe))
            iters = np.minimum(np.floor(g2 * 8.0), self.max_refine)
            mean = 0.25 * (padded_n + padded_s + padded_w + padded_e)
            acc = image.copy()
            for step in range(int(iters.max())):
                active = iters > step
                acc = np.where(active, acc + 0.25 * (mean - acc), acc)
            return bool(
                np.allclose(coef, expected_coef, atol=1e-9)
                and np.allclose(out, acc, atol=1e-9)
            )

        return LaunchSpec(
            kernel=kernel,
            grid_dim=grid_dim,
            block_dim=self.block_dim,
            buffers={"image": base_img, "coef": base_coef, "out": base_out},
            verifier=verifier,
        )
