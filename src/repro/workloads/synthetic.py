"""Synthetic microbenchmarks isolating one criticality source each.

Used by the Figure 2/4-style decomposition experiments and by unit tests
that need a workload with a known, controllable criticality structure:

* :class:`ImbalanceWorkload` — per-warp loop trip counts from an input
  array; pure workload imbalance, no divergence, no memory pressure.
* :class:`DivergenceWorkload` — lane-parity if/else with asymmetric path
  lengths; pure branch-divergence-driven instruction disparity.
* :class:`MemStressWorkload` — strided streaming loads sized to overflow
  the L1; pure memory-subsystem criticality.
"""

from __future__ import annotations

import numpy as np

from ..isa.instructions import CmpOp, Special
from ..isa.kernel import KernelBuilder
from .base import LaunchSpec, Workload


class ImbalanceWorkload(Workload):
    """Each warp spins a compute loop whose trip count comes from memory."""

    name = "synthetic_imbalance"
    category = "Sens"
    dataset = "per-warp trip counts 4..64"

    def __init__(self, seed: int = 3, scale: float = 1.0, num_threads: int = 512,
                 block_dim: int = 256, max_trips: int = 64) -> None:
        super().__init__(seed=seed, scale=scale)
        self.num_threads = self._int(num_threads)
        self.block_dim = block_dim
        self.max_trips = max_trips

    def build(self, gpu) -> LaunchSpec:
        n = self.num_threads
        warp = 32
        # Same trip count for all lanes of a warp: imbalance is *between*
        # warps, with no intra-warp divergence.
        warp_trips = self.rng.randint(4, self.max_trips + 1, size=(n + warp - 1) // warp)
        trips = np.repeat(warp_trips, warp)[:n].astype(np.float64)

        mem = gpu.memory
        base_trips = mem.alloc_array(trips)
        base_out = mem.alloc_array(np.zeros(n))

        b = KernelBuilder("synthetic_imbalance")
        tid = b.sreg(Special.GTID)
        in_range = b.pred()
        b.setp(in_range, CmpOp.LT, tid, float(n))
        with b.if_then(in_range):
            limit = b.ld(b.addr(tid, base=base_trips, scale=8))
            acc = b.const(0.0)
            i = b.const(0.0)
            done = b.pred()
            with b.loop() as spin:
                b.setp(done, CmpOp.GE, i, limit)
                spin.break_if(done)
                b.mad(acc, i, 2.0, acc)
                b.add(i, i, 1.0)
            b.st(b.addr(tid, base=base_out, scale=8), acc)
        kernel = b.build()

        def verifier(gpu_) -> bool:
            out = gpu_.memory.read_array(base_out, n)
            expected = np.array([sum(2 * i for i in range(int(t))) for t in trips])
            return bool(np.array_equal(out, expected))

        return LaunchSpec(
            kernel=kernel,
            grid_dim=(n + self.block_dim - 1) // self.block_dim,
            block_dim=self.block_dim,
            buffers={"trips": base_trips, "out": base_out},
            verifier=verifier,
        )


class DivergenceWorkload(Workload):
    """Odd lanes take a long path, even lanes a short one."""

    name = "synthetic_divergence"
    category = "Sens"
    dataset = "lane-parity if/else, 24-vs-2 instruction paths"

    def __init__(self, seed: int = 5, scale: float = 1.0, num_threads: int = 512,
                 block_dim: int = 256, long_path: int = 24) -> None:
        super().__init__(seed=seed, scale=scale)
        self.num_threads = self._int(num_threads)
        self.block_dim = block_dim
        self.long_path = long_path

    def build(self, gpu) -> LaunchSpec:
        n = self.num_threads
        mem = gpu.memory
        base_out = mem.alloc_array(np.zeros(n))

        b = KernelBuilder("synthetic_divergence")
        tid = b.sreg(Special.GTID)
        lane = b.sreg(Special.LANEID)
        in_range = b.pred()
        b.setp(in_range, CmpOp.LT, tid, float(n))
        with b.if_then(in_range):
            half = b.reg()
            b.mul(half, lane, 0.5)
            b.floor(half, half)
            parity = b.reg()
            b.mad(parity, half, -2.0, lane)
            odd = b.pred()
            b.setp(odd, CmpOp.GT, parity, 0.5)
            acc = b.const(0.0)
            frame = b.begin_if(odd)
            for step in range(self.long_path):
                b.add(acc, acc, float(step + 1))
            b.begin_else(frame)
            b.add(acc, acc, 1000.0)
            b.end_if(frame)
            b.st(b.addr(tid, base=base_out, scale=8), acc)
        kernel = b.build()

        long_sum = float(sum(range(1, self.long_path + 1)))

        def verifier(gpu_) -> bool:
            out = gpu_.memory.read_array(base_out, n)
            lanes = np.arange(n) % 32
            expected = np.where(lanes % 2 == 1, long_sum, 1000.0)
            return bool(np.array_equal(out, expected))

        return LaunchSpec(
            kernel=kernel,
            grid_dim=(n + self.block_dim - 1) // self.block_dim,
            block_dim=self.block_dim,
            buffers={"out": base_out},
            verifier=verifier,
        )


class MemStressWorkload(Workload):
    """Streaming strided loads over a buffer much larger than the L1."""

    name = "synthetic_memstress"
    category = "Sens"
    dataset = "512KB stream, 16 passes"

    def __init__(self, seed: int = 9, scale: float = 1.0, num_threads: int = 512,
                 block_dim: int = 256, passes: int = 16) -> None:
        super().__init__(seed=seed, scale=scale)
        self.num_threads = self._int(num_threads)
        self.block_dim = block_dim
        self.passes = passes

    def build(self, gpu) -> LaunchSpec:
        n = self.num_threads
        words = n * self.passes
        data = self.rng.rand(words)
        mem = gpu.memory
        base_data = mem.alloc_array(data)
        base_out = mem.alloc_array(np.zeros(n))

        b = KernelBuilder("synthetic_memstress")
        tid = b.sreg(Special.GTID)
        in_range = b.pred()
        b.setp(in_range, CmpOp.LT, tid, float(n))
        with b.if_then(in_range):
            acc = b.const(0.0)
            p = b.const(0.0)
            addr = b.addr(tid, base=base_data, scale=8)
            done = b.pred()
            with b.loop() as sweep:
                b.setp(done, CmpOp.GE, p, float(self.passes))
                sweep.break_if(done)
                x = b.ld(addr)
                b.add(acc, acc, x)
                b.add(addr, addr, float(n * 8))
                b.add(p, p, 1.0)
            b.st(b.addr(tid, base=base_out, scale=8), acc)
        kernel = b.build()

        def verifier(gpu_) -> bool:
            out = gpu_.memory.read_array(base_out, n)
            expected = data.reshape(self.passes, n).sum(axis=0)
            return bool(np.allclose(out, expected))

        return LaunchSpec(
            kernel=kernel,
            grid_dim=(n + self.block_dim - 1) // self.block_dim,
            block_dim=self.block_dim,
            buffers={"data": base_data, "out": base_out},
            verifier=verifier,
        )
