"""backprop — neural-network layer forward pass (Rodinia).

One thread per output unit: a fixed-length dot product of the input vector
(broadcast, cacheable) with a streamed weight column, squashed by a
sigmoid.  Work is perfectly uniform and the weight matrix has no reuse, so
execution-time disparity is low and the L1 barely matters — a Non-sens
application in Table 2.
"""

from __future__ import annotations

import numpy as np

from ..isa.instructions import CmpOp, Special
from ..isa.kernel import KernelBuilder
from .base import LaunchSpec, Workload


class BackpropWorkload(Workload):
    name = "backprop"
    category = "Non-sens"
    dataset = "64-input layer, 2048 output units (65536 nodes in the paper)"

    def __init__(
        self,
        seed: int = 31,
        scale: float = 1.0,
        num_inputs: int = 64,
        num_outputs: int = 2048,
        block_dim: int = 256,
    ) -> None:
        super().__init__(seed=seed, scale=scale)
        self.num_inputs = num_inputs
        self.num_outputs = self._int(num_outputs)
        self.block_dim = block_dim

    def build(self, gpu) -> LaunchSpec:
        n_in, n_out = self.num_inputs, self.num_outputs
        inputs = self.rng.rand(n_in) - 0.5
        weights = (self.rng.rand(n_in, n_out) - 0.5) * 0.25  # input-major

        mem = gpu.memory
        base_in = mem.alloc_array(inputs)
        base_w = mem.alloc_array(weights)
        base_out = mem.alloc_array(np.zeros(n_out))

        b = KernelBuilder("backprop")
        tid = b.sreg(Special.GTID)
        in_range = b.pred()
        b.setp(in_range, CmpOp.LT, tid, float(n_out))
        with b.if_then(in_range):
            acc = b.const(0.0)
            i = b.const(0.0)
            w_addr = b.addr(tid, base=base_w, scale=8)
            in_addr = b.const(float(base_in))
            done = b.pred()
            with b.loop() as dot:
                b.setp(done, CmpOp.GE, i, float(n_in))
                dot.break_if(done)
                x = b.ld(in_addr)
                w = b.ld(w_addr)
                b.mad(acc, x, w, acc)
                b.add(in_addr, in_addr, 8.0)
                b.add(w_addr, w_addr, float(n_out * 8))
                b.add(i, i, 1.0)
            # sigmoid(acc) = 1 / (1 + exp(-acc))
            neg = b.reg()
            b.neg(neg, acc)
            e = b.reg()
            b.exp(e, neg)
            denom = b.reg()
            b.add(denom, e, 1.0)
            sig = b.reg()
            b.rcp(sig, denom)
            b.st(b.addr(tid, base=base_out, scale=8), sig)
        kernel = b.build()

        grid_dim = (n_out + self.block_dim - 1) // self.block_dim

        def verifier(gpu_) -> bool:
            out = gpu_.memory.read_array(base_out, n_out)
            expected = 1.0 / (1.0 + np.exp(-(inputs @ weights)))
            return bool(np.allclose(out, expected, atol=1e-9))

        return LaunchSpec(
            kernel=kernel,
            grid_dim=grid_dim,
            block_dim=self.block_dim,
            buffers={"inputs": base_in, "weights": base_w, "out": base_out},
            verifier=verifier,
        )
