"""tpacf — two-point angular correlation function (Parboil).

One thread per galaxy: a fixed loop over a reference set computing angular
dot products, binning each pair into a per-thread histogram row by
logarithmic angle.  Heavy SFU math with uniform trip counts — Non-sens in
Table 2.
"""

from __future__ import annotations

import numpy as np

from ..isa.instructions import CmpOp, Special
from ..isa.kernel import KernelBuilder
from .base import LaunchSpec, Workload


class TpacfWorkload(Workload):
    name = "tpacf"
    category = "Non-sens"
    dataset = "512 galaxies x 64 references, 8 bins (487x100 in the paper)"

    def __init__(
        self,
        seed: int = 43,
        scale: float = 1.0,
        num_galaxies: int = 512,
        num_refs: int = 64,
        num_bins: int = 8,
        block_dim: int = 128,
    ) -> None:
        super().__init__(seed=seed, scale=scale)
        self.num_galaxies = self._int(num_galaxies)
        self.num_refs = num_refs
        self.num_bins = num_bins
        self.block_dim = block_dim

    @staticmethod
    def _unit_vectors(rng, count):
        v = rng.randn(count, 3)
        return v / np.linalg.norm(v, axis=1, keepdims=True)

    def build(self, gpu) -> LaunchSpec:
        n, m, bins = self.num_galaxies, self.num_refs, self.num_bins
        galaxies = self._unit_vectors(self.rng, n)  # (n, 3) point-major
        refs = self._unit_vectors(self.rng, m)  # (m, 3)

        mem = gpu.memory
        base_gal = mem.alloc_array(galaxies)
        base_ref = mem.alloc_array(refs)
        base_hist = mem.alloc_array(np.zeros(n * bins))

        b = KernelBuilder("tpacf")
        # Point-major (x, y, z) galaxy records give every lane a 24-byte
        # stride: deliberately coalescing-hostile, exactly like the real
        # TPACF AoS layout the paper's memory-divergence numbers rely on.
        b.waive_lint(
            "MEM001",
            "AoS point-major layout is the workload's intended "
            "stride-24 access pattern",
        )
        tid = b.sreg(Special.GTID)
        in_range = b.pred()
        b.setp(in_range, CmpOp.LT, tid, float(n))
        with b.if_then(in_range):
            gal_addr = b.reg()
            b.mad(gal_addr, tid, 24.0, b.const(float(base_gal)))
            gx = b.ld(gal_addr)
            gy = b.ld(gal_addr, offset=8)
            gz = b.ld(gal_addr, offset=16)
            hist_base = b.reg()
            b.mad(hist_base, tid, float(bins * 8), b.const(float(base_hist)))
            j = b.const(0.0)
            r_addr = b.const(float(base_ref))
            done = b.pred()
            with b.loop() as pairs:
                b.setp(done, CmpOp.GE, j, float(m))
                pairs.break_if(done)
                rx = b.ld(r_addr)
                ry = b.ld(r_addr, offset=8)
                rz = b.ld(r_addr, offset=16)
                dot = b.reg()
                b.mul(dot, gx, rx)
                b.mad(dot, gy, ry, dot)
                b.mad(dot, gz, rz, dot)
                # angle bucket: bin = floor(bins * (1 - dot) / 2), clamped.
                # ang = 1 - dot (immediate-first sub is not encodable, so
                # negate then add).
                ang = b.reg()
                b.neg(ang, dot)
                b.add(ang, ang, 1.0)
                binf = b.reg()
                b.mul(binf, ang, bins / 2.0)
                b.floor(binf, binf)
                b.min_(binf, binf, float(bins - 1))
                b.max_(binf, binf, 0.0)
                slot = b.reg()
                b.mad(slot, binf, 8.0, hist_base)
                count = b.ld(slot)
                b.add(count, count, 1.0)
                b.st(slot, count)
                b.add(r_addr, r_addr, 24.0)
                b.add(j, j, 1.0)
        kernel = b.build()

        grid_dim = (n + self.block_dim - 1) // self.block_dim

        def verifier(gpu_) -> bool:
            out = gpu_.memory.read_array(base_hist, n * bins).reshape(n, bins)
            dots = galaxies @ refs.T  # (n, m)
            binned = np.floor((1.0 - dots) * (bins / 2.0)).clip(0, bins - 1)
            expected = np.zeros((n, bins))
            for bin_id in range(bins):
                expected[:, bin_id] = (binned == bin_id).sum(axis=1)
            return bool(np.array_equal(out, expected))

        return LaunchSpec(
            kernel=kernel,
            grid_dim=grid_dim,
            block_dim=self.block_dim,
            buffers={"galaxies": base_gal, "refs": base_ref, "hist": base_hist},
            verifier=verifier,
        )
