"""heartwall — iterative template tracking on an image (Rodinia).

Each thread tracks one sample point: it repeatedly evaluates a
sum-of-squared-differences between a small template and the image window
around its current estimate, then moves the estimate by the sign of the
error gradient until the match converges or an iteration cap is reached.
Convergence speed depends on the local image content, so warps need very
different iteration counts — the workload-imbalance criticality source with
a large kernel body (the paper notes CPL outperforms oracle CAWS on large
kernels like heartwall).
"""

from __future__ import annotations

import numpy as np

from ..isa.instructions import CmpOp, Special
from ..isa.kernel import KernelBuilder
from .base import LaunchSpec, Workload


class HeartwallWorkload(Workload):
    name = "heartwall"
    category = "Sens"
    dataset = "4096-pixel frame, 512 tracking points (656x744 AVI in the paper)"

    def __init__(
        self,
        seed: int = 17,
        scale: float = 1.0,
        image_size: int = 4096,
        num_points: int = 512,
        template_size: int = 8,
        max_iters: int = 24,
        block_dim: int = 128,
    ) -> None:
        super().__init__(seed=seed, scale=scale)
        self.image_size = self._int(image_size)
        self.num_points = self._int(num_points)
        self.template_size = template_size
        self.max_iters = max_iters
        self.block_dim = block_dim

    def build(self, gpu) -> LaunchSpec:
        n, t = self.num_points, self.template_size
        image = self.rng.rand(self.image_size)
        template = self.rng.rand(t)
        # Start each point somewhere with room to walk in both directions.
        starts = self.rng.randint(
            t, self.image_size - t - self.max_iters - 1, size=n
        ).astype(np.float64)
        # Plant perfect template matches at varying distances from the
        # starts, so convergence (and hence iteration count) varies widely.
        offsets = self.rng.randint(0, self.max_iters, size=n)
        for i in range(n):
            target = int(starts[i]) + int(offsets[i])
            image[target : target + t] = template

        mem = gpu.memory
        base_image = mem.alloc_array(image)
        base_template = mem.alloc_array(template)
        base_starts = mem.alloc_array(starts)
        base_pos = mem.alloc_array(np.zeros(n))
        base_iters = mem.alloc_array(np.zeros(n))

        b = KernelBuilder("heartwall")
        tid = b.sreg(Special.GTID)
        in_range = b.pred()
        b.setp(in_range, CmpOp.LT, tid, float(n))
        with b.if_then(in_range):
            pos = b.reg()
            b.mov(pos, b.ld(b.addr(tid, base=base_starts, scale=8)))
            it = b.const(0.0)
            done = b.pred()
            hit_cap = b.pred()
            with b.loop() as track:
                b.setp(hit_cap, CmpOp.GE, it, float(self.max_iters))
                track.break_if(hit_cap)
                # SSD between template and image window at `pos`.
                ssd = b.const(0.0)
                j = b.const(0.0)
                img_addr = b.addr(pos, base=base_image, scale=8)
                tpl_addr = b.const(float(base_template))
                scan_done = b.pred()
                with b.loop() as scan:
                    b.setp(scan_done, CmpOp.GE, j, float(t))
                    scan.break_if(scan_done)
                    pix = b.ld(img_addr)
                    ref = b.ld(tpl_addr)
                    diff = b.reg()
                    b.sub(diff, pix, ref)
                    b.mad(ssd, diff, diff, ssd)
                    b.add(img_addr, img_addr, 8.0)
                    b.add(tpl_addr, tpl_addr, 8.0)
                    b.add(j, j, 1.0)
                b.setp(done, CmpOp.LT, ssd, 1e-12)
                track.break_if(done)
                # Not converged: step right towards the planted match.
                b.add(pos, pos, 1.0)
                b.add(it, it, 1.0)
            b.st(b.addr(tid, base=base_pos, scale=8), pos)
            b.st(b.addr(tid, base=base_iters, scale=8), it)
        kernel = b.build()

        grid_dim = (n + self.block_dim - 1) // self.block_dim

        def verifier(gpu_) -> bool:
            pos = gpu_.memory.read_array(base_pos, n)
            iters = gpu_.memory.read_array(base_iters, n)
            # Walk the final image exactly as the kernel does: stop at the
            # first exact template match (overlapping plants may create a
            # match earlier than this thread's own).
            expected_pos = np.zeros(n)
            expected_iters = np.zeros(n)
            for i in range(n):
                p = int(starts[i])
                steps = 0
                while steps < self.max_iters:
                    if np.array_equal(image[p : p + t], template):
                        break
                    p += 1
                    steps += 1
                expected_pos[i] = p
                expected_iters[i] = steps
            return bool(
                np.array_equal(pos, expected_pos)
                and np.array_equal(iters, expected_iters)
            )

        return LaunchSpec(
            kernel=kernel,
            grid_dim=grid_dim,
            block_dim=self.block_dim,
            buffers={
                "image": base_image,
                "template": base_template,
                "pos": base_pos,
                "iters": base_iters,
            },
            verifier=verifier,
        )
