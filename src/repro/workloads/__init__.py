"""Benchmark workloads (Table 2 of the paper).

Each workload re-implements the criticality-relevant structure of its
Rodinia/Parboil namesake as a kernel on the simulator's ISA, together with a
seeded synthetic input generator and a NumPy reference implementation used
to verify functional correctness.
"""

from .base import LaunchSpec, Workload
from .registry import (
    NON_SENS_WORKLOADS,
    SENS_WORKLOADS,
    WORKLOADS,
    make_workload,
    workload_names,
)

__all__ = [
    "LaunchSpec",
    "NON_SENS_WORKLOADS",
    "SENS_WORKLOADS",
    "WORKLOADS",
    "Workload",
    "make_workload",
    "workload_names",
]
