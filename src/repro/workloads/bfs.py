"""bfs — breadth-first search frontier expansion (Rodinia).

The paper's running example (Algorithm 1): every thread owns a frontier
node and walks its adjacency list, taking the child path for unvisited
neighbours and the non-child path otherwise.  Warp criticality arises from

* **workload imbalance** — a power-law degree distribution gives warps
  different trip counts (Fig 2a); the ``balanced=True`` variant uses a
  constant degree to isolate the next effect;
* **diverging branches** — the child/non-child if-else bodies differ in
  length, so dynamic instruction counts diverge even with equal degrees
  (Fig 2b);
* **irregular memory** — neighbour ids and the visited array are scattered,
  so accesses coalesce poorly and hammer the L1 (Fig 2c).
"""

from __future__ import annotations

import numpy as np

from ..isa.instructions import CmpOp, Special
from ..isa.kernel import KernelBuilder
from .base import LaunchSpec, Workload


class BFSWorkload(Workload):
    name = "bfs"
    category = "Sens"
    dataset = "2048-node power-law graph (65536 nodes in the paper, scaled)"

    def __init__(
        self,
        seed: int = 7,
        scale: float = 1.0,
        balanced: bool = False,
        num_nodes: int = 2048,
        avg_degree: int = 8,
        block_dim: int = 256,
    ) -> None:
        super().__init__(seed=seed, scale=scale)
        self.balanced = balanced
        self.num_nodes = self._int(num_nodes)
        self.avg_degree = avg_degree
        self.block_dim = block_dim

    # ------------------------------------------------------------------
    def _make_graph(self):
        n = self.num_nodes
        if self.balanced:
            degrees = np.full(n, self.avg_degree, dtype=np.int64)
        else:
            # Power-law-ish degrees with the same mean as the balanced case.
            raw = self.rng.zipf(1.6, size=n).astype(np.int64)
            degrees = np.clip(raw, 1, 8 * self.avg_degree)
            scale = self.avg_degree / max(1.0, degrees.mean())
            degrees = np.maximum(1, (degrees * scale).astype(np.int64))
        row_ptr = np.zeros(n + 1, dtype=np.int64)
        row_ptr[1:] = np.cumsum(degrees)
        col_idx = self.rng.randint(0, n, size=int(row_ptr[-1])).astype(np.int64)
        return row_ptr, col_idx

    def build(self, gpu) -> LaunchSpec:
        n = self.num_nodes
        row_ptr, col_idx = self._make_graph()
        # Frontier = one quarter of the nodes; they are already visited.
        frontier = (self.rng.rand(n) < 0.25).astype(np.float64)
        visited = frontier.copy()

        mem = gpu.memory
        base_row = mem.alloc_array(row_ptr.astype(np.float64))
        base_col = mem.alloc_array(col_idx.astype(np.float64))
        base_frontier = mem.alloc_array(frontier)
        base_visited = mem.alloc_array(visited)
        base_cost = mem.alloc_array(np.zeros(n))
        base_updating = mem.alloc_array(np.zeros(n))
        base_nchild = mem.alloc_array(np.zeros(n))

        b = KernelBuilder("bfs")
        tid = b.sreg(Special.GTID)
        in_range = b.pred()
        b.setp(in_range, CmpOp.LT, tid, float(n))
        with b.if_then(in_range):
            fr = b.ld(b.addr(tid, base=base_frontier, scale=8))
            is_frontier = b.pred()
            b.setp(is_frontier, CmpOp.GT, fr, 0.5)
            with b.if_then(is_frontier):
                start = b.ld(b.addr(tid, base=base_row, scale=8))
                end = b.ld(b.addr(tid, base=base_row, scale=8, ), offset=8)
                nchild = b.const(0.0)
                nnonchild = b.const(0.0)
                j = b.reg()
                b.mov(j, start)
                done = b.pred()
                with b.loop() as lp:
                    b.setp(done, CmpOp.GE, j, end)
                    lp.break_if(done)
                    nb = b.ld(b.addr(j, base=base_col, scale=8))
                    vis = b.ld(b.addr(nb, base=base_visited, scale=8))
                    unvisited = b.pred()
                    b.setp(unvisited, CmpOp.LT, vis, 0.5)
                    frame = b.begin_if(unvisited)
                    # Child path (longer): set cost, mark updating, count.
                    one = b.const(1.0)
                    b.st(b.addr(nb, base=base_cost, scale=8), one)
                    b.st(b.addr(nb, base=base_updating, scale=8), one)
                    b.add(nchild, nchild, 1.0)
                    b.begin_else(frame)
                    # Non-child path (shorter).
                    b.add(nnonchild, nnonchild, 1.0)
                    b.end_if(frame)
                    b.add(j, j, 1.0)
                b.st(b.addr(tid, base=base_nchild, scale=8), nchild)
        kernel = b.build()

        grid_dim = (n + self.block_dim - 1) // self.block_dim

        def verifier(gpu_) -> bool:
            updating = gpu_.memory.read_array(base_updating, n)
            cost = gpu_.memory.read_array(base_cost, n)
            expected = np.zeros(n)
            for node in np.nonzero(frontier > 0.5)[0]:
                for edge in range(int(row_ptr[node]), int(row_ptr[node + 1])):
                    neighbour = int(col_idx[edge])
                    if visited[neighbour] < 0.5:
                        expected[neighbour] = 1.0
            return bool(
                np.array_equal(updating, expected) and np.array_equal(cost, expected)
            )

        return LaunchSpec(
            kernel=kernel,
            grid_dim=grid_dim,
            block_dim=self.block_dim,
            buffers={
                "row_ptr": base_row,
                "col_idx": base_col,
                "frontier": base_frontier,
                "visited": base_visited,
                "cost": base_cost,
                "updating": base_updating,
                "nchild": base_nchild,
            },
            verifier=verifier,
        )
