"""Critical Cache Block Predictor — CCBP (paper Section 3.3).

A simple array of 2-bit saturating counters indexed by the CACP signature
(xor of the low 8 bits of the inserting PC and of the memory address
region).  A counter above threshold predicts the incoming block will be
reused by a critical warp and routes it to the critical cache partition.

Training (Algorithm 4): increment on a critical-warp hit; decrement on
evicting a block that sat in the critical partition but only saw
non-critical reuse (a wrong "critical" routing).
"""

from __future__ import annotations


class CriticalCacheBlockPredictor:
    """2-bit saturating counter table keyed by signature."""

    def __init__(self, table_size: int = 256, threshold: int = 1, counter_max: int = 3,
                 initial: int = 1) -> None:
        self.table = [initial] * table_size
        self.threshold = threshold
        self.counter_max = counter_max
        self._table_size = table_size

    def _index(self, signature: int) -> int:
        return signature % self._table_size

    def predicts_critical(self, signature: int) -> bool:
        """Should a block with this signature go to the critical partition?"""
        return self.table[self._index(signature)] > self.threshold

    def train_critical_reuse(self, signature: int) -> None:
        """A critical warp hit a block with this signature."""
        idx = self._index(signature)
        if self.table[idx] < self.counter_max:
            self.table[idx] += 1

    def train_wrong_routing(self, signature: int) -> None:
        """A critical-partition block was evicted with only non-critical reuse."""
        idx = self._index(signature)
        if self.table[idx] > 0:
            self.table[idx] -= 1
