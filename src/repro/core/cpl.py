"""Criticality Prediction Logic — CPL (paper Section 3.1).

Maintains one criticality counter per warp (Eq. 1):

    nCriticality = nInst * CPI_avg + nStall

* ``nInst`` accumulates the *inferred remaining path length* at every
  conditional branch (Algorithm 2): when a warp's branch outcome commits it
  to a path, the size of that path (from the branch's PC, target PC, and
  reconvergence PC) is added; divergent warps, which must execute both
  paths, accumulate both.  Every committed instruction decrements the term,
  balancing announced work against completed work, so warps that still owe
  more instructions rank higher.
* ``nStall`` accumulates the stall cycles observed between two consecutive
  issues of the warp (Algorithm 3) — memory latency, scoreboard hazards, and
  scheduler-induced wait all land here.
* ``CPI_avg`` is the warp's measured average cycles-per-instruction, scaling
  the instruction term into cycle units.

The scheduler (gCAWS) orders warps by the counter; CACP uses the derived
binary verdict :meth:`CriticalityPredictor.is_critical` (counter above the
block median — the paper's "slower than 50% of warps" definition).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from ..isa.instructions import Instruction
from ..obs.events import Ev
from ..simt.warp import Warp

_EV_CPL_DELTA = int(Ev.CPL_DELTA)


class CriticalityPredictor:
    """Tracks per-warp criticality counters for one SM."""

    def __init__(self, update_period: int = 64) -> None:
        #: How often (in issues per block) the block-median threshold used by
        #: :meth:`is_critical` is refreshed.
        self.update_period = update_period
        self._block_threshold: Dict[int, float] = {}
        self._block_issue_count: Dict[int, int] = {}
        #: Event bus (``repro.obs``) or ``None``; set by ``wire_sms``.
        self.obs = None
        #: SM id stamped on emitted :data:`~repro.obs.events.Ev.CPL_DELTA`
        #: records (the predictor itself is per-SM but does not know it).
        self.obs_owner = -1

    # ------------------------------------------------------------------
    # Counter updates
    # ------------------------------------------------------------------
    def on_branch(
        self,
        warp: Warp,
        inst: Instruction,
        diverged: bool,
        all_taken: bool,
        now: float = 0.0,
    ) -> None:
        """Account the inferred path length of a resolved conditional branch.

        ``all_taken`` is only meaningful for uniform branches.  Path sizes
        are derived from static PCs exactly as Algorithm 2 infers them:
        fall-through path = [pc+1, target), taken path = [target, reconv),
        divergent = both.  ``now`` stamps the emitted CPL_DELTA event and
        has no effect on the counter itself.
        """
        if inst.pred is None or inst.reconv_pc < 0:
            return  # unconditional back edge: no disparity information
        fallthrough_len = max(0, inst.target_pc - inst.pc - 1)
        taken_len = max(0, inst.reconv_pc - inst.target_pc)
        if diverged:
            delta = fallthrough_len + taken_len
        elif all_taken:
            delta = taken_len
        else:
            delta = fallthrough_len
        warp.cpl_inst_disparity += delta
        self._refresh(warp)
        if self.obs is not None:
            self.obs.emit((_EV_CPL_DELTA, now, self.obs_owner,
                           warp.block.block_id, warp.warp_id_in_block,
                           delta, warp.criticality))

    def on_issue(self, warp: Warp, stall_cycles: float) -> None:
        """Per-issue update: commit-decrement plus observed stall latency."""
        if warp.cpl_inst_disparity > 0:
            warp.cpl_inst_disparity -= 1
        if stall_cycles > 0.0:
            warp.cpl_stall += stall_cycles
        self._refresh(warp)
        block_id = warp.block.block_id
        count = self._block_issue_count.get(block_id, 0) + 1
        self._block_issue_count[block_id] = count
        if count % self.update_period == 0:
            self._refresh_block_threshold(warp.block)

    def _refresh(self, warp: Warp) -> None:
        cpi = self._cpi(warp)
        warp.criticality = warp.cpl_inst_disparity * cpi + warp.cpl_stall

    @staticmethod
    def _cpi(warp: Warp) -> float:
        issued = warp.issued_instructions
        if issued <= 0:
            return 1.0
        elapsed = warp.last_issue_cycle - warp.start_cycle
        if elapsed < 1.0:
            elapsed = 1.0
        cpi = elapsed / issued
        return cpi if cpi > 1.0 else 1.0

    # ------------------------------------------------------------------
    # Criticality verdicts
    # ------------------------------------------------------------------
    def _refresh_block_threshold(self, block) -> None:
        """Recompute and latch per-warp slow-warp flags for ``block``.

        Flags are sticky between refreshes: CACP needs a verdict that is
        stable over a data-reuse window, not one that flaps with every
        counter update around the block median.
        """
        live = [w for w in block.warps if not w.finished]
        if not live:
            self._block_threshold[block.block_id] = 0.0
            return
        ordered = sorted(w.criticality for w in live)
        threshold = ordered[len(ordered) // 2]
        self._block_threshold[block.block_id] = threshold
        for warp in live:
            warp.is_critical_flag = warp.criticality >= threshold

    def is_critical(self, warp: Warp) -> bool:
        """Latched verdict: does the warp rank in the slower half of its block?"""
        if warp.block.block_id not in self._block_threshold:
            self._refresh_block_threshold(warp.block)
        return warp.is_critical_flag

    def rank_in_block(self, warp: Warp) -> int:
        """Criticality rank within the block (0 = least critical).

        Used by the Figure 12 priority-over-time analysis.
        """
        peers = [w.criticality for w in warp.block.warps if not w.finished]
        return sum(1 for c in peers if c < warp.criticality)

    def next_event_time(self, now: float) -> float:
        """Always ``inf``: CPL quanta are *issue-indexed*, not timed.

        The block-threshold refresh fires every ``update_period`` *issues*
        (``count % update_period``), so it can only happen during an SM tick
        that issues an instruction — an event the SM's own wake time already
        covers.  The predictor never creates a wake-up of its own, which is
        why the time-skipping clock (:mod:`repro.gpu.clock`) need not heap it.
        """
        return math.inf

    def forget_block(self, block_id: int) -> None:
        """Drop cached state for a committed block."""
        self._block_threshold.pop(block_id, None)
        self._block_issue_count.pop(block_id, None)
