"""Criticality-Aware Cache Prioritization — CACP (paper Section 3.3, Alg. 4).

CACP separates latency-critical from non-critical cache lines in the L1
data cache.  On a fill, the line is classified as critical when the
Critical Cache Block Predictor (CCBP) predicts its signature critical or
the requesting warp is itself critical; a modified SHiP predictor picks the
SRRIP insertion position so only lines with expected reuse are retained.
Hits and evictions train both predictors per Algorithm 4.

Three partition modes are provided:

* ``"priority"`` (default) — logical partitioning: critical lines insert at
  a protected RRPV and non-critical lines at SHiP-guided (long/distant)
  RRPV, with victim selection over the whole set.  Critical data ages out
  last without giving up any capacity.
* ``"static"`` — the paper's strict way partition (8 of 16 ways reserved).
* ``"dynamic"`` — strict way partition whose boundary retunes at runtime
  from per-partition hit shares (the UCP-style extension the paper cites
  [31] as an integration path).

The strict modes reproduce the paper's hardware proposal exactly; the
priority mode is the variant that wins at this simulator's scale (16 warps
per SM rather than 48, so fill-side capacity restrictions bite harder than
inter-warp interference).  The ablation benches compare all three.
"""

from __future__ import annotations

import math
from typing import List, Tuple

from ..memory.replacement import RRPV_MAX, RRPV_NEAR, ReplacementPolicy
from ..memory.request import MemRequest
from ..obs.events import Ev
from .ccbp import CriticalCacheBlockPredictor

_EV_CACP_INSERT = int(Ev.CACP_INSERT)
_EV_CACP_PROMOTE = int(Ev.CACP_PROMOTE)

#: Insertion RRPV for critical-classified lines (closer than SHiP's "long").
RRPV_PROTECTED = 1

PARTITION_MODES = ("priority", "static", "dynamic")


class _CACPShip:
    """The modified signature-based hit predictor used inside CACP.

    Same structure as SHiP [38] but trained on *all* reuse (critical and
    non-critical) and consulted only for the insertion position.  Counters
    are wider than classic SHiP's 2 bits so sporadic zero-reuse evictions
    under heavy churn do not immediately flip a hot signature to streaming.
    """

    def __init__(self, table_size: int = 256, counter_max: int = 7, initial: int = 3) -> None:
        self.table = [initial] * table_size
        self._counter_max = counter_max
        self._table_size = table_size

    def _index(self, signature: int) -> int:
        return signature % self._table_size

    def insertion_rrpv(self, signature: int) -> int:
        """Long (2) when reuse is predicted, distant (3) otherwise."""
        return 2 if self.table[self._index(signature)] > 0 else RRPV_MAX

    def increment(self, signature: int) -> None:
        idx = self._index(signature)
        if self.table[idx] < self._counter_max:
            self.table[idx] += 1

    def decrement(self, signature: int) -> None:
        idx = self._index(signature)
        if self.table[idx] > 0:
            self.table[idx] -= 1


class CACPPolicy(ReplacementPolicy):
    """L1D management policy implementing Algorithm 4."""

    name = "cacp"

    def __init__(
        self,
        critical_ways: int,
        total_ways: int,
        table_size: int = 256,
        mode: str = "priority",
        min_critical_ways: int = 2,
        bypass_no_reuse: bool = False,
    ) -> None:
        if not 0 < critical_ways < total_ways:
            raise ValueError(
                f"critical_ways must be in (0, {total_ways}), got {critical_ways}"
            )
        if mode not in PARTITION_MODES:
            raise ValueError(f"mode must be one of {PARTITION_MODES}, got {mode!r}")
        self.mode = mode
        self.critical_ways = critical_ways
        self.total_ways = total_ways
        self.ccbp = CriticalCacheBlockPredictor(table_size=table_size)
        self.ship = _CACPShip(table_size=table_size)
        self.min_critical_ways = min_critical_ways
        #: Extension beyond the paper (its Section 6.4 cites L1 bypassing
        #: [13, 14, 39] as the adjacent line of work): when enabled,
        #: non-critical fills whose signature shows no reuse skip L1
        #: allocation entirely, so streams cannot evict anything.
        self.bypass_no_reuse = bypass_no_reuse
        self._partition_hits = [0, 0]  # [critical partition, non-critical]
        self._tune_interval = 1024
        self._accesses_since_tune = 0
        #: Event bus (``repro.obs``) or ``None``; set by ``wire_sms``.
        self.obs = None

    # ------------------------------------------------------------------
    # Fill classification and routing (CacheFill in Algorithm 4)
    # ------------------------------------------------------------------
    def classify_critical(self, req: MemRequest) -> bool:
        """Should this fill be treated as critical data?

        GPU L1 reuse is dominated by intra-warp locality, so the requesting
        warp's criticality is a strong prior on the future reuser's
        criticality; CCBP refines the verdict per signature (and demotes
        wrongly-routed signatures via its eviction training).
        """
        return req.is_critical or self.ccbp.predicts_critical(req.signature)

    def should_bypass(self, req: MemRequest) -> bool:
        """Skip L1 allocation for non-critical, predicted-no-reuse fills."""
        if not self.bypass_no_reuse:
            return False
        if self.classify_critical(req):
            return False
        return self.ship.insertion_rrpv(req.signature) >= RRPV_MAX

    def way_range(self, lines: List, req: MemRequest, ways: int) -> Tuple[int, int]:
        if self.mode == "priority":
            return 0, ways
        if self.classify_critical(req):
            return 0, self.critical_ways
        return self.critical_ways, ways

    def choose_way(self, lines: List, req: MemRequest, lo: int, hi: int) -> int:
        # Prefer an invalid way in the eligible range, then an invalid way
        # anywhere (cold-start: an empty partition should not force
        # evictions in the other one), then the range's SRRIP victim.
        for way in range(lo, hi):
            if not lines[way].valid:
                return way
        for way in range(len(lines)):
            if not lines[way].valid:
                return way
        return self._victim(lines, req, lo, hi)

    def _victim(self, lines: List, req: MemRequest, lo: int, hi: int) -> int:
        # SRRIP victim search restricted to the eligible way range.
        while True:
            for way in range(lo, hi):
                if lines[way].rrpv >= RRPV_MAX:
                    return way
            for way in range(lo, hi):
                lines[way].rrpv += 1

    def on_fill(self, line, req: MemRequest) -> None:
        critical = self.classify_critical(req)
        if self.mode == "priority":
            # Logical partition: the flag records the classification rather
            # than a physical way range.
            line.in_critical_partition = critical
        if critical:
            # Latency-critical data is protected: inserted closer than any
            # SHiP insertion so non-critical churn ages out first.
            line.rrpv = RRPV_PROTECTED
        else:
            # Non-critical data keeps the SHiP-guided insertion: signatures
            # with no observed reuse stream through at distant RRPV.
            line.rrpv = self.ship.insertion_rrpv(req.signature)
        line.signature = req.signature
        line.c_reuse = False
        line.nc_reuse = False
        if self.obs is not None:
            self.obs.emit((_EV_CACP_INSERT, req.cycle, req.warp_key[0],
                           req.signature, 1 if critical else 0, line.rrpv))

    # ------------------------------------------------------------------
    # CacheHit in Algorithm 4
    # ------------------------------------------------------------------
    def on_hit(self, line, req: MemRequest) -> None:
        line.rrpv = RRPV_NEAR  # promotion position in both partitions
        if self.obs is not None:
            self.obs.emit((_EV_CACP_PROMOTE, req.cycle, req.warp_key[0],
                           line.signature, 1 if req.is_critical else 0))
        if req.is_critical:
            line.c_reuse = True
            self.ccbp.train_critical_reuse(line.signature)
            self.ship.increment(line.signature)
        else:
            line.nc_reuse = True
            self.ship.increment(line.signature)
        if self.mode == "dynamic":
            self._partition_hits[0 if line.in_critical_partition else 1] += 1
            self._accesses_since_tune += 1
            if self._accesses_since_tune >= self._tune_interval:
                self._retune()

    # ------------------------------------------------------------------
    # EvictLine in Algorithm 4
    # ------------------------------------------------------------------
    def on_evict(self, line, req: MemRequest) -> None:
        if not line.c_reuse and line.nc_reuse and line.in_critical_partition:
            # The line should have been classified non-critical.
            self.ccbp.train_wrong_routing(line.signature)
        elif not line.c_reuse and not line.nc_reuse and not line.in_critical_partition:
            # No reuse at all from this signature.  Only non-critical
            # evictions train SHiP's no-reuse verdict: zero-reuse critical
            # lines are usually victims of churn (the thing CACP exists to
            # stop), not evidence the signature is streaming.
            self.ship.decrement(line.signature)

    # ------------------------------------------------------------------
    def next_event_time(self, now: float) -> float:
        """Always ``inf``: CACP retune epochs are *access-indexed*.

        The dynamic-mode boundary retune fires every ``_tune_interval`` cache
        *hits* — state that only advances inside an L1 access, which only
        happens inside an SM tick the skip clock already scheduled.  CACP
        therefore contributes no wake-ups of its own (see
        :mod:`repro.gpu.clock`).
        """
        return math.inf

    # ------------------------------------------------------------------
    def _retune(self) -> None:
        """UCP-style boundary adjustment from per-partition hit shares."""
        critical_hits, noncritical_hits = self._partition_hits
        total = critical_hits + noncritical_hits
        if total:
            share = critical_hits / total
            target = round(share * self.total_ways)
            self.critical_ways = int(
                min(self.total_ways - 1, max(self.min_critical_ways, target))
            )
        self._partition_hits = [0, 0]
        self._accesses_since_tune = 0
