"""Named CAWA schemes: config transforms for every scheme the paper evaluates.

A *scheme* bundles a warp scheduler choice with the L1D management choice,
e.g. ``"cawa"`` = gCAWS + CACP (the full coordinated design), ``"gto+cacp"``
= the Figure 16/17 sweep point where CACP assists a criticality-oblivious
scheduler (criticality verdicts still come from CPL, as in the paper).
"""

from __future__ import annotations

from typing import Dict

from ..config import GPUConfig

#: scheme name -> (scheduler name, use CACP)
SCHEMES: Dict[str, tuple] = {
    "rr": ("lrr", False),
    "gto": ("gto", False),
    "two_level": ("two_level", False),
    "caws": ("caws", False),
    "gcaws": ("gcaws", False),
    "cawa": ("gcaws", True),
    "rr+cacp": ("lrr", True),
    "gto+cacp": ("gto", True),
    "two_level+cacp": ("two_level", True),
    # Extension: CAWA plus L1 bypass of non-critical no-reuse fills.
    "cawa+bypass": ("gcaws", True),
    # Extension: CAWA plus MSHR entries reserved for critical warps.
    "cawa+mshr": ("gcaws", True),
    # Co-design schemes consuming L1 feedback signals (repro.feedback):
    # CCWS locality-aware throttling, WaSP prefetch-mimicking priority,
    # CIAO interference-aware throttling.  See docs/schemes.md.
    "ccws": ("ccws", False),
    "wasp": ("wasp", False),
    "ciao": ("ciao", False),
}


def apply_scheme(config: GPUConfig, scheme: str) -> GPUConfig:
    """Return ``config`` reconfigured for the named scheme."""
    from dataclasses import replace

    try:
        scheduler, use_cacp = SCHEMES[scheme]
    except KeyError:
        raise ValueError(
            f"unknown scheme {scheme!r}; expected one of {sorted(SCHEMES)}"
        ) from None
    config = config.with_scheduler(scheduler).with_cacp(use_cacp)
    if scheme.endswith("+bypass"):
        config = replace(config, cacp_bypass=True)
    if scheme.endswith("+mshr"):
        reserve = max(1, config.l1d.mshr_entries // 4)
        config = replace(config, critical_mshr_reserve=reserve)
    return config
