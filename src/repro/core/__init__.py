"""CAWA — the paper's contribution.

Three coordinated components (paper Section 3):

* :class:`~repro.core.cpl.CriticalityPredictor` (CPL) — per-warp criticality
  counters from branch-path instruction disparity and stall latency (Eq. 1).
* gCAWS (in :mod:`repro.scheduling.gcaws`) — greedy criticality-aware warp
  scheduling driven by the CPL counters.
* :class:`~repro.core.cacp.CACPPolicy` (CACP) — criticality-aware L1D
  prioritization: way partitioning + CCBP + a modified SHiP (Algorithm 4).
"""

from .cacp import CACPPolicy
from .cawa import SCHEMES, apply_scheme
from .ccbp import CriticalCacheBlockPredictor
from .cpl import CriticalityPredictor

__all__ = [
    "CACPPolicy",
    "CriticalCacheBlockPredictor",
    "CriticalityPredictor",
    "SCHEMES",
    "apply_scheme",
]
