"""``repro.sampling`` — statistical sampling frontend over the trace store.

Replays a config-selected subset of a recorded trace through the
unchanged timing model and extrapolates full-run metrics with calibrated
95% confidence intervals:

* :mod:`~repro.sampling.spec` — the ``sampling='off'|'blocks:P'|
  'intervals:P'`` knob grammar and the seeded RNG derivation every piece
  of sampling randomness must route through;
* :mod:`~repro.sampling.plan` — stratified cluster selection of thread
  blocks (strata = record-stream signatures) and barrier-aligned
  warp-interval truncation;
* :mod:`~repro.sampling.replay` — the orchestrator that derives the
  sub-program, replays it, and estimates
  (:class:`~repro.stats.sampling.SampledRunResult`);
* :mod:`~repro.sampling.calibrate` — the empirical error harness behind
  ``repro sample calibrate`` and the persisted safe-rate table that
  ``run_sweep(sampled=True)`` consumes.

Only the leaf spec module is imported eagerly: :mod:`repro.config`
parses the knob from ``__post_init__`` via ``repro.sampling.spec``, which
initialises this package, so everything that pulls in the trace/replay
machinery is exposed via module ``__getattr__`` instead (same idiom as
:mod:`repro.obs`).  See ``docs/sampling.md``.
"""

from __future__ import annotations

from .spec import MODES, SamplingSpec, derive_rng, derive_seed, parse_sampling_spec

__all__ = [
    "MODES",
    "SamplingSpec",
    "parse_sampling_spec",
    "derive_seed",
    "derive_rng",
    "BlockProfile",
    "LaunchPlan",
    "profile_program",
    "build_strata",
    "subsample_launch",
    "subsample_program",
    "replay_sampled",
    "remap_oracle",
    "load_table",
    "save_table",
    "table_path",
    "safe_spec",
    "lookup",
    "envelope_for",
    "DEFAULT_SPEC",
]

_PLAN_NAMES = (
    "BlockProfile",
    "LaunchPlan",
    "profile_launch",
    "profile_program",
    "build_strata",
    "subsample_launch",
    "subsample_program",
)
_REPLAY_NAMES = ("replay_sampled", "remap_oracle")
# NB: the calibrate() *function* is not re-exported at package level — the
# name would collide with the ``calibrate`` submodule, which Python binds
# as a package attribute on first import.  Call
# ``repro.sampling.calibrate.calibrate(...)`` instead.
_CALIBRATE_NAMES = (
    "load_table",
    "save_table",
    "table_path",
    "safe_spec",
    "lookup",
    "envelope_for",
    "DEFAULT_SPEC",
    "DEFAULT_RATES",
    "DEFAULT_TARGET",
)


def __getattr__(name: str):
    if name in _PLAN_NAMES:
        from . import plan

        return getattr(plan, name)
    if name in _REPLAY_NAMES:
        from . import replay

        return getattr(replay, name)
    if name in _CALIBRATE_NAMES:
        from . import calibrate

        return getattr(calibrate, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
