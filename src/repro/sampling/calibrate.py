"""Calibration harness: measure sampling error, persist safe rates.

Sampled replay is only as trustworthy as its error model, so the
calibration protocol (``repro sample calibrate``) is empirical: for each
workload it runs the scheme grid **exactly** once, then again under every
candidate sampling rate, and records the worst relative error each rate
produced across all schemes and reported metrics.  The smallest rate
whose worst error stays under the target becomes the workload's *safe
rate*; the measured error at that rate — inflated by a safety factor and
floored — becomes the workload's confidence envelope, folded into every
subsequent sampled CI (:mod:`repro.stats.sampling`).

The resulting table persists under ``<cache_dir>/sampling/rates.json``
(same directory resolution as the result cache and trace store) and is
consumed by ``run_sweep(sampled=True)``.  Because subset selection is
deterministic given the config, a sampled run at the calibrated rate
replays the *same* subset calibration measured — the recorded envelope is
an observed error for that exact estimate, not merely a statistical hope.
A workload whose candidate rates all miss the target gets ``spec: null``
and is run exactly by sampled sweeps (the honest fallback).

Speedups are recorded as the deterministic *replay fraction* (records
replayed / records total) rather than host wall time: simulator source
never reads the wall clock (sanitize rule DET002), and the fraction is
the quantity a wall-clock measurement estimates anyway.  The CI benchmark
(``benchmarks/``, outside the sanitized tree) measures real wall time.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

import math

from .. import fslock
from ..config import GPUConfig
from ..stats.accuracy import compare_results, relative_error
from .spec import parse_sampling_spec

#: Table schema version; bump on incompatible layout changes.
TABLE_FORMAT = 1
#: Subdirectory of the result cache holding the safe-rate table.
SAMPLING_SUBDIR = "sampling"
TABLE_NAME = "rates.json"

#: Default candidate rates, smallest first (the sweep stops caring once
#: one meets the target).
DEFAULT_RATES = (0.05, 0.1, 0.25, 0.5)
#: Default worst-case relative-error target for rate selection.
DEFAULT_TARGET = 0.08
#: Envelope inflation over the worst measured error at the chosen rate.
DEFAULT_SAFETY = 2.0
#: Envelope floor: never promise tighter than this relative half-width.
ENVELOPE_FLOOR = 0.01
#: Metrics the calibration scores (the timing-dependent subset of
#: :data:`repro.stats.sampling.REPORT_METRICS`; instruction totals are
#: exact by construction and never miss).
CAL_METRICS = (
    "cycles",
    "ipc",
    "l1_mpki",
    "l1_misses",
    "l2_misses",
    "dram_accesses",
    "total_stall_cycles",
    "mem_stall_cycles",
    "sched_stall_cycles",
)
#: Spec used by ``run_sweep(sampled=True)`` for uncalibrated workloads.
DEFAULT_SPEC = "blocks:0.25"


def table_path() -> Path:
    """Location of the persisted safe-rate table."""
    from ..experiments.result_cache import cache_dir

    return cache_dir() / SAMPLING_SUBDIR / TABLE_NAME


def load_table() -> Dict:
    """The persisted table, or an empty skeleton on miss/corruption."""
    try:
        with open(table_path(), "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, ValueError):
        return {"format": TABLE_FORMAT, "workloads": {}}
    if not isinstance(data, dict) or data.get("format") != TABLE_FORMAT:
        return {"format": TABLE_FORMAT, "workloads": {}}
    data.setdefault("workloads", {})
    return data


def save_table(table: Dict) -> Optional[Path]:
    """Atomically persist ``table``; returns the path (None if unwritable)."""
    path = table_path()
    try:
        fslock.atomic_write_json(path, table)
    except OSError:
        return None
    return path


def safe_spec(workload: str) -> Optional[str]:
    """The calibrated sampling spec for ``workload``.

    ``None`` means either "never calibrated" (callers fall back to
    :data:`DEFAULT_SPEC`) or "calibration explicitly failed the target"
    (``spec: null`` entry — callers must run exactly).  Use
    :func:`lookup` to distinguish the two.
    """
    entry = load_table()["workloads"].get(workload)
    if entry is None:
        return None
    return entry.get("spec")


def lookup(workload: str) -> Tuple[Optional[str], Optional[float], str]:
    """Resolve ``(spec, envelope_rel, source)`` for one workload.

    * calibrated workload: its safe spec, measured envelope, and the
      table path as source;
    * calibrated-but-failed workload: ``(None, None, "calibration-failed")``
      — run exactly;
    * unknown workload: ``(DEFAULT_SPEC, None, "default")`` — sample at
      the default rate under the conservative default envelope.
    """
    table = load_table()
    entry = table["workloads"].get(workload)
    if entry is None:
        return DEFAULT_SPEC, None, "default"
    spec = entry.get("spec")
    if spec is None:
        return None, None, "calibration-failed"
    return spec, entry.get("envelope"), f"calibrated:{table_path()}"


def envelope_for(workload: str, spec: str) -> Tuple[Optional[Dict], str]:
    """Calibrated per-metric envelope for ``workload`` sampled at ``spec``.

    The measured envelope only vouches for the rate it was measured at, so
    a sampled run at any other spec falls back to the conservative default
    (:data:`repro.stats.sampling.DEFAULT_ENVELOPE_REL`), signalled by
    ``(None, "default")``.
    """
    entry = load_table()["workloads"].get(workload)
    if (
        entry is not None
        and entry.get("spec") == str(spec)
        and entry.get("envelope") is not None
    ):
        return dict(entry["envelope"]), "calibrated"
    return None, "default"


def calibrate(
    workloads: Iterable[str],
    schemes: Iterable[str] = ("rr", "gto"),
    rates: Iterable[float] = DEFAULT_RATES,
    scale: float = 1.0,
    config: Optional[GPUConfig] = None,
    mode: str = "blocks",
    target_rel_err: float = DEFAULT_TARGET,
    safety: float = DEFAULT_SAFETY,
    metrics: Iterable[str] = CAL_METRICS,
    use_cache: bool = True,
    persist: bool = True,
) -> Dict:
    """Sweep sampling rates against exact runs; persist the safe rates.

    Returns the calibration report (the same structure that is merged
    into the on-disk table).  ``config`` supplies the device; its
    ``sampling`` field is ignored (the harness sets it per rate).
    """
    from ..experiments.runner import run_scheme

    workloads = list(workloads)
    schemes = list(schemes)
    rates = sorted(float(r) for r in rates)
    metrics = list(metrics)
    base = (config or GPUConfig.default_sim()).with_sampling("off")
    # Exact runs replay full traces: record once, replay every scheme.
    base = base.with_frontend("trace")

    report: Dict = {
        "format": TABLE_FORMAT,
        "target_rel_err": target_rel_err,
        "safety": safety,
        "scale": scale,
        "schemes": schemes,
        "mode": mode,
        "workloads": {},
    }
    for workload in workloads:
        exact = {
            scheme: run_scheme(
                workload, scheme, scale=scale, config=base,
                use_cache=use_cache,
            )
            for scheme in schemes
        }
        per_rate: Dict[str, Dict] = {}
        chosen: Optional[float] = None
        for rate in rates:
            spec = str(parse_sampling_spec(f"{mode}:{rate:g}"))
            cfg = base.with_sampling(spec)
            # Per-metric worst error across the scheme grid at this rate.
            per_metric: Dict[str, float] = {name: 0.0 for name in metrics}
            # Envelope errors are measured relative to the *estimate*
            # (the number the interval is centered on), not the exact
            # value: a half-width of ``safety * env * |estimate|`` then
            # always spans ``safety * |estimate - exact|`` and coverage
            # on the calibrated cells is a guarantee for any safety >= 1,
            # even when the estimate undershoots badly.
            env_metric: Dict[str, float] = {name: 0.0 for name in metrics}
            fractions: List[float] = []
            covered = True
            for scheme in schemes:
                # Probe runs must NOT populate the result caches: their
                # envelopes are computed *before* the table exists, so a
                # cached probe would later serve default-envelope CIs for
                # a calibrated cell.  Replaying the subset again later is
                # cheap — that is the whole point of sampling.
                sampled = run_scheme(
                    workload, scheme, scale=scale, config=cfg,
                    use_cache=False, persistent=False,
                )
                errors = compare_results(sampled, exact[scheme], metrics)
                for name, err in errors.items():
                    per_metric[name] = max(per_metric[name], err.rel_error)
                    env_err = relative_error(err.exact, err.estimate)
                    if not math.isfinite(env_err):
                        # Zero estimate, nonzero exact: a multiplicative
                        # envelope cannot cover it; fall back to the
                        # exact-relative error (the table's ``covered``
                        # flag records the miss honestly).
                        env_err = err.rel_error
                    env_metric[name] = max(env_metric[name], env_err)
                    covered = covered and err.covered
                info = getattr(sampled, "info", None)
                if info is not None:
                    fractions.append(info.replay_fraction)
            worst_metric = max(per_metric, key=lambda n: per_metric[n])
            worst = per_metric[worst_metric]
            per_rate[f"{rate:g}"] = {
                "max_rel_err": worst,
                "worst_metric": worst_metric,
                "per_metric": per_metric,
                "envelope_err": env_metric,
                "covered": covered,
                "replay_fraction": (
                    sum(fractions) / len(fractions) if fractions else 1.0
                ),
            }
            if chosen is None and worst <= target_rel_err:
                chosen = rate
        entry: Dict = {
            "scale": scale,
            "mode": mode,
            "schemes": schemes,
            "target_rel_err": target_rel_err,
            "safety": safety,
            "config_fingerprint": base.fingerprint(),
            "rates": per_rate,
        }
        if chosen is None:
            entry["spec"] = None
            entry["envelope"] = None
        else:
            stats = per_rate[f"{chosen:g}"]
            entry["spec"] = f"{mode}:{chosen:g}"
            # Per-metric envelope: each metric's interval only pays for its
            # own measured error (estimate-relative, floored, safety-
            # inflated).  Same-seed determinism makes this a guarantee,
            # not a hope, for the calibrated (workload, scheme, rate)
            # cells themselves.
            entry["envelope"] = {
                name: max(ENVELOPE_FLOOR, safety * err)
                for name, err in stats["envelope_err"].items()
            }
            entry["replay_fraction"] = stats["replay_fraction"]
        report["workloads"][workload] = entry

    if persist:
        table = load_table()
        table["workloads"].update(report["workloads"])
        table["format"] = TABLE_FORMAT
        save_table(table)
    return report
