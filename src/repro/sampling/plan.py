"""Subset selection over recorded traces: profiles, strata, derived programs.

The sampling frontend never touches the timing model.  It works entirely on
the *functional* side: given a recorded :class:`~repro.trace.format.TraceProgram`
it builds a smaller, fully valid program that the ordinary replay machinery
consumes unchanged, plus a :class:`LaunchPlan` describing exactly what was
kept so the estimators (:mod:`repro.stats.sampling`) can extrapolate.

Two modes (see ``docs/sampling.md``):

``blocks:P``
    Stratified cluster sampling of whole thread blocks.  Strata start from
    each block's *record-stream signature* — the sorted tuple of its
    per-warp dynamic record counts.  Blocks sharing a signature executed
    the same dynamic path lengths (a strictly stronger grouping than the
    static CPL envelope), so within-stratum variance is what the jackknife
    has to measure and between-stratum structure is covered by sampling at
    least one block from every stratum.  Irregular workloads (bfs) can
    give every block a unique signature, and one-block-per-stratum would
    then select *everything*; signature groups are therefore merged —
    ordered by mean per-block work, so merged strata stay homogeneous —
    into at most ``floor(P * num_blocks)`` rank strata, which keeps the
    realized rate honest while preserving the work-size stratification.
    Selected blocks are renumbered to a dense ``0..k-1`` grid (ascending
    original id, preserving dispatch order) and the derived launch shares
    the original record lists — zero-copy.

``intervals:P``
    Deterministic truncation of every warp's stream to its leading
    fraction ``P``, aligned to *barrier epochs*: every warp of a block
    keeps exactly the same number of BAR records, then the warp's true
    terminal EXIT record is appended, so no warp can ever wait on a
    barrier a peer no longer reaches.

Both modes also compute the block-level functional totals (record counts
and active-lane popcounts) for the *whole* trace in one linear scan —
exact, cheap, and the anchor that lets the estimator report instruction
counts with zero error and reduce everything else to timing ratios.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..isa.instructions import Opcode
from ..trace.format import LaunchTrace, TraceProgram
from .spec import SamplingSpec, derive_rng, parse_sampling_spec

#: Attribute used to memoize per-program profiles (profiles are pure
#: functions of the record streams, and loaded programs are shared).
_PROFILE_ATTR = "_sampling_profiles"


@dataclass
class BlockProfile:
    """Exact functional totals for one recorded thread block."""

    block_id: int
    num_warps: int
    records: int  # warp instructions = number of dynamic records
    threads: int  # thread instructions = sum of active-mask popcounts
    signature: Tuple  # sorted per-warp record counts (stratum key)


@dataclass
class LaunchPlan:
    """What the sampler kept from one launch, and at what weight."""

    mode: str
    rate: float
    seed: int
    launch_index: int
    #: Original ids of the replayed blocks, ascending == their new dense
    #: ids (``selected[new_id] == original_id``).
    selected: List[int]
    #: Strata as lists of original block ids (every block of the launch
    #: appears in exactly one stratum; blocks mode only — intervals mode
    #: keeps one stratum holding every block).
    strata: List[List[int]]
    #: Exact per-block functional totals for *every* block of the launch.
    profiles: Dict[int, BlockProfile]
    #: Records/threads actually replayed per selected block (equal to the
    #: profile totals in blocks mode; smaller under interval truncation).
    kept_records: Dict[int, int] = field(default_factory=dict)
    kept_threads: Dict[int, int] = field(default_factory=dict)

    # -- derived totals -------------------------------------------------
    @property
    def total_blocks(self) -> int:
        return len(self.profiles)

    @property
    def total_records(self) -> int:
        return sum(p.records for p in self.profiles.values())

    @property
    def total_threads(self) -> int:
        return sum(p.threads for p in self.profiles.values())

    @property
    def replayed_records(self) -> int:
        return sum(self.kept_records.values())

    def stratum_of(self, block_id: int) -> int:
        for index, members in enumerate(self.strata):
            if block_id in members:
                return index
        raise KeyError(block_id)

    def expansion(self, block_id: int) -> float:
        """Record expansion factor for one replayed block (>= 1)."""
        kept = self.kept_records.get(block_id, 0)
        if not kept:
            return 1.0
        return self.profiles[block_id].records / kept

    def original_id(self, new_id: int) -> int:
        return self.selected[new_id]


# ----------------------------------------------------------------------
# Profiling (exact functional totals)
# ----------------------------------------------------------------------
def profile_launch(launch: LaunchTrace) -> Dict[int, BlockProfile]:
    """One linear scan: per-block record and active-lane totals."""
    per_block: Dict[int, Dict[int, List]] = {}
    for (block_id, warp_id), records in launch.warps.items():
        per_block.setdefault(block_id, {})[warp_id] = records
    profiles: Dict[int, BlockProfile] = {}
    for block_id in sorted(per_block):
        warps = per_block[block_id]
        records = 0
        threads = 0
        counts = []
        for warp_id in sorted(warps):
            stream = warps[warp_id]
            records += len(stream)
            counts.append(len(stream))
            threads += sum(int(rec[1]).bit_count() for rec in stream)
        profiles[block_id] = BlockProfile(
            block_id=block_id,
            num_warps=len(warps),
            records=records,
            threads=threads,
            signature=tuple(sorted(counts)),
        )
    return profiles


def profile_program(program: TraceProgram) -> List[Dict[int, BlockProfile]]:
    """Per-launch profiles, memoized on the program object itself."""
    cached = getattr(program, _PROFILE_ATTR, None)
    if cached is not None:
        return cached
    profiles = [profile_launch(launch) for launch in program.launches]
    setattr(program, _PROFILE_ATTR, profiles)
    return profiles


# ----------------------------------------------------------------------
# Blocks mode: stratified cluster sampling
# ----------------------------------------------------------------------
def build_strata(
    profiles: Dict[int, BlockProfile], rate: Optional[float] = None
) -> List[List[int]]:
    """Group block ids by record-stream signature (deterministic order).

    With a ``rate``, signature groups are merged into at most
    ``max(1, floor(rate * num_blocks))`` strata so that selecting one
    block per stratum can never exceed the requested rate.  Groups are
    ordered by mean per-block record count before merging, keeping each
    merged stratum a contiguous band of similarly-sized blocks.
    """
    groups: Dict[Tuple, List[int]] = {}
    for block_id in sorted(profiles):
        groups.setdefault(profiles[block_id].signature, []).append(block_id)
    ordered = [groups[sig] for sig in sorted(groups)]
    if rate is None:
        return ordered

    cap = max(1, int(rate * len(profiles)))
    if len(ordered) <= cap:
        return ordered

    def _mean_records(members: List[int]) -> float:
        return sum(profiles[b].records for b in members) / len(members)

    # Signatures are unique per group, so (mean, signature) is a total,
    # deterministic order.
    ordered.sort(key=lambda m: (_mean_records(m), profiles[m[0]].signature))
    total = len(profiles)
    merged: List[List[int]] = []
    current: List[int] = []
    consumed = 0
    for group in ordered:
        current.extend(group)
        consumed += len(group)
        if len(merged) < cap - 1 and consumed >= total * (len(merged) + 1) / cap:
            merged.append(sorted(current))
            current = []
    if current:
        merged.append(sorted(current))
    return merged


def _select_blocks(
    strata: List[List[int]], rate: float, rng
) -> List[int]:
    """Proportional allocation with at least one block per stratum."""
    selected: List[int] = []
    for members in strata:
        count = max(1, round(rate * len(members)))
        count = min(count, len(members))
        selected.extend(rng.sample(members, count))
    return sorted(selected)


def subsample_launch(
    launch: LaunchTrace,
    profiles: Dict[int, BlockProfile],
    spec: SamplingSpec,
    seed: int,
    launch_index: int,
) -> Tuple[LaunchTrace, LaunchPlan]:
    """Derive the sampled launch plus its plan for one recorded launch."""
    if spec.mode == "blocks":
        return _subsample_blocks(launch, profiles, spec, seed, launch_index)
    if spec.mode == "intervals":
        return _subsample_intervals(launch, profiles, spec, seed, launch_index)
    raise ValueError(f"cannot subsample with sampling mode {spec.mode!r}")


def _subsample_blocks(
    launch: LaunchTrace,
    profiles: Dict[int, BlockProfile],
    spec: SamplingSpec,
    seed: int,
    launch_index: int,
) -> Tuple[LaunchTrace, LaunchPlan]:
    strata = build_strata(profiles, spec.rate)
    rng = derive_rng("blocks", spec.rate, seed, launch.kernel_fp, launch_index)
    selected = _select_blocks(strata, spec.rate, rng)
    warps: Dict[Tuple[int, int], List] = {}
    for new_id, original in enumerate(selected):
        for (block_id, warp_id), records in launch.warps.items():
            if block_id == original:
                warps[(new_id, warp_id)] = records
    derived = LaunchTrace(
        kernel=launch.kernel,
        grid_dim=len(selected),
        block_dim=launch.block_dim,
        kernel_fp=launch.kernel_fp,
        warps=warps,
    )
    plan = LaunchPlan(
        mode="blocks",
        rate=spec.rate,
        seed=seed,
        launch_index=launch_index,
        selected=selected,
        strata=strata,
        profiles=profiles,
        kept_records={b: profiles[b].records for b in selected},
        kept_threads={b: profiles[b].threads for b in selected},
    )
    return derived, plan


# ----------------------------------------------------------------------
# Intervals mode: barrier-aligned truncation
# ----------------------------------------------------------------------
def _barrier_pcs(kernel) -> frozenset:
    return frozenset(
        inst.pc for inst in kernel.instructions if inst.op is Opcode.BAR
    )


def _interval_cuts(
    block_warps: Dict[int, List], bar_pcs: frozenset, rate: float
) -> Dict[int, int]:
    """Per-warp cut index keeping the same barrier-epoch count block-wide.

    Every warp's naive cut is ``ceil(P * len(stream))``; the block then
    agrees on ``e`` — the minimum number of BAR records any naive cut
    keeps — and each warp's cut is clamped so it keeps *exactly* ``e``
    barriers.  A warp that stops after its ``e``-th barrier can never
    strand a peer at barrier ``e+1``.
    """
    naive: Dict[int, int] = {}
    bars: Dict[int, List[int]] = {}
    for warp_id, records in block_warps.items():
        naive[warp_id] = max(1, math.ceil(rate * len(records)))
        bars[warp_id] = [
            index for index, rec in enumerate(records) if rec[0] in bar_pcs
        ]
    epoch = min(
        sum(1 for pos in bars[w] if pos < naive[w]) for w in block_warps
    )
    cuts: Dict[int, int] = {}
    for warp_id, records in block_warps.items():
        hi = (
            bars[warp_id][epoch]
            if epoch < len(bars[warp_id])
            else len(records)
        )
        cuts[warp_id] = min(naive[warp_id], hi)
    return cuts


def _subsample_intervals(
    launch: LaunchTrace,
    profiles: Dict[int, BlockProfile],
    spec: SamplingSpec,
    seed: int,
    launch_index: int,
) -> Tuple[LaunchTrace, LaunchPlan]:
    bar_pcs = _barrier_pcs(launch.kernel)
    per_block: Dict[int, Dict[int, List]] = {}
    for (block_id, warp_id), records in launch.warps.items():
        per_block.setdefault(block_id, {})[warp_id] = records
    warps: Dict[Tuple[int, int], List] = {}
    kept_records: Dict[int, int] = {}
    kept_threads: Dict[int, int] = {}
    for block_id in sorted(per_block):
        block_warps = per_block[block_id]
        cuts = _interval_cuts(block_warps, bar_pcs, spec.rate)
        records_kept = 0
        threads_kept = 0
        for warp_id, records in block_warps.items():
            cut = cuts[warp_id]
            if cut >= len(records):
                stream = records
            else:
                # The warp's own terminal record is its EXIT; appending it
                # turns the truncated stream into a complete, replayable
                # warp without inventing any instruction the kernel lacks.
                stream = records[:cut] + [records[-1]]
            warps[(block_id, warp_id)] = stream
            records_kept += len(stream)
            threads_kept += sum(int(rec[1]).bit_count() for rec in stream)
        kept_records[block_id] = records_kept
        kept_threads[block_id] = threads_kept
    selected = sorted(per_block)
    derived = LaunchTrace(
        kernel=launch.kernel,
        grid_dim=launch.grid_dim,
        block_dim=launch.block_dim,
        kernel_fp=launch.kernel_fp,
        warps=warps,
    )
    plan = LaunchPlan(
        mode="intervals",
        rate=spec.rate,
        seed=seed,
        launch_index=launch_index,
        selected=selected,
        strata=[selected],
        profiles=profiles,
        kept_records=kept_records,
        kept_threads=kept_threads,
    )
    return derived, plan


# ----------------------------------------------------------------------
# Whole-program derivation
# ----------------------------------------------------------------------
def subsample_program(
    program: TraceProgram,
    sampling: str,
    seed: int = 0,
    spec: Optional[SamplingSpec] = None,
) -> Tuple[TraceProgram, List[LaunchPlan]]:
    """Derive the sampled program plus one :class:`LaunchPlan` per launch.

    The derived program keeps the original functional fingerprint (it was
    recorded under the same functional config), so the ordinary replay
    validation accepts it; its ``meta`` records the provenance.
    """
    parsed = spec or parse_sampling_spec(sampling)
    if not parsed.enabled:
        raise ValueError("subsample_program called with sampling='off'")
    profiles = profile_program(program)
    launches: List[LaunchTrace] = []
    plans: List[LaunchPlan] = []
    for index, launch in enumerate(program.launches):
        derived, plan = subsample_launch(
            launch, profiles[index], parsed, seed, index
        )
        launches.append(derived)
        plans.append(plan)
    meta = dict(program.meta)
    meta.update({
        "sampled_from": program.trace_id,
        "sampling": str(parsed),
        "sampling_seed": seed,
    })
    sampled = TraceProgram(
        functional_fingerprint=program.functional_fingerprint,
        workload=program.workload,
        scale=program.scale,
        warp_size=program.warp_size,
        line_size=program.line_size,
        meta=meta,
        launches=launches,
    )
    return sampled, plans
