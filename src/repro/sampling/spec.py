"""Sampling-spec parsing and seed derivation (leaf module).

The :attr:`repro.config.GPUConfig.sampling` knob is a compact string::

    "off"            # exact simulation (default)
    "blocks:P"       # stratified cluster sampling of thread blocks
    "intervals:P"    # barrier-aligned truncation of every warp stream

with ``0 < P <= 1`` the target sampling rate.  This module is a leaf
(imports only :mod:`repro.errors`) so :class:`~repro.config.GPUConfig`
can validate the knob in ``__post_init__`` without pulling the trace
machinery into the config import graph.

All sampling randomness is routed through :func:`derive_rng`: a
``random.Random`` seeded from a SHA-256 over the sampling spec, the
config-level sampling seed, and the trace identity — deterministic by
construction, so the DET001 sanitize rule (unseeded randomness) stays
clean with zero waivers and a given configuration always selects the
same subset.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass

from ..errors import ConfigError

#: Recognized sampling modes (beyond the literal "off").
MODES = ("blocks", "intervals")


@dataclass(frozen=True)
class SamplingSpec:
    """Parsed form of a ``GPUConfig.sampling`` string."""

    mode: str  # "off", "blocks", or "intervals"
    rate: float = 1.0

    @property
    def enabled(self) -> bool:
        return self.mode != "off"

    def __str__(self) -> str:
        if self.mode == "off":
            return "off"
        return f"{self.mode}:{self.rate:g}"


def parse_sampling_spec(spec: str) -> SamplingSpec:
    """Parse and validate a sampling spec string.

    Raises :class:`~repro.errors.ConfigError` on anything that is not
    ``off``, ``blocks:P``, or ``intervals:P`` with ``0 < P <= 1``.
    """
    if not isinstance(spec, str):
        raise ConfigError(
            f"sampling spec must be a string, got {type(spec).__name__}"
        )
    if spec == "off":
        return SamplingSpec(mode="off")
    mode, sep, rate_text = spec.partition(":")
    if not sep or mode not in MODES:
        raise ConfigError(
            f"sampling must be 'off', 'blocks:P', or 'intervals:P', got {spec!r}"
        )
    try:
        rate = float(rate_text)
    except ValueError:
        raise ConfigError(
            f"sampling rate in {spec!r} is not a number"
        ) from None
    if not 0.0 < rate <= 1.0:
        raise ConfigError(
            f"sampling rate must satisfy 0 < P <= 1, got {rate!r}"
        )
    return SamplingSpec(mode=mode, rate=rate)


def derive_seed(*parts: object) -> int:
    """Deterministic 64-bit seed from arbitrary JSON-able identity parts."""
    blob = json.dumps([str(p) for p in parts], sort_keys=True)
    digest = hashlib.sha256(blob.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def derive_rng(*parts: object) -> random.Random:
    """Config-derived RNG: the only sanctioned randomness source here."""
    return random.Random(derive_seed(*parts))
