"""Sampled replay: subsample, replay through the unchanged timing model,
extrapolate.

:func:`replay_sampled` is the sampling counterpart of
:func:`repro.trace.replay.replay_program`: it derives the sub-program the
config's ``sampling`` spec selects, replays it through the ordinary replay
machinery (any scheme, clock, backend, shard count), and hands the
measured subset to the estimators
(:func:`repro.stats.sampling.estimate_sampled_result`).  The timing model
never learns it is being sampled — the derived program is a fully valid
trace.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..config import GPUConfig
from ..stats.sampling import SampledRunResult, estimate_sampled_result
from ..trace.format import TraceProgram
from .plan import LaunchPlan, subsample_program
from .spec import parse_sampling_spec


def remap_oracle(
    oracle: Optional[Dict[Tuple[int, int], float]], plan: LaunchPlan
) -> Optional[Dict[Tuple[int, int], float]]:
    """Rekey a CAWS oracle from original block ids to the dense sampled ids.

    The oracle profiles per-warp execution times keyed ``(block_id,
    warp_id_in_block)``; the derived program renumbers selected blocks to
    ``0..k-1``, so the oracle must follow.  Keys for unsampled blocks are
    dropped; missing keys (an oracle profiled under a different subset)
    fall back to the scheduler's default behavior.
    """
    if oracle is None or plan.mode != "blocks":
        return oracle
    remapped: Dict[Tuple[int, int], float] = {}
    for new_id, original in enumerate(plan.selected):
        for (block_id, warp_id), value in oracle.items():
            if block_id == original:
                remapped[(new_id, warp_id)] = value
    return remapped


def replay_sampled(
    program: TraceProgram,
    config: GPUConfig,
    scheme: str = "",
    oracle: Optional[dict] = None,
    max_cycles: float = 5e7,
    observers: Optional[list] = None,
    l1_observers: Optional[list] = None,
    bus=None,
    envelope_rel: Optional[float] = None,
    envelope_source: str = "default",
) -> SampledRunResult:
    """Replay the config-selected subset of ``program`` and extrapolate.

    Observers attach to the sampled replay and therefore see only the
    selected subset — documented partial coverage (docs/sampling.md).
    Returns the estimate for the program's *last* launch, mirroring the
    runner's exact-path convention.
    """
    from ..trace.replay import replay_program  # heavy; keep import local

    spec = parse_sampling_spec(config.sampling)
    if not spec.enabled:
        raise ValueError(
            "replay_sampled called with sampling='off'; use replay_program"
        )
    derived, plans = subsample_program(
        program, config.sampling, seed=config.sampling_seed, spec=spec
    )
    results = replay_program(
        derived,
        config,
        scheme=scheme,
        oracle=remap_oracle(oracle, plans[-1]),
        max_cycles=max_cycles,
        observers=observers,
        l1_observers=l1_observers,
        bus=bus,
    )
    return estimate_sampled_result(
        results[-1],
        plans[-1],
        spec=config.sampling,
        envelope_rel=envelope_rel,
        envelope_source=envelope_source,
    )
