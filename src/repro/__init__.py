"""repro — a reproduction of CAWA (ISCA 2015).

Criticality-aware warp scheduling and cache prioritization for GPGPU
workloads, built on a from-scratch cycle-level SIMT GPU simulator.

Public API highlights::

    from repro import GPU, GPUConfig, KernelBuilder, apply_scheme

    config = apply_scheme(GPUConfig.default_sim(), "cawa")
    gpu = GPU(config)
    result = gpu.launch(kernel, grid_dim=8, block_dim=256)
    print(result.ipc, result.l1_mpki)
"""

from .config import CacheConfig, GPUConfig
from .core import SCHEMES, apply_scheme
from .errors import (
    ConfigError,
    DeadlockError,
    KernelBuildError,
    KernelValidationError,
    LaunchError,
    ReproError,
    SimulationError,
    TraceError,
    TraceFormatError,
    TraceMismatchError,
)
from .gpu import GPU
from .isa import CmpOp, Kernel, KernelBuilder, MemSpace, Opcode, Special
from .stats import RunResult

__version__ = "1.0.0"

__all__ = [
    "CacheConfig",
    "CmpOp",
    "ConfigError",
    "DeadlockError",
    "GPU",
    "GPUConfig",
    "Kernel",
    "KernelBuildError",
    "KernelBuilder",
    "KernelValidationError",
    "LaunchError",
    "MemSpace",
    "Opcode",
    "ReproError",
    "RunResult",
    "SCHEMES",
    "SimulationError",
    "Special",
    "TraceError",
    "TraceFormatError",
    "TraceMismatchError",
    "apply_scheme",
    "__version__",
]
