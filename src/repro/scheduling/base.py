"""Warp scheduler interface."""

from __future__ import annotations

from typing import ClassVar, List, Optional, Tuple

from ..simt.warp import Warp


class WarpScheduler:
    """Selects which ready warp issues next on one SM scheduler slot.

    The SM calls :meth:`select` once per issue opportunity with the warps
    whose next instruction has all operands ready.  Schedulers are stateful
    (round-robin pointers, greedy targets, criticality ranks) and are
    notified of issues and warp lifecycle events.

    Cache co-design schemes additionally declare the feedback signal kinds
    they consume in :attr:`FEEDBACK_KINDS`; the device wiring
    (:func:`repro.feedback.wire_gpu_feedback`) subscribes
    :meth:`on_signal` to the SM's FeedbackChannel for exactly those kinds,
    in scheduler-slot order.  ``select`` may return ``None`` to decline the
    issue slot (active-warp throttling); every clock loop treats a decline
    as "re-tick this SM next cycle".
    """

    name = "base"

    #: One-line human description shown by ``repro schemes``.
    DESCRIPTION: ClassVar[str] = ""

    #: Feedback signal kinds (``repro.feedback.Sig`` values) this scheme
    #: subscribes to; empty means the scheme never touches the channel.
    FEEDBACK_KINDS: ClassVar[Tuple[int, ...]] = ()

    def on_signal(self, record: tuple) -> None:
        """Receive one subscribed feedback signal (publish order)."""

    def select(self, ready: List[Warp], now: float) -> Optional[Warp]:
        """Pick one warp from ``ready`` (non-empty) to issue at ``now``."""
        raise NotImplementedError

    def notify_issue(self, warp: Warp, now: float) -> None:
        """Called after ``warp`` issues an instruction."""

    def notify_warp_added(self, warp: Warp) -> None:
        """Called when a block dispatch makes ``warp`` resident."""

    def notify_warp_finished(self, warp: Warp) -> None:
        """Called when ``warp`` exits."""

    @staticmethod
    def oldest(ready: List[Warp]) -> Warp:
        """GTO's tie-break: smallest dynamic (dispatch-order) id."""
        return min(ready, key=lambda w: w.dynamic_id)
