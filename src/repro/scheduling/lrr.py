"""Loose round-robin scheduler — the paper's baseline RR policy.

Warps take fair turns: after warp *i* issues, the search for the next ready
warp starts at *i+1* (wrapping).  Criticality-oblivious by construction;
Figure 4 of the paper measures the extra wait it imposes on critical warps.
"""

from __future__ import annotations

from typing import List, Optional

from ..simt.warp import Warp
from .base import WarpScheduler


class LRRScheduler(WarpScheduler):
    name = "lrr"
    DESCRIPTION = "loose round-robin: fair turns, criticality-oblivious baseline"

    def __init__(self) -> None:
        self._last_id: int = -1

    def select(self, ready: List[Warp], now: float) -> Optional[Warp]:
        # Rotate: the ready warp with the smallest id strictly greater than
        # the last issued id; wrap to the smallest id if none.
        after = [w for w in ready if w.dynamic_id > self._last_id]
        pool = after if after else ready
        return min(pool, key=lambda w: w.dynamic_id)

    def notify_issue(self, warp: Warp, now: float) -> None:
        self._last_id = warp.dynamic_id
