"""WaSP: warp scheduling with prefetch-mimicking priority.

A fixed subset of warps (one in four, by dispatch order) is designated as
*prefetcher* warps.  Prefetchers get priority so they run ahead of the
pack and warm the caches for the follower warps behind them — mimicking a
hardware prefetcher without issuing a single extra memory request.  The
run-ahead distance is bounded by a lead limit (in issued instructions) so
prefetched lines are not evicted again before the followers arrive.

The lead limit adapts to eviction feedback from the FeedbackChannel:
every window of evictions of prefetcher-filled L1 lines, the scheduler
checks how many were evicted *unreused* (the prefetch was wasted — the
line died before any follower touched it).  A mostly-wasted window means
the prefetchers are running too far ahead for the cache to hold their
output, so the limit halves; a mostly-useful window lets it creep back
up.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..feedback.signals import LEVEL_L1D, Sig
from ..simt.warp import Warp, WarpStatus
from .base import WarpScheduler

#: Every PREFETCHER_STRIDE-th warp (by dynamic id) is a prefetcher.
PREFETCHER_STRIDE = 4
#: Lead-limit bounds and adaptation step (issued instructions).
MIN_LEAD = 8
MAX_LEAD = 64
LEAD_STEP = 8
#: Evictions of prefetcher-filled lines per adaptation window.
ADAPT_WINDOW = 32

_EVICT = int(Sig.EVICT)


def _is_prefetcher(warp: Warp) -> bool:
    return warp.dynamic_id % PREFETCHER_STRIDE == 0


class WaSPScheduler(WarpScheduler):
    name = "wasp"
    DESCRIPTION = (
        "prefetch-mimicking priority: designated warps run ahead within "
        "an eviction-feedback-adapted lead limit"
    )
    FEEDBACK_KINDS = (_EVICT,)

    def __init__(self) -> None:
        self._warps: Dict[Tuple[int, int], Warp] = {}
        self._greedy_target: Optional[Warp] = None
        self._max_lead = MAX_LEAD
        self._window_evictions = 0
        self._window_wasted = 0

    # -- feedback ----------------------------------------------------------

    def on_signal(self, record: tuple) -> None:
        # (kind, cycle, sm, level, victim_block, victim_warp, line_addr,
        #  reused, evictor_block, evictor_warp)
        if record[3] != LEVEL_L1D:
            return
        victim = self._warps.get((record[4], record[5]))
        if victim is None or not _is_prefetcher(victim):
            return
        self._window_evictions += 1
        if not record[7]:
            self._window_wasted += 1
        if self._window_evictions >= ADAPT_WINDOW:
            if self._window_wasted * 2 > self._window_evictions:
                self._max_lead = max(MIN_LEAD, self._max_lead // 2)
            else:
                self._max_lead = min(MAX_LEAD, self._max_lead + LEAD_STEP)
            self._window_evictions = 0
            self._window_wasted = 0

    # -- lifecycle ---------------------------------------------------------

    def notify_warp_added(self, warp: Warp) -> None:
        self._warps[(warp.block.block_id, warp.warp_id_in_block)] = warp

    def notify_warp_finished(self, warp: Warp) -> None:
        self._warps.pop((warp.block.block_id, warp.warp_id_in_block), None)
        if self._greedy_target is warp:
            self._greedy_target = None

    # -- selection ---------------------------------------------------------

    def _follower_floor(self) -> Optional[int]:
        """Fewest issued instructions among live follower warps."""
        floor: Optional[int] = None
        for warp in self._warps.values():
            if _is_prefetcher(warp) or warp.status is not WarpStatus.RUNNING:
                continue
            issued = warp.issued_instructions
            if floor is None or issued < floor:
                floor = issued
        return floor

    def select(self, ready: List[Warp], now: float) -> Optional[Warp]:
        floor = self._follower_floor()
        if floor is not None:
            limit = floor + self._max_lead
            runners = [
                w for w in ready
                if _is_prefetcher(w) and w.issued_instructions < limit
            ]
            if runners:
                return self.oldest(runners)
        if self._greedy_target is not None and self._greedy_target in ready:
            return self._greedy_target
        return self.oldest(ready)

    def notify_issue(self, warp: Warp, now: float) -> None:
        self._greedy_target = warp
