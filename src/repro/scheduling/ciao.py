"""CIAO: cache interference-aware warp scheduling and throttling.

The FeedbackChannel's EVICT signals carry both the victim's and the
evictor's warp identity, which makes cross-warp L1 interference directly
observable: warp A evicting warp B's line is interference, and evicting a
line B had already reused is worse (demonstrated locality destroyed).
CIAO accumulates a lazily-decaying interference score per warp and
throttles the heavy interferers with hysteresis — a warp is benched when
its score crosses the high-water mark and released only after decaying
below the low-water mark, preventing throttle flapping.  Non-throttled
warps issue greedy-then-oldest; if every ready warp is throttled the
least-interfering one issues anyway, so the scheme can never deadlock.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..feedback.signals import LEVEL_L1D, Sig
from ..simt.warp import Warp
from .base import WarpScheduler

#: Interference points: evicting a reused line destroys proven locality.
BUMP_REUSED = 2.0
BUMP_UNUSED = 1.0
#: Cycles for one interference point to decay.
DECAY_PERIOD = 64.0
#: Hysteresis thresholds: throttle at >= HI, release at <= LO.
SCORE_HI = 8.0
SCORE_LO = 2.0

_EVICT = int(Sig.EVICT)


class _Interference:
    """Lazily-decayed interference score + hysteresis throttle latch."""

    __slots__ = ("warp", "score", "stamp", "throttled")

    def __init__(self, warp: Warp) -> None:
        self.warp = warp
        self.score = 0.0
        self.stamp = 0.0
        self.throttled = False

    def _decay_to(self, cycle: float) -> None:
        if cycle > self.stamp:
            self.score = max(0.0, self.score - (cycle - self.stamp) / DECAY_PERIOD)
            self.stamp = cycle

    def bump(self, amount: float, cycle: float) -> None:
        self._decay_to(cycle)
        self.score += amount

    def is_throttled(self, now: float) -> bool:
        self._decay_to(now)
        if self.throttled:
            if self.score <= SCORE_LO:
                self.throttled = False
        elif self.score >= SCORE_HI:
            self.throttled = True
        return self.throttled


class CIAOScheduler(WarpScheduler):
    name = "ciao"
    DESCRIPTION = (
        "cache interference detection via cross-warp eviction feedback + "
        "hysteresis throttling of heavy interferers"
    )
    FEEDBACK_KINDS = (_EVICT,)

    def __init__(self) -> None:
        self._warps: Dict[Tuple[int, int], _Interference] = {}
        self._greedy_target: Optional[Warp] = None

    # -- feedback ----------------------------------------------------------

    def on_signal(self, record: tuple) -> None:
        # (kind, cycle, sm, level, victim_block, victim_warp, line_addr,
        #  reused, evictor_block, evictor_warp)
        if record[3] != LEVEL_L1D:
            return
        victim_key = (record[4], record[5])
        evictor_key = (record[8], record[9])
        if victim_key == evictor_key or victim_key[0] < 0 or evictor_key[0] < 0:
            return  # self-eviction or unattributed line: not interference
        entry = self._warps.get(evictor_key)
        if entry is None:
            return  # other slot's warp — its own scheduler instance scores it
        entry.bump(BUMP_REUSED if record[7] else BUMP_UNUSED, record[1])

    # -- lifecycle ---------------------------------------------------------

    def notify_warp_added(self, warp: Warp) -> None:
        self._warps[(warp.block.block_id, warp.warp_id_in_block)] = _Interference(warp)

    def notify_warp_finished(self, warp: Warp) -> None:
        self._warps.pop((warp.block.block_id, warp.warp_id_in_block), None)
        if self._greedy_target is warp:
            self._greedy_target = None

    # -- selection ---------------------------------------------------------

    def select(self, ready: List[Warp], now: float) -> Optional[Warp]:
        pool = []
        for warp in ready:
            entry = self._warps.get((warp.block.block_id, warp.warp_id_in_block))
            if entry is None or not entry.is_throttled(now):
                pool.append(warp)
        if not pool:
            # Every ready warp is benched: let the least-interfering one
            # issue anyway so the SM always makes progress.
            return min(
                ready,
                key=lambda w: (
                    self._warps[(w.block.block_id, w.warp_id_in_block)].score
                    if (w.block.block_id, w.warp_id_in_block) in self._warps
                    else 0.0,
                    w.dynamic_id,
                ),
            )
        if self._greedy_target is not None and self._greedy_target in pool:
            return self._greedy_target
        return self.oldest(pool)

    def notify_issue(self, warp: Warp, now: float) -> None:
        self._greedy_target = warp
