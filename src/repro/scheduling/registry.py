"""Scheduler factory registry."""

from __future__ import annotations

from typing import Callable, Dict

from .base import WarpScheduler
from .caws import OracleCAWSScheduler
from .gcaws import GCAWSScheduler
from .gto import GTOScheduler
from .lrr import LRRScheduler
from .two_level import TwoLevelScheduler

SCHEDULERS: Dict[str, Callable[..., WarpScheduler]] = {
    "lrr": LRRScheduler,
    "rr": LRRScheduler,  # the paper calls the baseline "RR"
    "gto": GTOScheduler,
    "two_level": TwoLevelScheduler,
    "2lev": TwoLevelScheduler,
    "caws": OracleCAWSScheduler,
    "gcaws": GCAWSScheduler,
}


def make_scheduler(name: str, **kwargs) -> WarpScheduler:
    """Instantiate a warp scheduler by registry name."""
    try:
        factory = SCHEDULERS[name]
    except KeyError:
        raise ValueError(
            f"unknown scheduler {name!r}; expected one of {sorted(SCHEDULERS)}"
        ) from None
    return factory(**kwargs)
