"""Scheduler factory registry.

Every warp scheduler is registered here by name; ``GPUConfig`` validates
scheduler names eagerly against this table at construction time, so an
unknown name fails when the config is built, not when the device is.
``repro schemes`` renders :func:`scheduler_info` for every entry.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from .base import WarpScheduler
from .caws import OracleCAWSScheduler
from .ccws import CCWSScheduler
from .ciao import CIAOScheduler
from .gcaws import GCAWSScheduler
from .gto import GTOScheduler
from .lrr import LRRScheduler
from .two_level import TwoLevelScheduler
from .wasp import WaSPScheduler

SCHEDULERS: Dict[str, Callable[..., WarpScheduler]] = {
    "lrr": LRRScheduler,
    "rr": LRRScheduler,  # the paper calls the baseline "RR"
    "gto": GTOScheduler,
    "two_level": TwoLevelScheduler,
    "2lev": TwoLevelScheduler,
    "caws": OracleCAWSScheduler,
    "gcaws": GCAWSScheduler,
    "ccws": CCWSScheduler,
    "wasp": WaSPScheduler,
    "ciao": CIAOScheduler,
}


def make_scheduler(name: str, **kwargs) -> WarpScheduler:
    """Instantiate a warp scheduler by registry name."""
    try:
        factory = SCHEDULERS[name]
    except KeyError:
        raise ValueError(
            f"unknown scheduler {name!r}; expected one of {sorted(SCHEDULERS)}"
        ) from None
    return factory(**kwargs)


def scheduler_info(name: str) -> Tuple[str, Tuple[int, ...]]:
    """Return ``(description, feedback_kinds)`` for one registry entry."""
    factory = SCHEDULERS[name]
    description = getattr(factory, "DESCRIPTION", "") or ""
    kinds = tuple(getattr(factory, "FEEDBACK_KINDS", ()))
    return description, kinds


def scheduler_names() -> List[str]:
    """Registered names, sorted (includes aliases like ``rr``/``2lev``)."""
    return sorted(SCHEDULERS)
