"""greedy Criticality-Aware Warp Scheduler — gCAWS (paper Section 3.2).

Combines CAWS's criticality priority with GTO's greedy time slice: at each
issue opportunity pick the ready warp with the highest CPL criticality
counter; on ties pick the oldest (GTO); then keep issuing from the selected
warp greedily until it can issue no further instruction.
"""

from __future__ import annotations

import math

from typing import List, Optional

from ..simt.warp import Warp
from .base import WarpScheduler


class GCAWSScheduler(WarpScheduler):
    """greedy Criticality-Aware Warp Scheduler (paper Section 3.2).

    Ranks ready warps by their CPL criticality counters (log-ratio
    buckets, gated to the block's tail phase), breaks ties oldest-first
    like GTO, and greedily retains the selected warp while it stays ready.
    """

    name = "gcaws"
    DESCRIPTION = "CAWA's online CPL criticality priority + GTO greedy slice"

    def __init__(self, greedy: bool = True, ratio: float = 2.0) -> None:
        #: Disabling ``greedy`` yields the pure criticality-priority ablation
        #: (criticality order, no extended time slice).
        self.greedy = greedy
        #: Criticality counters are compared as logarithmic buckets of base
        #: ``ratio`` (a hardware implementation compares the counters'
        #: leading-bit position).  A warp only outranks its peers when its
        #: counter is *proportionally* larger — the genuine tail-warp case —
        #: so near-equal warps fall through to the oldest-first tie-break
        #: and gCAWS keeps GTO's working-set concentration.
        self.ratio = ratio
        self._log_ratio = math.log(ratio)
        self._greedy_target: Optional[Warp] = None

    def _bucket(self, warp: Warp) -> int:
        # Criticality only outranks age once the warp's block is in its
        # tail phase (at least half the warps already finished).  Early in
        # a block every warp still has bulk work and the best schedule is
        # GTO-style concentration; at the tail, the laggards' remaining
        # latency is exactly the block's commit delay, so they get boosted.
        block = warp.block
        if block.live_warps > max(1, block.num_warps // 2):
            return 0
        criticality = warp.criticality
        if criticality < 1.0:
            return 0
        return int(math.log(criticality) / self._log_ratio) + 1

    def select(self, ready: List[Warp], now: float) -> Optional[Warp]:
        if self.greedy and self._greedy_target is not None and self._greedy_target in ready:
            return self._greedy_target
        # Highest criticality bucket first; oldest (smallest dynamic id)
        # breaks ties, mirroring GTO.
        return max(ready, key=lambda w: (self._bucket(w), -w.dynamic_id))

    def notify_issue(self, warp: Warp, now: float) -> None:
        if self.greedy:
            self._greedy_target = warp

    def notify_warp_finished(self, warp: Warp) -> None:
        if self._greedy_target is warp:
            self._greedy_target = None
