"""Oracle criticality-aware warp scheduler (CAWS, Lee & Wu [20]).

CAWS prioritizes critical warps, but needs criticality knowledge it cannot
compute online — the paper calls it impractical for that reason and uses it
as the oracle upper bound in Figure 13.  The oracle table maps
``(block_id, warp_id_in_block)`` to the warp's measured execution time from
a profiling run (see :func:`repro.experiments.runner.build_oracle`).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..simt.warp import Warp
from .base import WarpScheduler

OracleTable = Dict[Tuple[int, int], float]


class OracleCAWSScheduler(WarpScheduler):
    name = "caws"
    DESCRIPTION = "oracle criticality priority from profiled per-warp times"

    def __init__(self, oracle: Optional[OracleTable] = None) -> None:
        #: Measured per-warp execution times from a profiling run; larger
        #: means more critical.  Missing warps rank lowest.
        self.oracle: OracleTable = oracle or {}

    def _criticality(self, warp: Warp) -> float:
        return self.oracle.get((warp.block.block_id, warp.warp_id_in_block), 0.0)

    def select(self, ready: List[Warp], now: float) -> Optional[Warp]:
        best = max(ready, key=lambda w: (self._criticality(w), -w.dynamic_id))
        return best
