"""Warp scheduling policies.

Baselines: loose round-robin (the paper's RR baseline), greedy-then-oldest
(GTO [34]), the two-level scheduler [24], and oracle CAWS [20].  The paper's
contribution, gCAWS, lives here too and consumes the criticality counters
maintained by :mod:`repro.core.cpl`.
"""

from .base import WarpScheduler
from .caws import OracleCAWSScheduler
from .gcaws import GCAWSScheduler
from .gto import GTOScheduler
from .lrr import LRRScheduler
from .registry import SCHEDULERS, make_scheduler
from .two_level import TwoLevelScheduler

__all__ = [
    "GCAWSScheduler",
    "GTOScheduler",
    "LRRScheduler",
    "OracleCAWSScheduler",
    "SCHEDULERS",
    "TwoLevelScheduler",
    "WarpScheduler",
    "make_scheduler",
]
