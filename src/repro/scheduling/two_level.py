"""Two-level warp scheduler (Narasiman et al. [24]).

Warps are statically split into fetch groups; only one group is *active* at
a time and issues round-robin.  When no warp in the active group is ready
(typically because they all hit long-latency memory operations together),
the scheduler rotates to the next group.  Staggering groups this way
prevents all warps from stalling simultaneously.
"""

from __future__ import annotations

from typing import List, Optional

from ..simt.warp import Warp
from .base import WarpScheduler


class TwoLevelScheduler(WarpScheduler):
    name = "two_level"
    DESCRIPTION = "two-level fetch groups: round-robin inside one active group"

    def __init__(self, fetch_group_size: int = 8) -> None:
        if fetch_group_size <= 0:
            raise ValueError("fetch_group_size must be positive")
        self.fetch_group_size = fetch_group_size
        self._active_group = 0
        self._last_id = -1

    def _group_of(self, warp: Warp) -> int:
        return warp.dynamic_id // self.fetch_group_size

    def select(self, ready: List[Warp], now: float) -> Optional[Warp]:
        in_active = [w for w in ready if self._group_of(w) == self._active_group]
        if not in_active:
            # Rotate to the group owning the oldest ready warp.
            oldest = self.oldest(ready)
            self._active_group = self._group_of(oldest)
            in_active = [w for w in ready if self._group_of(w) == self._active_group]
        # Round-robin within the active group.
        after = [w for w in in_active if w.dynamic_id > self._last_id]
        pool = after if after else in_active
        return min(pool, key=lambda w: w.dynamic_id)

    def notify_issue(self, warp: Warp, now: float) -> None:
        self._last_id = warp.dynamic_id
        self._active_group = self._group_of(warp)
