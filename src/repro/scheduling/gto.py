"""Greedy-then-oldest scheduler (Rogers et al. [34]).

Keeps issuing from one warp until it stalls, then falls back to the oldest
ready warp.  The greedy phase shrinks the active working set, which is why
GTO alleviates L1 thrashing for streaming workloads (Section 5.1).
"""

from __future__ import annotations

from typing import List, Optional

from ..simt.warp import Warp
from .base import WarpScheduler


class GTOScheduler(WarpScheduler):
    name = "gto"
    DESCRIPTION = "greedy-then-oldest: issue one warp until it stalls, then oldest"

    def __init__(self) -> None:
        self._greedy_target: Optional[Warp] = None

    def select(self, ready: List[Warp], now: float) -> Optional[Warp]:
        if self._greedy_target is not None and self._greedy_target in ready:
            return self._greedy_target
        return self.oldest(ready)

    def notify_issue(self, warp: Warp, now: float) -> None:
        self._greedy_target = warp

    def notify_warp_finished(self, warp: Warp) -> None:
        if self._greedy_target is warp:
            self._greedy_target = None
