"""CCWS: cache-conscious wavefront scheduling (Rogers et al., MICRO 2012).

Each warp owns a small Victim Tag Array (VTA) remembering the line tags
it recently lost from the L1.  When a warp misses on a line still in its
VTA, the miss is *lost locality* — the line would have hit had the warp's
working set stayed resident — and the warp's Lost-Locality Score (LLS)
jumps.  The scheduler sorts warps by LLS and walks the list accumulating
scores until the running sum reaches a cutoff proportional to the number
of live warps; only the warps inside that prefix may issue.  A warp with
heavy lost locality therefore shrinks the active warp set around itself,
protecting its working set, while scores decay back toward the baseline
so throttling releases once locality is re-established.

This implementation is a pure consumer of the FeedbackChannel: the L1
publishes EVICT (feeding the VTAs) and MISS (the probe point) signals,
and the scheduler never touches the cache.  Scores use only integer
arithmetic scaled by ``DECAY_PERIOD`` division of integer cycle deltas,
so the arithmetic is bit-deterministic across backends.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..feedback.signals import LEVEL_L1D, Sig
from ..simt.warp import Warp, WarpStatus
from .base import WarpScheduler

#: Every live warp's floor score; the cutoff is BASE_SCORE x live warps,
#: so with no lost locality anywhere the prefix covers all warps and CCWS
#: degenerates to plain round-robin.
BASE_SCORE = 100
#: LLS bump on a VTA hit (a detected lost-locality miss).
VTA_BUMP = 128
#: Cycles for one point of LLS bonus to decay.
DECAY_PERIOD = 8.0
#: Victim Tag Array entries per warp (LRU replacement).
VTA_ENTRIES = 8

_EVICT = int(Sig.EVICT)
_MISS = int(Sig.MISS)


class _WarpLocality:
    """Per-warp VTA + lazily-decayed lost-locality bonus."""

    __slots__ = ("warp", "vta", "bonus", "stamp")

    def __init__(self, warp: Warp) -> None:
        self.warp = warp
        self.vta: List[int] = []  # LRU order, most recent last
        self.bonus = 0.0
        self.stamp = 0.0

    def _decay_to(self, cycle: float) -> None:
        if cycle > self.stamp:
            self.bonus = max(0.0, self.bonus - (cycle - self.stamp) / DECAY_PERIOD)
            self.stamp = cycle

    def record_victim(self, tag: int) -> None:
        try:
            self.vta.remove(tag)
        except ValueError:
            if len(self.vta) >= VTA_ENTRIES:
                self.vta.pop(0)
        self.vta.append(tag)

    def probe(self, tag: int, cycle: float) -> None:
        """On an L1 miss: a VTA hit is lost locality — bump the score."""
        try:
            self.vta.remove(tag)
        except ValueError:
            return
        self._decay_to(cycle)
        self.bonus += VTA_BUMP

    def score(self, now: float) -> float:
        pending = self.bonus
        if now > self.stamp:
            pending = max(0.0, pending - (now - self.stamp) / DECAY_PERIOD)
        return BASE_SCORE + pending


class CCWSScheduler(WarpScheduler):
    name = "ccws"
    DESCRIPTION = (
        "per-warp victim tag arrays + lost-locality score cutoff "
        "throttling (Rogers MICRO'12)"
    )
    FEEDBACK_KINDS = (_EVICT, _MISS)

    def __init__(self) -> None:
        self._warps: Dict[Tuple[int, int], _WarpLocality] = {}
        self._last_id = -1

    # -- feedback ----------------------------------------------------------

    def on_signal(self, record: tuple) -> None:
        kind = record[0]
        if record[3] != LEVEL_L1D:
            return
        if kind == _EVICT:
            # (kind, cycle, sm, level, victim_block, victim_warp,
            #  line_addr, reused, evictor_block, evictor_warp)
            loc = self._warps.get((record[4], record[5]))
            if loc is not None:
                loc.record_victim(record[6])
        elif kind == _MISS:
            # (kind, cycle, sm, level, block, warp, line_addr, pc)
            loc = self._warps.get((record[4], record[5]))
            if loc is not None:
                loc.probe(record[6], record[1])

    # -- lifecycle ---------------------------------------------------------

    def notify_warp_added(self, warp: Warp) -> None:
        self._warps[(warp.block.block_id, warp.warp_id_in_block)] = _WarpLocality(warp)

    def notify_warp_finished(self, warp: Warp) -> None:
        self._warps.pop((warp.block.block_id, warp.warp_id_in_block), None)

    # -- selection ---------------------------------------------------------

    def _allowed(self, now: float) -> Optional[Set[Tuple[int, int]]]:
        """Keys of warps inside the LLS cutoff prefix (None = no throttle)."""
        live = [
            (key, loc.score(now), loc.warp.dynamic_id)
            for key, loc in self._warps.items()
            if loc.warp.status is WarpStatus.RUNNING
        ]
        if not live:
            return None
        cutoff = BASE_SCORE * len(live)
        live.sort(key=lambda item: (-item[1], item[2]))
        allowed: Set[Tuple[int, int]] = set()
        cum = 0.0
        for key, score, _ in live:
            allowed.add(key)
            cum += score
            if cum >= cutoff:
                break
        if len(allowed) == len(live):
            return None
        return allowed

    def select(self, ready: List[Warp], now: float) -> Optional[Warp]:
        allowed = self._allowed(now)
        if allowed is None:
            pool = ready
        else:
            pool = [
                w for w in ready
                if (w.block.block_id, w.warp_id_in_block) in allowed
            ]
            if not pool:
                # Decline the slot: the SM re-ticks next cycle.  Liveness:
                # the prefix always contains the top-score RUNNING warps,
                # which eventually become ready or finish, and warps at a
                # barrier leave the live set so throttled peers re-enter.
                return None
        after = [w for w in pool if w.dynamic_id > self._last_id]
        return min(after if after else pool, key=lambda w: w.dynamic_id)

    def notify_issue(self, warp: Warp, now: float) -> None:
        self._last_id = warp.dynamic_id
