"""Advisory file locking and atomic-write helpers for the on-disk stores.

The persistent stores under ``.repro_cache/`` (results, traces, event
streams) are shared by concurrent writers: parallel sweep workers, sharded
replay coordinators, and — with :mod:`repro.serve` — a long-lived server's
executor processes, all racing against interactive CLI invocations.  Three
primitives keep that safe:

* :func:`atomic_write_bytes` / :func:`atomic_write_json` — temp file in the
  destination directory + ``os.replace``, so a reader only ever sees either
  the old complete entry or the new complete entry, never a torn write.
* :func:`locked` — a blocking advisory lock (``fcntl.flock`` where
  available, a no-op elsewhere) held on a sidecar ``*.lock`` file.  Writers
  of individual entries do **not** take locks (``os.replace`` already makes
  them safe); locks exist for multi-file critical sections, i.e. garbage
  collection, where "enumerate then delete" must not interleave with
  another collector.
* :func:`try_locked` — the non-blocking variant; returns ``None`` when the
  lock is already held, letting callers skip rather than queue (two
  concurrent ``repro cache gc`` runs need one winner, not a convoy).

POSIX advisory locks are per-(process, file) — they do not exclude threads
of the same process — which is exactly the granularity the stores need:
in-process callers already serialize through the GIL-protected module
functions, while separate processes are the real hazard.
"""

from __future__ import annotations

import contextlib
import json
import os
import tempfile
from pathlib import Path
from typing import Iterator, Optional

try:  # pragma: no cover - import guard exercised only off-POSIX
    import fcntl

    _HAVE_FCNTL = True
except ImportError:  # pragma: no cover - Windows fallback
    fcntl = None  # type: ignore[assignment]
    _HAVE_FCNTL = False

#: Suffix for sidecar lock files (kept distinct from every store's entry
#: globs so lock files are never mistaken for cache entries).
LOCK_SUFFIX = ".lock"


def lock_path(directory: os.PathLike, name: str = "gc") -> Path:
    """Sidecar lock file for a named critical section in ``directory``."""
    return Path(directory) / f".{name}{LOCK_SUFFIX}"


@contextlib.contextmanager
def locked(path: os.PathLike) -> Iterator[None]:
    """Hold a blocking exclusive advisory lock on ``path``.

    Creates the lock file (and its directory) on demand.  Reduces to a
    no-op where ``fcntl`` is unavailable — single-writer platforms lose
    only GC mutual exclusion, never data integrity (entry writes stay
    atomic regardless).
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "a+b") as handle:
        if _HAVE_FCNTL:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
        try:
            yield
        finally:
            if _HAVE_FCNTL:
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)


@contextlib.contextmanager
def try_locked(path: os.PathLike) -> Iterator[bool]:
    """Non-blocking :func:`locked`; yields ``False`` if already held.

    Usage::

        with try_locked(lock_path(d)) as acquired:
            if acquired:
                ...critical section...
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "a+b") as handle:
        acquired = True
        if _HAVE_FCNTL:
            try:
                fcntl.flock(handle.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
            except OSError:
                acquired = False
        try:
            yield acquired
        finally:
            if acquired and _HAVE_FCNTL:
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)


def atomic_write_bytes(path: os.PathLike, data: bytes) -> None:
    """Write ``data`` to ``path`` atomically (temp file + ``os.replace``).

    The temp file lives in the destination directory so the final rename
    never crosses a filesystem boundary.  On any failure the temp file is
    removed and the original entry (if any) is left untouched.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def atomic_write_json(path: os.PathLike, payload: object, **dumps_kwargs) -> None:
    """Serialize ``payload`` as JSON and write it atomically to ``path``."""
    atomic_write_bytes(
        path, json.dumps(payload, **dumps_kwargs).encode("utf-8")
    )


def dir_stats(directory: os.PathLike, pattern: str) -> dict:
    """``{"entries": N, "bytes": B}`` for files matching ``pattern``.

    Entries that vanish mid-scan (a concurrent GC or overwrite) are simply
    skipped — statistics over a live directory are best-effort by nature.
    """
    directory = Path(directory)
    entries = 0
    total = 0
    if directory.is_dir():
        for entry in sorted(directory.glob(pattern)):
            try:
                total += entry.stat().st_size
            except OSError:
                continue
            entries += 1
    return {"entries": entries, "bytes": total}


def gc_entries(
    directory: os.PathLike,
    pattern: str,
    max_age_seconds: Optional[float] = None,
    max_entries: Optional[int] = None,
    now: Optional[float] = None,
) -> int:
    """Delete stale files matching ``pattern`` under ``directory``.

    ``max_age_seconds`` removes entries whose mtime is older than the
    cutoff; ``max_entries`` then removes the oldest entries beyond the
    cap.  Returns the number of files removed.  Callers are expected to
    hold the directory's GC lock (:func:`locked` / :func:`try_locked`) so
    two collectors never race each other; racing *writers* are safe
    because a freshly replaced entry carries a fresh mtime and an unlinked
    entry simply misses on next read.
    """
    directory = Path(directory)
    if not directory.is_dir():
        return 0
    import time

    # Lock-staleness GC compares host mtimes, so the host clock is the
    # only meaningful reference; nothing here feeds simulation results.
    now = time.time() if now is None else now  # sanitize: waive DET002 -- GC staleness is wall-time by definition
    candidates = []
    for entry in sorted(directory.glob(pattern)):
        try:
            mtime = entry.stat().st_mtime
        except OSError:
            continue
        candidates.append((mtime, entry))
    candidates.sort()

    doomed = []
    if max_age_seconds is not None:
        cutoff = now - max_age_seconds
        doomed.extend(e for mtime, e in candidates if mtime < cutoff)
    if max_entries is not None and len(candidates) > max_entries:
        survivors = [e for _m, e in candidates if e not in doomed]
        excess = len(survivors) - max_entries
        if excess > 0:
            doomed.extend(survivors[:excess])

    removed = 0
    for entry in doomed:
        try:
            entry.unlink()
            removed += 1
        except OSError:
            pass
    return removed
