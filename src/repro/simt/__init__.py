"""SIMT execution state: warps, thread blocks, divergence, registers.

This subpackage models the per-warp machinery of an SM: the reconvergence
stack that serializes divergent branch paths, the register file with a
ready-cycle scoreboard, and the functional executor that computes lane
results at issue time (timing is handled by the SM pipeline in
:mod:`repro.sm`).
"""

from .block import ThreadBlock
from .executor import FunctionalExecutor
from .mask import full_mask, lanes_of, popcount
from .registers import WarpRegisterFile
from .stack import SIMTStack, StackEntry
from .warp import Warp, WarpStatus
from .warpstate import WarpStateStore

__all__ = [
    "FunctionalExecutor",
    "WarpStateStore",
    "SIMTStack",
    "StackEntry",
    "ThreadBlock",
    "Warp",
    "WarpRegisterFile",
    "WarpStatus",
    "full_mask",
    "lanes_of",
    "popcount",
]
