"""Array-of-struct warp scheduling state for the vector backend.

:class:`WarpStateStore` keeps the two per-warp fields the per-cycle issue
loop actually scans — the wake cycle and the needs-global-memory flag —
in preallocated numpy arrays indexed by ``warp.dynamic_id``.  The store
turns the per-warp readiness probes of the scalar issue cores into one
batched mask (``wake <= now``) per SM per cycle: the vectorized scoreboard
check of :class:`repro.sm.vector.VectorSM`.

Design notes (see ``docs/backends.md``):

* The index **is** the dynamic id.  Dynamic ids are assigned by a per-SM
  sequential counter in dispatch order, so ``store.warps[i].dynamic_id == i``
  holds by construction and ``id % num_slots`` reproduces the scheduler-slot
  assignment of the scalar cores exactly.
* ``wake`` holds :meth:`repro.simt.warp.Warp.schedule_info`'s ready cycle —
  ``inf`` for finished or barrier-parked warps, so one comparison handles
  both readiness and runnability.  The array is refreshed only at the
  moments the memoized scalar value can change: the warp's own issue,
  barrier release, and block dispatch.
* PC, active mask, and stack depth deliberately stay on the
  :class:`~repro.simt.warp.Warp` object: they are read once per *issue*
  (not per cycle), so mirroring them into arrays would add sync writes to
  the hot path without removing any per-cycle work.
"""

from __future__ import annotations

import math
from typing import List

import numpy as np


class WarpStateStore:
    """Grow-only columnar store of per-warp scheduling state for one SM."""

    __slots__ = ("_wake", "_needs_mem", "_live", "warps")

    def __init__(self, capacity: int = 64) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self._wake = np.full(capacity, np.inf, dtype=np.float64)
        self._needs_mem = np.zeros(capacity, dtype=np.bool_)
        #: Warp objects indexed by dynamic id (append order == id order).
        self.warps: List = []
        #: Length of the leading run of *finished* warps (see
        #: :meth:`advance_live`).
        self._live = 0

    # -- columns (read-only views for the SM tick loop) -----------------
    @property
    def wake(self) -> np.ndarray:
        """Per-warp wake cycles (``inf`` for non-runnable warps)."""
        return self._wake

    @property
    def needs_mem(self) -> np.ndarray:
        """Per-warp flags: next instruction is a global memory access."""
        return self._needs_mem

    def __len__(self) -> int:
        return len(self.warps)

    # ------------------------------------------------------------------
    def add(self, warp) -> None:
        """Register a newly dispatched warp (must arrive in id order)."""
        idx = warp.dynamic_id
        if idx != len(self.warps):
            raise ValueError(
                f"warp dynamic_id {idx} out of order: store holds "
                f"{len(self.warps)} warps"
            )
        self.warps.append(warp)
        if idx >= self._wake.shape[0]:
            self._grow(idx + 1)
        self.refresh(warp)

    def _grow(self, needed: int) -> None:
        capacity = max(needed, 2 * self._wake.shape[0])
        wake = np.full(capacity, np.inf, dtype=np.float64)
        needs = np.zeros(capacity, dtype=np.bool_)
        old = self._wake.shape[0]
        wake[:old] = self._wake
        needs[:old] = self._needs_mem
        self._wake = wake
        self._needs_mem = needs

    def refresh(self, warp) -> None:
        """Re-read ``warp.schedule_info()`` into the columns.

        Must be called whenever the memoized tuple can have changed: after
        the warp issues, when a barrier releases it, and at dispatch.
        """
        t, needs_mem = warp.schedule_info()
        idx = warp.dynamic_id
        self._wake[idx] = t
        self._needs_mem[idx] = needs_mem

    def advance_live(self) -> int:
        """First index that could ever become runnable again.

        Finished warps are terminal, so the prefix of finished warps only
        grows; advancing a cursor past it lets the per-cycle masks scan
        only the live suffix instead of every warp ever dispatched.  Each
        warp is inspected O(1) times amortized.
        """
        lo = self._live
        warps = self.warps
        n = len(warps)
        while lo < n and warps[lo].finished:
            lo += 1
        self._live = lo
        return lo

    # ------------------------------------------------------------------
    def due(self, now: float, count: int) -> np.ndarray:
        """Indices (ascending) of warps with ``wake <= now``; the batched
        replacement for the scalar cores' per-warp readiness probes."""
        return np.flatnonzero(self._wake[:count] <= now)

    def min_wake(self, count: int) -> float:
        """Earliest wake cycle over the first ``count`` warps (inf if none)."""
        if not count:
            return math.inf
        return float(self._wake[:count].min())
