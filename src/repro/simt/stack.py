"""Per-warp SIMT reconvergence stack.

Implements the classic immediate-post-dominator stack used by GPGPU-sim: the
top-of-stack entry holds the warp's current PC and active mask.  On a
divergent branch the current entry is replaced by a reconvergence entry (at
the branch's reconvergence PC, with the merged mask) plus one entry per
distinct outcome; paths execute serially and pop when they reach their
reconvergence PC.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..errors import SimulationError
from .mask import popcount

#: Sentinel reconvergence PC for the base stack entry (never popped by PC match).
NO_RECONV = -1


@dataclass
class StackEntry:
    """One level of the reconvergence stack."""

    pc: int
    mask: int
    reconv_pc: int = NO_RECONV


class SIMTStack:
    """Reconvergence stack for one warp."""

    def __init__(self, entry_pc: int, mask: int) -> None:
        self._entries: List[StackEntry] = [StackEntry(entry_pc, mask)]

    @property
    def depth(self) -> int:
        return len(self._entries)

    @property
    def top(self) -> StackEntry:
        if not self._entries:
            raise SimulationError("SIMT stack underflow: warp has no active state")
        return self._entries[-1]

    @property
    def pc(self) -> int:
        try:
            return self._entries[-1].pc
        except IndexError:
            raise SimulationError(
                "SIMT stack underflow: warp has no active state"
            ) from None

    @property
    def active_mask(self) -> int:
        try:
            return self._entries[-1].mask
        except IndexError:
            raise SimulationError(
                "SIMT stack underflow: warp has no active state"
            ) from None

    @property
    def empty(self) -> bool:
        """True once every lane has exited."""
        return not self._entries or all(e.mask == 0 for e in self._entries)

    def advance(self, next_pc: int) -> None:
        """Move the top entry to ``next_pc``, popping at reconvergence points.

        Popping merges execution back into the parent entry, which by
        construction is parked at the same reconvergence PC.
        """
        top = self.top
        top.pc = next_pc
        entries = self._entries
        while len(entries) > 1 and entries[-1].pc == entries[-1].reconv_pc:
            entries.pop()

    def diverge(self, taken_pc: int, fallthrough_pc: int, taken_mask: int, reconv_pc: int) -> None:
        """Split the top entry on a divergent branch.

        Lanes in ``taken_mask`` go to ``taken_pc``; the rest fall through.
        Both subsets reconverge at ``reconv_pc``.  The fall-through subset is
        pushed last so it executes first (matching GPGPU-sim's ordering).
        """
        top = self.top
        current_mask = top.mask
        not_taken_mask = current_mask & ~taken_mask
        if taken_mask == 0 or not_taken_mask == 0:
            raise SimulationError(
                "diverge() called on a uniform branch "
                f"(taken={taken_mask:x} of {current_mask:x})"
            )
        # Repurpose the current entry as the reconvergence entry: it waits at
        # reconv_pc with the merged mask and keeps its own reconvergence PC.
        top.pc = reconv_pc
        self._entries.append(StackEntry(taken_pc, taken_mask, reconv_pc))
        self._entries.append(StackEntry(fallthrough_pc, not_taken_mask, reconv_pc))
        # A path that starts at its own reconvergence point (e.g. a loop-exit
        # branch targeting the loop end) has nothing to execute; pop it now.
        while len(self._entries) > 1 and self.top.pc == self.top.reconv_pc:
            self._entries.pop()

    def kill_lanes(self, mask: int) -> None:
        """Remove lanes in ``mask`` from every entry (thread EXIT)."""
        keep = ~mask
        for entry in self._entries:
            entry.mask &= keep
        # Drop dead entries on top so the warp does not "execute" with an
        # all-zero mask.
        while len(self._entries) > 1 and self.top.mask == 0:
            self._entries.pop()

    def active_lane_count(self) -> int:
        return popcount(self.active_mask)

    def snapshot(self) -> List[StackEntry]:
        """Copy of the entries, bottom to top (for tests/debugging)."""
        return [StackEntry(e.pc, e.mask, e.reconv_pc) for e in self._entries]
