"""Active-mask helpers.

Masks are plain Python integers used as bit sets over warp lanes: bit ``i``
set means lane ``i`` is active.  Python ints make set algebra (and, or,
and-not) one opcode each and are arbitrarily wide, so warp sizes other than
32 work unchanged.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np


def full_mask(width: int) -> int:
    """All ``width`` lanes active."""
    return (1 << width) - 1


if hasattr(int, "bit_count"):  # Python >= 3.10

    def popcount(mask: int) -> int:
        """Number of active lanes in ``mask``."""
        return mask.bit_count()

else:  # pragma: no cover - Python 3.9 fallback

    def popcount(mask: int) -> int:
        """Number of active lanes in ``mask``."""
        return bin(mask).count("1")


def lanes_of(mask: int) -> Iterator[int]:
    """Yield the indices of the active lanes in ascending order."""
    lane = 0
    while mask:
        if mask & 1:
            yield lane
        mask >>= 1
        lane += 1


def mask_from_bools(flags: Sequence[bool]) -> int:
    """Build a mask from a sequence of per-lane booleans."""
    arr = np.asarray(flags, dtype=bool)
    packed = np.packbits(arr, bitorder="little")
    return int.from_bytes(packed.tobytes(), "little")


_BOOLS_CACHE = {}


def bools_from_mask(mask: int, width: int) -> np.ndarray:
    """Expand a mask into a boolean numpy vector of length ``width``.

    Results are memoized (masks repeat heavily across a run); callers must
    treat the returned array as read-only.
    """
    key = (mask, width)
    cached = _BOOLS_CACHE.get(key)
    if cached is None:
        cached = np.array(
            [(mask >> lane) & 1 == 1 for lane in range(width)], dtype=bool
        )
        cached.setflags(write=False)
        if len(_BOOLS_CACHE) < 65536:
            _BOOLS_CACHE[key] = cached
    return cached
