"""Warp runtime state.

A :class:`Warp` bundles everything the SM pipeline needs to schedule and
execute one warp: its SIMT stack, register file/scoreboard, barrier status,
and the per-warp statistics (issue counts, stall cycles, criticality
counter) that feed the CAWA components.
"""

from __future__ import annotations

import enum
from typing import Dict, Optional

import numpy as np

from ..isa.instructions import MemSpace, Special
from .mask import full_mask, popcount
from .registers import WarpRegisterFile
from .stack import SIMTStack


class WarpStatus(enum.Enum):
    RUNNING = "running"
    AT_BARRIER = "at_barrier"
    FINISHED = "finished"


class Warp:
    """One hardware warp resident on an SM."""

    def __init__(
        self,
        warp_id_in_block: int,
        block,
        warp_size: int,
        num_regs: int,
        num_preds: int,
        dynamic_id: int,
    ) -> None:
        self.warp_id_in_block = warp_id_in_block
        self.block = block
        self.warp_size = warp_size
        #: Monotonic dispatch-order id; GTO's "oldest" tie-break key.
        self.dynamic_id = dynamic_id

        first_thread = warp_id_in_block * warp_size
        active_threads = max(0, min(warp_size, block.block_dim - first_thread))
        self.initial_mask = full_mask(active_threads)

        self.rf = WarpRegisterFile(num_regs, num_preds, warp_size)
        self.stack = SIMTStack(entry_pc=0, mask=self.initial_mask)
        self.status = WarpStatus.RUNNING

        lanes = np.arange(warp_size, dtype=np.float64)
        tid = first_thread + lanes
        self._specials: Dict[Special, np.ndarray] = {
            Special.TID: tid,
            Special.CTAID: np.full(warp_size, float(block.block_id)),
            Special.NTID: np.full(warp_size, float(block.block_dim)),
            Special.NCTAID: np.full(warp_size, float(block.grid_dim)),
            Special.GTID: block.block_id * block.block_dim + tid,
            Special.LANEID: lanes,
            Special.WARPID: np.full(warp_size, float(warp_id_in_block)),
        }

        # -- timing / statistics ---------------------------------------
        self.start_cycle: float = 0.0
        self.finish_cycle: Optional[float] = None
        self.issued_instructions: int = 0
        self.thread_instructions: int = 0
        self.divergent_branches: int = 0
        self.last_issue_cycle: float = 0.0
        self.total_stall_cycles: float = 0.0
        self.mem_stall_cycles: float = 0.0
        self.sched_stall_cycles: float = 0.0
        self.pending_loads: int = 0
        #: Cycle this warp was last released from a block barrier, or -1.0.
        #: Written only when the event bus is live (see
        #: :meth:`repro.sm.sm.StreamingMultiprocessor._release_barrier`);
        #: consumed-and-reset by the issue-time stall decomposition so the
        #: barrier wait is attributed to the BARRIER bucket, not the
        #: operand-dependence ones.
        self.obs_barrier_release: float = -1.0

        # -- scheduling cache (invalidated by this warp's own issues) ---
        self._sched_cache_version: int = -1
        self._cached_ready: float = 0.0
        self._cached_needs_mem: bool = False
        self._cached_opready: float = 0.0
        self._cached_by_load: bool = False
        #: True while this warp has an entry in its SM slot's wake heap
        #: (event-driven core).  Guards the one-entry-per-warp invariant.
        self._queued: bool = False

        # -- CPL state (Section 3.1) -----------------------------------
        #: Relative dynamic-instruction disparity term (nInst in Eq. 1).
        self.cpl_inst_disparity: float = 0.0
        #: Accumulated stall cycles term (nStall in Eq. 1).
        self.cpl_stall: float = 0.0
        #: Cached criticality counter value (Eq. 1), kept current by CPL.
        self.criticality: float = 0.0
        #: Latched slow-warp verdict, refreshed periodically by CPL.
        self.is_critical_flag: bool = False

    # ------------------------------------------------------------------
    @property
    def pc(self) -> int:
        return self.stack.pc

    @property
    def active_mask(self) -> int:
        return self.stack.active_mask

    @property
    def finished(self) -> bool:
        return self.status is WarpStatus.FINISHED

    @property
    def at_barrier(self) -> bool:
        return self.status is WarpStatus.AT_BARRIER

    def special_values(self, special: Special) -> np.ndarray:
        return self._specials[special]

    def next_instruction(self):
        """The static instruction at the warp's current PC."""
        return self.block.kernel.instructions[self.pc]

    def operands_ready_at(self) -> float:
        """Earliest cycle the next instruction's operands are available.

        Returns ``inf`` while a needed register waits on an outstanding load
        (the wake-up happens when the memory response arrives).
        """
        inst = self.next_instruction()
        pred_is_dst = inst.writes_predicate
        dst = inst.dst if (inst.writes_register or pred_is_dst) else None
        return self.rf.operands_ready_at(inst.srcs, dst, inst.pred, pred_is_dst)

    def operands_ready_detail(self):
        """``(ready_cycle, limited_by_load)`` for the next instruction.

        Memoized together with :meth:`schedule_info` on the issue count: the
        scoreboard only changes at this warp's own issue, so a fresh
        scheduling cache already holds the answer.
        """
        if self._sched_cache_version != self.issued_instructions:
            self._refresh_sched_cache()
        return self._cached_opready, self._cached_by_load

    def _refresh_sched_cache(self) -> None:
        """Recompute readiness, memory-need, and load-provenance in one pass."""
        self._sched_cache_version = self.issued_instructions
        inst = self.block.kernel.instructions[self.stack.pc]
        pred_is_dst = inst.writes_predicate
        dst = inst.dst if (inst.writes_register or pred_is_dst) else None
        ready, by_load = self.rf.operands_ready_detail(
            inst.srcs, dst, inst.pred, pred_is_dst
        )
        floor = (
            self.last_issue_cycle + 1 if self.issued_instructions else self.start_cycle
        )
        self._cached_opready = ready
        self._cached_by_load = by_load
        self._cached_ready = ready if ready > floor else floor
        self._cached_needs_mem = inst.is_memory and inst.space is MemSpace.GLOBAL

    def schedule_info(self):
        """``(ready_cycle, next_needs_global_memory)``, cached between issues.

        A warp's scoreboard, PC, and last-issue cycle only change when the
        warp itself issues, so the tuple is memoized on the issue count —
        this keeps both the readiness scan and the event core's wake-queue
        updates cheap.
        """
        if self.status is not WarpStatus.RUNNING:
            return np.inf, False
        if self._sched_cache_version != self.issued_instructions:
            self._refresh_sched_cache()
        return self._cached_ready, self._cached_needs_mem

    def issuable_at(self) -> float:
        """Earliest cycle this warp could issue, or ``inf`` if blocked.

        Accounts for operand readiness and the one-instruction-per-cycle
        issue limit (but not MSHR back-pressure; the SM layers that on).
        """
        return self.schedule_info()[0]

    def mark_finished(self, cycle: float) -> None:
        self.status = WarpStatus.FINISHED
        self.finish_cycle = cycle
        self.block.note_warp_finished(self, cycle)

    @property
    def execution_time(self) -> float:
        """Cycles from block dispatch to this warp's EXIT."""
        end = self.finish_cycle if self.finish_cycle is not None else self.last_issue_cycle
        return max(0.0, end - self.start_cycle)

    def active_lane_count(self) -> int:
        return popcount(self.active_mask)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Warp(block={self.block.block_id}, w={self.warp_id_in_block}, "
            f"pc={self.pc if not self.finished else 'done'}, "
            f"status={self.status.value}, crit={self.criticality:.1f})"
        )
