"""Thread-block (CTA) life-cycle and barrier bookkeeping.

All warps of a block are dispatched to an SM together, share the block's
shared-memory segment and synchronization barrier, and the block only
commits when its slowest (critical) warp exits — exactly the coupling that
creates the warp-criticality problem the paper studies.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..errors import SimulationError


class ThreadBlock:
    """One cooperative thread array resident on an SM."""

    def __init__(
        self,
        block_id: int,
        block_dim: int,
        grid_dim: int,
        kernel,
        warp_size: int,
    ) -> None:
        self.block_id = block_id
        self.block_dim = block_dim
        self.grid_dim = grid_dim
        self.kernel = kernel
        self.warp_size = warp_size
        self.num_warps = (block_dim + warp_size - 1) // warp_size
        self.warps: List = []  # filled by the dispatcher

        words = max(1, kernel.shared_mem_bytes // 8)
        self._shared = np.zeros(words, dtype=np.float64)

        self.dispatch_cycle: float = 0.0
        self.commit_cycle: Optional[float] = None
        self._finished_warps = 0
        self._barrier_waiting = 0

    # -- shared memory -------------------------------------------------
    def shared_load(self, addrs: np.ndarray, mask_bools: np.ndarray) -> np.ndarray:
        idx = (addrs // 8) % len(self._shared)
        values = self._shared[idx]
        return np.where(mask_bools, values, 0.0)

    def shared_store(self, addrs: np.ndarray, values: np.ndarray, mask_bools: np.ndarray) -> None:
        idx = (addrs // 8) % len(self._shared)
        # Serialize lane stores in lane order (deterministic conflict winner).
        for lane in np.nonzero(mask_bools)[0]:
            self._shared[idx[lane]] = values[lane]

    # -- barriers --------------------------------------------------------
    def barrier_arrive(self, warp) -> bool:
        """Register ``warp`` at the block barrier.

        Returns True when this arrival releases the barrier (all unfinished
        warps have arrived); the SM then resumes every waiting warp.
        """
        from .warp import WarpStatus

        if warp.status is not WarpStatus.RUNNING:
            raise SimulationError("warp arrived at barrier while not running")
        warp.status = WarpStatus.AT_BARRIER
        self._barrier_waiting += 1
        outstanding = self.num_warps - self._finished_warps
        return self._barrier_waiting >= outstanding

    def barrier_release(self) -> List:
        """Release all warps waiting at the barrier; returns them."""
        from .warp import WarpStatus

        released = [w for w in self.warps if w.status is WarpStatus.AT_BARRIER]
        for warp in released:
            warp.status = WarpStatus.RUNNING
        self._barrier_waiting = 0
        return released

    # -- completion ------------------------------------------------------
    def note_warp_finished(self, warp, cycle: float) -> None:
        self._finished_warps += 1
        if self._finished_warps == self.num_warps:
            self.commit_cycle = cycle
        elif self._barrier_waiting and self._barrier_waiting >= self.num_warps - self._finished_warps:
            # A finishing warp can release a barrier the rest already reached.
            # The SM polls `barrier_ready` to perform the release.
            pass

    @property
    def barrier_pending_release(self) -> bool:
        outstanding = self.num_warps - self._finished_warps
        return 0 < outstanding <= self._barrier_waiting

    @property
    def live_warps(self) -> int:
        """Warps of this block that have not yet exited."""
        return self.num_warps - self._finished_warps

    @property
    def done(self) -> bool:
        return self._finished_warps >= self.num_warps

    @property
    def execution_time(self) -> Optional[float]:
        if self.commit_cycle is None:
            return None
        return self.commit_cycle - self.dispatch_cycle

    def warp_execution_times(self) -> List[float]:
        """Per-warp execution times (block dispatch to warp exit)."""
        return [w.execution_time for w in self.warps]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ThreadBlock(id={self.block_id}, warps={self.num_warps}, "
            f"finished={self._finished_warps})"
        )
