"""Per-warp register file with a ready-cycle scoreboard.

Values are computed functionally at issue time; the scoreboard only tracks
*when* each register's value would be available in hardware, which is what
creates realistic stall behaviour (RAW hazards on long-latency loads are the
dominant source of warp stalls the paper's CPL measures).

Registers are warp-wide: one 64-bit float per lane.  The scoreboard is also
warp-wide (one ready cycle per architectural register), matching how GPU
scoreboards track dependencies at warp granularity.
"""

from __future__ import annotations

import math

import numpy as np

#: Ready-cycle marker for a register waiting on an outstanding load whose
#: completion time is not yet known.
PENDING = np.inf


class WarpRegisterFile:
    """Registers, predicates, and their scoreboards for one warp."""

    def __init__(self, num_regs: int, num_preds: int, warp_size: int) -> None:
        self.warp_size = warp_size
        self.regs = np.zeros((num_regs, warp_size), dtype=np.float64)
        self.preds = np.zeros((num_preds, warp_size), dtype=bool)
        # The scoreboards are plain Python lists: they are read one scalar
        # at a time on the scheduler hot path, where list indexing is
        # several times cheaper than numpy scalar indexing.
        self.reg_ready = [0.0] * num_regs
        self.pred_ready = [0.0] * num_preds
        #: True for registers whose last writer was a load; lets the stall
        #: accounting attribute data stalls to the memory subsystem.
        self.reg_from_load = [False] * num_regs

    # -- value access -------------------------------------------------
    def read(self, reg: int) -> np.ndarray:
        """Lane values of ``reg`` (a view; callers must not mutate)."""
        return self.regs[reg]

    def write(self, reg: int, values: np.ndarray, mask_bools: np.ndarray) -> None:
        """Write ``values`` into ``reg`` in lanes where ``mask_bools``."""
        np.copyto(self.regs[reg], values, where=mask_bools)

    def read_pred(self, pred: int) -> np.ndarray:
        return self.preds[pred]

    def write_pred(self, pred: int, values: np.ndarray, mask_bools: np.ndarray) -> None:
        np.copyto(self.preds[pred], values, where=mask_bools)

    # -- scoreboard ---------------------------------------------------
    def operands_ready_at(self, srcs, dst, pred, pred_is_dst: bool = False) -> float:
        """Earliest cycle at which all named operands are available.

        ``srcs`` are read registers, ``dst`` is the written register (WAW
        hazards also stall issue), ``pred`` is a read predicate.  When
        ``pred_is_dst`` the instruction writes predicate ``dst`` instead of a
        general register.
        """
        ready = 0.0
        for src in srcs:
            value = self.reg_ready[src]
            if value > ready:
                ready = value
        if dst is not None:
            board = self.pred_ready if pred_is_dst else self.reg_ready
            value = board[dst]
            if value > ready:
                ready = value
        if pred is not None:
            value = self.pred_ready[pred]
            if value > ready:
                ready = value
        return float(ready)

    def operands_ready_detail(self, srcs, dst, pred, pred_is_dst: bool = False):
        """Like :meth:`operands_ready_at` but also reports memory provenance.

        Returns ``(ready_cycle, limited_by_load)`` where the flag is True
        when a register produced by a load is (one of) the latest operands.
        """
        ready = 0.0
        by_load = False
        for src in srcs:
            value = self.reg_ready[src]
            if value > ready:
                ready = value
                by_load = bool(self.reg_from_load[src])
            elif value == ready and self.reg_from_load[src]:
                by_load = True
        if dst is not None:
            board = self.pred_ready if pred_is_dst else self.reg_ready
            value = board[dst]
            if value > ready:
                ready = value
                by_load = bool(not pred_is_dst and self.reg_from_load[dst])
        if pred is not None:
            value = self.pred_ready[pred]
            if value > ready:
                ready = value
                by_load = False
        return float(ready), by_load

    def set_reg_ready(self, reg: int, cycle: float, from_load: bool = False) -> None:
        self.reg_ready[reg] = float(cycle)
        self.reg_from_load[reg] = from_load

    def set_pred_ready(self, pred: int, cycle: float) -> None:
        self.pred_ready[pred] = float(cycle)

    def mark_reg_pending(self, reg: int) -> None:
        """Mark ``reg`` as waiting on an in-flight load."""
        self.reg_ready[reg] = PENDING

    def min_pending_free_cycle(self) -> float:
        """Largest finite ready cycle (for idle-skip scheduling)."""
        later = max(
            (v for v in self.reg_ready if math.isfinite(v)), default=0.0
        )
        pred_max = max(self.pred_ready, default=0.0)
        return max(later, pred_max)
