"""Functional (value-level) execution of instructions.

The executor computes architectural results for all active lanes of a warp
at issue time using numpy; the SM pipeline separately accounts for *when*
those results become visible (latency, memory system).  This split — values
now, timing later — is the standard performance-simulator trade and keeps
the Python inner loop proportional to issued instructions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..errors import SimulationError
from ..isa.instructions import CmpOp, Instruction, MemSpace, Opcode, Special
from .mask import bools_from_mask, mask_from_bools


@dataclass
class ExecResult:
    """Outcome of functionally executing one instruction for one warp.

    Attributes:
        taken_mask: for branches, lanes (within the incoming active mask)
            whose predicate selected the branch target.
        mem_addrs: for LD/ST, per-lane byte addresses (full warp width;
            only lanes in ``mem_mask`` are meaningful).
        mem_mask: lanes that actually access memory (active mask further
            restricted by the instruction's guard predicate).
        mem_lines: pre-coalesced line addresses, supplied only by the
            trace-replay frontend (:class:`repro.trace.replay.TraceExecutor`);
            when set, the LSU skips coalescing and uses them directly.
        is_exit: EXIT reached.
        is_barrier: BAR reached.
    """

    taken_mask: int = 0
    mem_addrs: Optional[np.ndarray] = None
    mem_mask: int = 0
    mem_lines: Optional[list] = None
    is_exit: bool = False
    is_barrier: bool = False


class FunctionalExecutor:
    """Executes instructions against warp register state and data memory."""

    def __init__(self, global_mem, warp_size: int) -> None:
        self._mem = global_mem
        self._warp_size = warp_size

    def execute(self, inst: Instruction, warp) -> ExecResult:
        """Execute ``inst`` for ``warp``'s currently active lanes."""
        op = inst.op
        rf = warp.rf
        active = warp.active_mask

        # Guard predicate restricts effect lanes (except for BRA, where the
        # predicate is the branch condition, and SELP, where it selects).
        effect_mask = active
        if inst.pred is not None and op not in (Opcode.BRA, Opcode.SELP):
            pvals = rf.read_pred(inst.pred)
            pmask = mask_from_bools(pvals)
            if inst.pred_neg:
                pmask = ~pmask & ((1 << self._warp_size) - 1)
            effect_mask &= pmask

        if op is Opcode.BRA:
            if inst.pred is None:
                return ExecResult(taken_mask=active)
            pvals = rf.read_pred(inst.pred)
            taken = mask_from_bools(pvals)
            if inst.pred_neg:
                taken = ~taken & ((1 << self._warp_size) - 1)
            return ExecResult(taken_mask=taken & active)

        if op in (Opcode.NOP, Opcode.RECONV):
            return ExecResult()
        if op is Opcode.BAR:
            return ExecResult(is_barrier=True)
        if op is Opcode.EXIT:
            return ExecResult(is_exit=True)

        mask_bools = bools_from_mask(effect_mask, self._warp_size)

        if op is Opcode.LD or op is Opcode.ST:
            base = rf.read(inst.srcs[0])
            offset = 0.0 if inst.imm is None else inst.imm
            addrs = base.astype(np.int64) + np.int64(offset)
            if op is Opcode.LD:
                if effect_mask:
                    values = self._load(inst.space, addrs, mask_bools, warp)
                    rf.write(inst.dst, values, mask_bools)
            else:
                if effect_mask:
                    values = rf.read(inst.srcs[1])
                    self._store(inst.space, addrs, values, mask_bools, warp)
            return ExecResult(mem_addrs=addrs, mem_mask=effect_mask)

        if op is Opcode.SETP:
            a, b = self._binary_operands(inst, rf)
            result = _COMPARES[inst.cmp](a, b)
            rf.write_pred(inst.dst, result, mask_bools)
            return ExecResult()

        if op is Opcode.SELP:
            a, b = self._binary_operands(inst, rf)
            sel = rf.read_pred(inst.pred)
            rf.write(inst.dst, np.where(sel, a, b), bools_from_mask(active, self._warp_size))
            return ExecResult()

        if op is Opcode.SREG:
            values = warp.special_values(inst.special)
            rf.write(inst.dst, values, mask_bools)
            return ExecResult()

        if op is Opcode.MAD:
            a = rf.read(inst.srcs[0])
            if inst.imm is not None and len(inst.srcs) == 2:
                b = np.float64(inst.imm)
                c = rf.read(inst.srcs[1])
            elif len(inst.srcs) == 3:
                b = rf.read(inst.srcs[1])
                c = rf.read(inst.srcs[2])
            else:
                raise SimulationError(f"malformed MAD operands at pc={inst.pc}")
            rf.write(inst.dst, a * b + c, mask_bools)
            return ExecResult()

        handler = _UNARY.get(op)
        if handler is not None:
            a = self._unary_operand(inst, rf)
            rf.write(inst.dst, handler(a), mask_bools)
            return ExecResult()

        handler = _BINARY.get(op)
        if handler is not None:
            a, b = self._binary_operands(inst, rf)
            rf.write(inst.dst, handler(a, b), mask_bools)
            return ExecResult()

        raise SimulationError(f"unimplemented opcode {op!r} at pc={inst.pc}")

    # ------------------------------------------------------------------
    def _unary_operand(self, inst: Instruction, rf) -> np.ndarray:
        if inst.srcs:
            return rf.read(inst.srcs[0])
        if inst.imm is None:
            raise SimulationError(f"missing operand at pc={inst.pc}")
        return np.full(self._warp_size, inst.imm, dtype=np.float64)

    def _binary_operands(self, inst: Instruction, rf):
        if len(inst.srcs) == 2:
            return rf.read(inst.srcs[0]), rf.read(inst.srcs[1])
        if len(inst.srcs) == 1 and inst.imm is not None:
            return rf.read(inst.srcs[0]), np.float64(inst.imm)
        raise SimulationError(f"malformed operands at pc={inst.pc}")

    def _load(self, space: MemSpace, addrs, mask_bools, warp) -> np.ndarray:
        if space is MemSpace.SHARED:
            return warp.block.shared_load(addrs, mask_bools)
        return self._mem.load(addrs, mask_bools)

    def _store(self, space: MemSpace, addrs, values, mask_bools, warp) -> None:
        if space is MemSpace.SHARED:
            warp.block.shared_store(addrs, values, mask_bools)
        else:
            self._mem.store(addrs, values, mask_bools)


def _to_int(x: np.ndarray) -> np.ndarray:
    return np.asarray(x, dtype=np.float64).astype(np.int64)


def _safe_div(a: np.ndarray, b) -> np.ndarray:
    b_arr = np.broadcast_to(np.asarray(b, dtype=np.float64), np.shape(a)).copy()
    zero = b_arr == 0
    b_arr[zero] = 1.0
    out = a / b_arr
    out = np.where(zero, 0.0, out)
    return out


def _safe_mod(a: np.ndarray, b) -> np.ndarray:
    b_arr = np.broadcast_to(np.asarray(b, dtype=np.float64), np.shape(a)).copy()
    zero = b_arr == 0
    b_arr[zero] = 1.0
    out = np.mod(a, b_arr)
    return np.where(zero, 0.0, out)


def _safe_unary(fn, domain_fix):
    def wrapped(a: np.ndarray) -> np.ndarray:
        with np.errstate(all="ignore"):
            out = fn(domain_fix(a))
        return np.nan_to_num(out, nan=0.0, posinf=0.0, neginf=0.0)

    return wrapped


_UNARY = {
    Opcode.MOV: lambda a: a,
    Opcode.ABS: np.abs,
    Opcode.NEG: lambda a: -a,
    Opcode.NOT: lambda a: (~_to_int(a)).astype(np.float64),
    Opcode.FLOOR: np.floor,
    Opcode.SQRT: _safe_unary(np.sqrt, lambda a: np.maximum(a, 0.0)),
    Opcode.RSQRT: _safe_unary(lambda a: 1.0 / np.sqrt(a), lambda a: np.maximum(a, 1e-300)),
    Opcode.RCP: _safe_unary(lambda a: 1.0 / a, lambda a: np.where(a == 0, 1e-300, a)),
    Opcode.EXP: _safe_unary(np.exp, lambda a: np.clip(a, -700, 700)),
    Opcode.LOG: _safe_unary(np.log, lambda a: np.maximum(a, 1e-300)),
    Opcode.SIN: np.sin,
    Opcode.COS: np.cos,
}

_BINARY = {
    Opcode.ADD: lambda a, b: a + b,
    Opcode.SUB: lambda a, b: a - b,
    Opcode.MUL: lambda a, b: a * b,
    Opcode.DIV: _safe_div,
    Opcode.MOD: _safe_mod,
    Opcode.MIN: np.minimum,
    Opcode.MAX: np.maximum,
    Opcode.AND: lambda a, b: (_to_int(a) & _to_int(b)).astype(np.float64),
    Opcode.OR: lambda a, b: (_to_int(a) | _to_int(b)).astype(np.float64),
    Opcode.XOR: lambda a, b: (_to_int(a) ^ _to_int(b)).astype(np.float64),
    Opcode.SHL: lambda a, b: (_to_int(a) << np.clip(_to_int(b), 0, 62)).astype(np.float64),
    Opcode.SHR: lambda a, b: (_to_int(a) >> np.clip(_to_int(b), 0, 62)).astype(np.float64),
}

_COMPARES = {
    CmpOp.LT: lambda a, b: a < b,
    CmpOp.LE: lambda a, b: a <= b,
    CmpOp.GT: lambda a, b: a > b,
    CmpOp.GE: lambda a, b: a >= b,
    CmpOp.EQ: lambda a, b: a == b,
    CmpOp.NE: lambda a, b: a != b,
}
