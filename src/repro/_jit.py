"""Optional numba JIT support for the vectorized backend.

The vector backend (``GPUConfig.backend='vector'``, see ``docs/backends.md``)
is numpy-first: every batched kernel has a pure-numpy implementation that is
bit-identical to the scalar Python path.  A few of those kernels are small
scalar loops that numba compiles well (first-match tag probes, running-max
queue recurrences); when numba is importable they are compiled with
``@njit``, and when it is not they silently fall back to the numpy
implementation.  numba is therefore **never** a dependency — environments
without it run the full suite, including the vector-backend parity grid, on
the numpy path alone (``tests/test_vector_fallback.py`` pins this contract).

Set ``REPRO_NO_NUMBA=1`` to force the numpy fallbacks even when numba is
installed (useful for A/B-ing the two paths).
"""

from __future__ import annotations

import os

HAS_NUMBA = False
_numba = None

if not os.environ.get("REPRO_NO_NUMBA"):
    try:  # pragma: no cover - exercised only where numba is installed
        import numba as _numba  # type: ignore

        HAS_NUMBA = True
    except ImportError:
        _numba = None
        HAS_NUMBA = False


def jit_or(fallback):
    """Decorator factory: ``@njit``-compile the function, or use ``fallback``.

    ``fallback`` must be a numpy (or plain Python) implementation with the
    same signature and bit-identical results.  With numba present the
    decorated loop body is compiled lazily on first call; without it the
    decorated function is *replaced* by ``fallback`` so there is no
    per-call dispatch cost.
    """

    def decorate(fn):
        if HAS_NUMBA:  # pragma: no cover - exercised only with numba
            return _numba.njit(cache=True)(fn)
        return fallback

    return decorate
