"""Lint rule registry and the :func:`lint_kernel` driver.

Each rule has a **stable ID** (referenced by suppressions, tests, and CI
baselines), a default :class:`Severity`, and a checker that walks the shared
:class:`LintContext` (kernel + CFG + lazily-computed dataflow and path
bounds) yielding findings.  The catalogue — documented in
``docs/static_analysis.md`` — currently covers:

=========  ========  =====================================================
rule id    severity  what it catches
=========  ========  =====================================================
CFG001     error     unreachable basic blocks
CFG002     error     ill-nested / backward reconvergence points
CFG003     error     blocks with no path to EXIT (infinite-loop candidate)
CFG004     error     reconvergence PC not dominated by its branch
CTL001     error     predicated EXIT (the SM kills *all* lanes at EXIT)
CTL002     error     predicated BAR (barrier arrival ignores the guard)
BAR001     error     BAR reachable under divergent control flow
DF001      warning   register/predicate read before any write
DF002      warning   dead write (no path observes the value)
MEM001     warning   coalescing-hostile per-lane stride
MEM002     error     out-of-bounds / negative constant address
PATH001    error     CPL Algorithm-2 path size outside static bounds
=========  ========  =====================================================

Suppressions: ``KernelBuilder.waive_lint("DF002", reason=...)`` (or a
``lint_waivers`` attribute on a hand-built :class:`~repro.isa.kernel.Kernel`)
marks a rule as acknowledged for the whole kernel.  Waived findings are
still reported — with ``suppressed=True`` — but do not fail the lint.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from functools import cached_property
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Tuple,
)

from ..isa.instructions import Opcode
from .cfg import CFG
from .common import BaseFinding, ReportBase, Rule, RuleRegistry, Severity
from .dataflow import DataflowResult, analyze_dataflow

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..isa.kernel import Kernel
    from .pathlen import PathBounds

__all__ = [
    "Severity",
    "Finding",
    "LintReport",
    "LintRule",
    "LintContext",
    "RULES",
    "rule",
    "lint_kernel",
]


@dataclass(frozen=True)
class Finding(BaseFinding):
    """One lint hit, tied to a rule ID and a PC in one kernel."""

    kernel: str = ""
    pc: int = -1
    #: The offending source line, as rendered by ``Kernel.disassemble``.
    source: str = ""

    def location(self) -> str:
        return f"{self.kernel}:pc={self.pc}"

    def to_dict(self) -> Dict[str, object]:
        out = super().to_dict()
        out.update(kernel=self.kernel, pc=self.pc, source=self.source)
        return out

    def __str__(self) -> str:
        line = f" | {self.source}" if self.source else ""
        return super().__str__() + line


@dataclass
class LintReport(ReportBase):
    """All findings for one kernel, plus pass/fail summary logic."""

    kernel: str
    findings: List[Finding] = field(default_factory=list)

    @property
    def subject(self) -> str:
        return self.kernel

    def to_dict(self) -> Dict[str, object]:
        out = super().to_dict()
        # Historical key: lint reports name their subject "kernel".
        out["kernel"] = out.pop("subject")
        return out


# ----------------------------------------------------------------------
# Shared analysis context
# ----------------------------------------------------------------------
@dataclass
class LintContext:
    """Everything a rule checker may consult, computed lazily and shared."""

    kernel: "Kernel"
    cfg: CFG
    warp_size: int = 32
    line_size: int = 128

    @cached_property
    def dataflow(self) -> DataflowResult:
        return analyze_dataflow(self.kernel, self.cfg)

    @cached_property
    def bounds(self) -> "PathBounds":
        from .pathlen import compute_path_bounds  # deferred: keeps cycles out

        return compute_path_bounds(self.kernel, self.cfg)

    def source(self, pc: int) -> str:
        line = getattr(self.kernel, "source_line", None)
        if callable(line):
            return line(pc)
        return repr(self.kernel.instructions[pc])


# ----------------------------------------------------------------------
# Rule registry
# ----------------------------------------------------------------------
Checker = Callable[[LintContext], Iterator[Tuple[int, str]]]

#: One registered rule: stable ID, severity, title, and its checker.
LintRule = Rule

_REGISTRY: RuleRegistry[Checker] = RuleRegistry("lint")

#: The live rule catalogue, keyed by stable ID (aliases the registry's
#: mapping — historical public name, used by tests and the CLI).
RULES: Dict[str, Rule[Checker]] = _REGISTRY.rules

#: Decorator registering a checker under a stable ID in :data:`RULES`.
rule = _REGISTRY.rule


# ----------------------------------------------------------------------
# CFG structure rules
# ----------------------------------------------------------------------
@rule("CFG001", Severity.ERROR, "unreachable basic block")
def _check_unreachable(ctx: LintContext) -> Iterator[Tuple[int, str]]:
    for block in ctx.cfg.unreachable_blocks:
        yield block.start, (
            f"basic block BB{block.bid} [{block.start}:{block.end}) is "
            "unreachable from the kernel entry"
        )


@rule("CFG002", Severity.ERROR, "ill-nested or backward reconvergence")
def _check_reconv_nesting(ctx: LintContext) -> Iterator[Tuple[int, str]]:
    branches = ctx.cfg.branches
    for site in branches:
        if site.reconv_pc <= site.pc:
            yield site.pc, (
                f"reconvergence pc {site.reconv_pc} does not lie after the "
                f"branch (backward or self reconvergence)"
            )
    for outer in branches:
        for inner in branches:
            if inner.pc == outer.pc or not outer.contains(inner.pc):
                continue
            if inner.reconv_pc > outer.reconv_pc:
                yield inner.pc, (
                    f"branch region [{inner.pc + 1}, {inner.reconv_pc}) is "
                    f"not nested inside the enclosing branch at pc="
                    f"{outer.pc} (which reconverges at {outer.reconv_pc}); "
                    "the SIMT stack pops in the wrong order"
                )


@rule("CFG003", Severity.ERROR, "no path to EXIT (infinite-loop candidate)")
def _check_reaches_exit(ctx: LintContext) -> Iterator[Tuple[int, str]]:
    cfg = ctx.cfg
    for block in cfg.blocks:
        if block.bid in cfg.reachable and block.bid not in cfg.reaches_exit:
            yield block.start, (
                f"no execution path from pc {block.start} ever reaches an "
                "EXIT: every warp entering this block loops forever"
            )


@rule("CFG004", Severity.ERROR, "reconvergence point not dominated by branch")
def _check_reconv_dominated(ctx: LintContext) -> Iterator[Tuple[int, str]]:
    cfg = ctx.cfg
    for site in cfg.branches:
        if site.is_loop_break:
            # Sibling loop breaks legitimately share the loop-exit RECONV,
            # which the *loop header*, not each break, dominates.
            continue
        if not (site.pc < site.reconv_pc < len(ctx.kernel.instructions)):
            # Backward / out-of-range reconvergence is CFG002's territory.
            continue
        if not cfg.pc_dominates(site.pc, site.reconv_pc):
            yield site.pc, (
                f"reconvergence pc {site.reconv_pc} is reachable without "
                f"executing the branch at pc {site.pc}: the SIMT stack entry "
                "pushed here may never be popped"
            )


# ----------------------------------------------------------------------
# Control / predication rules
# ----------------------------------------------------------------------
@rule("CTL001", Severity.ERROR, "predicated EXIT")
def _check_predicated_exit(ctx: LintContext) -> Iterator[Tuple[int, str]]:
    for inst in ctx.kernel.instructions:
        if inst.op is Opcode.EXIT and inst.pred is not None:
            yield inst.pc, (
                "EXIT ignores its guard predicate: the SM kills every "
                "active lane regardless — use a branch around the EXIT "
                "instead"
            )


@rule("CTL002", Severity.ERROR, "predicated BAR")
def _check_predicated_bar(ctx: LintContext) -> Iterator[Tuple[int, str]]:
    for inst in ctx.kernel.instructions:
        if inst.op is Opcode.BAR and inst.pred is not None:
            yield inst.pc, (
                "BAR ignores its guard predicate: the whole warp arrives at "
                "the barrier regardless of the guard"
            )


@rule("BAR001", Severity.ERROR, "barrier under divergent control flow")
def _check_barrier_divergence(ctx: LintContext) -> Iterator[Tuple[int, str]]:
    df = ctx.dataflow
    for inst in ctx.kernel.instructions:
        if inst.op is not Opcode.BAR or not df.is_divergent(inst.pc):
            continue
        culprits = [
            site.pc
            for site in ctx.cfg.divergence_region_of(inst.pc)
            if site.pc in df.varying_branch_pcs
        ]
        yield inst.pc, (
            "BAR executes inside the divergence region of branch(es) at pc "
            f"{culprits} whose condition is not provably block-uniform: "
            "warps that exit the region early deadlock the barrier"
        )


# ----------------------------------------------------------------------
# Dataflow rules
# ----------------------------------------------------------------------
@rule("DF001", Severity.WARNING, "read before any write")
def _check_uninit_reads(ctx: LintContext) -> Iterator[Tuple[int, str]]:
    names = {"reg": "register r", "pred": "predicate p"}
    for pc, kind, idx, never in ctx.dataflow.uninit_reads:
        how = (
            "is never written anywhere in the kernel"
            if never
            else "is unwritten on at least one path from the entry"
        )
        yield pc, (
            f"{names[kind]}{idx} {how}; the read observes the "
            "zero-initialized register file"
        )


@rule("DF002", Severity.WARNING, "dead write")
def _check_dead_writes(ctx: LintContext) -> Iterator[Tuple[int, str]]:
    names = {"reg": "register r", "pred": "predicate p"}
    for pc, kind, idx in ctx.dataflow.dead_writes:
        yield pc, (
            f"value written to {names[kind]}{idx} is never observed on any "
            "path"
        )


# ----------------------------------------------------------------------
# Memory access-pattern rules
# ----------------------------------------------------------------------
@rule("MEM001", Severity.WARNING, "coalescing-hostile stride")
def _check_strides(ctx: LintContext) -> Iterator[Tuple[int, str]]:
    for pc, acc in sorted(ctx.dataflow.mem_accesses.items()):
        if acc.lane_stride is None or acc.lane_stride == 0.0:
            continue
        span = abs(acc.lane_stride) * (ctx.warp_size - 1) + 8
        lines = math.ceil(span / ctx.line_size)
        if lines > 4:
            kind = "load" if acc.is_load else "store"
            yield pc, (
                f"{acc.space} {kind} has per-lane stride "
                f"{acc.lane_stride:g} B: one warp access spans ~{lines} "
                f"cache lines (> 4); consider restructuring for coalescing"
            )


@rule("MEM002", Severity.ERROR, "out-of-bounds constant address")
def _check_const_addresses(ctx: LintContext) -> Iterator[Tuple[int, str]]:
    shared_bytes = ctx.kernel.shared_mem_bytes
    for pc, acc in sorted(ctx.dataflow.mem_accesses.items()):
        addr = acc.const_address
        if addr is None:
            continue
        kind = "load" if acc.is_load else "store"
        if addr < 0:
            yield pc, (
                f"{acc.space} {kind} at constant negative address "
                f"{addr:g}"
            )
        elif acc.space == "shared" and addr + 8 > shared_bytes:
            yield pc, (
                f"shared {kind} at constant address {addr:g} overruns the "
                f"kernel's shared memory footprint of {shared_bytes} bytes"
            )


# ----------------------------------------------------------------------
# CPL path-size cross-check
# ----------------------------------------------------------------------
@rule("PATH001", Severity.ERROR, "CPL path size outside static bounds")
def _check_path_sizes(ctx: LintContext) -> Iterator[Tuple[int, str]]:
    bounds = ctx.bounds
    for site in ctx.cfg.branches:
        estimates = (
            ("fall-through", site.pc + 1, max(0, site.target_pc - site.pc - 1)),
            ("taken", site.target_pc, max(0, site.reconv_pc - site.target_pc)),
        )
        for arm, entry, estimate in estimates:
            if entry == site.reconv_pc:
                continue  # empty arm: estimate 0 by construction
            region = bounds.region_bounds(entry, site.reconv_pc)
            if region is None or math.isinf(region[1]):
                # Arm never reaches the reconvergence point (flagged by the
                # CFG rules when it matters) or contains a loop: the static
                # warp-level envelope is unbounded, nothing to enforce.
                continue
            lo, hi = region
            if not lo <= estimate <= hi:
                yield site.pc, (
                    f"Algorithm-2 {arm} path size {estimate} of the branch "
                    f"at pc {site.pc} escapes the static envelope "
                    f"[{lo:g}, {hi:g}] of instructions executable between "
                    f"pc {entry} and the reconvergence point "
                    f"{site.reconv_pc}: CPL criticality accounting will "
                    "drift"
                )


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------
def lint_kernel(
    kernel: "Kernel",
    *,
    warp_size: int = 32,
    line_size: int = 128,
    rules: Optional[Iterable[str]] = None,
) -> LintReport:
    """Run the lint rule catalogue over ``kernel``.

    Args:
        kernel: a finalized :class:`~repro.isa.kernel.Kernel`.
        warp_size: lanes per warp (MEM001 span computation).
        line_size: cache line size in bytes (MEM001 span computation).
        rules: restrict to these rule IDs (default: every registered rule).

    Returns:
        A :class:`LintReport`; ``report.ok`` is False when any unsuppressed
        ERROR-severity finding exists.
    """
    ctx = LintContext(
        kernel=kernel,
        cfg=CFG(kernel),
        warp_size=warp_size,
        line_size=line_size,
    )
    waivers = frozenset(getattr(kernel, "lint_waivers", ()) or ())
    selected = RULES if rules is None else {
        rid: RULES[rid] for rid in rules if rid in RULES
    }
    report = LintReport(kernel=kernel.name)
    for rule_def in selected.values():
        for pc, message in rule_def.check(ctx):
            report.findings.append(
                Finding(
                    rule=rule_def.rule_id,
                    severity=rule_def.severity,
                    kernel=kernel.name,
                    pc=pc,
                    message=message,
                    source=ctx.source(pc),
                    suppressed=rule_def.rule_id in waivers,
                )
            )
    report.findings.sort(key=lambda f: (f.pc, f.rule))
    return report
