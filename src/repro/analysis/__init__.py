"""repro.analysis — static analysis of finalized kernels.

A correctness layer over :mod:`repro.isa` programs.  CAWA's criticality
predictor (paper Section 3.1, Algorithm 2) infers remaining path length
purely from static PCs — branch target and reconvergence point — so the
whole scheme silently depends on structural invariants of the PTX-like
kernels.  This package checks those invariants *at build/lint time* instead
of letting them surface as obscure SIMT-stack corruption deep inside a
simulation:

:mod:`repro.analysis.cfg`
    Basic-block control-flow graph construction from BRA/RECONV/BAR/EXIT,
    with dominators, reachability, and reconvergence-region computation.

:mod:`repro.analysis.dataflow`
    Forward def-before-use analysis for registers and predicates, backward
    liveness (dead-write detection), block-uniformity (divergence)
    analysis, and an affine abstract interpretation of address arithmetic.

:mod:`repro.analysis.common`
    Shared finding/report/registry machinery — stable rule IDs,
    severities, waiver-aware pass/fail logic, text/JSON rendering — used
    both by the kernel linter below and by :mod:`repro.sanitize`, the
    static checker that points the same design at the simulator's own
    source tree.

:mod:`repro.analysis.lints`
    A rule registry with stable IDs and severities: unreachable blocks,
    ill-nested reconvergence, barrier-divergence hazards, infinite-loop
    candidates, coalescing-hostile strides, out-of-bounds constant
    addressing, and CPL path-size consistency.

:mod:`repro.analysis.pathlen`
    Static min/max remaining-instruction bounds per PC (interval analysis
    over the CFG), exported both as a lint and as the
    ``GPUConfig.check_cpl_bounds`` runtime debug mode that asserts the
    dynamic CPL ``nInst`` term never escapes the static envelope.

See ``docs/static_analysis.md`` for the rule catalogue and suppression
syntax.
"""

from .cfg import CFG, BasicBlock, BranchSite, build_cfg, pc_successors
from .common import BaseFinding, ReportBase, Rule, RuleRegistry
from .dataflow import DataflowResult, analyze_dataflow
from .lints import (
    Finding,
    LintReport,
    LintRule,
    RULES,
    Severity,
    lint_kernel,
)
from .pathlen import (
    CheckedCriticalityPredictor,
    PathBounds,
    compute_path_bounds,
)

__all__ = [
    "BaseFinding",
    "BasicBlock",
    "BranchSite",
    "CFG",
    "CheckedCriticalityPredictor",
    "DataflowResult",
    "Finding",
    "LintReport",
    "LintRule",
    "PathBounds",
    "RULES",
    "ReportBase",
    "Rule",
    "RuleRegistry",
    "Severity",
    "analyze_dataflow",
    "build_cfg",
    "compute_path_bounds",
    "lint_kernel",
    "pc_successors",
]
