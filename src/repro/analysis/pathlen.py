"""Static path-length bounds and the CPL runtime cross-check.

CAWA's Algorithm 2 infers the remaining path length of a resolved branch
purely from static PCs: ``fall = target_pc - pc - 1`` instructions and
``taken = reconv_pc - target_pc``.  Those estimates are only meaningful if
they agree with what the control-flow graph actually allows a warp to
execute, so this module computes per-region **static envelopes**:

* the **minimum** number of instructions any thread executes from a region
  entry before reaching a stop PC (shortest CFG path), and
* the **maximum** number a *warp* can execute — for a loop-free region this
  is the count of PCs lying on some entry-to-stop path, because a divergent
  warp serializes both arms of every nested branch but visits each PC at
  most once; with a loop in the region the envelope is unbounded
  (``math.inf``).

Two consumers:

* the **PATH001 lint** (:mod:`repro.analysis.lints`) statically requires
  every Algorithm-2 arm size to lie inside its envelope, and
* :class:`CheckedCriticalityPredictor`, installed by
  ``GPUConfig.check_cpl_bounds``, re-verifies the same inequality on the
  *dynamic* branch stream and additionally asserts that the ``nInst``
  disparity counter never goes negative — catching CPL accounting drift the
  moment it happens instead of as a mysteriously mis-ranked warp.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from ..core.cpl import CriticalityPredictor
from ..errors import CPLBoundsError
from .cfg import CFG, pc_successors

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..isa.instructions import Instruction
    from ..isa.kernel import Kernel
    from ..simt.warp import Warp

_Region = Optional[Tuple[float, float]]


class PathBounds:
    """Static instruction-count bounds over one kernel's CFG.

    Attributes:
        min_to_exit: per-PC minimum instructions executed (inclusive of the
            PC itself) until the warp terminates; ``inf`` when no EXIT is
            reachable.
        max_to_exit: per-PC maximum over simple thread paths; ``inf`` when a
            loop (or no EXIT) is reachable.
    """

    def __init__(self, kernel: "Kernel", cfg: Optional[CFG] = None) -> None:
        self.kernel = kernel
        self.cfg = cfg or CFG(kernel)
        n = len(kernel.instructions)
        self._n = n
        #: instruction-level successor PCs; the virtual terminal is ``n``.
        self._succs: List[Tuple[int, ...]] = []
        for inst in kernel.instructions:
            succs = pc_successors(inst, n)
            if not succs:
                succs = (n,)  # EXIT (or stream end) -> virtual terminal
            self._succs.append(succs)
        self._preds: List[List[int]] = [[] for _ in range(n + 1)]
        for pc, succs in enumerate(self._succs):
            for s in succs:
                self._preds[s].append(pc)
        self._region_cache: Dict[int, Dict[int, _Region]] = {}
        self.min_to_exit, self.max_to_exit = self._bounds_to(n)

    # ------------------------------------------------------------------
    # Core fixed stop-PC computation
    # ------------------------------------------------------------------
    def _bounds_to(self, stop: int) -> Tuple[List[float], List[float]]:
        """Min/max instructions executed from each PC until reaching ``stop``.

        ``stop`` is absorbing (its out-edges are cut); counts exclude the
        stop PC itself.  PCs that cannot reach ``stop`` get ``inf`` in both.
        The max is over *simple* paths: any cycle on the way makes it
        ``inf``.
        """
        n = self._n
        # Nodes that can reach `stop` (backward closure; stop absorbing).
        reach = {stop}
        work = [stop]
        while work:
            pc = work.pop()
            for p in self._preds[pc]:
                if p != stop and p not in reach:
                    reach.add(p)
                    work.append(p)

        INF = math.inf
        mins = [INF] * (n + 1)
        mins[stop] = 0.0
        frontier = [stop]
        dist = 0.0
        while frontier:
            dist += 1.0
            nxt = []
            for pc in frontier:
                for p in self._preds[pc]:
                    if p in reach and p != stop and mins[p] is INF:
                        mins[p] = dist
                        nxt.append(p)
            frontier = nxt

        # Longest simple path by bounded value iteration: every sweep can
        # extend the best path by at least one edge, and simple paths have
        # at most n edges, so a value exceeding n proves a cycle.
        maxs = [INF] * (n + 1)
        maxs[stop] = 0.0
        nodes = [pc for pc in reach if pc != stop]
        for _ in range(n + 1):
            changed = False
            for pc in nodes:
                best = -INF
                for s in self._succs[pc]:
                    if s in reach:
                        val = maxs[s] if maxs[s] is not INF else -INF
                        if s == stop:
                            val = 0.0
                        if val > best:
                            best = val
                cand = best + 1.0
                current = maxs[pc] if maxs[pc] is not INF else -INF
                if cand > current:
                    maxs[pc] = cand
                    changed = True
            if not changed:
                break
        for pc in nodes:
            if maxs[pc] is INF or maxs[pc] > n:
                maxs[pc] = INF
        return mins[: n + 1], maxs[: n + 1]

    # ------------------------------------------------------------------
    # Region envelopes
    # ------------------------------------------------------------------
    def region_bounds(self, entry: int, stop: int) -> _Region:
        """Envelope of instructions a warp executes from ``entry`` to ``stop``.

        Returns ``None`` when ``stop`` is unreachable from ``entry``;
        otherwise ``(min, max)`` where ``min`` is the shortest thread path
        (in instructions, ``stop`` excluded) and ``max`` is the warp-level
        bound: the number of PCs on some entry-to-stop path when the region
        is loop-free, else ``inf``.
        """
        if entry == stop:
            return (0.0, 0.0)
        if not (0 <= entry < self._n and 0 <= stop <= self._n):
            return None
        per_stop = self._region_cache.setdefault(stop, {})
        if entry in per_stop:
            return per_stop[entry]
        result = self._compute_region(entry, stop)
        per_stop[entry] = result
        return result

    def _compute_region(self, entry: int, stop: int) -> _Region:
        # Forward closure from entry with stop absorbing.
        fwd = {entry}
        work = [entry]
        while work:
            pc = work.pop()
            if pc == stop or pc == self._n:
                # The stop PC and the virtual terminal are both absorbing.
                continue
            for s in self._succs[pc]:
                if s <= self._n and s not in fwd:
                    fwd.add(s)
                    work.append(s)
        if stop not in fwd:
            return None
        # Backward closure from stop restricted to the forward set.
        on_path = {stop}
        work = [stop]
        while work:
            pc = work.pop()
            for p in self._preds[pc]:
                if p in fwd and p != stop and p not in on_path:
                    on_path.add(p)
                    work.append(p)
        if entry not in on_path:  # pragma: no cover - fwd ensures membership
            return None
        interior = on_path - {stop}

        # Shortest path entry -> stop (edges == instructions executed).
        dist = {entry: 0.0}
        frontier = [entry]
        min_steps = math.inf
        while frontier and math.isinf(min_steps):
            nxt = []
            for pc in frontier:
                for s in self._succs[pc]:
                    if s == stop:
                        min_steps = dist[pc] + 1.0
                        break
                    if s in interior and s not in dist:
                        dist[s] = dist[pc] + 1.0
                        nxt.append(s)
                else:
                    continue
                break
            frontier = nxt

        # Cycle among on-path nodes => warp-level work is unbounded.
        if self._has_cycle(interior):
            return (min_steps, math.inf)
        return (min_steps, float(len(interior)))

    def _has_cycle(self, nodes: set) -> bool:
        """Does the sub-graph induced by ``nodes`` contain a cycle?"""
        indeg = {pc: 0 for pc in nodes}
        for pc in nodes:
            for s in self._succs[pc]:
                if s in indeg:
                    indeg[s] += 1
        work = [pc for pc, d in indeg.items() if d == 0]
        removed = 0
        while work:
            pc = work.pop()
            removed += 1
            for s in self._succs[pc]:
                if s in indeg:
                    indeg[s] -= 1
                    if indeg[s] == 0:
                        work.append(s)
        return removed != len(nodes)

    # ------------------------------------------------------------------
    # Branch-arm envelopes (shared by PATH001 and the runtime checker)
    # ------------------------------------------------------------------
    def branch_envelope(
        self, pc: int, target_pc: int, reconv_pc: int,
        diverged: bool, all_taken: bool,
    ) -> Tuple[float, float]:
        """Static envelope for the Algorithm-2 delta of one branch outcome.

        Unbounded arms (loops, arms that never reach the reconvergence
        point) contribute ``(0, inf)`` so the check degrades to the always-
        sound ``delta >= 0``.
        """

        def arm(entry: int) -> Tuple[float, float]:
            if entry == reconv_pc:
                return (0.0, 0.0)
            region = self.region_bounds(entry, reconv_pc)
            if region is None or math.isinf(region[1]):
                return (0.0, math.inf)
            return region

        fall = arm(pc + 1)
        taken = arm(target_pc)
        if diverged:
            return (fall[0] + taken[0], fall[1] + taken[1])
        if all_taken:
            return taken
        return fall


def compute_path_bounds(kernel: "Kernel", cfg: Optional[CFG] = None) -> PathBounds:
    """Compute :class:`PathBounds` for ``kernel`` (alias for the ctor)."""
    return PathBounds(kernel, cfg)


class CheckedCriticalityPredictor(CriticalityPredictor):
    """CPL predictor that asserts the static path-length envelope at runtime.

    Installed per-SM when ``GPUConfig.check_cpl_bounds`` is True.  On every
    resolved conditional branch the Algorithm-2 delta actually added to the
    warp's ``nInst`` disparity counter is compared against the static
    envelope of the committed path(s); on every issue the counter is
    asserted non-negative.  Violations raise :class:`~repro.errors.\
CPLBoundsError` immediately, turning silent criticality-accounting drift
    into a hard failure.  Purely observational otherwise: scheduling
    decisions are bit-identical to :class:`CriticalityPredictor`.
    """

    def __init__(self, update_period: int = 64) -> None:
        super().__init__(update_period)
        #: Number of branch-delta envelope checks performed.
        self.bound_checks: int = 0
        #: Subset of ``bound_checks`` with a finite (non-trivial) envelope.
        self.finite_checks: int = 0
        self._bounds_cache: Dict[int, Tuple[object, PathBounds]] = {}

    def _bounds_for(self, warp: "Warp") -> PathBounds:
        kernel = warp.block.kernel
        key = id(kernel)
        cached = self._bounds_cache.get(key)
        if cached is None or cached[0] is not kernel:
            cached = (kernel, compute_path_bounds(kernel))
            self._bounds_cache[key] = cached
        return cached[1]

    def on_branch(
        self,
        warp: "Warp",
        inst: "Instruction",
        diverged: bool,
        all_taken: bool,
        now: float = 0.0,
    ) -> None:
        before = warp.cpl_inst_disparity
        super().on_branch(warp, inst, diverged=diverged, all_taken=all_taken,
                          now=now)
        if inst.pred is None or inst.reconv_pc < 0:
            return
        delta = warp.cpl_inst_disparity - before
        lo, hi = self._bounds_for(warp).branch_envelope(
            inst.pc, inst.target_pc, inst.reconv_pc, diverged, all_taken
        )
        self.bound_checks += 1
        if not math.isinf(hi):
            self.finite_checks += 1
        if not lo <= delta <= hi:
            outcome = (
                "divergent" if diverged else ("taken" if all_taken else
                                              "fall-through")
            )
            raise CPLBoundsError(
                f"kernel {warp.block.kernel.name!r}: CPL delta {delta} for "
                f"the {outcome} branch at pc={inst.pc} (target "
                f"{inst.target_pc}, reconv {inst.reconv_pc}) escapes the "
                f"static envelope [{lo:g}, {hi:g}]"
            )

    def on_issue(self, warp: "Warp", stall_cycles: float) -> None:
        super().on_issue(warp, stall_cycles)
        if warp.cpl_inst_disparity < 0:
            raise CPLBoundsError(
                f"kernel {warp.block.kernel.name!r}: nInst disparity of "
                f"warp {warp.dynamic_id} went negative "
                f"({warp.cpl_inst_disparity})"
            )
