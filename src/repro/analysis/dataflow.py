"""Dataflow analyses over the kernel CFG.

Four classic analyses, all at instruction granularity inside basic blocks
and block granularity across the CFG:

* **definite assignment** (forward) — flags register/predicate reads that
  some entry path reaches before any write.  Register files are
  zero-initialized, so such reads are defined behaviour (they see ``0.0``)
  but almost always a kernel-authoring bug; predicated defs count as defs
  because the compute-under-predicate / store-under-predicate idiom is the
  standard way these kernels handle partial warps.
* **liveness** (backward) — detects dead writes: definitions whose value
  no path can ever observe.  Predicated defs do not *kill* liveness (lanes
  whose guard is false keep the old value), but a predicated def of a
  never-read register is still dead.
* **uniformity / divergence** (forward) — computes which registers and
  predicates are provably *block-uniform* (equal across every thread of a
  block): immediates and CTAID/NTID/NCTAID are uniform, TID/GTID/LANEID/
  WARPID and loaded values are varying, and any value defined under
  divergent control flow (inside the region of a branch whose condition is
  varying) or under a varying guard is varying.  The barrier-divergence
  lint (BAR001) keys off the resulting set of divergent PCs.
* **affine addresses** (forward) — abstract interpretation of address
  arithmetic as affine forms ``c0 + sum(ci * special_i)``, which yields the
  per-lane stride of every LD/ST (for the coalescing lint MEM001) and the
  constant addresses needed by the out-of-bounds lint (MEM002).

The uniformity and divergence facts are mutually recursive (a branch is
divergent iff its predicate is varying; a value is varying if defined under
a divergent branch), so :func:`analyze_dataflow` iterates the pair to a
fixpoint — monotone in the set of varying branches, hence terminating.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, FrozenSet, List, Optional, Set, Tuple

from ..isa.instructions import Instruction, Opcode
from .cfg import CFG

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..isa.kernel import Kernel

# Definite-assignment lattice: never / on-some-paths / on-all-paths.
_BOT, _MAYBE, _DEF = 0, 1, 2

#: Specials that differ between the threads of one block.
_VARYING_SPECIALS = frozenset({"tid", "gtid", "laneid", "warpid"})
#: Specials whose per-lane step is 1 within a warp (define the lane stride).
_LANE_SPECIALS = ("tid", "gtid", "laneid")

Affine = Optional[Dict[str, float]]  # None = unknown; key "" = constant term


@dataclass
class MemAccess:
    """Static facts about one LD/ST site."""

    pc: int
    space: str
    is_load: bool
    #: Affine form of the effective byte address (base register + immediate
    #: offset), or ``None`` when the address is not statically affine.
    address: Affine
    #: Per-lane byte stride (d address / d lane), when statically known.
    lane_stride: Optional[float] = None
    #: Constant byte address, when the affine form has no varying term.
    const_address: Optional[float] = None


@dataclass
class DataflowResult:
    """Everything the lint rules need from the dataflow pass."""

    #: (pc, kind, index, never): reads possibly preceding any write.
    #: ``kind`` is ``"reg"`` or ``"pred"``; ``never`` is True when *no*
    #: write of the register exists on any entry path (vs. only on some).
    uninit_reads: List[Tuple[int, str, int, bool]] = field(default_factory=list)
    #: (pc, kind, index): writes whose value no path observes.
    dead_writes: List[Tuple[int, str, int]] = field(default_factory=list)
    #: PCs of conditional branches whose condition is not provably uniform.
    varying_branch_pcs: FrozenSet[int] = frozenset()
    #: PCs inside the region of at least one varying conditional branch.
    divergent_pcs: FrozenSet[int] = frozenset()
    #: Static facts for every LD/ST site, keyed by PC.
    mem_accesses: Dict[int, MemAccess] = field(default_factory=dict)

    def is_divergent(self, pc: int) -> bool:
        """May ``pc`` execute with a partially-active warp?"""
        return pc in self.divergent_pcs


# ----------------------------------------------------------------------
# Per-instruction use/def helpers
# ----------------------------------------------------------------------
def _uses(inst: Instruction) -> List[Tuple[str, int]]:
    """Registers and predicates ``inst`` reads, as (kind, index) pairs."""
    uses: List[Tuple[str, int]] = [("reg", s) for s in inst.srcs]
    if inst.pred is not None:
        uses.append(("pred", inst.pred))
    return uses


def _def(inst: Instruction) -> Optional[Tuple[str, int]]:
    """The register or predicate ``inst`` writes, if any."""
    if inst.writes_predicate:
        return ("pred", inst.dst)
    if inst.writes_register:
        return ("reg", inst.dst)
    return None


# ----------------------------------------------------------------------
# Generic forward block fixpoint
# ----------------------------------------------------------------------
def _forward_fixpoint(cfg: CFG, entry_state, transfer, join, clone):
    """Iterate ``transfer`` over reachable blocks until in-states stabilize.

    ``transfer(block, state)`` mutates and returns the out-state;
    ``join(a, b)`` merges two states into a fresh one; ``clone`` copies.
    Unreached predecessors contribute nothing to a join (optimistic
    initialization), which is the standard treatment for loop back edges.
    """
    in_states = {0: entry_state}
    out_states: Dict[int, object] = {}
    order = [b.bid for b in cfg.blocks if b.bid in cfg.reachable]
    pending = set(order)
    while pending:
        for bid in order:
            if bid not in pending:
                continue
            pending.discard(bid)
            state = in_states.get(bid)
            if state is None:
                continue
            out = transfer(cfg.blocks[bid], clone(state))
            if bid in out_states and out_states[bid] == out:
                continue
            out_states[bid] = out
            for sid in cfg.blocks[bid].succs:
                merged = (
                    clone(out)
                    if sid not in in_states
                    else join(in_states[sid], out)
                )
                if sid not in in_states or merged != in_states[sid]:
                    in_states[sid] = merged
                    pending.add(sid)
    return in_states


# ----------------------------------------------------------------------
# Definite assignment
# ----------------------------------------------------------------------
def _assignment_states(cfg: CFG, kernel):
    nr, np_ = kernel.num_regs, kernel.num_preds

    def transfer(block, state):
        regs, preds = state
        for pc in block.pcs:
            inst = kernel.instructions[pc]
            d = _def(inst)
            if d is not None:
                (regs if d[0] == "reg" else preds)[d[1]] = _DEF
        return (regs, preds)

    def join(a, b):
        return (
            [x if x == y else _MAYBE for x, y in zip(a[0], b[0])],
            [x if x == y else _MAYBE for x, y in zip(a[1], b[1])],
        )

    def clone(state):
        return (list(state[0]), list(state[1]))

    entry = ([_BOT] * nr, [_BOT] * np_)
    return _forward_fixpoint(cfg, entry, transfer, join, clone)


def _collect_uninit_reads(cfg: CFG, kernel, in_states, result: DataflowResult):
    # Does the register get written anywhere at all?  Distinguishes the
    # "never written in the whole kernel" message from "written only on
    # some paths".
    written: Set[Tuple[str, int]] = set()
    for inst in kernel.instructions:
        d = _def(inst)
        if d is not None:
            written.add(d)

    seen: Set[Tuple[int, str, int]] = set()
    for block in cfg.blocks:
        if block.bid not in cfg.reachable or block.bid not in in_states:
            continue
        regs, preds = list(in_states[block.bid][0]), list(in_states[block.bid][1])
        for pc in block.pcs:
            inst = kernel.instructions[pc]
            for kind, idx in _uses(inst):
                status = (regs if kind == "reg" else preds)[idx]
                if status is not _DEF and status != _DEF:
                    key = (pc, kind, idx)
                    if key not in seen:
                        seen.add(key)
                        result.uninit_reads.append(
                            (pc, kind, idx, (kind, idx) not in written)
                        )
            d = _def(inst)
            if d is not None:
                (regs if d[0] == "reg" else preds)[d[1]] = _DEF


# ----------------------------------------------------------------------
# Liveness / dead writes
# ----------------------------------------------------------------------
def _collect_dead_writes(cfg: CFG, kernel, result: DataflowResult) -> None:
    live_in: Dict[int, FrozenSet[Tuple[str, int]]] = {}

    def block_live_in(bid: int, live_out: Set[Tuple[str, int]]):
        live = set(live_out)
        for pc in reversed(cfg.blocks[bid].pcs):
            inst = kernel.instructions[pc]
            d = _def(inst)
            # A predicated def does not kill: inactive lanes keep the old
            # value, so it may still be observed downstream.
            if d is not None and inst.pred is None:
                live.discard(d)
            for u in _uses(inst):
                live.add(u)
        return frozenset(live)

    reachable = [b.bid for b in cfg.blocks if b.bid in cfg.reachable]
    changed = True
    while changed:
        changed = False
        for bid in reversed(reachable):
            out: Set[Tuple[str, int]] = set()
            for sid in cfg.blocks[bid].succs:
                out |= live_in.get(sid, frozenset())
            new = block_live_in(bid, out)
            if live_in.get(bid) != new:
                live_in[bid] = new
                changed = True

    for bid in reachable:
        live: Set[Tuple[str, int]] = set()
        for sid in cfg.blocks[bid].succs:
            live |= live_in.get(sid, frozenset())
        for pc in reversed(cfg.blocks[bid].pcs):
            inst = kernel.instructions[pc]
            d = _def(inst)
            if d is not None and d not in live:
                result.dead_writes.append((pc, d[0], d[1]))
            if d is not None and inst.pred is None:
                live.discard(d)
            for u in _uses(inst):
                live.add(u)


# ----------------------------------------------------------------------
# Uniformity / divergence
# ----------------------------------------------------------------------
def _divergent_pcs_for(cfg: CFG, varying_branches: Set[int]) -> Set[int]:
    pcs: Set[int] = set()
    for site in cfg.branches:
        if site.pc in varying_branches:
            pcs.update(range(site.pc + 1, site.reconv_pc))
    return pcs


def _uniformity(cfg: CFG, kernel) -> Tuple[FrozenSet[int], FrozenSet[int]]:
    """Fixpoint over (varying values) x (divergent branches)."""
    varying_branches: Set[int] = set()
    while True:
        divergent = _divergent_pcs_for(cfg, varying_branches)

        def transfer(block, state):
            regs, preds = state
            for pc in block.pcs:
                inst = kernel.instructions[pc]
                d = _def(inst)
                if d is None:
                    continue
                var = pc in divergent
                if inst.pred is not None and inst.pred in preds:
                    var = True
                if inst.op is Opcode.LD:
                    var = True
                elif inst.op is Opcode.SREG:
                    var = var or inst.special.value in _VARYING_SPECIALS
                else:
                    if any(s in regs for s in inst.srcs):
                        var = True
                kind, idx = d
                target = regs if kind == "reg" else preds
                if var:
                    target.add(idx)
                else:
                    target.discard(idx)
            return (regs, preds)

        def join(a, b):
            return (a[0] | b[0], a[1] | b[1])

        def clone(state):
            return (set(state[0]), set(state[1]))

        in_states = _forward_fixpoint(cfg, (set(), set()), transfer, join, clone)

        new_varying: Set[int] = set()
        for site in cfg.branches:
            bid = cfg.block_of[site.pc]
            if bid not in in_states:
                continue
            regs, preds = clone(in_states[bid])
            for pc in cfg.blocks[bid].pcs:
                if pc == site.pc:
                    break
                # Re-run the block transfer up to the branch so the check
                # sees the predicate's status *at* the branch.
                inst = kernel.instructions[pc]
                d = _def(inst)
                if d is None:
                    continue
                var = pc in divergent
                if inst.pred is not None and inst.pred in preds:
                    var = True
                if inst.op is Opcode.LD:
                    var = True
                elif inst.op is Opcode.SREG:
                    var = var or inst.special.value in _VARYING_SPECIALS
                elif any(s in regs for s in inst.srcs):
                    var = True
                kind, idx = d
                target = regs if kind == "reg" else preds
                (target.add if var else target.discard)(idx)
            branch = kernel.instructions[site.pc]
            if branch.pred in preds:
                new_varying.add(site.pc)

        if new_varying == varying_branches:
            return (
                frozenset(varying_branches),
                frozenset(_divergent_pcs_for(cfg, varying_branches)),
            )
        varying_branches = new_varying


# ----------------------------------------------------------------------
# Affine address analysis
# ----------------------------------------------------------------------
def _aff_const(value: float) -> Dict[str, float]:
    return {"": float(value)} if value else {}


def _aff_add(a: Affine, b: Affine, sign: float = 1.0) -> Affine:
    if a is None or b is None:
        return None
    out = dict(a)
    for k, v in b.items():
        out[k] = out.get(k, 0.0) + sign * v
        if out[k] == 0.0:
            del out[k]
    return out


def _aff_scale(a: Affine, factor: float) -> Affine:
    if a is None:
        return None
    if factor == 0.0:
        return {}
    return {k: v * factor for k, v in a.items()}


def _aff_as_const(a: Affine) -> Optional[float]:
    if a is None:
        return None
    if all(k == "" for k in a):
        return a.get("", 0.0)
    return None


def _affine_transfer(inst: Instruction, regs: Dict[int, Affine]) -> None:
    """Update the affine abstract state for one instruction."""
    if not inst.writes_register:
        return

    def src(i: int) -> Affine:
        return regs.get(inst.srcs[i], None) if i < len(inst.srcs) else None

    op = inst.op
    value: Affine = None
    if op is Opcode.MOV:
        value = _aff_const(inst.imm) if inst.imm is not None else src(0)
    elif op is Opcode.SREG:
        value = {inst.special.value: 1.0}
    elif op in (Opcode.ADD, Opcode.SUB):
        sign = 1.0 if op is Opcode.ADD else -1.0
        rhs = _aff_const(inst.imm) if inst.imm is not None else src(1)
        value = _aff_add(src(0), rhs, sign)
    elif op is Opcode.MUL:
        if inst.imm is not None:
            value = _aff_scale(src(0), inst.imm)
        else:
            ca, cb = _aff_as_const(src(0)), _aff_as_const(src(1))
            if cb is not None:
                value = _aff_scale(src(0), cb)
            elif ca is not None:
                value = _aff_scale(src(1), ca)
    elif op is Opcode.MAD:
        # Encoding (see KernelBuilder.mad): 3 srcs = a*b + c, or
        # 2 srcs + imm = srcs[0]*imm + srcs[1].
        if inst.imm is not None and len(inst.srcs) == 2:
            value = _aff_add(_aff_scale(src(0), inst.imm), src(1))
        elif len(inst.srcs) == 3:
            ca, cb = _aff_as_const(src(0)), _aff_as_const(src(1))
            prod: Affine = None
            if cb is not None:
                prod = _aff_scale(src(0), cb)
            elif ca is not None:
                prod = _aff_scale(src(1), ca)
            value = _aff_add(prod, regs.get(inst.srcs[2], None))
    elif op is Opcode.SHL:
        shift = inst.imm if inst.imm is not None else _aff_as_const(src(1))
        if shift is not None and float(shift).is_integer():
            value = _aff_scale(src(0), float(2 ** int(shift)))
    elif op is Opcode.NEG:
        value = _aff_scale(src(0), -1.0)
    # Everything else (loads, SFU ops, SELP, comparisons...) -> unknown.

    if inst.pred is not None:
        # Predicated def merges with the incumbent value.
        old = regs.get(inst.dst, None)
        value = value if value == old else None
    regs[inst.dst] = value


def _collect_mem_accesses(cfg: CFG, kernel, result: DataflowResult) -> None:
    def transfer(block, regs):
        for pc in block.pcs:
            _affine_transfer(kernel.instructions[pc], regs)
        return regs

    def join(a, b):
        return {
            r: (a.get(r) if a.get(r) == b.get(r) else None)
            for r in sorted(set(a) | set(b))
        }

    def clone(state):
        return dict(state)

    # Registers are zero-initialized, so the entry state is "all zero".
    entry = {r: {} for r in range(kernel.num_regs)}
    in_states = _forward_fixpoint(cfg, entry, transfer, join, clone)

    for block in cfg.blocks:
        if block.bid not in cfg.reachable or block.bid not in in_states:
            continue
        regs = dict(in_states[block.bid])
        for pc in block.pcs:
            inst = kernel.instructions[pc]
            if inst.op in (Opcode.LD, Opcode.ST):
                base = regs.get(inst.srcs[0], None)
                address = _aff_add(base, _aff_const(inst.imm or 0.0))
                stride = None
                const_addr = None
                if address is not None:
                    stride = sum(address.get(k, 0.0) for k in _LANE_SPECIALS)
                    const_addr = _aff_as_const(address)
                result.mem_accesses[pc] = MemAccess(
                    pc=pc,
                    space=inst.space.value,
                    is_load=inst.op is Opcode.LD,
                    address=address,
                    lane_stride=stride,
                    const_address=const_addr,
                )
            _affine_transfer(inst, regs)


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------
def analyze_dataflow(kernel: "Kernel", cfg: Optional[CFG] = None) -> DataflowResult:
    """Run every dataflow analysis over ``kernel`` and bundle the results."""
    cfg = cfg or CFG(kernel)
    result = DataflowResult()
    in_states = _assignment_states(cfg, kernel)
    _collect_uninit_reads(cfg, kernel, in_states, result)
    _collect_dead_writes(cfg, kernel, result)
    varying, divergent = _uniformity(cfg, kernel)
    result.varying_branch_pcs = varying
    result.divergent_pcs = divergent
    _collect_mem_accesses(cfg, kernel, result)
    return result
