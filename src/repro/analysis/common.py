"""Shared finding/report/registry machinery for the static-analysis layers.

Two analyzers live in this codebase: :mod:`repro.analysis.lints` checks
*kernels* (CFG/dataflow invariants of the PTX-like programs the simulator
runs) and :mod:`repro.sanitize` checks the *simulator's own source*
(fingerprint soundness, determinism, probe parity, protocol conformance).
Both need the same bookkeeping — stable rule IDs, severities, waivers that
report-but-don't-fail, pass/fail summary logic, text/JSON rendering — and
this module is the single implementation both import.

The pieces:

:class:`Severity`
    ``INFO < WARNING < ERROR``; only unsuppressed ERROR findings fail.

:class:`BaseFinding`
    One hit of one rule.  Subclasses add their location fields (kernel+pc
    for lints, path+line for sanitize) by overriding :meth:`location` and
    extending :meth:`to_dict`.

:class:`ReportBase`
    Mixin with the severity filtering, ``ok`` logic, and rendering shared
    by :class:`~repro.analysis.lints.LintReport` and
    :class:`~repro.sanitize.registry.SanitizeReport`.

:class:`RuleRegistry`
    A named catalogue of :class:`Rule` entries with duplicate-ID
    detection and ID-based selection.  Each analyzer owns one instance;
    rule IDs are unique *per registry* (the two catalogues use disjoint
    prefixes by convention, documented in ``docs/static_analysis.md``).

Waiver semantics are uniform: a waived finding is still produced — with
``suppressed=True``, rendered ``(waived)`` in text and ``"suppressed":
true`` in JSON — but never fails a run.  How a waiver is *declared* is
per-layer (``KernelBuilder.waive_lint`` for kernels, ``# sanitize: waive
RULE -- reason`` comments for source files).
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    Generic,
    Iterable,
    List,
    Optional,
    Sequence,
    TypeVar,
)


class Severity(enum.IntEnum):
    """How bad a finding is.  Only ERROR findings fail a run."""

    INFO = 0
    WARNING = 1
    ERROR = 2

    def __str__(self) -> str:  # "error", not "Severity.ERROR"
        return self.name.lower()


@dataclass(frozen=True)
class BaseFinding:
    """One rule hit.  Subclasses carry the layer's location fields."""

    rule: str
    severity: Severity
    message: str
    suppressed: bool = False

    def location(self) -> str:
        """Rendered location prefix (``kernel:pc=N`` / ``path:line``)."""
        return ""

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "severity": str(self.severity),
            "message": self.message,
            "suppressed": self.suppressed,
        }

    def __str__(self) -> str:
        mark = " (waived)" if self.suppressed else ""
        where = self.location()
        prefix = f"{where}: " if where else ""
        return f"{prefix}{self.severity} [{self.rule}]{mark} {self.message}"


class ReportBase:
    """Severity filtering, pass/fail logic, and rendering for a report.

    Mixed into the per-layer report dataclasses; expects a ``findings``
    list attribute and a :meth:`subject` implementation naming what was
    analyzed (a kernel name, a source-tree root).
    """

    #: Covariant so report dataclasses may redeclare with their concrete
    #: finding type (``List[Finding]``, ``List[SanitizeFinding]``).
    findings: Sequence[BaseFinding]

    @property
    def subject(self) -> str:
        raise NotImplementedError

    @property
    def errors(self) -> List[BaseFinding]:
        return [
            f
            for f in self.findings
            if f.severity is Severity.ERROR and not f.suppressed
        ]

    @property
    def warnings(self) -> List[BaseFinding]:
        return [
            f
            for f in self.findings
            if f.severity is Severity.WARNING and not f.suppressed
        ]

    @property
    def ok(self) -> bool:
        """True when no unsuppressed ERROR finding exists."""
        return not self.errors

    def by_rule(self, rule_id: str) -> List[BaseFinding]:
        return [f for f in self.findings if f.rule == rule_id]

    def format_text(self) -> str:
        if not self.findings:
            return f"{self.subject}: clean"
        lines = [str(f) for f in self.findings]
        lines.append(
            f"{self.subject}: {len(self.errors)} error(s), "
            f"{len(self.warnings)} warning(s)"
        )
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        return {
            "subject": self.subject,
            "ok": self.ok,
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "findings": [f.to_dict() for f in self.findings],
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)


CheckerT = TypeVar("CheckerT", bound=Callable[..., object])


@dataclass(frozen=True)
class Rule(Generic[CheckerT]):
    """One registered rule: stable ID, severity, title, and its checker."""

    rule_id: str
    severity: Severity
    title: str
    check: CheckerT


class RuleRegistry(Generic[CheckerT]):
    """A named catalogue of rules with duplicate-ID detection.

    ``registry.rules`` is the live ``{rule_id: Rule}`` mapping (exposed
    directly — :data:`repro.analysis.lints.RULES` aliases it for backward
    compatibility).  Registration order is preserved; selection by ID list
    silently drops unknown IDs, matching the historical ``lint_kernel``
    behaviour.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.rules: Dict[str, Rule[CheckerT]] = {}

    def rule(
        self, rule_id: str, severity: Severity, title: str
    ) -> Callable[[CheckerT], CheckerT]:
        """Decorator registering a checker under ``rule_id``."""

        def register(fn: CheckerT) -> CheckerT:
            if rule_id in self.rules:  # pragma: no cover - programming error
                raise ValueError(
                    f"duplicate {self.name} rule id {rule_id!r}"
                )
            self.rules[rule_id] = Rule(rule_id, severity, title, fn)
            return fn

        return register

    def select(
        self, rule_ids: Optional[Iterable[str]] = None
    ) -> Dict[str, Rule[CheckerT]]:
        """The full catalogue, or the subset named by ``rule_ids``."""
        if rule_ids is None:
            return self.rules
        return {rid: self.rules[rid] for rid in rule_ids if rid in self.rules}
