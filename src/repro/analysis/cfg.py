"""Basic-block control-flow graph over a finalized kernel.

The ISA's control flow is intentionally simple — forward conditional
branches with explicit reconvergence PCs, unconditional back edges, BAR,
and EXIT — but hand-constructed kernels (tests, the assembler, fuzzing) can
still produce graphs that corrupt the SIMT stack.  The CFG built here is the
substrate for every analysis in :mod:`repro.analysis`:

* **leaders** are the kernel entry, every branch target, every instruction
  after a branch or EXIT, and every reconvergence PC (reconvergence points
  are control joins even when they are not literal jump targets);
* **successors** mirror the timing pipeline exactly: conditional branches
  have both the taken and fall-through edge, EXIT has none — the SM kills
  *all* active lanes at EXIT regardless of any guard predicate, so a
  predicated EXIT is still a block terminator (and a lint, CTL001);
* **dominators** use the classic iterative set intersection, which is
  plenty fast at kernel sizes (tens to a few hundred instructions).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, FrozenSet, List, Sequence, Tuple

from ..isa.instructions import Instruction, Opcode

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..isa.kernel import Kernel


def pc_successors(inst: Instruction, n: int) -> Tuple[int, ...]:
    """Instruction-level successor PCs of ``inst`` in a kernel of ``n`` PCs.

    Matches the SM pipeline: EXIT terminates the warp's current path even
    when guarded (the pipeline kills all active lanes), a conditional branch
    can fall through or jump, and a branch targeting the next PC is the
    degenerate non-branch.
    """
    op = inst.op
    if op is Opcode.EXIT:
        return ()
    if op is Opcode.BRA:
        target = inst.target_pc
        if inst.pred is None:
            return (target,) if 0 <= target < n else ()
        fall = inst.pc + 1
        succs = []
        if fall < n:
            succs.append(fall)
        if 0 <= target < n and target != fall:
            succs.append(target)
        return tuple(succs)
    nxt = inst.pc + 1
    return (nxt,) if nxt < n else ()


@dataclass(frozen=True)
class BranchSite:
    """One conditional branch and its statically declared region.

    The *region* of a conditional branch is ``[pc + 1, reconv_pc)``: the
    PCs a warp may execute between resolving the branch and merging at the
    reconvergence point.  ``is_loop_break`` marks the builder's loop-exit
    idiom (``target_pc == reconv_pc``), where several sibling breaks
    legitimately share one reconvergence PC.
    """

    pc: int
    target_pc: int
    reconv_pc: int

    @property
    def is_loop_break(self) -> bool:
        return self.target_pc == self.reconv_pc

    def contains(self, pc: int) -> bool:
        """True when ``pc`` lies inside this branch's divergence region."""
        return self.pc < pc < self.reconv_pc


@dataclass
class BasicBlock:
    """A maximal straight-line run of instructions."""

    bid: int
    start: int
    end: int  # one past the last PC
    succs: List[int] = field(default_factory=list)
    preds: List[int] = field(default_factory=list)

    def __len__(self) -> int:
        return self.end - self.start

    @property
    def pcs(self) -> range:
        return range(self.start, self.end)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BB{self.bid}[{self.start}:{self.end}] "
            f"-> {self.succs or '(exit)'}"
        )


class CFG:
    """Control-flow graph plus the derived structural facts.

    Attributes:
        kernel: the analyzed kernel.
        blocks: basic blocks in program order (``blocks[0]`` is the entry).
        block_of: PC -> block id.
        reachable: block ids reachable from the entry.
        exit_blocks: reachable blocks terminated by EXIT.
        reaches_exit: block ids with at least one path to an EXIT.
        branches: every conditional branch, as :class:`BranchSite`.
        back_edges: CFG edges ``(src_bid, dst_bid)`` whose destination
            dominates their source (natural loop back edges) or that jump
            backwards in program order (retreating edges of irreducible,
            hand-built graphs).
    """

    def __init__(self, kernel: "Kernel") -> None:
        self.kernel = kernel
        insts: Sequence[Instruction] = kernel.instructions
        n = len(insts)
        if n == 0:
            raise ValueError(f"kernel {kernel.name!r} is empty")

        # ---- leaders --------------------------------------------------
        leaders = {0}
        for inst in insts:
            if inst.op is Opcode.BRA:
                if 0 <= inst.target_pc < n:
                    leaders.add(inst.target_pc)
                if inst.pc + 1 < n:
                    leaders.add(inst.pc + 1)
                if inst.pred is not None and 0 <= inst.reconv_pc < n:
                    leaders.add(inst.reconv_pc)
            elif inst.op is Opcode.EXIT and inst.pc + 1 < n:
                leaders.add(inst.pc + 1)

        starts = sorted(leaders)
        self.blocks: List[BasicBlock] = []
        self.block_of: List[int] = [0] * n
        for bid, start in enumerate(starts):
            end = starts[bid + 1] if bid + 1 < len(starts) else n
            self.blocks.append(BasicBlock(bid=bid, start=start, end=end))
            for pc in range(start, end):
                self.block_of[pc] = bid

        # ---- edges ----------------------------------------------------
        for block in self.blocks:
            last = insts[block.end - 1]
            for succ_pc in pc_successors(last, n):
                sid = self.block_of[succ_pc]
                if sid not in block.succs:
                    block.succs.append(sid)
                    self.blocks[sid].preds.append(block.bid)

        # ---- reachability --------------------------------------------
        self.reachable: FrozenSet[int] = self._forward_closure({0})
        self.exit_blocks: FrozenSet[int] = frozenset(
            b.bid
            for b in self.blocks
            if b.bid in self.reachable and insts[b.end - 1].op is Opcode.EXIT
        )
        self.reaches_exit: FrozenSet[int] = self._backward_closure(
            set(self.exit_blocks)
        )

        # ---- branch sites --------------------------------------------
        self.branches: List[BranchSite] = [
            BranchSite(pc=i.pc, target_pc=i.target_pc, reconv_pc=i.reconv_pc)
            for i in insts
            if i.op is Opcode.BRA and i.pred is not None
        ]

        # ---- dominators ----------------------------------------------
        self._dom: Dict[int, FrozenSet[int]] = self._compute_dominators()

        # ---- back edges ----------------------------------------------
        self.back_edges: List[Tuple[int, int]] = []
        for block in self.blocks:
            if block.bid not in self.reachable:
                continue
            for sid in block.succs:
                if self.dominates(sid, block.bid) or (
                    self.blocks[sid].start <= block.start
                ):
                    self.back_edges.append((block.bid, sid))

    # ------------------------------------------------------------------
    # Graph closures
    # ------------------------------------------------------------------
    def _forward_closure(self, seeds: set) -> FrozenSet[int]:
        seen = set(seeds)
        work = list(seeds)
        while work:
            bid = work.pop()
            for sid in self.blocks[bid].succs:
                if sid not in seen:
                    seen.add(sid)
                    work.append(sid)
        return frozenset(seen)

    def _backward_closure(self, seeds: set) -> FrozenSet[int]:
        seen = set(seeds)
        work = list(seeds)
        while work:
            bid = work.pop()
            for pid in self.blocks[bid].preds:
                if pid not in seen:
                    seen.add(pid)
                    work.append(pid)
        return frozenset(seen)

    # ------------------------------------------------------------------
    # Dominance
    # ------------------------------------------------------------------
    def _compute_dominators(self) -> Dict[int, FrozenSet[int]]:
        reach = self.reachable
        full = frozenset(reach)
        dom: Dict[int, set] = {bid: set(full) for bid in reach}
        dom[0] = {0}
        changed = True
        # Iterate in program order; structured kernels converge in 1-2 passes.
        order = [b.bid for b in self.blocks if b.bid in reach]
        while changed:
            changed = False
            for bid in order:
                if bid == 0:
                    continue
                preds = [p for p in self.blocks[bid].preds if p in reach]
                if preds:
                    new = set.intersection(*(dom[p] for p in preds))
                else:  # unreachable-from-entry but in reach? cannot happen
                    new = set()
                new.add(bid)
                if new != dom[bid]:
                    dom[bid] = new
                    changed = True
        return {bid: frozenset(s) for bid, s in dom.items()}

    def dominates(self, a_bid: int, b_bid: int) -> bool:
        """True when every entry-to-``b_bid`` path passes through ``a_bid``."""
        doms = self._dom.get(b_bid)
        return doms is not None and a_bid in doms

    def pc_dominates(self, pc_a: int, pc_b: int) -> bool:
        """Instruction-level dominance: every path to ``pc_b`` executes ``pc_a``."""
        ba, bb = self.block_of[pc_a], self.block_of[pc_b]
        if ba == bb:
            return pc_a <= pc_b
        return self.dominates(ba, bb)

    # ------------------------------------------------------------------
    # Convenience queries
    # ------------------------------------------------------------------
    def block_at(self, pc: int) -> BasicBlock:
        """The basic block containing ``pc``."""
        return self.blocks[self.block_of[pc]]

    def region_blocks(self, branch: BranchSite) -> List[int]:
        """Block ids whose start PC lies inside ``branch``'s region."""
        return [
            b.bid
            for b in self.blocks
            if branch.pc < b.start < branch.reconv_pc
        ]

    def divergence_region_of(self, pc: int) -> List[BranchSite]:
        """Every conditional branch whose region contains ``pc``."""
        return [b for b in self.branches if b.contains(pc)]

    @property
    def unreachable_blocks(self) -> List[BasicBlock]:
        return [b for b in self.blocks if b.bid not in self.reachable]


def build_cfg(kernel: "Kernel") -> CFG:
    """Construct the CFG of ``kernel`` (alias for ``CFG(kernel)``)."""
    return CFG(kernel)
