"""repro.trace — the trace-driven simulation frontend.

Record a workload's functional side once (per-warp dynamic instruction
streams: PCs, active masks, branch outcomes, coalesced memory lines), then
replay timing-only sweeps through the unchanged SM pipeline at a fraction
of the cost — no register files, no lane math, no functional verification.

See ``docs/trace_driven.md`` for the design, file format, invalidation
keys, and the (narrow) conditions under which replay is *not* valid.

Typical use is implicit — ``run_scheme(..., config=cfg.with_frontend("trace"))``
auto-records on a trace miss and replays thereafter — but the pieces are
public::

    from repro.trace import TraceRecorder, TraceProgram, replay_program
    from repro.trace import record_workload

    result, program = record_workload("bfs", scale=0.5)
    program.save("bfs.trace")
    replayed = replay_program(TraceProgram.load("bfs.trace"), scheme="cawa")
"""

from .format import (
    TRACE_FORMAT_VERSION,
    TRACE_MAGIC,
    LaunchTrace,
    TraceProgram,
    kernel_fingerprint,
)
from .recorder import TraceRecorder, record_workload
from .replay import TraceExecutor, TraceStack, TraceWarp, make_warp_factory, replay_program
from .store import (
    clear,
    list_traces,
    load_program,
    store_program,
    trace_dir,
    trace_path,
)

__all__ = [
    "TRACE_FORMAT_VERSION",
    "TRACE_MAGIC",
    "LaunchTrace",
    "TraceExecutor",
    "TraceProgram",
    "TraceRecorder",
    "TraceStack",
    "TraceWarp",
    "clear",
    "kernel_fingerprint",
    "list_traces",
    "load_program",
    "make_warp_factory",
    "record_workload",
    "replay_program",
    "store_program",
    "trace_dir",
    "trace_path",
]
