"""Trace file format: versioned, fingerprinted, compressed kernel traces.

A :class:`TraceProgram` is the on-disk unit of the trace-driven frontend
(see ``docs/trace_driven.md``).  It captures everything the timing model
needs to replay a workload without functional execution:

* a **header** carrying a magic string, the trace-format version, and the
  *functional config fingerprint*
  (:meth:`repro.config.GPUConfig.functional_fingerprint`) that recorded it —
  both are checked on load so stale or foreign traces are refused instead of
  silently replayed;
* one :class:`LaunchTrace` per kernel launch, embedding the full static
  kernel (so replay never needs to rebuild workload inputs), the launch
  geometry, a kernel fingerprint, and each warp's dynamic record stream.

Per-warp records are compact lists, one per issued instruction::

    [pc, active_mask]                      # ALU/SFU/CTRL and uncond. branch
    [pc, active_mask, taken_mask]          # conditional branch outcome
    [pc, active_mask, [mem_mask, lines]]   # LD/ST: effect mask + coalesced
                                           # line addresses (None if shared)

The interpretation of the third element is recovered from the static
instruction at ``pc``, so no per-record tag byte is needed.  Files are
JSON + zlib: deterministic, dependency-free, and 10-30x smaller than the
raw JSON.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import TraceFormatError, TraceMismatchError
from ..isa.instructions import CmpOp, Instruction, MemSpace, Opcode, Special
from ..isa.kernel import Kernel

#: File magic; anything else is not a repro trace.
TRACE_MAGIC = "repro-trace"
#: Bump on any incompatible change to the record or header layout.
TRACE_FORMAT_VERSION = 1


# ----------------------------------------------------------------------
# Kernel (static instruction stream) serialization
# ----------------------------------------------------------------------
def instruction_to_dict(inst: Instruction) -> Dict:
    """Plain-data form of one static instruction."""
    return {
        "op": inst.op.value,
        "dst": inst.dst,
        "srcs": list(inst.srcs),
        "imm": inst.imm,
        "pred": inst.pred,
        "pred_neg": inst.pred_neg,
        "cmp": inst.cmp.value if inst.cmp is not None else None,
        "space": inst.space.value,
        "special": inst.special.value if inst.special is not None else None,
        "pc": inst.pc,
        "target_pc": inst.target_pc,
        "reconv_pc": inst.reconv_pc,
    }


def instruction_from_dict(data: Dict) -> Instruction:
    """Rebuild a static instruction from :func:`instruction_to_dict` form."""
    return Instruction(
        op=Opcode(data["op"]),
        dst=data["dst"],
        srcs=tuple(data["srcs"]),
        imm=data["imm"],
        pred=data["pred"],
        pred_neg=data["pred_neg"],
        cmp=CmpOp(data["cmp"]) if data["cmp"] is not None else None,
        space=MemSpace(data["space"]),
        special=Special(data["special"]) if data["special"] is not None else None,
        pc=data["pc"],
        target_pc=data["target_pc"],
        reconv_pc=data["reconv_pc"],
    )


def kernel_to_dict(kernel: Kernel) -> Dict:
    return {
        "name": kernel.name,
        "num_regs": kernel.num_regs,
        "num_preds": kernel.num_preds,
        "shared_mem_bytes": kernel.shared_mem_bytes,
        "labels": dict(kernel.labels),
        "instructions": [instruction_to_dict(i) for i in kernel.instructions],
    }


def kernel_from_dict(data: Dict) -> Kernel:
    return Kernel(
        name=data["name"],
        instructions=[instruction_from_dict(i) for i in data["instructions"]],
        labels=dict(data["labels"]),
        num_regs=data["num_regs"],
        num_preds=data["num_preds"],
        shared_mem_bytes=data["shared_mem_bytes"],
    )


def kernel_fingerprint(kernel: Kernel) -> str:
    """Stable short hash of a kernel's static structure.

    Embedded in each :class:`LaunchTrace` and re-checked at replay launch
    time, so a workload change that alters the generated kernel (different
    base addresses, loop bounds, ...) refuses to replay a stale trace.
    """
    payload = {
        "name": kernel.name,
        "num_regs": kernel.num_regs,
        "num_preds": kernel.num_preds,
        "shared_mem_bytes": kernel.shared_mem_bytes,
        "instructions": [instruction_to_dict(i) for i in kernel.instructions],
    }
    blob = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


# ----------------------------------------------------------------------
# Trace containers
# ----------------------------------------------------------------------
@dataclass
class LaunchTrace:
    """Recorded dynamic streams for one kernel launch.

    ``warps`` maps ``(block_id, warp_id_in_block)`` to that warp's record
    list (see the module docstring for the record layout).  Record lists are
    treated as immutable after recording: replay walks them with a cursor
    and never mutates, so one loaded :class:`TraceProgram` can feed many
    concurrent replays.
    """

    kernel: Kernel
    grid_dim: int
    block_dim: int
    kernel_fp: str = ""
    warps: Dict[Tuple[int, int], List] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.kernel_fp:
            self.kernel_fp = kernel_fingerprint(self.kernel)

    @property
    def record_count(self) -> int:
        return sum(len(r) for r in self.warps.values())

    def records_for(self, block_id: int, warp_id_in_block: int) -> List:
        try:
            return self.warps[(block_id, warp_id_in_block)]
        except KeyError:
            raise TraceMismatchError(
                f"trace for kernel {self.kernel.name!r} has no stream for "
                f"warp (block={block_id}, warp={warp_id_in_block}); launch "
                "geometry differs from the recording"
            ) from None

    def to_dict(self) -> Dict:
        return {
            "kernel": kernel_to_dict(self.kernel),
            "grid_dim": self.grid_dim,
            "block_dim": self.block_dim,
            "kernel_fp": self.kernel_fp,
            # JSON keys must be strings; flatten to [block, warp, records].
            "warps": [[b, w, recs] for (b, w), recs in sorted(self.warps.items())],
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "LaunchTrace":
        warps = {}
        for entry in data["warps"]:
            block_id, warp_id, records = entry
            if not records:
                raise TraceFormatError(
                    f"empty record stream for warp ({block_id}, {warp_id})"
                )
            warps[(int(block_id), int(warp_id))] = records
        return cls(
            kernel=kernel_from_dict(data["kernel"]),
            grid_dim=data["grid_dim"],
            block_dim=data["block_dim"],
            kernel_fp=data["kernel_fp"],
            warps=warps,
        )


@dataclass
class TraceProgram:
    """A complete recorded run: header + ordered launch traces."""

    functional_fingerprint: str
    workload: str = ""
    scale: float = 1.0
    warp_size: int = 32
    line_size: int = 128
    #: Free-form provenance (recording scheme, simulator version, ...).
    meta: Dict = field(default_factory=dict)
    launches: List[LaunchTrace] = field(default_factory=list)

    @property
    def trace_id(self) -> str:
        """Short content id for provenance stamping of replayed results."""
        payload = json.dumps(
            {
                "fp": self.functional_fingerprint,
                "workload": self.workload,
                "scale": self.scale,
                "kernels": [lt.kernel_fp for lt in self.launches],
                "records": [lt.record_count for lt in self.launches],
            },
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:12]

    @property
    def record_count(self) -> int:
        return sum(lt.record_count for lt in self.launches)

    def validate(self, expected_functional_fp: str) -> None:
        """Refuse a trace recorded under a different functional config."""
        if self.functional_fingerprint != expected_functional_fp:
            raise TraceMismatchError(
                "trace was recorded under functional fingerprint "
                f"{self.functional_fingerprint} but the current configuration "
                f"fingerprints to {expected_functional_fp} (warp size or L1 "
                "line size changed); re-record with `repro trace record`"
            )

    # ------------------------------------------------------------------
    # (De)serialization
    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        payload = {
            "magic": TRACE_MAGIC,
            "format_version": TRACE_FORMAT_VERSION,
            "functional_fingerprint": self.functional_fingerprint,
            "workload": self.workload,
            "scale": self.scale,
            "warp_size": self.warp_size,
            "line_size": self.line_size,
            "meta": self.meta,
            "launches": [lt.to_dict() for lt in self.launches],
        }
        return zlib.compress(json.dumps(payload).encode("utf-8"), level=6)

    @classmethod
    def from_bytes(cls, blob: bytes) -> "TraceProgram":
        try:
            raw = zlib.decompress(blob)
        except zlib.error as exc:
            raise TraceFormatError(f"trace is not zlib-compressed data: {exc}") from exc
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise TraceFormatError(f"trace payload is not valid JSON: {exc}") from exc
        if not isinstance(payload, dict) or payload.get("magic") != TRACE_MAGIC:
            raise TraceFormatError("missing trace magic; not a repro trace file")
        version = payload.get("format_version")
        if version != TRACE_FORMAT_VERSION:
            raise TraceFormatError(
                f"trace format version {version} is not supported (this build "
                f"reads version {TRACE_FORMAT_VERSION}); re-record the trace"
            )
        try:
            return cls(
                functional_fingerprint=payload["functional_fingerprint"],
                workload=payload.get("workload", ""),
                scale=payload.get("scale", 1.0),
                warp_size=payload.get("warp_size", 32),
                line_size=payload.get("line_size", 128),
                meta=dict(payload.get("meta", {})),
                launches=[LaunchTrace.from_dict(d) for d in payload["launches"]],
            )
        except TraceFormatError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise TraceFormatError(f"malformed trace payload: {exc!r}") from exc

    def save(self, path: os.PathLike) -> None:
        """Atomically write this trace to ``path`` (temp file + rename)."""
        directory = os.path.dirname(os.fspath(path)) or "."
        os.makedirs(directory, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(self.to_bytes())
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    @classmethod
    def load(
        cls, path: os.PathLike, expected_functional_fp: Optional[str] = None
    ) -> "TraceProgram":
        """Read, version-check, and (optionally) fingerprint-check a trace.

        Raises :class:`~repro.errors.TraceFormatError` for corrupt or
        incompatible files and :class:`~repro.errors.TraceMismatchError`
        when ``expected_functional_fp`` is given and does not match.
        """
        with open(path, "rb") as handle:
            program = cls.from_bytes(handle.read())
        if expected_functional_fp is not None:
            program.validate(expected_functional_fp)
        return program
