"""Recording half of the trace-driven frontend.

A :class:`TraceRecorder` attaches to an execution-driven :class:`~repro.gpu.GPU`
(``gpu.attach_recorder(recorder)``) and observes every issued instruction via
the SM's ``trace_sink`` hook — *after* functional execution, *before* timing —
capturing each warp's dynamic stream: PC, active mask, conditional-branch
outcomes, and coalesced memory line addresses.  Recording is passive: it
never perturbs scheduling or timing, so the recording run's own
:class:`~repro.stats.counters.RunResult` is a normal execute-frontend result.

The per-warp streams are *schedule-invariant* for race-free kernels (each
thread reads inputs and writes its own outputs; the ISA has no atomics), so
a trace recorded under any scheduler replays bit-identically under every
scheme — ``tests/test_trace_parity.py`` asserts exactly this.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..config import GPUConfig
from ..isa.instructions import MemSpace, Opcode
from .format import LaunchTrace, TraceProgram


class TraceRecorder:
    """Captures per-warp dynamic instruction streams during execution."""

    def __init__(self, config: GPUConfig) -> None:
        self.config = config
        self.line_size = config.l1d.line_size
        self.launches: List[LaunchTrace] = []
        self._current: Optional[Dict[Tuple[int, int], List]] = None

    # ------------------------------------------------------------------
    # GPU hooks
    # ------------------------------------------------------------------
    def begin_launch(self, kernel, grid_dim: int, block_dim: int) -> None:
        """Called by :meth:`repro.gpu.GPU.launch` before dispatch."""
        launch = LaunchTrace(kernel=kernel, grid_dim=grid_dim, block_dim=block_dim)
        self.launches.append(launch)
        self._current = launch.warps

    def record(self, warp, inst, active_mask: int, result) -> None:
        """SM ``trace_sink`` hook: append one issue record for ``warp``.

        ``result`` is the :class:`~repro.simt.executor.ExecResult` of the
        functional execution that just happened; the branch outcome and the
        lanes' memory addresses are read from it.
        """
        streams = self._current
        if streams is None:  # issue outside a launch window: ignore
            return
        key = (warp.block.block_id, warp.warp_id_in_block)
        stream = streams.get(key)
        if stream is None:
            stream = streams[key] = []
        op = inst.op
        if op is Opcode.LD or op is Opcode.ST:
            mem_mask = result.mem_mask
            if mem_mask and inst.space is MemSpace.GLOBAL:
                # Defer to the LSU's coalescing rule so recorded lines are
                # exactly what the execute frontend would access.
                from ..sm.lsu import coalesce_lines

                lines = coalesce_lines(result.mem_addrs, mem_mask, self.line_size)
            else:
                lines = None
            stream.append([inst.pc, active_mask, [mem_mask, lines]])
        elif op is Opcode.BRA and inst.pred is not None:
            stream.append([inst.pc, active_mask, result.taken_mask])
        else:
            stream.append([inst.pc, active_mask])

    # ------------------------------------------------------------------
    def finish(
        self,
        workload: str = "",
        scale: float = 1.0,
        scheme: str = "",
        **meta,
    ) -> TraceProgram:
        """Seal the recording into a saveable :class:`TraceProgram`."""
        from .. import __version__

        self._current = None
        info = {"recorded_scheme": scheme, "simulator_version": __version__}
        info.update(meta)
        return TraceProgram(
            functional_fingerprint=self.config.functional_fingerprint(),
            workload=workload,
            scale=scale,
            warp_size=self.config.warp_size,
            line_size=self.line_size,
            meta=info,
            launches=self.launches,
        )


def record_workload(
    workload: str,
    scale: float = 1.0,
    config: Optional[GPUConfig] = None,
    scheme: str = "rr",
    check: bool = True,
    oracle: Optional[dict] = None,
    **workload_kwargs,
):
    """Record one workload end to end; returns ``(result, program)``.

    Runs the workload once under the execute frontend (baseline round-robin
    scheduler by default — any scheme yields the same functional streams)
    with a recorder attached.  The returned result is a normal
    execution-driven :class:`~repro.stats.counters.RunResult`; the returned
    :class:`TraceProgram` replays it bit-identically under any scheme.
    """
    # Local imports: keep repro.trace importable without the full simulator.
    from ..core.cawa import apply_scheme
    from ..gpu import GPU
    from ..workloads import make_workload

    base = config or GPUConfig.default_sim()
    cfg = apply_scheme(base, scheme).with_frontend("execute")
    recorder = TraceRecorder(cfg)
    gpu = GPU(cfg, oracle=oracle)
    gpu.attach_recorder(recorder)
    wl = make_workload(workload, scale=scale, **workload_kwargs)
    result = wl.run(gpu, scheme=scheme, check=check)
    program = recorder.finish(workload=workload, scale=scale, scheme=scheme)
    result.frontend = "execute"
    result.trace_id = program.trace_id
    return result, program
