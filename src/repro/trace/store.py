"""Persistent trace store under ``.repro_cache/traces/``.

Traces live next to the PR-1 result cache and follow the same directory
resolution (``REPRO_CACHE_DIR`` / :func:`repro.experiments.result_cache.set_cache_dir`),
but are keyed on the **functional** config fingerprint only
(:meth:`repro.config.GPUConfig.functional_fingerprint`): timing-only knobs —
scheduler, scheme, cache sizes, latencies, issue core — do *not* invalidate
a trace, so one recording serves the whole scheme sweep.  Workload identity,
scale, and any workload kwargs are part of the key because they change the
generated kernel and data.

Stale traces (wrong format version, wrong functional fingerprint, corrupt
bytes) are refused by :mod:`repro.trace.format` at load; the non-strict
:func:`load_program` used by the auto-record path converts that refusal
into a miss (and drops the dead file) so the runner transparently
re-records.
"""

from __future__ import annotations

import hashlib
import json
from collections import OrderedDict
from pathlib import Path
from typing import Optional, Tuple

from .. import fslock
from ..config import GPUConfig
from ..errors import TraceError, TraceFormatError, TraceMismatchError
from ..experiments.result_cache import cache_dir
from .format import TraceProgram

#: Subdirectory of the result cache holding trace files.
TRACE_SUBDIR = "traces"
#: File extension for stored traces (zlib-compressed JSON).
TRACE_SUFFIX = ".trace"

#: In-process memo of parsed programs, LRU-bounded.  Decompressing and
#: parsing a trace costs a noticeable fraction of a replay; a scheme
#: sweep (and doubly so a *sampled* sweep, whose per-cell replay is tiny)
#: loads the same file once per cell without this.  Entries validate
#: against the file's (mtime_ns, size) on every hit, so an overwritten or
#: deleted trace is never served stale.  Shared programs are read-only by
#: contract: replay and subsampling never mutate record lists.
_PROGRAM_MEMO: "OrderedDict[str, Tuple[int, int, TraceProgram]]" = OrderedDict()
_PROGRAM_MEMO_CAP = 4


def trace_dir() -> Path:
    """Directory holding persistent traces (inside the result cache dir)."""
    return cache_dir() / TRACE_SUBDIR


def trace_key(
    workload: str,
    scale: float,
    functional_fp: str,
    workload_kwargs: Optional[dict] = None,
) -> str:
    """Deterministic file stem for one recorded workload."""
    payload = json.dumps(
        {
            "workload": workload,
            "scale": scale,
            "functional_fp": functional_fp,
            "kwargs": sorted((workload_kwargs or {}).items()),
        },
        sort_keys=True,
        default=str,
    )
    digest = hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]
    safe = workload.replace("/", "_").replace("+", "p")
    return f"{safe}-{digest}"


def trace_path(
    workload: str,
    scale: float,
    config: GPUConfig,
    workload_kwargs: Optional[dict] = None,
) -> Path:
    return trace_dir() / (
        trace_key(workload, scale, config.functional_fingerprint(), workload_kwargs)
        + TRACE_SUFFIX
    )


def load_program(
    workload: str,
    scale: float,
    config: GPUConfig,
    workload_kwargs: Optional[dict] = None,
    strict: bool = False,
) -> Optional[TraceProgram]:
    """Load the stored trace for one workload cell, or ``None`` on miss.

    Non-strict (the auto-record path): a corrupt, version-incompatible, or
    fingerprint-mismatched file is deleted and reported as a miss so the
    caller re-records.  Strict (``repro trace replay``): those conditions
    raise the underlying :class:`~repro.errors.TraceError` with its precise
    explanation instead of silently re-simulating.
    """
    path = trace_path(workload, scale, config, workload_kwargs)
    memo_key = str(path)
    try:
        info = path.stat()
        file_id: Optional[Tuple[int, int]] = (info.st_mtime_ns, info.st_size)
    except OSError:
        file_id = None
    cached = _PROGRAM_MEMO.get(memo_key)
    if cached is not None:
        if file_id is not None and (cached[0], cached[1]) == file_id:
            _PROGRAM_MEMO.move_to_end(memo_key)
            return cached[2]
        _PROGRAM_MEMO.pop(memo_key, None)
    try:
        program = TraceProgram.load(path, config.functional_fingerprint())
        if file_id is not None:
            _PROGRAM_MEMO[memo_key] = (file_id[0], file_id[1], program)
            while len(_PROGRAM_MEMO) > _PROGRAM_MEMO_CAP:
                _PROGRAM_MEMO.popitem(last=False)
        return program
    except FileNotFoundError:
        if strict:
            raise TraceMismatchError(
                f"no recorded trace for workload {workload!r} at scale {scale} "
                f"(expected {path}); record one with `repro trace record "
                f"--workload {workload}`"
            ) from None
        return None
    except (TraceFormatError, TraceMismatchError):
        if strict:
            raise
        try:
            path.unlink()
        except OSError:
            pass
        return None
    except OSError:
        if strict:
            raise
        return None


def store_program(
    program: TraceProgram,
    workload: str,
    scale: float,
    config: GPUConfig,
    workload_kwargs: Optional[dict] = None,
) -> Optional[Path]:
    """Persist ``program``; returns the path, or ``None`` if unwritable."""
    path = trace_path(workload, scale, config, workload_kwargs)
    _PROGRAM_MEMO.pop(str(path), None)
    try:
        program.save(path)
    except OSError:
        # A read-only or full filesystem must never break a simulation run.
        return None
    return path


def list_traces() -> list:
    """``(path, TraceProgram | TraceError)`` for every stored trace file."""
    directory = trace_dir()
    entries = []
    if directory.is_dir():
        for path in sorted(directory.glob(f"*{TRACE_SUFFIX}")):
            try:
                entries.append((path, TraceProgram.load(path)))
            except TraceError as exc:
                entries.append((path, exc))
    return entries


def clear() -> int:
    """Delete every stored trace; returns the number of files removed."""
    _PROGRAM_MEMO.clear()
    directory = trace_dir()
    removed = 0
    if directory.is_dir():
        for path in sorted(directory.glob(f"*{TRACE_SUFFIX}")):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
    return removed


def stats() -> dict:
    """Entry count and byte total for the trace store."""
    directory = trace_dir()
    out = fslock.dir_stats(directory, f"*{TRACE_SUFFIX}")
    out["dir"] = str(directory)
    return out


def gc(
    max_age_seconds: Optional[float] = None,
    max_entries: Optional[int] = None,
    blocking: bool = True,
) -> int:
    """Lock-safe garbage collection of stale traces.

    Same contract as :func:`repro.experiments.result_cache.gc`: the
    enumerate-and-delete section holds the trace directory's advisory GC
    lock; writers stay lock-free because :meth:`TraceProgram.save` is
    already atomic (temp file + ``os.replace``) and a deleted trace is
    indistinguishable from a miss, which the runner answers by
    re-recording.
    """
    directory = trace_dir()
    if not directory.is_dir():
        return 0
    lock = fslock.lock_path(directory)
    if blocking:
        with fslock.locked(lock):
            return fslock.gc_entries(
                directory, f"*{TRACE_SUFFIX}", max_age_seconds, max_entries
            )
    with fslock.try_locked(lock) as acquired:
        if not acquired:
            return 0
        return fslock.gc_entries(
            directory, f"*{TRACE_SUFFIX}", max_age_seconds, max_entries
        )
