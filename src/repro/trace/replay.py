"""Replay half of the trace-driven frontend.

Replay feeds recorded per-warp streams through the *unchanged* SM issue
core, scoreboard, LSU, caches, and DRAM.  Three small adapters make the
existing timing machinery consume a trace instead of executing lanes:

:class:`TraceStack`
    Duck-types :class:`~repro.simt.stack.SIMTStack` for the pipeline's
    consumption: ``pc`` and ``active_mask`` come from the current trace
    record, and every control-flow mutation (``advance``, ``diverge``,
    ``kill_lanes``) simply moves the cursor to the next record — the
    recorded stream already linearizes divergence exactly as the
    reconvergence stack did at record time.

:class:`TraceWarp`
    A :class:`~repro.simt.warp.Warp` whose stack is a :class:`TraceStack`.
    Everything else — scoreboard, scheduling cache, criticality counters,
    stall accounting — is inherited unchanged, which is what makes replay
    bit-identical: the timing state machine never notices the frontend swap.

:class:`TraceExecutor`
    Drop-in for :class:`~repro.simt.executor.FunctionalExecutor` that
    answers from the current record (branch outcome, memory effect mask and
    pre-coalesced line addresses) instead of computing lane values.  No
    register file reads/writes, no numpy lane math, no coalescing — the
    source of replay's speedup.
"""

from __future__ import annotations

from typing import List, Optional

from ..config import GPUConfig
from ..errors import TraceFormatError
from ..isa.instructions import Opcode
from ..simt.executor import ExecResult
from ..simt.warp import Warp
from .format import LaunchTrace, TraceProgram


class TraceStack:
    """Trace-cursor stand-in for the SIMT reconvergence stack."""

    __slots__ = ("_records", "_idx")

    def __init__(self, records: List) -> None:
        if not records:
            raise TraceFormatError("warp trace has no records")
        self._records = records
        self._idx = 0

    # -- state the pipeline reads --------------------------------------
    @property
    def pc(self) -> int:
        return self._records[self._idx][0]

    @property
    def active_mask(self) -> int:
        return self._records[self._idx][1]

    @property
    def aux(self):
        """Record payload: branch taken-mask or ``[mem_mask, lines]``."""
        record = self._records[self._idx]
        return record[2] if len(record) > 2 else None

    @property
    def empty(self) -> bool:
        """True once the final (terminal EXIT) record has been consumed."""
        return self._idx >= len(self._records)

    @property
    def depth(self) -> int:  # pragma: no cover - debugging parity only
        return 0 if self.empty else 1

    # -- control-flow mutations: all advance the cursor ----------------
    def advance(self, next_pc: int) -> None:
        self._idx += 1

    def diverge(self, taken_pc, fallthrough_pc, taken_mask, reconv_pc) -> None:
        self._idx += 1

    def kill_lanes(self, mask: int) -> None:
        self._idx += 1

    def active_lane_count(self) -> int:
        from ..simt.mask import popcount

        return popcount(self.active_mask)


class TraceWarp(Warp):
    """A warp that follows a recorded dynamic stream instead of executing."""

    def __init__(self, records: List, **kwargs) -> None:
        super().__init__(**kwargs)
        self.stack = TraceStack(records)


class TraceExecutor:
    """Answers issue-time queries from the warp's current trace record."""

    def execute(self, inst, warp) -> ExecResult:
        op = inst.op
        if op is Opcode.LD or op is Opcode.ST:
            aux = warp.stack.aux
            if aux is None:
                raise TraceFormatError(
                    f"memory record at pc={inst.pc} is missing its address "
                    "payload; trace is corrupt"
                )
            return ExecResult(mem_mask=aux[0], mem_lines=aux[1])
        if op is Opcode.BRA:
            if inst.pred is None:
                return ExecResult(taken_mask=warp.active_mask)
            taken = warp.stack.aux
            if taken is None:
                raise TraceFormatError(
                    f"branch record at pc={inst.pc} is missing its taken "
                    "mask; trace is corrupt"
                )
            return ExecResult(taken_mask=taken)
        if op is Opcode.BAR:
            return ExecResult(is_barrier=True)
        if op is Opcode.EXIT:
            return ExecResult(is_exit=True)
        return ExecResult()


def make_warp_factory(launch: LaunchTrace):
    """Warp factory for one launch: builds :class:`TraceWarp` objects.

    Installed on each SM by :meth:`repro.gpu.GPU.launch` when the trace
    frontend is active.  Record lists are shared read-only, so one loaded
    trace can feed many concurrent replays.
    """

    def factory(*, warp_id_in_block: int, block, **kwargs) -> TraceWarp:
        records = launch.records_for(block.block_id, warp_id_in_block)
        return TraceWarp(
            records, warp_id_in_block=warp_id_in_block, block=block, **kwargs
        )

    return factory


def replay_program(
    program: TraceProgram,
    config: Optional[GPUConfig] = None,
    scheme: str = "",
    oracle: Optional[dict] = None,
    max_cycles: float = 5e7,
    observers: Optional[list] = None,
    l1_observers: Optional[list] = None,
    bus=None,
    feedback_tap=None,
):
    """Replay every launch of ``program``; returns the list of results.

    The kernel and launch geometry come from the trace itself, so replay
    needs no workload rebuild (and performs no functional verification —
    there are no computed values to verify).  ``observers`` join each SM's
    ``issue_observers``; ``l1_observers`` join each L1D's observer list.
    ``bus`` is an optional :class:`repro.obs.bus.EventBus` the replay wires
    in place of the config-built one (callers attach collectors first).
    ``feedback_tap`` is an optional :class:`repro.feedback.SignalTap`
    recording every published feedback signal (requires
    ``feedback='channel'``); under sharding the per-worker streams and the
    coordinator's shared-L2 stream are merged into canonical order before
    landing in the tap.

    With ``config.shards > 1`` the launches are replayed by the sharded
    multi-process engine (:mod:`repro.gpu.sharded`): SMs are partitioned
    across worker processes synchronizing at every shared L2/DRAM
    interaction, bit-identical to the serial replay.  Live *issue/L1*
    observers cannot cross process boundaries and raise
    :class:`ConfigError` there — obs collectors are exempt, because the
    event layer serializes per-worker buffers back through the
    coordinator (see ``docs/observability.md``).
    """
    from ..gpu import GPU  # local: avoid a gpu <-> trace import cycle

    cfg = config or GPUConfig.default_sim()
    if cfg.frontend != "trace":
        cfg = cfg.with_frontend("trace")
    if cfg.shards > 1:
        from ..errors import ConfigError
        from ..gpu.sharded import replay_program_sharded

        if observers or l1_observers:
            blockers = sorted(
                {type(obs).__name__
                 for obs in list(observers or ()) + list(l1_observers or ())}
            )
            raise ConfigError(
                "sharded replay (shards > 1) cannot attach live observers: "
                f"{', '.join(blockers)} hold(s) Python state that cannot "
                "cross process boundaries. Run with shards=1, or — for "
                "event-stream analyses — attach an obs collector to an "
                "EventBus instead: the observability layer ships per-worker "
                "buffers back through the coordinator and merges them "
                "deterministically (see docs/observability.md)"
            )
        return replay_program_sharded(
            program, cfg, scheme=scheme, oracle=oracle, max_cycles=max_cycles,
            bus=bus, feedback_tap=feedback_tap,
        )
    gpu = GPU(cfg, oracle=oracle, max_cycles=max_cycles, trace=program,
              obs=bus)
    if feedback_tap is not None:
        from ..feedback.channel import attach_signal_tap

        attach_signal_tap(gpu, feedback_tap)
    for observer in observers or ():
        for sm in gpu.sms:
            sm.issue_observers.append(observer)
    for observer in l1_observers or ():
        for sm in gpu.sms:
            sm.l1d.observers.append(observer)
    results = []
    for launch in program.launches:
        results.append(
            gpu.launch(launch.kernel, launch.grid_dim, launch.block_dim, scheme=scheme)
        )
    return results
