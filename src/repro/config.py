"""Simulator configuration objects.

The reference parameters come from Table 1 of the CAWA paper (NVIDIA Fermi
GTX480 as configured in GPGPU-sim 3.2.0).  :meth:`GPUConfig.fermi_gtx480`
reproduces that table verbatim; :meth:`GPUConfig.default_sim` is a scaled-down
configuration with identical structural ratios that lets the pure-Python
simulator sweep every experiment in minutes.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field, replace
from typing import ClassVar, Dict, FrozenSet, Optional

from .errors import ConfigError


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and policy knobs for one cache.

    Attributes:
        sets: number of cache sets (power of two).
        ways: associativity.
        line_size: block size in bytes (power of two).
        hit_latency: cycles from access to data on a hit.
        replacement: replacement policy name understood by
            :func:`repro.memory.replacement.make_policy`
            (``"lru"``, ``"srrip"``, ``"ship"``).
        critical_ways: number of ways reserved for the critical partition
            when the cache runs under CACP (0 disables partitioning).
        mshr_entries: number of outstanding missed lines tracked.
    """

    sets: int
    ways: int
    line_size: int = 128
    hit_latency: int = 2
    replacement: str = "lru"
    critical_ways: int = 0
    mshr_entries: int = 32

    def __post_init__(self) -> None:
        # Set count need not be a power of two (indexing is modulo); the
        # unified L2's tag array is sets x banks, e.g. 64 x 6 = 384.
        if self.sets <= 0:
            raise ConfigError(f"cache sets must be positive, got {self.sets}")
        if self.line_size <= 0 or self.line_size & (self.line_size - 1):
            raise ConfigError(
                f"cache line size must be a power of two, got {self.line_size}"
            )
        if self.ways <= 0:
            raise ConfigError(f"cache ways must be positive, got {self.ways}")
        if not 0 <= self.critical_ways <= self.ways:
            raise ConfigError(
                f"critical_ways ({self.critical_ways}) must be within "
                f"[0, ways={self.ways}]"
            )
        if self.mshr_entries <= 0:
            raise ConfigError("mshr_entries must be positive")

    @property
    def size_bytes(self) -> int:
        """Total capacity in bytes."""
        return self.sets * self.ways * self.line_size

    def set_index(self, address: int) -> int:
        """Map a byte address to its set index."""
        return (address // self.line_size) % self.sets

    def line_address(self, address: int) -> int:
        """Align a byte address down to its cache-line address."""
        return address - (address % self.line_size)


@dataclass(frozen=True)
class GPUConfig:
    """Whole-GPU configuration (Table 1 of the paper).

    Attributes mirror the rows of Table 1, plus functional-unit latencies the
    paper inherits from GPGPU-sim defaults.
    """

    num_sms: int = 15
    max_warps_per_sm: int = 48
    max_blocks_per_sm: int = 8
    num_schedulers_per_sm: int = 2
    registers_per_sm: int = 32768
    shared_mem_per_sm: int = 48 * 1024
    warp_size: int = 32

    l1d: CacheConfig = field(
        default_factory=lambda: CacheConfig(sets=8, ways=16, line_size=128)
    )
    l1i: CacheConfig = field(
        default_factory=lambda: CacheConfig(sets=4, ways=4, line_size=128)
    )
    # Table 1: 768KB unified L2, 64 sets x 16 ways x 6 banks.  The tag
    # array is modeled as one cache of 64*6 = 384 sets; the banks appear as
    # independent service queues in :class:`repro.memory.l2.BankedL2`.
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(sets=384, ways=16, line_size=128)
    )
    l2_banks: int = 6
    l2_latency: int = 120
    dram_latency: int = 220
    dram_service_interval: int = 4
    l2_service_interval: int = 2

    alu_latency: int = 4
    sfu_latency: int = 16
    scheduler_name: str = "lrr"
    l1d_policy: str = "lru"
    use_cacp: bool = False
    #: CACP partition mode: "priority" (logical, default), "static" (the
    #: paper's strict 8-of-16 way split), or "dynamic" (UCP-style retuned
    #: split).  See :class:`repro.core.cacp.CACPPolicy`.
    cacp_mode: str = "priority"
    #: Extension: bypass L1 allocation for non-critical no-reuse fills.
    cacp_bypass: bool = False
    #: Extension: MSHR entries reserved for critical warps.  Non-critical
    #: warps may not start a new miss unless more than this many entries
    #: are free, guaranteeing critical warps memory-level parallelism.
    critical_mshr_reserve: int = 0
    use_cpl: bool = True
    cpl_update_period: int = 64
    #: Issue-loop implementation: ``"event"`` (default) uses the
    #: event-driven ready-warp core (per-slot wake queues updated at the
    #: moment completion times become known); ``"scan"`` keeps the original
    #: O(warps)-per-cycle linear readiness scan.  Both produce bit-identical
    #: cycle counts (see ``tests/test_event_core_parity.py``); the scan path
    #: is retained as the golden reference.
    issue_core: str = "event"
    #: Simulation frontend: ``"execute"`` (default) runs the functional
    #: executor at issue time; ``"trace"`` replays a previously recorded
    #: per-warp dynamic instruction stream through the same timing model,
    #: skipping register files and lane math entirely.  Replay is
    #: bit-identical to execution by contract (``tests/test_trace_parity.py``)
    #: and therefore shares result-cache entries with the execute frontend.
    #: See ``docs/trace_driven.md``.
    frontend: str = "execute"
    #: Simulation clock: ``"cycle"`` (default) advances the device clock
    #: one cycle at a time while any SM issues (jumping only when the whole
    #: device is stalled); ``"skip"`` drives the clock from a global
    #: min-heap of per-component next-event times (SM scoreboard/MSHR/
    #: barrier wakes, L2 bank frees, DRAM completions — see
    #: :mod:`repro.gpu.clock`), ticking only the SMs that can actually act
    #: at each event time and jumping the clock straight between events.
    #: Both clocks are bit-identical by contract
    #: (``tests/test_skip_clock_parity.py``) and therefore, like
    #: ``issue_core``/``frontend``, excluded from :meth:`fingerprint`.
    #: See ``docs/timing_model.md`` ("Clock modes").
    clock: str = "cycle"
    #: Sharded multi-SM replay (trace frontend only): partition the SMs
    #: across this many worker processes, synchronizing conservatively at
    #: every shared L2/DRAM interaction and block-dispatch boundary so the
    #: merged result is bit-identical to a serial replay (see
    #: :mod:`repro.gpu.sharded` and ``docs/trace_driven.md``).  ``1``
    #: (default) keeps replay in-process.  Timing-transparent by contract,
    #: hence excluded from :meth:`fingerprint`.
    shards: int = 1
    #: Debug mode: install :class:`repro.analysis.CheckedCriticalityPredictor`
    #: in place of the plain CPL predictor, asserting at every resolved
    #: branch that the dynamic Algorithm-2 ``nInst`` delta lies inside the
    #: static path-length envelope of :mod:`repro.analysis.pathlen` (raises
    #: :class:`repro.errors.CPLBoundsError` on violation).  Purely
    #: observational — scheduling stays bit-identical — and therefore, like
    #: ``issue_core``/``frontend``, excluded from :meth:`fingerprint`.
    check_cpl_bounds: bool = False
    #: Observability event recording (:mod:`repro.obs`): ``"off"``
    #: (default, every probe reduced to one pointer test), ``"on"`` (ring
    #: buffer with the default capacity), ``"ring:N"`` (drop-oldest ring of
    #: N events) or ``"spill:N"`` (unbounded recording, zlib-spilled in
    #: N-event chunks under ``.repro_cache/events/spill/``).  Collectors
    #: never perturb timing (``tests/test_obs_parity.py``), so — like
    #: ``clock``/``shards`` — the spec is excluded from :meth:`fingerprint`.
    #: See ``docs/observability.md``.
    events: str = "off"
    #: Hot-path implementation: ``"python"`` (default) keeps the original
    #: pure-Python per-warp issue loop; ``"vector"`` swaps in the
    #: numpy-vectorized engine (:class:`repro.sm.vector.VectorSM` plus the
    #: batched cache/L2/DRAM primitives in :mod:`repro.memory.vector`):
    #: per-SM warp wake times live in preallocated arrays, the per-cycle
    #: ready set is one masked ``flatnonzero`` instead of a per-warp probe
    #: loop, tag matching and victim selection are array operations, and a
    #: feature-detected numba ``@njit`` path (:mod:`repro._jit`) compiles
    #: the few remaining scalar loops when numba is installed (never a
    #: dependency — the numpy fallback is bit-identical).  Both backends
    #: produce bit-identical results by contract
    #: (``tests/test_vector_backend_parity.py``) and therefore, like
    #: ``issue_core``/``clock``, the knob is excluded from
    #: :meth:`fingerprint`.  See ``docs/backends.md``.
    backend: str = "python"
    #: Statistical sampling of the trace frontend (:mod:`repro.sampling`):
    #: ``"off"`` (default, exact simulation), ``"blocks:P"`` (seeded
    #: stratified cluster sampling of thread blocks at rate ``P``), or
    #: ``"intervals:P"`` (barrier-aligned truncation of every warp stream
    #: to its leading fraction ``P``).  Sampled runs replay only the
    #: selected subset through the unchanged timing model and extrapolate
    #: the rest (:class:`repro.stats.sampling.SampledRunResult`), so —
    #: unlike every knob in :data:`FINGERPRINT_EXCLUDED` — this one
    #: **changes the reported numbers** and is deliberately *included* in
    #: :meth:`fingerprint`: sampled and exact results never share a
    #: result-cache entry or a serve coalescing group.  Requires
    #: ``frontend='trace'`` (there is nothing to subsample without a
    #: recorded trace); :meth:`with_sampling` and the experiment runner
    #: switch the frontend automatically.  Selection is deterministic
    #: given the config: the sampler's RNG is seeded from ``(sampling,
    #: sampling_seed, trace identity)``.  See ``docs/sampling.md``.
    sampling: str = "off"
    #: Extra entropy for the sampling subset selection.  Fingerprinted,
    #: like ``sampling`` itself: two seeds select different subsets and
    #: therefore produce (slightly) different estimates.
    sampling_seed: int = 0
    #: Scheduler–cache co-design coupling (:mod:`repro.feedback`):
    #: ``"channel"`` (default) wires one FeedbackChannel per SM — caches
    #: publish miss/fill/eviction signals, schedulers with declared
    #: ``FEEDBACK_KINDS`` subscribe through it, and CAWA's CPL→CACP
    #: criticality coupling rides the same channel; ``"direct"`` keeps the
    #: original hand-wired CAWA coupling as the golden reference
    #: (feedback-consuming schedulers like ccws/wasp/ciao are rejected
    #: there).  Publish hooks arm only when a scheme subscribes, so
    #: non-co-design schemes pay one pointer test per cache access.  Both
    #: modes are bit-identical by contract
    #: (``tests/test_feedback_parity.py``) and therefore, like
    #: ``issue_core``/``clock``, the knob is excluded from
    #: :meth:`fingerprint`.  See ``docs/schemes.md``.
    feedback: str = "channel"

    #: Knobs *excluded* from :meth:`fingerprint`.  Every entry is
    #: bit-identical by contract — switching it changes how fast a result
    #: is produced, never what the result is — so configurations that
    #: differ only here share result-cache entries.  The set is validated
    #: against the dataclass field names at import time (a typo'd or
    #: renamed knob fails immediately, not by silently hashing everything)
    #: and read as ground truth by the FPR001 sanitize rule
    #: (:mod:`repro.sanitize`): any timing-path read of one of these
    #: fields must carry a waiver explaining why the read cannot perturb
    #: results.  See docs/static_analysis.md ("Sanitizing the simulator").
    FINGERPRINT_EXCLUDED: ClassVar[FrozenSet[str]] = frozenset({
        "issue_core",
        "frontend",
        "check_cpl_bounds",
        "clock",
        "shards",
        "events",
        "backend",
        "feedback",
    })

    #: The *included* set for :meth:`functional_fingerprint`: payload key
    #: -> dotted field path.  Only parameters that change the recorded
    #: per-warp instruction streams belong here (warp width shapes active
    #: masks; the L1D line size defines the coalescing granularity baked
    #: into recorded line addresses).  Validated against the dataclass
    #: field names at import time, like :data:`FINGERPRINT_EXCLUDED`.
    FUNCTIONAL_FINGERPRINT_FIELDS: ClassVar[Dict[str, str]] = {
        "warp_size": "warp_size",
        "l1_line_size": "l1d.line_size",
    }

    def __post_init__(self) -> None:
        if self.num_sms <= 0:
            raise ConfigError("num_sms must be positive")
        if self.warp_size <= 0 or self.warp_size & (self.warp_size - 1):
            raise ConfigError("warp_size must be a power of two")
        if self.max_warps_per_sm <= 0:
            raise ConfigError("max_warps_per_sm must be positive")
        if self.max_blocks_per_sm <= 0:
            raise ConfigError("max_blocks_per_sm must be positive")
        if self.num_schedulers_per_sm <= 0:
            raise ConfigError("num_schedulers_per_sm must be positive")
        if self.l2_banks <= 0:
            raise ConfigError("l2_banks must be positive")
        if self.issue_core not in ("event", "scan"):
            raise ConfigError(
                f"issue_core must be 'event' or 'scan', got {self.issue_core!r}"
            )
        if self.frontend not in ("execute", "trace"):
            raise ConfigError(
                f"frontend must be 'execute' or 'trace', got {self.frontend!r}"
            )
        if self.clock not in ("cycle", "skip"):
            raise ConfigError(
                f"clock must be 'cycle' or 'skip', got {self.clock!r}"
            )
        if self.backend not in ("python", "vector"):
            raise ConfigError(
                f"backend must be 'python' or 'vector', got {self.backend!r}"
            )
        if self.feedback not in ("channel", "direct"):
            raise ConfigError(
                f"feedback must be 'channel' or 'direct', got {self.feedback!r}"
            )
        # Validate the scheduler name eagerly against the registry (local
        # import: repro.scheduling never imports config, so no cycle) —
        # a typo fails when the config is built, not at device build time,
        # and the error lists every registered name.
        from .scheduling.registry import SCHEDULERS

        if self.scheduler_name not in SCHEDULERS:
            raise ConfigError(
                f"unknown scheduler {self.scheduler_name!r}; expected one "
                f"of {sorted(SCHEDULERS)}"
            )
        if self.shards <= 0:
            raise ConfigError(f"shards must be positive, got {self.shards}")
        if self.shards > 1 and self.frontend != "trace":
            raise ConfigError(
                "sharded replay (shards > 1) requires frontend='trace'; "
                "the execute frontend mutates global memory and cannot be "
                "partitioned across worker processes"
            )
        # Validate the events spec through the one shared parser (local
        # import: repro.obs.bus is a leaf, but keeping it out of module
        # scope avoids ordering constraints during package init).
        from .obs.bus import parse_spec

        parse_spec(self.events)
        # Same pattern for the sampling spec (repro.sampling.spec is a
        # leaf; the heavy sampling machinery never loads from here).
        from .sampling.spec import parse_sampling_spec

        sampling = parse_sampling_spec(self.sampling)
        if sampling.enabled and self.frontend != "trace":
            raise ConfigError(
                f"sampling={self.sampling!r} requires frontend='trace'; "
                "sampled replay subsamples a recorded trace, which the "
                "execute frontend does not have (use "
                "with_sampling(), which switches the frontend for you)"
            )

    @classmethod
    def fermi_gtx480(cls, **overrides) -> "GPUConfig":
        """The exact Table 1 configuration (16KB L1D, 8 sets x 16 ways)."""
        return cls(**overrides)

    @classmethod
    def default_sim(cls, **overrides) -> "GPUConfig":
        """Scaled configuration used for the reproduction experiments.

        Two SMs with 16 warps each keep Python run times tractable while
        preserving Table 1's structural ratios: the L1D remains 8 sets x
        16 ways x 128B (16KB) so the per-warp cache pressure matches the
        paper, and the L2:DRAM latency gap (120:220) is unchanged.
        """
        params = dict(
            num_sms=2,
            max_warps_per_sm=16,
            max_blocks_per_sm=4,
            num_schedulers_per_sm=2,
            registers_per_sm=32768,
            # L1D geometry matches Table 1 (16KB, 8 sets x 16 ways x 128B);
            # the MSHR file scales with the warp count (8 entries for 16
            # warps vs. the GTX480's 32 for 48) so memory-issue slots stay
            # a contended resource, as on the real machine.
            l1d=CacheConfig(sets=8, ways=16, line_size=128, mshr_entries=8),
            l2=CacheConfig(sets=32, ways=16, line_size=128),
            l2_banks=2,
        )
        params.update(overrides)
        return cls(**params)

    def with_scheduler(self, name: str) -> "GPUConfig":
        """Return a copy using warp scheduler ``name``.

        Validates eagerly: ``replace`` re-runs ``__post_init__``, which
        rejects names missing from the scheduling registry with the full
        list of registered schedulers.
        """
        return replace(self, scheduler_name=name)

    def with_cacp(self, enabled: bool = True, critical_ways: Optional[int] = None) -> "GPUConfig":
        """Return a copy with CACP cache prioritization toggled.

        When enabling, the L1D is partitioned with ``critical_ways`` ways
        (default: half of the ways, the paper's sensitivity-analysis optimum).
        """
        if enabled:
            ways = self.l1d.ways // 2 if critical_ways is None else critical_ways
            l1d = replace(self.l1d, critical_ways=ways)
        else:
            l1d = replace(self.l1d, critical_ways=0)
        return replace(self, use_cacp=enabled, l1d=l1d)

    def with_l1d_policy(self, policy: str) -> "GPUConfig":
        """Return a copy using L1D replacement policy ``policy``."""
        return replace(self, l1d_policy=policy)

    def with_issue_core(self, core: str) -> "GPUConfig":
        """Return a copy using issue-loop implementation ``core``."""
        return replace(self, issue_core=core)

    def with_frontend(self, frontend: str) -> "GPUConfig":
        """Return a copy using simulation frontend ``frontend``."""
        return replace(self, frontend=frontend)

    def with_clock(self, clock: str) -> "GPUConfig":
        """Return a copy using simulation clock ``clock`` (cycle/skip)."""
        return replace(self, clock=clock)

    def with_shards(self, shards: int) -> "GPUConfig":
        """Return a copy replaying across ``shards`` worker processes."""
        return replace(self, shards=shards)

    def with_events(self, events: str) -> "GPUConfig":
        """Return a copy with observability event recording spec ``events``."""
        return replace(self, events=events)

    def with_backend(self, backend: str) -> "GPUConfig":
        """Return a copy using hot-path backend ``backend`` (python/vector)."""
        return replace(self, backend=backend)

    def with_feedback(self, feedback: str) -> "GPUConfig":
        """Return a copy using feedback coupling mode ``feedback``."""
        return replace(self, feedback=feedback)

    def with_sampling(self, sampling: str, seed: Optional[int] = None) -> "GPUConfig":
        """Return a copy with trace-sampling spec ``sampling``.

        Enabling sampling switches the frontend to ``"trace"`` (validation
        rejects sampled execute-frontend configs); disabling it leaves the
        frontend untouched.  ``seed`` optionally re-seeds the subset
        selection (see :attr:`sampling_seed`).
        """
        frontend = self.frontend
        if sampling != "off":
            frontend = "trace"
        return replace(
            self,
            sampling=sampling,
            frontend=frontend,
            sampling_seed=self.sampling_seed if seed is None else seed,
        )

    def fingerprint(self) -> str:
        """Stable short hash of every timing-relevant parameter.

        Keys the persistent on-disk result cache: any change to the
        configuration (cache geometry, latencies, scheduler, ...) yields a
        different fingerprint and therefore a cache miss.  ``issue_core``,
        ``frontend``, ``clock`` and ``shards`` are deliberately *excluded*
        — the event/scan cores, the execute/trace frontends, the
        cycle/skip clocks and serial/sharded replay are all bit-identical
        by contract, so results are shared between them.  ``sampling``
        (and ``sampling_seed``) are deliberately **included**: a sampled
        run reports statistical estimates, not the exact numbers, so it
        must never alias an exact run's cache entry.
        """
        payload = dataclasses.asdict(self)
        for name in self.FINGERPRINT_EXCLUDED:
            del payload[name]
        blob = json.dumps(payload, sort_keys=True, default=str)
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]

    def functional_fingerprint(self) -> str:
        """Stable short hash of the *functional-relevant* parameters only.

        Keys the persistent trace store (:mod:`repro.trace.store`): a
        recorded per-warp instruction stream depends on the warp width
        (active masks, lane ids) and the L1D line size (which defines the
        coalescing granularity baked into the recorded line addresses), but
        **not** on timing-only knobs — scheduler, cache geometry beyond the
        line size, latencies, CACP, issue core.  Sweeping schemes therefore
        reuses one trace per (workload, scale) instead of re-recording.
        """
        payload = {}
        for key, path in self.FUNCTIONAL_FINGERPRINT_FIELDS.items():
            value: object = self
            for part in path.split("."):
                value = getattr(value, part)
            payload[key] = value
        blob = json.dumps(payload, sort_keys=True)
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


def _validate_fingerprint_spec() -> None:
    """Fail at import time if a fingerprint constant names a missing field.

    Renaming or removing a config knob without updating
    :data:`GPUConfig.FINGERPRINT_EXCLUDED` /
    :data:`GPUConfig.FUNCTIONAL_FINGERPRINT_FIELDS` would otherwise change
    what gets hashed silently — exactly the aliasing failure mode the
    constants exist to rule out.
    """
    gpu_fields = {f.name for f in dataclasses.fields(GPUConfig)}
    unknown = GPUConfig.FINGERPRINT_EXCLUDED - gpu_fields
    if unknown:
        raise ConfigError(
            "FINGERPRINT_EXCLUDED names unknown GPUConfig field(s): "
            f"{sorted(unknown)}"
        )
    cache_fields = {f.name for f in dataclasses.fields(CacheConfig)}
    for key, path in GPUConfig.FUNCTIONAL_FINGERPRINT_FIELDS.items():
        parts = path.split(".")
        if parts[0] not in gpu_fields:
            raise ConfigError(
                f"FUNCTIONAL_FINGERPRINT_FIELDS[{key!r}] names unknown "
                f"GPUConfig field {parts[0]!r}"
            )
        # The only nesting today is GPUConfig.<cache>.<CacheConfig field>.
        if len(parts) > 2 or (len(parts) == 2 and parts[1] not in cache_fields):
            raise ConfigError(
                f"FUNCTIONAL_FINGERPRINT_FIELDS[{key!r}] has unresolvable "
                f"path {path!r}"
            )


_validate_fingerprint_spec()
