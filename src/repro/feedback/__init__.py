"""``repro.feedback`` — the scheduler–cache co-design plug-in subsystem.

A typed, versioned signal schema (:mod:`~repro.feedback.signals`) and a
per-SM publish/subscribe :class:`FeedbackChannel`
(:mod:`~repro.feedback.channel`): caches publish their miss / fill /
eviction traffic with full warp attribution, schedulers subscribe by
declaring ``FEEDBACK_KINDS``, and the CAWA criticality coupling
(scheduler → CACP) rides the same channel.  CCWS, WaSP, and CIAO
(``repro.scheduling.{ccws,wasp,ciao}``) are pure consumers of this API —
see ``docs/schemes.md``.

Only the leaf modules are imported eagerly — the recording harness
(:func:`record_signals`) pulls in the GPU and the experiment runner, so
it is exposed via module ``__getattr__`` instead.
"""

from __future__ import annotations

from .channel import (
    FeedbackChannel,
    SignalTap,
    attach_signal_tap,
    require_no_subscribers,
    wire_gpu_feedback,
)
from .signals import (
    LEVEL_L1D,
    LEVEL_L2,
    SCHEMA_VERSION,
    SIGNAL_FIELDS,
    Sig,
    SignalSchemaError,
    merge_signal_streams,
    schema_table,
    signal_to_dict,
    sort_signals,
    validate_signal,
    validate_signals,
)

__all__ = [
    "Sig",
    "SignalSchemaError",
    "SCHEMA_VERSION",
    "SIGNAL_FIELDS",
    "LEVEL_L1D",
    "LEVEL_L2",
    "validate_signal",
    "validate_signals",
    "signal_to_dict",
    "schema_table",
    "sort_signals",
    "merge_signal_streams",
    "FeedbackChannel",
    "SignalTap",
    "wire_gpu_feedback",
    "attach_signal_tap",
    "require_no_subscribers",
    "record_signals",
]


def __getattr__(name: str):
    if name == "record_signals":
        from . import harness

        return getattr(harness, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
