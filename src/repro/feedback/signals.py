"""Typed feedback-signal schema (the scheduler-facing twin of ``repro.obs``).

A feedback *signal* is one plain tuple, exactly like an obs event::

    (kind, cycle, sm, *fields)

``kind`` is an :class:`Sig` code (stable wire value), ``cycle`` the cache
access's issue cycle (``MemRequest.cycle``), ``sm`` the owning SM for L1
signals or the *requesting* SM for shared-L2 signals, and ``fields`` the
kind-specific payload described by :data:`SIGNAL_FIELDS`.

The schema is deliberately small: the cache levels publish their miss /
fill / eviction traffic with full warp attribution (which warp missed,
which warp's line was victimized, which warp's fill did the evicting), and
every co-design scheme — CCWS victim-tag arrays, WaSP prefetch-lead
control, CIAO interference detection, CAWA's CACP coupling — is a
*consumer-side* policy over these three kinds.  Extending the schema means
appending new kinds or new trailing fields and bumping
:data:`SCHEMA_VERSION`, never renumbering or reordering.

Determinism contract (``tests/test_feedback_determinism.py``): the signal
multiset and the per-SM delivery order are identical across execute/trace
frontends, cycle/skip clocks, python/vector backends, and shard counts.
Cross-stream comparisons go through :func:`sort_signals` /
:func:`merge_signal_streams` — the same canonical ``(cycle, sm, kind,
fields)`` order the obs layer uses — because serial emission order is not
cycle-sorted (signals are stamped with the LSU issue time, which can run
ahead of the emitting tick).
"""

from __future__ import annotations

import enum
from typing import Dict, Iterable, List, Sequence, Tuple

#: Bumped when a kind is appended or a payload grows a trailing field.
SCHEMA_VERSION = 1

#: ``level`` payload values (same convention as the obs cache events).
LEVEL_L1D = 0
LEVEL_L2 = 1


class Sig(enum.IntEnum):
    """Feedback signal kinds.  Values are stable wire codes."""

    #: A cache miss: the requesting warp's locality probe point (CCWS
    #: checks the warp's victim tag array exactly here).
    MISS = 1
    #: A line allocated for the requesting warp.
    FILL = 2
    #: A valid line evicted to make room for a fill.  Carries *both*
    #: identities: the victim (the warp whose line is lost — feeds CCWS
    #: victim tag arrays) and the evictor (the warp whose fill displaced
    #: it — feeds CIAO interference scores).
    EVICT = 3


#: Leading fields shared by every signal.
COMMON_FIELDS: Tuple[str, ...] = ("kind", "cycle", "sm")

#: kind -> payload field names (after the common prefix).
SIGNAL_FIELDS: Dict[Sig, Tuple[str, ...]] = {
    Sig.MISS: ("level", "block", "warp", "line_addr", "pc"),
    Sig.FILL: ("level", "block", "warp", "line_addr", "critical"),
    Sig.EVICT: (
        "level",
        "victim_block",
        "victim_warp",
        "line_addr",
        "reused",
        "evictor_block",
        "evictor_warp",
    ),
}


class SignalSchemaError(ValueError):
    """A signal record does not match :data:`SIGNAL_FIELDS`."""


def validate_signal(record: Sequence[object]) -> None:
    """Raise :class:`SignalSchemaError` unless ``record`` fits the schema."""
    if len(record) < len(COMMON_FIELDS):
        raise SignalSchemaError(
            f"signal too short: {record!r} (need at least "
            f"{len(COMMON_FIELDS)} common fields)"
        )
    try:
        kind = Sig(int(record[0]))  # type: ignore[call-overload]
    except (ValueError, TypeError) as exc:
        raise SignalSchemaError(
            f"unknown signal kind {record[0]!r} in {record!r}"
        ) from exc
    expected = len(COMMON_FIELDS) + len(SIGNAL_FIELDS[kind])
    if len(record) != expected:
        raise SignalSchemaError(
            f"{kind.name} signal has {len(record)} fields, schema v"
            f"{SCHEMA_VERSION} expects {expected}: {record!r}"
        )


def validate_signals(records: Iterable[Sequence[object]]) -> int:
    """Validate a stream; returns the number of records checked."""
    count = 0
    for record in records:
        validate_signal(record)
        count += 1
    return count


def signal_to_dict(record: Sequence[object]) -> Dict[str, object]:
    """Expand one record into a field-name dict (exports, debugging)."""
    validate_signal(record)
    kind = Sig(int(record[0]))  # type: ignore[call-overload]
    names = COMMON_FIELDS + SIGNAL_FIELDS[kind]
    out: Dict[str, object] = dict(zip(names, record))
    out["kind"] = kind.name
    return out


def _sort_key(record: Sequence[object]) -> Tuple[object, ...]:
    return (record[1], record[2], record[0], tuple(record[3:]))


def sort_signals(records: Iterable[Sequence[object]]) -> List[tuple]:
    """Canonical deterministic order: ``(cycle, sm, kind, fields)``."""
    return sorted((tuple(r) for r in records), key=_sort_key)


def merge_signal_streams(
    streams: Iterable[Iterable[Sequence[object]]],
) -> List[tuple]:
    """Merge per-shard signal streams into one canonical list.

    Defined as the canonical sort of the concatenation — independent of
    shard count and worker scheduling as long as the emitted multiset
    matches, which the sharded bit-identity contract guarantees (the same
    definition :func:`repro.obs.collect.merge_event_streams` uses).
    """
    merged: List[tuple] = []
    for stream in streams:
        merged.extend(tuple(r) for r in stream)
    merged.sort(key=_sort_key)
    return merged


def schema_table() -> str:
    """Human-readable schema dump (``repro schemes --signals``)."""
    lines = [f"feedback signal schema v{SCHEMA_VERSION}"]
    for kind in Sig:
        fields = ", ".join(COMMON_FIELDS + SIGNAL_FIELDS[kind])
        lines.append(f"  {int(kind):2d}  {kind.name:<6} ({fields})")
    return "\n".join(lines)
