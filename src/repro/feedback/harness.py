"""One-call signal recording: run a (workload, scheme) cell with a tap.

:func:`record_signals` mirrors :func:`repro.obs.harness.record_events`
for the feedback subsystem: it runs one cell with a :class:`SignalTap`
attached to every FeedbackChannel (all SM L1 channels plus the shared-L2
device channel) and hands back ``(result, signals)`` with the signals in
canonical deterministic order.

Kept in its own module (exported lazily from ``repro.feedback``) because
it imports the GPU and the experiment runner — too heavy for the leaf
modules the simulator hot paths import.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..config import GPUConfig
from .channel import SignalTap, attach_signal_tap
from .signals import sort_signals


def record_signals(
    workload: str,
    scheme: str,
    scale: float = 1.0,
    config: Optional[GPUConfig] = None,
    check: bool = True,
) -> Tuple[object, List[tuple]]:
    """Run one cell recording every feedback signal; return ``(result, signals)``.

    Signals are returned in the canonical ``(cycle, sm, kind, fields)``
    order so streams from different frontends / clocks / backends / shard
    counts compare with ``==``.  Requires ``feedback='channel'`` (the
    default); the config is upgraded automatically if needed.
    """
    from ..core.cawa import apply_scheme
    from ..experiments.runner import build_oracle
    from ..gpu import GPU
    from ..workloads import make_workload

    base = config or GPUConfig.default_sim()
    if base.feedback != "channel":
        base = base.with_feedback("channel")
    cfg = apply_scheme(base, scheme)

    tap = SignalTap()
    oracle = (build_oracle(workload, scale, config)
              if cfg.scheduler_name == "caws" else None)

    if cfg.frontend == "trace":
        from .. import trace as trace_mod
        from ..experiments.runner import run_scheme

        program = trace_mod.load_program(workload, scale, cfg, None)
        if program is None:
            # Record the trace once through the standard runner path.
            run_scheme(
                workload, scheme, scale=scale,
                config=base.with_shards(1).with_sampling("off"),
                check=check, use_cache=False, persistent=False,
            )
            program = trace_mod.load_program(workload, scale, cfg, None)
        if program is None:  # pragma: no cover - store failure
            raise RuntimeError(
                f"could not record a trace for {workload!r} at scale {scale}"
            )
        results = trace_mod.replay_program(
            program, cfg, scheme=scheme, oracle=oracle, feedback_tap=tap
        )
        return results[-1], sort_signals(tap.records)

    gpu = GPU(cfg, oracle=oracle)
    attach_signal_tap(gpu, tap)
    wl = make_workload(workload, scale=scale)
    result = wl.run(gpu, scheme=scheme, check=check)
    return result, sort_signals(tap.records)
