"""FeedbackChannel: the scheduler–cache co-design coupling point.

One :class:`FeedbackChannel` per SM (plus one device-level channel for the
shared L2 when a tap is attached).  Caches *publish* plain signal tuples
(see :mod:`repro.feedback.signals`); schedulers *subscribe* by declaring
the signal kinds they care about (``WarpScheduler.FEEDBACK_KINDS``) and
receive each matching record synchronously, in publish order, via
``on_signal``.

Determinism contract
--------------------
Delivery order per SM is the cache access order of that SM's timing
model, which the parity grid already pins down as identical across
execute/trace frontends, cycle/skip clocks, and python/vector backends
(the vector backend's ``TagMirror`` only accelerates way-finding; fills
and evictions run the shared scalar code, so both backends publish the
same records in the same order).  Handler order within one record is
scheduler-slot order — a fixed function of the config.  Under sharding,
each worker owns its SMs' L1 channels outright (foreign SMs never tick),
so local delivery is untouched; L2 signals are owned by the coordinator
and only ever *recorded* (schedulers are per-SM and subscribe to L1
locality, never to the shared L2), merged into global canonical order by
:func:`repro.feedback.signals.merge_signal_streams`.

Criticality re-wiring
---------------------
CAWA's hand-wired scheduler→CACP coupling (the L1 policy asking "is this
warp critical?") is re-routed through the channel: the channel carries a
``criticality`` provider that the SM exposes to its caches' policies.  In
``feedback='direct'`` mode the SM binds ``cpl.is_critical`` at
construction time exactly as before; in ``feedback='channel'`` mode the
same bound method flows through the channel — bit-identical by
construction, and proven so by ``tests/test_feedback_parity.py``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, Iterable, List, Optional, Tuple

from ..errors import ConfigError
from .signals import Sig, validate_signal

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..gpu.gpu import GPU
    from ..simt.warp import Warp

#: A subscriber callback: receives one signal record tuple.
Handler = Callable[[tuple], None]

#: A criticality provider: ``fn(warp) -> bool``.
CriticalityFn = Callable[["Warp"], bool]


class SignalTap:
    """Passive recorder attached to channels (tests, ``record_signals``).

    Appends are O(1) on the hot path; :meth:`drain` hands the buffer off
    (used by sharded workers to ship per-launch signal batches).
    """

    __slots__ = ("records",)

    def __init__(self) -> None:
        self.records: List[tuple] = []

    def append(self, record: tuple) -> None:
        self.records.append(record)

    def drain(self) -> List[tuple]:
        out = self.records
        self.records = []
        return out

    def __len__(self) -> int:
        return len(self.records)


class FeedbackChannel:
    """Per-SM typed publish/subscribe bus between caches and schedulers."""

    __slots__ = ("sm_id", "_handlers", "tap", "criticality")

    def __init__(self, sm_id: int) -> None:
        self.sm_id = sm_id
        #: kind -> handlers in subscription (= scheduler slot) order.
        self._handlers: Dict[int, List[Handler]] = {}
        self.tap: Optional[SignalTap] = None
        self.criticality: Optional[CriticalityFn] = None

    # -- subscription side -------------------------------------------------

    def subscribe(self, kinds: Iterable[int], handler: Handler) -> None:
        """Register ``handler`` for each kind in ``kinds``.

        Subscription order is delivery order; callers subscribe in
        scheduler-slot order so delivery is a pure function of config.
        """
        for kind in kinds:
            kind_i = int(Sig(kind))  # validate: unknown kinds fail loudly
            self._handlers.setdefault(kind_i, []).append(handler)

    def has_subscribers(self) -> bool:
        return bool(self._handlers)

    def subscribed_kinds(self) -> Tuple[int, ...]:
        return tuple(sorted(self._handlers))

    def provide_criticality(self, fn: CriticalityFn) -> None:
        """Publish a warp-criticality oracle (the CAWA CPL predictor)."""
        self.criticality = fn

    # -- publish side (hot path) -------------------------------------------

    def publish(self, record: tuple) -> None:
        """Deliver ``record`` to subscribers of its kind, then the tap.

        The caller guarantees the record matches the signal schema; the
        schema is enforced by the FBK001 sanitize rule at the publish
        sites and by ``validate_signal`` in the test harness, not here —
        this is the per-access hot path.
        """
        handlers = self._handlers.get(record[0])
        if handlers is not None:
            for handler in handlers:
                handler(record)
        tap = self.tap
        if tap is not None:
            tap.append(record)

    def publish_checked(self, record: tuple) -> None:
        """Schema-validating publish (harness/debug use only)."""
        validate_signal(record)
        self.publish(record)


# -- device wiring ----------------------------------------------------------


def wire_gpu_feedback(gpu: "GPU") -> None:
    """Build per-SM channels and connect caches and schedulers.

    Called by ``GPU.__init__`` after SM construction when
    ``config.feedback == 'channel'``.  L1 publish hooks are only armed
    when at least one scheduler on that SM declared an interest (or a tap
    is attached later) so schemes that ignore feedback pay nothing.
    """
    for sm in gpu.sms:
        ch = FeedbackChannel(sm.sm_id)
        sm.feedback = ch
        if sm.cpl is not None:
            # Same bound method the direct mode binds at construction:
            # routing it through the channel is bit-identical.
            ch.provide_criticality(sm.cpl.is_critical)
            sm._is_critical = ch.criticality
        subscribed = False
        for sched in sm.schedulers:
            kinds = getattr(sched, "FEEDBACK_KINDS", ())
            if kinds:
                ch.subscribe(kinds, sched.on_signal)
                subscribed = True
        if subscribed:
            _wire_l1(sm, ch)


def _wire_l1(sm: object, ch: FeedbackChannel) -> None:
    l1d = getattr(sm, "l1d", None)
    if l1d is not None:
        l1d.fb = ch
        l1d.fb_owner = ch.sm_id
        l1d.fb_level = 0


def attach_signal_tap(gpu: "GPU", tap: SignalTap) -> FeedbackChannel:
    """Record every published signal (L1 of each SM + shared L2) to ``tap``.

    Returns the device-level channel created for the L2.  Requires
    ``feedback='channel'``; the direct mode has no channels to tap.
    """
    if getattr(gpu.config, "feedback", "channel") != "channel":
        raise ConfigError(
            "attach_signal_tap requires feedback='channel' "
            f"(got {gpu.config.feedback!r})"
        )
    for sm in gpu.sms:
        ch = sm.feedback
        if ch is None:  # pragma: no cover - wire_gpu_feedback precedes taps
            ch = FeedbackChannel(sm.sm_id)
            sm.feedback = ch
        ch.tap = tap
        _wire_l1(sm, ch)
    device_ch = FeedbackChannel(-1)
    device_ch.tap = tap
    l2 = gpu.hierarchy.l2.cache
    l2.fb = device_ch
    l2.fb_owner = -1  # L2 signals carry the *requesting* SM id
    l2.fb_level = 1
    gpu.fb_tap = tap
    return device_ch


def require_no_subscribers(gpu: "GPU") -> None:
    """Direct mode guard: feedback-consuming schedulers need the channel.

    ``feedback='direct'`` exists as the golden reference for the CAWA
    coupling only; running ccws/wasp/ciao there would silently starve
    them of signals, so fail fast instead.
    """
    for sm in gpu.sms:
        for sched in sm.schedulers:
            kinds = getattr(sched, "FEEDBACK_KINDS", ())
            if kinds:
                raise ConfigError(
                    f"scheduler {sched.name!r} subscribes to feedback "
                    "signals and requires feedback='channel' "
                    "(feedback='direct' is the CAWA golden-reference mode)"
                )
