# Developer entry points.  All targets run from a plain checkout (no
# install): PYTHONPATH=src is injected everywhere.

PYTHON ?= python
PYTEST  = PYTHONPATH=src $(PYTHON) -m pytest

.PHONY: test test-all test-slow lint sanitize bench profile sweep viz serve serve-smoke sample-smoke schemes-smoke clean-cache

## Packages held to the ruff + strict-mypy bar (CI `lint` job).
TYPED_PACKAGES = src/repro/analysis src/repro/sanitize src/repro/obs src/repro/trace src/repro/feedback

## Tier-1 suite: fast correctness tests (excludes `slow`-marked suites).
test:
	$(PYTEST) -x -q

## Everything, including the full event/scan parity grid.
test-all:
	$(PYTEST) -x -q -m ""

## Only the slow suites (full parity grid etc.).
test-slow:
	$(PYTEST) -q -m slow

## Static analysis: lint every registry kernel (docs/static_analysis.md),
## then ruff / strict mypy over the typed packages when installed.
lint:
	PYTHONPATH=src $(PYTHON) -m repro lint --all
	@if $(PYTHON) -m ruff --version >/dev/null 2>&1; then \
		$(PYTHON) -m ruff check $(TYPED_PACKAGES); \
	else echo "ruff not installed; skipping"; fi
	@if $(PYTHON) -m mypy --version >/dev/null 2>&1; then \
		$(PYTHON) -m mypy --strict $(TYPED_PACKAGES); \
	else echo "mypy not installed; skipping"; fi

## Sanitize the simulator's own source: fingerprint soundness,
## determinism, probe parity, clock-protocol and shard-safety rules
## (docs/static_analysis.md, "Sanitizing the simulator").
sanitize:
	PYTHONPATH=src $(PYTHON) -m repro sanitize --all

## Paper-reproduction benchmarks + perf smoke (pytest-benchmark).
bench:
	$(PYTEST) benchmarks/ -q -m "" --benchmark-only -s

## Hot-spot profile of the reference cell (override: make profile ARGS="kmeans rr").
ARGS ?= bfs cawa
profile:
	PYTHONPATH=src $(PYTHON) -m repro profile $(ARGS)

## Compare the event and scan issue cores on the reference cell.
profile-compare:
	PYTHONPATH=src $(PYTHON) -m repro profile $(ARGS) --compare

## Full workload x scheme IPC sweep.
sweep:
	PYTHONPATH=src $(PYTHON) -m repro sweep

## Record the reference cell and export a Perfetto-loadable Chrome trace
## (override the cell: make viz ARGS="kmeans gto").  Open the resulting
## .trace.json at https://ui.perfetto.dev ; see docs/observability.md.
viz:
	PYTHONPATH=src $(PYTHON) -m repro events export --format chrome $(ARGS)
	PYTHONPATH=src $(PYTHON) -m repro events stats $(ARGS)

## Run the simulation service on the default port (docs/serving.md).
serve:
	PYTHONPATH=src $(PYTHON) -m repro serve

## End-to-end service smoke: boot `repro serve`, exercise coalescing,
## SSE obs progress, and draining shutdown through `repro client`.
serve-smoke:
	$(PYTHON) tools/serve_smoke.py

## Sampled-sweep acceptance gate: calibrate two workloads, then require
## run_sweep(sampled=True) to beat the exact sweep by >= 10x with every
## exact metric inside its sampled 95% CI (docs/sampling.md).
sample-smoke:
	$(PYTEST) benchmarks/test_sample_smoke.py -q -m slow --benchmark-only

## Co-design scheme smoke: every feedback-consuming scheme on two tier-1
## workloads, execute-vs-trace cycle + signal-stream identity, one trace
## recording per workload reused across schemes (docs/schemes.md).
schemes-smoke:
	$(PYTHON) tools/schemes_smoke.py

## Drop the persistent result cache.
clean-cache:
	rm -rf .repro_cache
