#!/usr/bin/env python
"""CI smoke test for the simulation service (docs/serving.md).

Boots ``repro serve`` as a real subprocess on an ephemeral port, drives
it exclusively through the ``repro client`` CLI (the same path a user
takes), and asserts the service's headline guarantees end to end:

1. two identical submissions coalesce into one job — exactly two
   simulations run for three submissions (the third is distinct);
2. the SSE feed of an ``--events`` job carries live obs progress
   records (``obs`` snapshots + a terminal ``obs_summary``);
3. a draining shutdown finishes every admitted job and the server
   process exits cleanly.

Usage::

    python tools/serve_smoke.py            # (sets PYTHONPATH=src itself)

Exit status 0 on success; any guarantee violation prints a diagnostic
and exits non-zero.  Run via ``make serve-smoke``.
"""

import json
import os
import re
import subprocess
import sys
import tempfile
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SCALE = "0.25"
JOB_ID = re.compile(r"\bjob (j\d{6}-[0-9a-f]{8})\b")
LISTENING = re.compile(r"listening on (http://[\d.]+:\d+)")


def _env(cache_dir):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    env["REPRO_CACHE_DIR"] = cache_dir
    env.setdefault("PYTHONUNBUFFERED", "1")
    return env


def client(env, url, *args, check=True):
    """Run one ``repro client`` command; returns its stdout."""
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "client", "--server", url, *args],
        capture_output=True, text=True, timeout=300, env=env,
        cwd=REPO_ROOT,
    )
    if check and proc.returncode != 0:
        raise AssertionError(
            f"repro client {' '.join(args)} failed "
            f"(rc {proc.returncode}):\n{proc.stdout}{proc.stderr}"
        )
    return proc.stdout


def submit(env, url, *extra):
    out = client(env, url, "submit", "--workload", "synthetic_imbalance",
                 "--scale", SCALE, *extra)
    match = JOB_ID.search(out)
    if not match:
        raise AssertionError(f"no job id in submit output:\n{out}")
    return match.group(1), out.startswith("coalesced")


def wait_done(env, url, job_id, timeout=180.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status = json.loads(client(env, url, "status", job_id))
        if status["state"] in ("done", "failed", "cancelled"):
            return status
        time.sleep(0.2)
    raise AssertionError(f"timed out waiting for {job_id}")


def main() -> int:
    cache_dir = tempfile.mkdtemp(prefix="repro_serve_smoke_")
    env = _env(cache_dir)
    server = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--workers", "2"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env=env, cwd=REPO_ROOT,
    )
    server_log = []
    try:
        # -- wait for the ephemeral bind ------------------------------
        url = None
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            line = server.stdout.readline()
            if not line:
                break
            server_log.append(line)
            match = LISTENING.search(line)
            if match:
                url = match.group(1)
                break
        if url is None:
            raise AssertionError(
                "server never reported its port:\n" + "".join(server_log)
            )
        print(f"serve-smoke: server up at {url}")

        # -- stage the queue deterministically ------------------------
        client(env, url, "pause")
        first, coalesced = submit(env, url, "--events")
        assert not coalesced, "first submission must not coalesce"
        second, coalesced = submit(env, url, "--events")
        assert coalesced, "identical submission must coalesce"
        assert second == first, f"coalesced ids differ: {first} vs {second}"
        distinct, coalesced = submit(env, url, "--scheme", "gto")
        assert not coalesced and distinct != first
        client(env, url, "resume")
        print(f"serve-smoke: coalesced pair {first}, distinct {distinct}")

        # -- SSE feed carries obs progress ----------------------------
        feed = client(env, url, "watch", first)
        kinds = re.findall(r"^  \[(\w+)\]", feed, re.MULTILINE)
        assert kinds.count("started") == 1, \
            f"expected exactly one started record, got {kinds}"
        assert "obs" in kinds and "obs_summary" in kinds, \
            f"SSE feed missing obs records: {kinds}\n{feed}"
        assert kinds[-1] == "complete", f"feed did not terminate: {kinds}"
        print(f"serve-smoke: SSE feed ok ({len(kinds)} records, "
              f"{kinds.count('obs')} obs snapshots)")

        assert wait_done(env, url, first)["state"] == "done"
        assert wait_done(env, url, distinct)["state"] == "done"

        # -- exactly two executions for three submissions -------------
        counters = json.loads(client(env, url, "stats"))["counters"]
        assert counters["submitted"] == 2, counters
        assert counters["coalesced"] == 1, counters
        assert counters["executions"] == 2, counters
        assert counters["done"] == 2, counters
        print(f"serve-smoke: counters ok {counters}")

        # -- graceful drain -------------------------------------------
        client(env, url, "shutdown")
        remainder, _ = server.communicate(timeout=120)
        server_log.append(remainder)
        assert server.returncode == 0, \
            f"server exited {server.returncode}:\n{''.join(server_log)}"
        assert "drained and stopped" in remainder, remainder
        print("serve-smoke: drained shutdown ok")
        print("serve-smoke: PASS")
        return 0
    except AssertionError as exc:
        print(f"serve-smoke: FAIL: {exc}", file=sys.stderr)
        return 1
    finally:
        if server.poll() is None:
            server.kill()
            server.wait(timeout=30)


if __name__ == "__main__":
    sys.exit(main())
