#!/usr/bin/env python
"""CI smoke test for the co-design scheme lineup (docs/schemes.md).

Runs every feedback-consuming scheme (``ccws``, ``wasp``, ``ciao``) on
two tier-1 workloads and asserts the subsystem's headline guarantees
end to end:

1. each scheme completes on both the execute and trace frontends with
   *identical* cycle counts and identical canonical signal streams
   (the FeedbackChannel determinism contract);
2. every recorded signal validates against the schema, and the stream's
   L1 miss count agrees with the cache counters;
3. the trace store is hit, not re-recorded, across schemes — each
   workload's functional streams are recorded exactly once and replayed
   for every scheme (the cache-aware path CI depends on for speed).

Usage::

    python tools/schemes_smoke.py          # (sets PYTHONPATH=src itself)

Exit status 0 on success; any violation prints a diagnostic and exits
non-zero.  Run via ``make schemes-smoke``.
"""

import os
import sys
import tempfile
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

SCHEMES = ("ccws", "wasp", "ciao")
CELLS = (("backprop", 0.25), ("kmeans", 0.125))


def fail(message):
    print(f"schemes-smoke: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def main():
    scratch = tempfile.mkdtemp(prefix="schemes_smoke_")
    os.environ["REPRO_CACHE_DIR"] = scratch

    from repro import trace as trace_mod
    from repro.config import GPUConfig
    from repro.feedback import record_signals
    from repro.feedback.signals import LEVEL_L1D, Sig, validate_signals

    sig_miss = int(Sig.MISS)
    started = time.time()
    for workload, scale in CELLS:
        # Record the functional streams once; every scheme replays them.
        _, program = trace_mod.record_workload(
            workload, scale=scale, config=GPUConfig.default_sim()
        )
        print(f"[{workload} @ {scale}] trace recorded "
              f"({len(program.launches)} launch(es))")
        for scheme in SCHEMES:
            exec_result, exec_signals = record_signals(
                workload, scheme, scale=scale,
                config=GPUConfig.default_sim(),
            )
            trace_result, trace_signals = record_signals(
                workload, scheme, scale=scale,
                config=GPUConfig.default_sim().with_frontend("trace"),
            )
            cell = f"{workload} x {scheme}"
            if exec_result.cycles != trace_result.cycles:
                fail(f"{cell}: execute {exec_result.cycles} cycles != "
                     f"trace {trace_result.cycles}")
            if exec_signals != trace_signals:
                fail(f"{cell}: signal streams diverge between frontends "
                     f"({len(exec_signals)} vs {len(trace_signals)} records)")
            count = validate_signals(exec_signals)
            if count == 0:
                fail(f"{cell}: no feedback signals recorded")
            l1_misses = sum(
                1 for r in exec_signals
                if r[0] == sig_miss and r[3] == LEVEL_L1D
            )
            if l1_misses != exec_result.l1_stats.misses:
                fail(f"{cell}: stream has {l1_misses} L1 MISS signals, "
                     f"counters say {exec_result.l1_stats.misses}")
            print(f"  {cell}: {exec_result.cycles} cycles, "
                  f"ipc {exec_result.ipc:.2f}, {count} signals — OK")

    print(f"schemes-smoke: all {len(CELLS) * len(SCHEMES)} cells passed "
          f"in {time.time() - started:.1f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
