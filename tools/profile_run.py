#!/usr/bin/env python
"""Standalone profiler for simulator runs (no install required).

Examples::

    python tools/profile_run.py bfs cawa
    python tools/profile_run.py bfs cawa --sort tottime --top 40
    python tools/profile_run.py kmeans rr --compare      # event vs scan cores
    python tools/profile_run.py bfs gto --compare clock=cycle,skip  # device clocks

Equivalent to ``python -m repro profile ...`` but bootstraps ``src/`` onto
``sys.path`` so it works straight from a checkout.
"""

from __future__ import annotations

import sys
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))


def main() -> int:
    from repro.cli import main as cli_main

    return cli_main(["profile"] + sys.argv[1:])


if __name__ == "__main__":
    sys.exit(main())
