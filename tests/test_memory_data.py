"""Tests for the functional global memory."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SimulationError
from repro.memory.data import GlobalMemory


class TestAllocation:
    def test_alloc_returns_byte_addresses(self):
        mem = GlobalMemory()
        a = mem.alloc(4)
        b = mem.alloc(2)
        assert a == 0
        assert b == 32  # 4 words * 8 bytes

    def test_alloc_array_roundtrip(self):
        mem = GlobalMemory()
        data = np.arange(100, dtype=float)
        base = mem.alloc_array(data)
        assert np.array_equal(mem.read_array(base, 100), data)

    def test_growth_preserves_contents(self):
        mem = GlobalMemory(initial_words=4)
        base = mem.alloc_array(np.array([1.0, 2.0, 3.0]))
        mem.alloc(10_000)
        assert np.array_equal(mem.read_array(base, 3), [1.0, 2.0, 3.0])

    def test_negative_alloc_rejected(self):
        with pytest.raises(SimulationError):
            GlobalMemory().alloc(-1)


class TestAccess:
    def test_masked_load_ignores_inactive_lanes(self):
        mem = GlobalMemory()
        base = mem.alloc_array(np.arange(8, dtype=float))
        addrs = np.full(8, 10**9, dtype=np.int64)  # wild addresses
        addrs[2] = base + 16
        mask = np.zeros(8, dtype=bool)
        mask[2] = True
        values = mem.load(addrs, mask)
        assert values[2] == 2.0
        assert np.all(values[[0, 1, 3, 4, 5, 6, 7]] == 0.0)

    def test_store_conflict_is_deterministic(self):
        mem = GlobalMemory()
        base = mem.alloc_array(np.zeros(1))
        addrs = np.full(4, base, dtype=np.int64)
        mask = np.ones(4, dtype=bool)
        mem.store(addrs, np.array([1.0, 2.0, 3.0, 4.0]), mask)
        # numpy fancy-assignment semantics: the last lane wins.
        assert mem.read_word(base) == 4.0

    def test_oob_load_raises(self):
        mem = GlobalMemory()
        mem.alloc_array(np.zeros(4))
        addrs = np.array([4 * 8], dtype=np.int64)
        with pytest.raises(SimulationError):
            mem.load(addrs, np.array([True]))

    def test_oob_read_array_raises(self):
        mem = GlobalMemory()
        base = mem.alloc_array(np.zeros(4))
        with pytest.raises(SimulationError):
            mem.read_array(base, 5)

    def test_misaligned_read_raises(self):
        mem = GlobalMemory()
        mem.alloc_array(np.zeros(4))
        with pytest.raises(SimulationError):
            mem.read_word(3)


@settings(max_examples=30, deadline=None)
@given(
    values=st.lists(st.floats(-1e9, 1e9), min_size=1, max_size=64),
    data=st.data(),
)
def test_prop_store_load_roundtrip(values, data):
    mem = GlobalMemory()
    base = mem.alloc_array(np.zeros(len(values)))
    lanes = len(values)
    order = data.draw(st.permutations(range(lanes)))
    addrs = base + np.array(order, dtype=np.int64) * 8
    mem.store(addrs, np.array(values), np.ones(lanes, dtype=bool))
    out = mem.load(addrs, np.ones(lanes, dtype=bool))
    assert np.array_equal(out, np.array(values))
