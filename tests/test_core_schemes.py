"""Tests for the scheme registry and configuration plumbing."""

import pytest

from repro import GPU, GPUConfig, apply_scheme
from repro.core.cawa import SCHEMES
from repro.core.cacp import CACPPolicy
from repro.scheduling import (
    GCAWSScheduler,
    GTOScheduler,
    LRRScheduler,
    OracleCAWSScheduler,
    TwoLevelScheduler,
)
from repro.scheduling.ccws import CCWSScheduler
from repro.scheduling.ciao import CIAOScheduler
from repro.scheduling.wasp import WaSPScheduler

_EXPECTED_SCHEDULER_TYPES = {
    "rr": LRRScheduler,
    "gto": GTOScheduler,
    "two_level": TwoLevelScheduler,
    "caws": OracleCAWSScheduler,
    "gcaws": GCAWSScheduler,
    "cawa": GCAWSScheduler,
    "rr+cacp": LRRScheduler,
    "gto+cacp": GTOScheduler,
    "two_level+cacp": TwoLevelScheduler,
    "cawa+bypass": GCAWSScheduler,
    "cawa+mshr": GCAWSScheduler,
    "ccws": CCWSScheduler,
    "wasp": WaSPScheduler,
    "ciao": CIAOScheduler,
}


@pytest.mark.parametrize("scheme", sorted(SCHEMES))
def test_scheme_builds_expected_gpu(scheme):
    config = apply_scheme(GPUConfig.default_sim(), scheme)
    gpu = GPU(config)
    sm = gpu.sms[0]
    assert isinstance(sm.schedulers[0], _EXPECTED_SCHEDULER_TYPES[scheme])
    uses_cacp = isinstance(sm.l1d.policy, CACPPolicy)
    assert uses_cacp == SCHEMES[scheme][1]


def test_unknown_scheme_rejected():
    with pytest.raises(ValueError):
        apply_scheme(GPUConfig.default_sim(), "magic")


def test_cacp_schemes_partition_half_the_ways():
    config = apply_scheme(GPUConfig.default_sim(), "cawa")
    assert config.l1d.critical_ways == config.l1d.ways // 2


def test_bypass_scheme_sets_flag():
    assert apply_scheme(GPUConfig.default_sim(), "cawa+bypass").cacp_bypass
    assert not apply_scheme(GPUConfig.default_sim(), "cawa").cacp_bypass
    gpu = GPU(apply_scheme(GPUConfig.default_sim(), "cawa+bypass"))
    assert gpu.sms[0].l1d.policy.bypass_no_reuse


def test_schemes_do_not_mutate_base_config():
    base = GPUConfig.default_sim()
    apply_scheme(base, "cawa")
    assert base.scheduler_name == "lrr"
    assert not base.use_cacp


def test_cpl_attached_to_every_sm():
    gpu = GPU(apply_scheme(GPUConfig.default_sim(), "rr"))
    assert all(sm.cpl is not None for sm in gpu.sms)


def test_cpl_can_be_disabled():
    gpu = GPU(GPUConfig.default_sim(use_cpl=False))
    assert all(sm.cpl is None for sm in gpu.sms)


def test_fermi_config_runs_a_small_kernel():
    import numpy as np

    from tests.conftest import build_copy_kernel

    gpu = GPU(GPUConfig.fermi_gtx480())
    n = 15 * 64
    src = gpu.memory.alloc_array(np.arange(n, dtype=float))
    dst = gpu.memory.alloc_array(np.zeros(n))
    result = gpu.launch(build_copy_kernel(n, src, dst), 15, 64)
    assert np.array_equal(gpu.memory.read_array(dst, n), np.arange(n, dtype=float))
    # One block per SM on the full 15-SM machine.
    assert len(result.blocks) == 15
